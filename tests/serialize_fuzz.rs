//! Fuzz the model deserializers: whatever bytes arrive, `read_ensemble`
//! and `read_mlp` must return a typed error, never panic.
//!
//! Corruptions are built from valid serialized models — truncation at any
//! byte, arbitrary byte flips (including ones that break UTF-8), garbage
//! line insertion — plus entirely random byte soup. A serving process
//! reloads models from disk; a half-written or bit-rotted file must not
//! take it down.

use distilled_ltr::gbdt::tree::leaf_ref;
use distilled_ltr::gbdt::{read_ensemble, write_ensemble, Ensemble, RegressionTree};
use distilled_ltr::nn::train::{LayerMasks, SgdTrainer};
use distilled_ltr::nn::{read_mlp, write_mlp, Checkpoint, Mlp};
use proptest::prelude::*;
use std::io::Cursor;

/// Valid serialized ensemble to corrupt.
fn ensemble_bytes() -> Vec<u8> {
    let mut e = Ensemble::new(3, 0.125);
    e.push(RegressionTree::from_raw(
        vec![0, 2],
        vec![0.5, -1.25],
        vec![1, leaf_ref(0)],
        vec![leaf_ref(2), leaf_ref(1)],
        vec![0.1, -0.2, 0.3],
    ));
    e.push(RegressionTree::constant(7.5));
    let mut buf = Vec::new();
    write_ensemble(&e, &mut buf).unwrap();
    buf
}

/// Valid serialized MLP to corrupt.
fn mlp_bytes() -> Vec<u8> {
    let mlp = Mlp::from_hidden(5, &[4, 3], 42);
    let mut buf = Vec::new();
    write_mlp(&mlp, &mut buf).unwrap();
    buf
}

/// Valid serialized checkpoint to corrupt.
fn checkpoint_bytes() -> Vec<u8> {
    let mlp = Mlp::from_hidden(4, &[3], 17);
    let trainer = SgdTrainer::new(&mlp, 0.1, 3);
    let ck = Checkpoint {
        epoch: 2,
        lr_scale: 1.0,
        synth_seed: 99,
        shuffle_rng: [5, 6, 7, 8],
        threshold: None,
        masks: LayerMasks::none(2),
        trainer: trainer.export_state(),
        mlp,
    };
    let mut buf = Vec::new();
    ck.write_to(&mut buf).unwrap();
    buf
}

/// Both parsers must complete (Ok or Err) on these bytes. Reaching the
/// end of this function IS the property: a panic fails the test.
fn parsers_must_not_panic(bytes: &[u8]) {
    let _ = read_ensemble(Cursor::new(bytes));
    let _ = read_mlp(Cursor::new(bytes));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncated_models_do_not_panic(cut in 0usize..10_000) {
        for base in [ensemble_bytes(), mlp_bytes()] {
            let cut = cut % (base.len() + 1);
            parsers_must_not_panic(&base[..cut]);
        }
    }

    #[test]
    fn byte_flips_do_not_panic(
        positions in collection::vec(0usize..10_000, 1..8),
        values in collection::vec(0u8..=255, 8usize),
    ) {
        for base in [ensemble_bytes(), mlp_bytes()] {
            let mut bytes = base;
            for (&pos, &val) in positions.iter().zip(&values) {
                let at = pos % bytes.len();
                bytes[at] = val; // may break UTF-8 — that must surface as Err, not a panic
            }
            parsers_must_not_panic(&bytes);
        }
    }

    #[test]
    fn garbage_line_insertion_does_not_panic(
        line in collection::vec(32u8..127, 0..40),
        at in 0usize..10_000,
    ) {
        for base in [ensemble_bytes(), mlp_bytes()] {
            let mut bytes = base;
            // Insert on a line boundary so the garbage becomes its own line.
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1)
                .collect();
            let split = newlines[at % newlines.len()];
            let mut inserted = line.clone();
            inserted.push(b'\n');
            bytes.splice(split..split, inserted);
            parsers_must_not_panic(&bytes);
        }
    }

    #[test]
    fn random_byte_soup_does_not_panic(bytes in collection::vec(0u8..=255, 0..512)) {
        parsers_must_not_panic(&bytes);
    }

    #[test]
    fn random_ascii_lines_do_not_panic(soup in collection::vec(9u8..127, 0..512)) {
        // All-ASCII soup reaches deeper into the line-oriented parsers
        // than raw bytes, which usually fail at UTF-8 validation.
        parsers_must_not_panic(&soup);
    }

    #[test]
    fn header_survives_any_tail(tail in collection::vec(0u8..=255, 0..256)) {
        // A valid header followed by arbitrary bytes exercises the
        // structural checks past the header fast-path.
        for header in [
            "dlr-ensemble v1\n",
            "dlr-mlp v1\n",
            "dlr-mlp v2 crc32 deadbeef len 8\n",
            "dlr-ckpt v1 crc32 deadbeef len 8\n",
        ] {
            let mut bytes = header.as_bytes().to_vec();
            bytes.extend_from_slice(&tail);
            parsers_must_not_panic(&bytes);
            let _ = Checkpoint::read_from_bytes(&bytes);
        }
    }

    #[test]
    fn v2_payload_flip_is_always_a_typed_error(pos in 0usize..10_000, xor in 1u8..=255) {
        // The checksummed v2 format upgrades the guarantee from "no
        // panic" to "any payload corruption is rejected": CRC-32 catches
        // every single-byte error.
        let base = mlp_bytes();
        let payload_start = base.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut bytes = base.clone();
        let at = payload_start + pos % (bytes.len() - payload_start);
        bytes[at] ^= xor;
        prop_assert!(read_mlp(Cursor::new(&bytes[..])).is_err());
    }

    #[test]
    fn v2_truncation_is_always_a_typed_error(cut in 0usize..10_000) {
        // Any strictly-shorter prefix of a v2 file must be rejected (the
        // header records the exact payload length).
        let base = mlp_bytes();
        let cut = cut % base.len();
        prop_assert!(read_mlp(Cursor::new(&base[..cut])).is_err());
    }

    #[test]
    fn checkpoint_corruption_is_always_a_typed_error(
        pos in 0usize..100_000,
        xor in 1u8..=255,
        cut in 0usize..100_000,
    ) {
        let base = checkpoint_bytes();
        let payload_start = base.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut flipped = base.clone();
        let at = payload_start + pos % (flipped.len() - payload_start);
        flipped[at] ^= xor;
        prop_assert!(Checkpoint::read_from_bytes(&flipped).is_err());
        let cut = cut % base.len();
        prop_assert!(Checkpoint::read_from_bytes(&base[..cut]).is_err());
    }
}
