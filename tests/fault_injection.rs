//! End-to-end fault-injection suite for the robust serving layer.
//!
//! Wraps an expensive scorer in [`FaultInjectingScorer`] and drives it
//! through [`RobustScorer`], proving every degradation path: panics are
//! caught, poisoned/short outputs are rescued by the fallback, latency
//! spikes trip the deadline state machine and recovery follows the
//! configured hysteresis — with [`ServeStats`] counters matching the
//! injected fault counts exactly.

use distilled_ltr::core::fault::{Fault, FaultConfig, FaultInjectingScorer};
use distilled_ltr::core::scoring::DocumentScorer;
use distilled_ltr::core::serve::{DeadlinePolicy, RobustScorer, SanitizePolicy, ServeStats};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// A deterministic linear scorer standing in for the distilled network.
struct Linear {
    weights: Vec<f32>,
}

impl Linear {
    fn new(weights: &[f32]) -> Linear {
        Linear {
            weights: weights.to_vec(),
        }
    }
}

impl DocumentScorer for Linear {
    fn num_features(&self) -> usize {
        self.weights.len()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(self.weights.len()).zip(out.iter_mut()) {
            *o = row.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
        }
    }

    fn name(&self) -> String {
        "linear".into()
    }
}

/// Suppress the default panic hook's stderr spam for injected panics
/// while leaving genuine test failures fully reported.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                default(info);
            }
        }));
    });
}

fn batch(nf: usize, n: usize, seed: usize) -> Vec<f32> {
    (0..n * nf)
        .map(|i| ((i + seed) % 13) as f32 * 0.25 - 1.0)
        .collect()
}

#[test]
fn panics_nans_and_short_writes_are_absorbed_with_exact_counts() {
    silence_injected_panics();
    let nf = 4;
    let schedule = vec![
        Fault::None,
        Fault::Panic,
        Fault::NanOutputs { count: 2 },
        Fault::ShortWrite { missing: 1 },
        Fault::None,
    ];
    let primary =
        FaultInjectingScorer::with_schedule(Linear::new(&[1.0, -0.5, 2.0, 0.25]), schedule);
    let counters = primary.counters();
    let mut robust = RobustScorer::new(primary, Linear::new(&[0.5, 0.5, 0.5, 0.5]), "serve");

    let total_batches = 10; // the 5-entry schedule cycles exactly twice
    for b in 0..total_batches {
        let n = 3 + b % 4;
        let rows = batch(nf, n, b);
        let mut out = vec![0.0f32; n];
        robust
            .try_score_batch(&rows, &mut out)
            .expect("well-formed batches must never error");
        assert!(
            out.iter().all(|s| s.is_finite()),
            "batch {b}: non-finite score escaped: {out:?}"
        );
    }

    // Injected counts, from the injector's own tallies.
    assert_eq!(counters.clean.load(Ordering::Relaxed), 4);
    assert_eq!(counters.panics.load(Ordering::Relaxed), 2);
    assert_eq!(counters.nan_batches.load(Ordering::Relaxed), 2);
    assert_eq!(counters.short_writes.load(Ordering::Relaxed), 2);
    assert_eq!(counters.total_faults(), 6);

    // The serving layer saw exactly those faults — nothing more, nothing
    // less. Every faulted batch was served by the fallback.
    let expected = ServeStats {
        batches: 10,
        primary_batches: 10,
        fallback_batches: 6,
        panics_caught: 2,
        rescued_outputs: 4, // 2 NaN batches + 2 short writes
        ..ServeStats::default()
    };
    assert_eq!(robust.stats(), &expected);
}

#[test]
fn deadline_hysteresis_degrades_and_recovers() {
    let nf = 2;
    let spike = Duration::from_millis(80);
    // A clean linear batch over a handful of docs takes microseconds, so a
    // 20 ms deadline only trips on the injected 80 ms spikes.
    let policy = DeadlinePolicy {
        deadline: Duration::from_millis(20),
        trip_after: 2,
        probe_after: 3,
        recover_after: 2,
    };
    let schedule = vec![
        Fault::None,                // batch 1: on time
        Fault::LatencySpike(spike), // batch 2: miss 1
        Fault::LatencySpike(spike), // batch 3: miss 2 → degrade
        Fault::None,                // batch 7: probe, on time
        Fault::None,                // batch 8: probe, on time → recover
    ];
    let primary = FaultInjectingScorer::with_schedule(Linear::new(&[1.0, 1.0]), schedule);
    let counters = primary.counters();
    let mut robust =
        RobustScorer::new(primary, Linear::new(&[1.0, 0.0]), "serve").with_deadline(policy);

    let mut degraded_trace = Vec::new();
    for b in 0..9 {
        let rows = batch(nf, 4, b);
        let mut out = vec![0.0f32; 4];
        robust.try_score_batch(&rows, &mut out).unwrap();
        assert!(out.iter().all(|s| s.is_finite()), "batch {b}: {out:?}");
        degraded_trace.push(robust.is_degraded());
    }

    // Hysteresis, observed: healthy → tripped after two consecutive
    // misses → three fallback batches → two on-time probes → recovered.
    assert_eq!(
        degraded_trace,
        [false, false, true, true, true, true, true, false, false]
    );

    assert_eq!(counters.latency_spikes.load(Ordering::Relaxed), 2);
    assert_eq!(counters.clean.load(Ordering::Relaxed), 4);

    let expected = ServeStats {
        batches: 9,
        primary_batches: 6,  // batches 1-3, two probes, batch 9
        fallback_batches: 3, // degraded batches 4-6
        deadline_misses: 2,
        fallback_activations: 1,
        recoveries: 1,
        probes: 2,
        ..ServeStats::default()
    };
    assert_eq!(robust.stats(), &expected);
}

#[test]
fn seeded_fault_stream_never_leaks_a_fault() {
    silence_injected_panics();
    let nf = 3;
    let config = FaultConfig {
        p_spike: 0.1,
        spike: Duration::ZERO, // spikes without a deadline only exercise the clean path
        p_nan: 0.1,
        p_panic: 0.1,
        p_short: 0.1,
    };
    let primary = FaultInjectingScorer::seeded(Linear::new(&[2.0, -1.0, 0.5]), 1234, config);
    let counters = primary.counters();
    let mut robust = RobustScorer::new(primary, Linear::new(&[1.0, 1.0, 1.0]), "serve")
        .with_sanitize(SanitizePolicy::clamp());

    let total = 200;
    for b in 0..total {
        let n = 1 + b % 7;
        let mut rows = batch(nf, n, b);
        // Sprinkle some dirty inputs too; the clamp policy must repair
        // them before either scorer sees them.
        if b % 11 == 0 {
            rows[0] = f32::NAN;
        }
        if b % 17 == 0 {
            rows[n * nf - 1] = f32::INFINITY;
        }
        let mut out = vec![0.0f32; n];
        robust.try_score_batch(&rows, &mut out).unwrap();
        assert!(
            out.iter().all(|s| s.is_finite()),
            "batch {b}: non-finite score escaped: {out:?}"
        );
    }

    let stats = robust.stats();
    assert_eq!(stats.batches, total as u64);
    assert_eq!(stats.primary_batches, total as u64);
    // Exact correspondence between injected and observed faults.
    assert_eq!(stats.panics_caught, counters.panics.load(Ordering::Relaxed));
    assert_eq!(
        stats.rescued_outputs,
        counters.nan_batches.load(Ordering::Relaxed)
            + counters.short_writes.load(Ordering::Relaxed)
    );
    assert_eq!(
        stats.fallback_batches,
        stats.panics_caught + stats.rescued_outputs
    );
    // The dirty inputs were repaired, not rejected.
    assert!(stats.sanitized_rows > 0);
    assert_eq!(stats.rejected_batches, 0);
    // With default-ish probabilities over 200 batches, each fault class
    // fires at least once — the suite genuinely exercised every path.
    assert!(counters.panics.load(Ordering::Relaxed) > 0);
    assert!(counters.nan_batches.load(Ordering::Relaxed) > 0);
    assert!(counters.short_writes.load(Ordering::Relaxed) > 0);
    assert!(counters.latency_spikes.load(Ordering::Relaxed) > 0);
}

#[test]
fn malformed_batches_are_rejected_not_panicked() {
    let primary = FaultInjectingScorer::with_schedule(Linear::new(&[1.0, 1.0]), Vec::new());
    let mut robust = RobustScorer::new(primary, Linear::new(&[1.0, 0.0]), "serve");

    // Wrong row width.
    let mut out = vec![0.0f32; 2];
    assert!(robust.try_score_batch(&[1.0, 2.0, 3.0], &mut out).is_err());
    // Zero-length batch.
    let mut empty: [f32; 0] = [];
    assert!(robust.try_score_batch(&[], &mut empty).is_err());
    // NaN under the reject policy.
    let mut robust = robust.with_sanitize(SanitizePolicy::Reject);
    assert!(robust
        .try_score_batch(&[1.0, f32::NAN, 3.0, 4.0], &mut out)
        .is_err());
    assert_eq!(robust.stats().rejected_batches, 3);

    // The DocumentScorer facade maps those errors to all-zero scores
    // instead of propagating a panic.
    let mut out = vec![9.0f32; 2];
    robust.score_batch(&[1.0, 2.0, 3.0], &mut out);
    assert_eq!(out, vec![0.0, 0.0]);
}
