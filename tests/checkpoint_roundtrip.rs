//! Property tests for the checkpoint format: serialize → parse is the
//! identity over the whole state space the training loops can produce —
//! arbitrary architectures, RNG states (any `[u64; 4]`), Adam moments
//! mid-trajectory, partial masks, and the optional frozen threshold.

use distilled_ltr::nn::train::{LayerMasks, SgdTrainer};
use distilled_ltr::nn::{Checkpoint, CheckpointError, Mlp};
use proptest::prelude::*;

/// Architecture + trajectory parameters that generate a realistic
/// checkpoint: the trainer actually runs `steps` batches so the Adam
/// moments and dropout RNG are mid-stream, not pristine.
#[derive(Debug, Clone)]
struct CheckpointCase {
    features: usize,
    hidden: Vec<usize>,
    seed: u64,
    steps: usize,
    dropout: f32,
    epoch: usize,
    lr_scale: f32,
    synth_seed: u64,
    shuffle_rng: [u64; 4],
    threshold: Option<f32>,
    mask_layer: Option<usize>,
}

fn arb_u64() -> std::ops::RangeInclusive<u64> {
    0..=u64::MAX
}

fn rng_state() -> impl Strategy<Value = [u64; 4]> {
    (arb_u64(), arb_u64(), arb_u64(), arb_u64()).prop_map(|(a, b, c, d)| [a, b, c, d])
}

fn case_strategy() -> impl Strategy<Value = CheckpointCase> {
    let arch = (
        1usize..6,
        collection::vec(1usize..7, 0..3),
        arb_u64(),
        0usize..4,
        0usize..3,
    );
    let state = (0usize..1000, 0usize..4, arb_u64(), rng_state());
    let extras = (0u8..2, 0.0f32..2.0, 0u8..2, 0usize..3);
    (arch, state, extras).prop_map(
        |(
            (features, hidden, seed, steps, drop_i),
            (epoch, scale_i, synth_seed, shuffle_rng),
            (has_thr, thr, has_mask, mask_layer),
        )| CheckpointCase {
            features,
            hidden,
            seed,
            steps,
            dropout: [0.0f32, 0.25, 0.5][drop_i],
            epoch,
            lr_scale: [1.0f32, 0.5, 0.125, 0.0625][scale_i],
            synth_seed,
            shuffle_rng,
            threshold: (has_thr == 1).then_some(thr),
            mask_layer: (has_mask == 1).then_some(mask_layer),
        },
    )
}

fn build_checkpoint(case: &CheckpointCase) -> Checkpoint {
    let mut mlp = Mlp::from_hidden(case.features, &case.hidden, case.seed);
    let mut trainer = SgdTrainer::new(&mlp, case.dropout, case.seed ^ 0xFA57);
    // March the optimizer so moments/timestep/dropout-RNG are non-trivial.
    let n = 8;
    let rows: Vec<f32> = (0..n * case.features)
        .map(|i| ((i as f32) * 0.61).sin())
        .collect();
    let targets: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.23).cos()).collect();
    for _ in 0..case.steps {
        trainer.train_batch(&mut mlp, &rows, &targets, 1e-3, None);
    }
    let num_layers = mlp.layers().len();
    let mut masks = LayerMasks::none(num_layers);
    if let Some(li) = case.mask_layer {
        let li = li % num_layers;
        let nw = mlp.layers()[li].num_weights();
        masks.set(li, (0..nw).map(|i| f32::from(i % 2 == 0)).collect());
    }
    Checkpoint {
        epoch: case.epoch,
        lr_scale: case.lr_scale,
        synth_seed: case.synth_seed,
        shuffle_rng: case.shuffle_rng,
        threshold: case.threshold,
        masks,
        trainer: trainer.export_state(),
        mlp,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_checkpoint_roundtrip_is_identity(case in case_strategy()) {
        let ck = build_checkpoint(&case);
        let mut bytes = Vec::new();
        ck.write_to(&mut bytes).unwrap();
        let back = Checkpoint::read_from_bytes(&bytes).unwrap();
        prop_assert_eq!(ck, back);
    }

    #[test]
    fn restored_trainer_resumes_the_exact_optimizer_state(case in case_strategy()) {
        let ck = build_checkpoint(&case);
        let mut bytes = Vec::new();
        ck.write_to(&mut bytes).unwrap();
        let back = Checkpoint::read_from_bytes(&bytes).unwrap();
        let trainer = SgdTrainer::from_state(&back.mlp, &back.trainer).unwrap();
        prop_assert_eq!(trainer.export_state(), ck.trainer);
    }

    #[test]
    fn double_roundtrip_is_stable(case in case_strategy()) {
        // parse(write(parse(write(ck)))) — the format must be a fixpoint,
        // not merely value-preserving on the first pass.
        let ck = build_checkpoint(&case);
        let mut b1 = Vec::new();
        ck.write_to(&mut b1).unwrap();
        let once = Checkpoint::read_from_bytes(&b1).unwrap();
        let mut b2 = Vec::new();
        once.write_to(&mut b2).unwrap();
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn truncation_never_parses(case in case_strategy(), cut_frac in 0.0f64..1.0) {
        let ck = build_checkpoint(&case);
        let mut bytes = Vec::new();
        ck.write_to(&mut bytes).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // strictly short
        let err = Checkpoint::read_from_bytes(&bytes[..cut.min(bytes.len() - 1)]).unwrap_err();
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated { .. } | CheckpointError::BadHeader
        ));
    }
}
