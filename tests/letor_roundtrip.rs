//! Integration: LETOR serialization interoperates with the whole stack —
//! a dataset written to the on-disk format and read back yields identical
//! models and metrics.

use distilled_ltr::data::letor::{read_letor, write_letor};
use distilled_ltr::prelude::*;
use std::io::Cursor;

#[test]
fn letor_roundtrip_preserves_training_and_evaluation() {
    let mut cfg = SyntheticConfig::msn30k_like(20);
    cfg.docs_per_query = 15;
    cfg.num_features = 10;
    cfg.num_informative = 4;
    let original = cfg.generate();

    let mut text = Vec::new();
    write_letor(&original, &mut text).unwrap();
    let restored = read_letor(Cursor::new(&text), 10).unwrap();

    assert_eq!(original.num_queries(), restored.num_queries());
    assert_eq!(original.num_docs(), restored.num_docs());
    assert_eq!(original.labels(), restored.labels());
    // f32 values survive the decimal round-trip (Rust prints shortest
    // representation that parses back exactly).
    assert_eq!(original.features(), restored.features());

    // Same data ⇒ same trained forest ⇒ same metrics.
    let train_a = NeuralEngineering::train_forest(&original, None, 10, 8, 0.1);
    let train_b = NeuralEngineering::train_forest(&restored, None, 10, 8, 0.1);
    let mut scores_a = vec![0.0f32; original.num_docs()];
    let mut scores_b = vec![0.0f32; restored.num_docs()];
    train_a.predict_batch(original.features(), &mut scores_a);
    train_b.predict_batch(restored.features(), &mut scores_b);
    assert_eq!(scores_a, scores_b);
    let ra = evaluate_scores(&scores_a, &original);
    let rb = evaluate_scores(&scores_b, &restored);
    assert_eq!(ra.mean_ndcg10(), rb.mean_ndcg10());
    assert_eq!(ra.mean_ap(), rb.mean_ap());
}

#[test]
fn letor_files_from_other_tools_load() {
    // A hand-written file in the exact MSLR format (sparse features,
    // comments, 5-graded labels).
    let text = "\
0 qid:1 1:3 2:0.5 # doc-a
2 qid:1 2:1.5
4 qid:1 1:9 2:2.25 3:1
1 qid:2 3:7
0 qid:2 1:0.1 2:0.2 3:0.3
";
    let d = read_letor(Cursor::new(text), 3).unwrap();
    assert_eq!(d.num_queries(), 2);
    assert_eq!(d.num_docs(), 5);
    assert_eq!(d.doc(1), &[0.0, 1.5, 0.0]);
    let grades = d.query_grades(0).unwrap();
    assert_eq!(grades, vec![0, 2, 4]);
    // Metrics work straight off the parsed file.
    let oracle: Vec<f32> = d.labels().to_vec();
    let r = evaluate_scores(&oracle, &d);
    assert!((r.mean_ndcg10() - 1.0).abs() < 1e-12);
}
