//! Integration: the time predictors against real kernel measurements on
//! this host — the paper's central "predict before you train" claim.

use distilled_ltr::dense::time_gemm;
use distilled_ltr::dense::Matrix;
use distilled_ltr::predictor::calibrate::time_spmm;
use distilled_ltr::prelude::*;
use distilled_ltr::sparse::CsrMatrix;

#[test]
fn dense_predictor_orders_architectures_like_reality() {
    // Calibrate quickly, then check predicted ordering of three
    // architectures matches measured ordering of full forward costs.
    let p = calibrate_dense(true);
    let archs: [&[usize]; 3] = [&[400, 200, 200, 100], &[200, 100, 100, 50], &[50, 25]];
    let batch = 256;
    let input = 136;
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for arch in archs {
        let mut dims = vec![input];
        dims.extend_from_slice(arch);
        dims.push(1);
        let secs: f64 = dims
            .windows(2)
            .map(|w| time_gemm(w[1], w[0], batch, 1, 3))
            .sum();
        measured.push(secs);
        predicted.push(p.predict_forward_us_per_doc(input, arch, batch));
    }
    // Both orderings: big > mid > small.
    assert!(
        measured[0] > measured[1] && measured[1] > measured[2],
        "{measured:?}"
    );
    assert!(
        predicted[0] > predicted[1] && predicted[1] > predicted[2],
        "{predicted:?}"
    );
}

#[test]
fn dense_predictor_is_within_a_small_factor_of_measurement() {
    let p = calibrate_dense(true);
    let batch = 512;
    let (m, k) = (400usize, 136usize);
    let measured_us = time_gemm(m, k, batch, 1, 5) * 1e6 / batch as f64;
    let predicted_us = p.predict_matmul_secs(m, k, batch) * 1e6 / batch as f64;
    let ratio = predicted_us / measured_us;
    assert!(
        (0.2..5.0).contains(&ratio),
        "predicted {predicted_us:.3} vs measured {measured_us:.3} us/doc (ratio {ratio:.2})"
    );
}

#[test]
fn sparse_predictor_distinguishes_sparsities_like_reality() {
    let p = calibrate_sparse(true);
    let (m, k, n) = (300usize, 136usize, 32usize);
    let make = |keep_every: usize| {
        let mut d = Matrix::random(m, k, 1.0, 5);
        for (i, v) in d.as_mut_slice().iter_mut().enumerate() {
            if i % keep_every != 0 {
                *v = 0.0;
            }
        }
        CsrMatrix::from_dense(&d, 0.0)
    };
    // A wide density contrast (~50% vs ~1%) keeps the ordering visible
    // even in unoptimized debug builds on loaded machines.
    let denser = make(2);
    let sparser = make(100);
    let t_denser = time_spmm(&denser, n, 3);
    let t_sparser = time_spmm(&sparser, n, 3);
    let p_denser = p.predict_secs(CsrShapeStats::of(&denser), n);
    let p_sparser = p.predict_secs(CsrShapeStats::of(&sparser), n);
    assert!(
        t_denser > t_sparser,
        "measured {t_denser:.2e} vs {t_sparser:.2e}"
    );
    assert!(
        p_denser > p_sparser,
        "predicted {p_denser:.2e} vs {p_sparser:.2e}"
    );
}

#[test]
fn architecture_search_candidates_respect_measured_budgets_in_order() {
    // Design under a generous budget and verify the *ranking* of the top
    // candidates' predicted dense time matches the predictor's own layer
    // sums (internal consistency of the search path).
    let p = DensePredictor::paper_i9_9900k();
    let space = SearchSpace {
        widths: vec![50, 100, 200, 400],
        depths: vec![2, 3],
        batch: 1000,
        threads: 1,
    };
    let candidates = design_architectures(&p, 136, 3.0, &space);
    assert!(!candidates.is_empty());
    for c in &candidates {
        let again = p.predict_forward_us_per_doc(136, &c.hidden, 1000);
        assert!((again - c.dense_us).abs() < 1e-9);
        assert!(c.pruned_us <= 3.0);
    }
}
