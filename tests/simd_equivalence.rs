//! Scalar-vs-SIMD equivalence of the three runtime-dispatched kernels.
//!
//! The dispatch layer's numeric contract (see `dlr-simd`'s crate docs):
//!
//! * **SDMM** and **QuickScorer** are *bit-identical* across every path —
//!   the SDMM kernels keep a separate multiply and add per element in
//!   non-zero order, and the QS mask step is an ordered compare plus pure
//!   bitwise arithmetic. `assert_eq!` on raw `f32`/`u64` output, not an
//!   epsilon.
//! * **GEMM** on AVX2 fuses the multiply-add (one rounding per reduction
//!   step instead of two), so its output may differ from scalar by a
//!   bounded number of half-ULP steps — at most `kcb` per element. The
//!   SSE2 GEMM path keeps the separate multiply/add and stays bit-exact.
//!
//! Both arms are exercised: explicit-ISA entry points (no global state,
//! proptest-friendly) and the process-wide `force()` dispatch the
//! production code paths actually take.

use distilled_ltr::dense::{gemm_with, GemmWorkspace, GotoParams, Matrix};
use distilled_ltr::gbdt::tree::leaf_ref;
use distilled_ltr::gbdt::{Ensemble, RegressionTree};
use distilled_ltr::quickscorer::{QuickScorer, VectorizedQuickScorer};
use distilled_ltr::simd::gemm::{micro_kernel_8x8, MR, NR};
use distilled_ltr::simd::Isa;
use distilled_ltr::sparse::xsmm::spmm_xsmm_rows_with_isa;
use distilled_ltr::sparse::{spmm_xsmm_packed, CsrMatrix, PackedB};
use proptest::prelude::*;
use std::sync::Mutex;

/// The non-scalar paths this host can run (empty on non-x86-64).
fn simd_isas() -> Vec<Isa> {
    Isa::ALL
        .into_iter()
        .filter(|&i| i != Isa::Scalar && distilled_ltr::simd::supported(i))
        .collect()
}

fn sparse_matrix(m: usize, k: usize, keep_every: usize, seed: u64) -> CsrMatrix {
    let mut d = Matrix::random(m, k, 1.0, seed);
    for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
        if idx % keep_every != 0 {
            *v = 0.0;
        }
    }
    CsrMatrix::from_dense(&d, 0.0)
}

/// Depth-2 trees (three internal nodes, four leaves) with varied splits.
fn small_ensemble(trees: usize, nf: usize, seed: u64) -> Ensemble {
    let mut e = Ensemble::new(nf, 0.2);
    for t in 0..trees {
        let s = seed + t as u64;
        let f0 = (s % nf as u64) as u32;
        let f1 = ((s * 3 + 1) % nf as u64) as u32;
        e.push(RegressionTree::from_raw(
            vec![f0, f1, f1],
            vec![
                (s % 9) as f32 * 0.1,
                (s % 4) as f32 * 0.2 - 0.3,
                (s % 6) as f32 * 0.15,
            ],
            vec![1, leaf_ref(0), leaf_ref(2)],
            vec![2, leaf_ref(1), leaf_ref(3)],
            vec![0.05 * (s % 7) as f32, -0.1, 0.2, -0.03 * (s % 5) as f32],
        ));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SDMM: every SIMD path is bit-identical to scalar for arbitrary
    /// shapes — odd widths that end in ragged tails, empty rows from
    /// aggressive sparsification, single-row and zero-row matrices.
    #[test]
    fn sdmm_paths_bit_identical(
        m in 0usize..24, k in 1usize..40, n in 1usize..70,
        keep_every in 1usize..9, seed in 0u64..500
    ) {
        let a = sparse_matrix(m, k, keep_every, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let packed = PackedB::pack(b.as_slice(), k, n);
        let mut want = vec![f32::NAN; m * n];
        spmm_xsmm_rows_with_isa(Isa::Scalar, &a, &packed, 0, &mut want);
        for isa in simd_isas() {
            let mut got = vec![f32::NAN; m * n];
            spmm_xsmm_rows_with_isa(isa, &a, &packed, 0, &mut got);
            prop_assert!(want == got, "{} m={} k={} n={}", isa, m, k, n);
        }
    }

    /// QuickScorer: the vectorized mask step is bit-identical to the
    /// scalar traversal on every path, full groups and ragged tails alike.
    #[test]
    fn quickscorer_paths_bit_identical(
        trees in 1usize..24, nf in 1usize..10, docs in 0usize..40,
        seed in 0u64..500
    ) {
        let e = small_ensemble(trees, nf, seed);
        let scalar = QuickScorer::compile(&e).unwrap();
        let v = VectorizedQuickScorer::compile(&e).unwrap();
        let feats = Matrix::random(docs.max(1), nf, 2.0, seed + 7);
        let feats = &feats.as_slice()[..docs * nf];
        let mut want = vec![0.0f32; docs];
        scalar.score_batch(feats, &mut want);
        for isa in [Isa::Scalar].into_iter().chain(simd_isas()) {
            let mut got = vec![0.0f32; docs];
            v.score_batch_with_isa(isa, feats, &mut got);
            prop_assert!(want == got, "{} trees={} docs={}", isa, trees, docs);
        }
    }

    /// GEMM micro-kernel: SSE2 is bit-identical to scalar; AVX2's fused
    /// multiply-add stays within the documented per-element ULP budget
    /// (`kcb` fusions, each saving one rounding).
    #[test]
    fn gemm_tile_paths_match_scalar(
        kcb in 0usize..40, rows in 1usize..9, cols in 1usize..9,
        seed in 0u64..500
    ) {
        let astrip = Matrix::random(kcb.max(1), MR, 1.0, seed);
        let bstrip = Matrix::random(kcb.max(1), NR, 1.0, seed + 3);
        let ldc = NR + 2;
        let run = |isa: Isa| {
            let mut c = vec![1.0f32; MR * ldc];
            micro_kernel_8x8(
                isa, astrip.as_slice(), bstrip.as_slice(), kcb,
                &mut c, ldc, 0, 0, rows, cols,
            );
            c
        };
        let want = run(Isa::Scalar);
        for isa in simd_isas() {
            let got = run(isa);
            if isa == Isa::Avx2 {
                for (w, g) in want.iter().zip(&got) {
                    let tol = kcb as f32 * f32::EPSILON * 16.0 * w.abs().max(1.0);
                    prop_assert!((w - g).abs() <= tol,
                        "avx2 kcb={}: {} vs {}", kcb, w, g);
                }
            } else {
                prop_assert!(want == got, "{} kcb={}", isa, kcb);
            }
        }
    }
}

/// `force()` mutates process-wide dispatch state; the forced-arm tests
/// serialize on this lock so concurrent test threads never observe each
/// other's pin.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the dispatch pinned to each supported ISA in turn,
/// collecting one result per ISA (scalar first).
fn with_each_forced<T>(mut f: impl FnMut() -> T) -> Vec<(Isa, T)> {
    let mut out = Vec::new();
    for isa in Isa::ALL {
        if !distilled_ltr::simd::supported(isa) {
            continue;
        }
        let prev = distilled_ltr::simd::force(isa).expect("forcing a supported ISA");
        out.push((isa, f()));
        distilled_ltr::simd::force(prev).expect("restoring dispatch");
    }
    out
}

/// Forced-dispatch arm: the *public* SDMM entry point (which reads the
/// process-wide choice) produces bit-identical output under every pin.
#[test]
fn forced_dispatch_sdmm_is_bit_identical() {
    let _guard = FORCE_LOCK.lock().expect("force lock");
    let a = sparse_matrix(37, 29, 5, 11);
    let b = Matrix::random(29, 53, 1.0, 12);
    let packed = PackedB::pack(b.as_slice(), 29, 53);
    let mut ws = Default::default();
    let results = with_each_forced(|| {
        let mut c = vec![f32::NAN; 37 * 53];
        spmm_xsmm_packed(&a, &packed, &mut c, &mut ws);
        c
    });
    let (_, want) = &results[0];
    for (isa, got) in &results[1..] {
        assert_eq!(want, got, "forced {isa}");
    }
}

/// Forced-dispatch arm: `VectorizedQuickScorer::score_batch` under every
/// pin matches the scalar `QuickScorer` bit for bit.
#[test]
fn forced_dispatch_quickscorer_is_bit_identical() {
    let _guard = FORCE_LOCK.lock().expect("force lock");
    let e = small_ensemble(17, 6, 23);
    let scalar = QuickScorer::compile(&e).unwrap();
    let v = VectorizedQuickScorer::compile(&e).unwrap();
    let docs = 43usize; // five full 8-lane groups + a ragged tail
    let feats = Matrix::random(docs, 6, 2.0, 24);
    let mut want = vec![0.0f32; docs];
    scalar.score_batch(feats.as_slice(), &mut want);
    for (isa, got) in with_each_forced(|| {
        let mut got = vec![0.0f32; docs];
        v.score_batch(feats.as_slice(), &mut got);
        got
    }) {
        assert_eq!(want, got, "forced {isa}");
    }
}

/// Forced-dispatch arm: the full blocked GEMM through the public driver.
/// Scalar and SSE2 agree exactly; AVX2 stays within the ULP budget scaled
/// by the reduction depth `k`.
#[test]
fn forced_dispatch_gemm_respects_ulp_policy() {
    let _guard = FORCE_LOCK.lock().expect("force lock");
    let (m, k, n) = (45, 67, 38);
    let a = Matrix::random(m, k, 1.0, 31);
    let b = Matrix::random(k, n, 1.0, 32);
    let params = GotoParams::default();
    let results = with_each_forced(|| {
        let mut ws = GemmWorkspace::default();
        let mut c = vec![0.0f32; m * n];
        gemm_with(m, k, n, a.as_slice(), b.as_slice(), &mut c, params, &mut ws);
        c
    });
    let (_, want) = &results[0];
    for (isa, got) in &results[1..] {
        match isa {
            Isa::Avx2 => {
                for (w, g) in want.iter().zip(got) {
                    let tol = k as f32 * f32::EPSILON * 16.0 * w.abs().max(1.0);
                    assert!((w - g).abs() <= tol, "forced avx2: {w} vs {g}");
                }
            }
            _ => assert_eq!(want, got, "forced {isa}"),
        }
    }
}
