//! Crash/resume equivalence for the self-healing training pipeline.
//!
//! The acceptance bar for the robustness layer: a distillation or
//! prune/fine-tune run interrupted at an epoch boundary and resumed from
//! its latest checkpoint must produce **bit-identical** final weights to
//! a run that was never interrupted, and every injected fault must be
//! detected and recovered with statistics that match the injected counts
//! exactly. All faults here are scripted through `FaultInjector` — no
//! real process is killed (the CI smoke job covers that path end to end).

use distilled_ltr::data::{Dataset, SyntheticConfig};
use distilled_ltr::distill::{DistillConfig, DistillHyper, DistillSession, ResilienceConfig};
use distilled_ltr::gbdt::{Ensemble, GrowthParams, LambdaMartParams, LambdaMartTrainer};
use distilled_ltr::nn::{
    CorruptMode, FaultInjector, FaultPlan, GuardConfig, Mlp, StepLr, TrainError,
};
use distilled_ltr::prune::{prune_first_layer_resilient, PruneConfig};
use std::path::PathBuf;

fn small_setup() -> (Ensemble, Dataset) {
    let mut cfg = SyntheticConfig::msn30k_like(30);
    cfg.docs_per_query = 20;
    cfg.num_features = 12;
    cfg.num_informative = 5;
    let data = cfg.generate();
    let params = LambdaMartParams {
        num_trees: 10,
        growth: GrowthParams {
            max_leaves: 8,
            min_data_in_leaf: 5,
            ..Default::default()
        },
        early_stopping_rounds: 0,
        ..Default::default()
    };
    let (teacher, _) = LambdaMartTrainer::new(params).fit(&data, None);
    (teacher, data)
}

/// Distill config with dropout ON: resume must also restore the dropout
/// RNG stream mid-trajectory for the equivalence to hold.
fn distill_cfg(train_epochs: usize, ep: usize, eft: usize) -> DistillConfig {
    let mut hyper = DistillHyper::istella_s().scaled_down(50);
    hyper.train_epochs = train_epochs;
    hyper.prune_epochs = ep;
    hyper.finetune_epochs = eft;
    hyper.gamma_steps = vec![train_epochs * 6 / 10, train_epochs * 9 / 10];
    assert!(hyper.dropout > 0.0, "this suite must exercise dropout");
    DistillConfig {
        hyper,
        batch_size: 64,
        ..Default::default()
    }
}

fn schedule_of(cfg: &DistillConfig) -> StepLr {
    StepLr::new(
        cfg.hyper.learning_rate,
        cfg.hyper.gamma,
        &cfg.hyper.gamma_steps,
    )
}

/// Unique scratch dir, wiped at creation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlr-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn student(session_features: usize) -> Mlp {
    Mlp::from_hidden(session_features, &[16, 8], 0xD15_7111)
}

#[test]
fn distill_resume_is_bit_identical_to_uninterrupted() {
    let (teacher, data) = small_setup();
    let cfg = distill_cfg(6, 1, 1);
    let session = DistillSession::new(&teacher, &data, cfg.clone());
    let schedule = schedule_of(&cfg);
    let res = ResilienceConfig {
        checkpoint_every: 2,
        ..Default::default()
    };

    // Uninterrupted reference run.
    let clean_dir = scratch("distill-clean");
    let mut clean = student(data.num_features());
    let clean_report = session
        .run_epochs_resilient(&mut clean, &schedule, 6, &res, &clean_dir, None)
        .unwrap();
    assert_eq!(clean_report.resumed_from, None);
    assert_eq!(clean_report.epoch_loss.len(), 6);

    // Interrupted run: simulated crash right after epoch 3's checkpoint.
    let dir = scratch("distill-crash");
    let mut interrupted = student(data.num_features());
    let mut inj = FaultInjector::new(FaultPlan::default().with_crash_after(3));
    let err = session
        .run_epochs_resilient(&mut interrupted, &schedule, 6, &res, &dir, Some(&mut inj))
        .unwrap_err();
    assert!(matches!(err, TrainError::InjectedCrash { epoch: 3 }));
    assert_eq!(inj.counters.crashes, 1);

    // Resume from the directory with a *fresh* model argument: recovery
    // must come entirely from the checkpoint.
    let mut resumed = student(data.num_features());
    let report = session
        .run_epochs_resilient(&mut resumed, &schedule, 6, &res, &dir, None)
        .unwrap();
    assert_eq!(report.resumed_from, Some(4));
    assert_eq!(report.epoch_loss.len(), 2);
    assert_eq!(
        resumed, clean,
        "resumed weights must match the uninterrupted run bit-for-bit"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_every_epoch_boundary_resumes_equivalently() {
    let (teacher, data) = small_setup();
    let cfg = distill_cfg(4, 1, 1);
    let session = DistillSession::new(&teacher, &data, cfg.clone());
    let schedule = schedule_of(&cfg);
    let res = ResilienceConfig {
        checkpoint_every: 1,
        ..Default::default()
    };

    let clean_dir = scratch("sweep-clean");
    let mut clean = student(data.num_features());
    session
        .run_epochs_resilient(&mut clean, &schedule, 4, &res, &clean_dir, None)
        .unwrap();

    for crash_epoch in 0..4 {
        let dir = scratch(&format!("sweep-{crash_epoch}"));
        let mut mlp = student(data.num_features());
        let mut inj = FaultInjector::new(FaultPlan::default().with_crash_after(crash_epoch));
        // Every boundary checkpoints before the crash fires — including
        // the final epoch, whose resumed run has nothing left to do.
        session
            .run_epochs_resilient(&mut mlp, &schedule, 4, &res, &dir, Some(&mut inj))
            .unwrap_err();
        let mut resumed = student(data.num_features());
        let report = session
            .run_epochs_resilient(&mut resumed, &schedule, 4, &res, &dir, None)
            .unwrap();
        assert_eq!(report.resumed_from, Some(crash_epoch + 1));
        assert_eq!(
            resumed, clean,
            "crash after epoch {crash_epoch}: resume diverged from clean run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn injected_nan_faults_roll_back_with_exact_counts() {
    let (teacher, data) = small_setup();
    let cfg = distill_cfg(5, 1, 1);
    let session = DistillSession::new(&teacher, &data, cfg.clone());
    let schedule = schedule_of(&cfg);
    // lr_backoff = 1.0 keeps the retried trajectory on the clean path, so
    // recovery is not just "it finished" but bit-exact.
    let res = ResilienceConfig {
        guard: GuardConfig {
            lr_backoff: 1.0,
            max_rollbacks: 3,
            ..Default::default()
        },
        checkpoint_every: 2,
        ..Default::default()
    };

    let clean_dir = scratch("nan-clean");
    let mut clean = student(data.num_features());
    session
        .run_epochs_resilient(&mut clean, &schedule, 5, &res, &clean_dir, None)
        .unwrap();

    // Three NaN batches in separate epochs (well apart so each rollback
    // completes before the next fault).
    let dir = scratch("nan-faulted");
    let mut faulted = student(data.num_features());
    let plan = FaultPlan::nan_at(&[2, 15, 31]);
    let mut inj = FaultInjector::new(plan);
    let report = session
        .run_epochs_resilient(&mut faulted, &schedule, 5, &res, &dir, Some(&mut inj))
        .unwrap();

    assert_eq!(inj.counters.nan_injected, 3, "all scheduled faults fired");
    assert_eq!(
        report.stats.nonfinite_losses, inj.counters.nan_injected,
        "every injected NaN was detected"
    );
    assert_eq!(
        report.stats.rollbacks, inj.counters.nan_injected,
        "every detection triggered exactly one rollback"
    );
    assert_eq!(faulted, clean, "post-recovery trajectory must rejoin");

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let (teacher, data) = small_setup();
    let cfg = distill_cfg(6, 1, 1);
    let session = DistillSession::new(&teacher, &data, cfg.clone());
    let schedule = schedule_of(&cfg);
    let res = ResilienceConfig {
        checkpoint_every: 2,
        ..Default::default()
    };

    let clean_dir = scratch("corrupt-clean");
    let mut clean = student(data.num_features());
    session
        .run_epochs_resilient(&mut clean, &schedule, 6, &res, &clean_dir, None)
        .unwrap();

    for mode in [CorruptMode::FlipByte, CorruptMode::Truncate] {
        // Corrupt the checkpoint written after epoch 3 (file `ckpt-4`),
        // then crash. Recovery must skip it and restart from `ckpt-2`.
        let dir = scratch(&format!("corrupt-{mode:?}"));
        let mut mlp = student(data.num_features());
        let plan = FaultPlan::default()
            .with_corrupt_after(3, mode)
            .with_crash_after(3);
        let mut inj = FaultInjector::new(plan);
        let err = session
            .run_epochs_resilient(&mut mlp, &schedule, 6, &res, &dir, Some(&mut inj))
            .unwrap_err();
        assert!(matches!(err, TrainError::InjectedCrash { epoch: 3 }));
        assert_eq!(inj.counters.corruptions, 1);

        let mut resumed = student(data.num_features());
        let report = session
            .run_epochs_resilient(&mut resumed, &schedule, 6, &res, &dir, None)
            .unwrap();
        assert_eq!(report.checkpoints_skipped, 1, "corrupt file was skipped");
        assert_eq!(report.resumed_from, Some(2), "fell back to epoch 2");
        assert_eq!(resumed, clean, "{mode:?}: recovery diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn prune_finetune_resume_is_bit_identical() {
    let (teacher, data) = small_setup();
    // 4 prune epochs + 3 fine-tune epochs; threshold pruning so the
    // frozen Distiller threshold must survive the checkpoint.
    let cfg = distill_cfg(2, 4, 3);
    let session = DistillSession::new(&teacher, &data, cfg);
    let prune_cfg = PruneConfig::first_layer_threshold(0.6);
    let res = ResilienceConfig {
        checkpoint_every: 1,
        ..Default::default()
    };

    // A lightly-trained student to prune.
    let base = {
        let mut mlp = student(data.num_features());
        let schedule = schedule_of(session.config());
        let dir = scratch("prune-pretrain");
        session
            .run_epochs_resilient(&mut mlp, &schedule, 2, &res, &dir, None)
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        mlp
    };

    let clean_dir = scratch("prune-clean");
    let mut clean = base.clone();
    let clean_out =
        prune_first_layer_resilient(&session, &mut clean, &prune_cfg, &res, &clean_dir, None)
            .unwrap();
    assert_eq!(clean_out.sparsity_curve.len(), 4);
    assert!(clean_out.final_sparsity > 0.0);

    // Crash mid-pruning (after epoch 1) and again mid-fine-tune would be
    // ideal; the sweep covers boundaries 1 (prune phase) and 5 (tune).
    for crash_epoch in [1usize, 5] {
        let dir = scratch(&format!("prune-crash-{crash_epoch}"));
        let mut mlp = base.clone();
        let mut inj = FaultInjector::new(FaultPlan::default().with_crash_after(crash_epoch));
        let err =
            prune_first_layer_resilient(&session, &mut mlp, &prune_cfg, &res, &dir, Some(&mut inj))
                .unwrap_err();
        assert!(matches!(err, TrainError::InjectedCrash { .. }));

        let mut resumed = base.clone();
        let out = prune_first_layer_resilient(&session, &mut resumed, &prune_cfg, &res, &dir, None)
            .unwrap();
        assert_eq!(out.report.resumed_from, Some(crash_epoch + 1));
        assert_eq!(
            resumed, clean,
            "prune resume after epoch {crash_epoch} diverged"
        );
        assert_eq!(out.final_sparsity, clean_out.final_sparsity);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn incompatible_architecture_is_rejected_on_resume() {
    let (teacher, data) = small_setup();
    let cfg = distill_cfg(2, 1, 1);
    let session = DistillSession::new(&teacher, &data, cfg.clone());
    let schedule = schedule_of(&cfg);
    let res = ResilienceConfig::default();

    let dir = scratch("incompat");
    let mut mlp = student(data.num_features());
    session
        .run_epochs_resilient(&mut mlp, &schedule, 2, &res, &dir, None)
        .unwrap();

    // A different architecture must not silently adopt the checkpoint.
    let mut other = Mlp::from_hidden(data.num_features(), &[7], 1);
    let err = session
        .run_epochs_resilient(&mut other, &schedule, 4, &res, &dir, None)
        .unwrap_err();
    assert!(matches!(err, TrainError::Incompatible(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
