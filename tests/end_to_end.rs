//! Cross-crate integration: the full paper pipeline at test scale.

use distilled_ltr::prelude::*;

fn small_split() -> Split {
    let mut cfg = SyntheticConfig::msn30k_like(50);
    cfg.docs_per_query = 25;
    cfg.num_features = 20;
    cfg.num_informative = 8;
    let data = cfg.generate();
    Split::by_query(&data, SplitRatios::PAPER, 11).unwrap()
}

fn small_pipeline() -> NeuralEngineering {
    let mut hyper = DistillHyper::msn30k().scaled_down(5);
    hyper.train_epochs = 80;
    hyper.prune_epochs = 16;
    hyper.finetune_epochs = 10;
    hyper.gamma_steps = vec![50, 68];
    NeuralEngineering::new(PipelineConfig {
        distill: DistillConfig {
            hyper,
            batch_size: 64,
            ..Default::default()
        },
        prune: PruneConfig::first_layer_level(0.9),
        timing_batch: 256,
        timing_reps: 2,
        ..Default::default()
    })
}

#[test]
fn forest_learns_and_quickscorer_agrees_with_traversal() {
    let split = small_split();
    let forest = NeuralEngineering::train_forest(&split.train, Some(&split.valid), 40, 16, 0.1);
    // Learned something: better than a constant scorer on test NDCG@10.
    let mut forest_scores = vec![0.0f32; split.test.num_docs()];
    forest.predict_batch(split.test.features(), &mut forest_scores);
    let forest_ndcg = evaluate_scores(&forest_scores, &split.test).mean_ndcg10();
    let constant_ndcg =
        evaluate_scores(&vec![0.0; split.test.num_docs()], &split.test).mean_ndcg10();
    assert!(
        forest_ndcg > constant_ndcg + 0.02,
        "forest {forest_ndcg:.4} vs constant {constant_ndcg:.4}"
    );
    // All QuickScorer variants agree with classic traversal.
    let mut qs = QuickScorerScorer::compile(&forest, "qs");
    let mut vqs = QuickScorerScorer::compile_vectorized(&forest, "vqs");
    let mut bw = QuickScorerScorer::compile_blockwise(&forest, 7, "bwqs");
    for scorer in [&mut qs as &mut dyn DocumentScorer, &mut vqs, &mut bw] {
        let mut out = vec![0.0f32; split.test.num_docs()];
        scorer.score_batch(split.test.features(), &mut out);
        for (a, b) in out.iter().zip(&forest_scores) {
            assert!((a - b).abs() < 1e-3, "{}: {a} vs {b}", scorer.name());
        }
    }
}

#[test]
fn distilled_student_approaches_teacher_and_pruning_keeps_quality() {
    let split = small_split();
    let ne = small_pipeline();
    let teacher = NeuralEngineering::train_forest(&split.train, Some(&split.valid), 40, 16, 0.1);

    let mut teacher_scores = vec![0.0f32; split.test.num_docs()];
    teacher.predict_batch(split.test.features(), &mut teacher_scores);
    let teacher_ndcg = evaluate_scores(&teacher_scores, &split.test).mean_ndcg10();

    let student = ne.distill_and_prune(&teacher, &split.train, &[32, 16]);
    assert!((student.first_layer_sparsity - 0.9).abs() < 0.05);

    let mut hybrid = HybridScorer::new(
        student.hybrid.clone(),
        student.dense.normalizer.clone(),
        "student",
    );
    let mut student_scores = vec![0.0f32; split.test.num_docs()];
    hybrid.score_batch(split.test.features(), &mut student_scores);
    let student_ndcg = evaluate_scores(&student_scores, &split.test).mean_ndcg10();
    // §3: the student is bounded by the teacher but should land close,
    // even with the first layer 90% pruned.
    assert!(
        student_ndcg > teacher_ndcg - 0.1,
        "student {student_ndcg:.4} too far below teacher {teacher_ndcg:.4}"
    );

    // Hybrid and dense paths produce identical rankings (same weights).
    let mut dense = MlpScorer::new(
        student.dense.mlp.clone(),
        student.dense.normalizer.clone(),
        "dense",
    );
    let mut dense_scores = vec![0.0f32; split.test.num_docs()];
    dense.score_batch(split.test.features(), &mut dense_scores);
    for (a, b) in student_scores.iter().zip(&dense_scores) {
        assert!((a - b).abs() < 1e-3, "hybrid {a} vs dense {b}");
    }
}

#[test]
fn better_teacher_does_not_hurt_the_student() {
    // Table 5's direction, at integration-test scale: distilling from a
    // clearly stronger teacher must not make the student clearly worse.
    let split = small_split();
    let ne = small_pipeline();
    let weak = NeuralEngineering::train_forest(&split.train, None, 5, 4, 0.1);
    let strong = NeuralEngineering::train_forest(&split.train, Some(&split.valid), 60, 32, 0.1);

    let eval_student = |teacher: &Ensemble| {
        let model = ne.distill(teacher, &split.train, &[24, 12]);
        let mut scores = vec![0.0f32; split.test.num_docs()];
        model.score_batch(split.test.features(), &mut scores);
        evaluate_scores(&scores, &split.test).mean_ndcg10()
    };
    let from_weak = eval_student(&weak);
    let from_strong = eval_student(&strong);
    assert!(
        from_strong > from_weak - 0.02,
        "strong-teacher student {from_strong:.4} vs weak-teacher {from_weak:.4}"
    );
}

#[test]
fn evaluation_and_timing_are_consistent_across_scorer_kinds() {
    let split = small_split();
    let ne = small_pipeline();
    let forest = NeuralEngineering::train_forest(&split.train, None, 20, 8, 0.1);
    let mut qs = QuickScorerScorer::compile(&forest, "forest");
    let (point, report) = ne.evaluate(&mut qs, &split.test);
    assert_eq!(point.name, "forest");
    assert!(point.us_per_doc > 0.0 && point.us_per_doc < 1e6);
    assert!((point.ndcg10 - report.mean_ndcg10()).abs() < 1e-12);
    assert_eq!(report.ndcg10.len(), split.test.num_queries());
}

#[test]
fn pareto_and_scenario_logic_compose() {
    let pts = vec![
        ParetoPoint {
            name: "slow good".into(),
            us_per_doc: 8.0,
            ndcg10: 0.53,
        },
        ParetoPoint {
            name: "fast ok".into(),
            us_per_doc: 1.0,
            ndcg10: 0.52,
        },
        ParetoPoint {
            name: "dominated".into(),
            us_per_doc: 9.0,
            ndcg10: 0.52,
        },
    ];
    let frontier = pareto_frontier(&pts);
    assert_eq!(frontier.len(), 2);
    let hq = Scenario::paper_high_quality();
    let admitted = hq.filter(0.53, &pts);
    assert_eq!(
        admitted.len(),
        1,
        "0.52 < 0.99 * 0.53 = 0.5247, so only the 0.53 point passes"
    );
}
