//! Property-based tests over the core data structures and invariants.

use distilled_ltr::data::stats::FeatureStats;
use distilled_ltr::dense::{gemm, naive_gemm, Matrix};
use distilled_ltr::gbdt::tree::leaf_ref;
use distilled_ltr::gbdt::{Ensemble, RegressionTree};
use distilled_ltr::metrics::ndcg::{ndcg_at, NdcgConfig};
use distilled_ltr::metrics::rank_by_scores;
use distilled_ltr::prelude::*;
use distilled_ltr::prune::magnitude::{level_mask, mask_sparsity};
use distilled_ltr::sparse::{spmm_naive, spmm_xsmm, CsrMatrix};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM agrees with the reference triple loop on every shape.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let a = Matrix::random(m, k, 2.0, seed);
        let b = Matrix::random(k, n, 2.0, seed + 1);
        let blocked = gemm(&a, &b);
        let reference = naive_gemm(&a, &b);
        prop_assert!(blocked.max_abs_diff(&reference) < 1e-2);
    }

    /// CSR round-trips any dense matrix exactly.
    #[test]
    fn csr_roundtrip(dense in matrix_strategy(16)) {
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert_eq!(csr.to_dense(), dense);
    }

    /// The SIMD-blocked SDMM kernel agrees with the naive CSR loop.
    #[test]
    fn sdmm_kernels_agree(
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        keep in 1usize..6, seed in 0u64..500
    ) {
        let mut d = Matrix::random(m, k, 1.0, seed);
        for (i, v) in d.as_mut_slice().iter_mut().enumerate() {
            if i % keep != 0 { *v = 0.0; }
        }
        let a = CsrMatrix::from_dense(&d, 0.0);
        let b = Matrix::random(k, n, 1.0, seed + 7);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        spmm_naive(&a, b.as_slice(), n, &mut c1);
        spmm_xsmm(&a, b.as_slice(), n, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// CSR invariants: nnz, sparsity and active counts are consistent.
    #[test]
    fn csr_stats_consistent(dense in matrix_strategy(16)) {
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let zeros = dense.as_slice().iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(csr.nnz() + zeros, dense.rows() * dense.cols());
        prop_assert!(csr.active_rows() <= dense.rows());
        prop_assert!(csr.active_cols() <= dense.cols());
        prop_assert!(csr.nnz() >= csr.active_rows().max(csr.active_cols().min(1)) || csr.nnz() == 0);
    }

    /// NDCG is always in [0, 1] and equals 1 for the oracle ranking.
    #[test]
    fn ndcg_bounds_and_oracle(
        labels in proptest::collection::vec(0.0f32..=4.0, 1..40),
        scores in proptest::collection::vec(-5.0f32..5.0, 40),
    ) {
        let scores = &scores[..labels.len()];
        let labels: Vec<f32> = labels.iter().map(|l| l.round()).collect();
        let n = ndcg_at(scores, &labels, NdcgConfig::at(10)).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n));
        let oracle = ndcg_at(&labels, &labels, NdcgConfig::at(10)).unwrap();
        prop_assert!((oracle - 1.0).abs() < 1e-12);
    }

    /// Rankings are permutations, deterministic, and score-sorted.
    #[test]
    fn ranking_is_a_sorted_permutation(
        scores in proptest::collection::vec(-100.0f32..100.0, 1..64)
    ) {
        let order = rank_by_scores(&scores);
        let mut seen = vec![false; scores.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
    }

    /// Level pruning hits exactly the requested sparsity (floor count)
    /// and never prunes a larger-magnitude weight before a smaller one.
    #[test]
    fn level_mask_invariants(
        weights in proptest::collection::vec(-3.0f32..3.0, 1..128),
        sparsity in 0.0f64..=1.0
    ) {
        let mask = level_mask(&weights, sparsity);
        let expected = ((weights.len() as f64) * sparsity).floor() as usize;
        prop_assert_eq!(
            mask.iter().filter(|&&m| m == 0.0).count(),
            expected
        );
        let kept_min = weights.iter().zip(&mask)
            .filter(|(_, &m)| m == 1.0)
            .map(|(w, _)| w.abs())
            .fold(f32::INFINITY, f32::min);
        let pruned_max = weights.iter().zip(&mask)
            .filter(|(_, &m)| m == 0.0)
            .map(|(w, _)| w.abs())
            .fold(0.0f32, f32::max);
        prop_assert!(pruned_max <= kept_min + 1e-6);
        prop_assert!((mask_sparsity(&mask) - expected as f64 / weights.len() as f64).abs() < 1e-12);
    }

    /// Z-normalization leaves every train column with |mean| ≈ 0 and
    /// std ∈ {0 (constant), ≈1}.
    #[test]
    fn normalizer_standardizes(rows in 2usize..30, seed in 0u64..1000) {
        let nf = 4;
        let mut b = distilled_ltr::data::DatasetBuilder::new(nf);
        let m = Matrix::random(rows, nf, 50.0, seed);
        b.push_query(1, m.as_slice(), &vec![0.0; rows]).unwrap();
        let d = b.finish();
        let norm = Normalizer::fit(&d).unwrap();
        let nd = norm.normalized(&d);
        let stats = FeatureStats::compute(&nd).unwrap();
        for f in 0..nf {
            prop_assert!(stats.mean[f].abs() < 1e-3, "mean {}", stats.mean[f]);
            prop_assert!(stats.std[f] < 1.2, "std {}", stats.std[f]);
        }
    }

    /// QuickScorer equals classic traversal on random stump ensembles.
    #[test]
    fn quickscorer_matches_traversal_on_stumps(
        stumps in proptest::collection::vec(
            (0usize..4, -2.0f32..2.0, -1.0f32..1.0, -1.0f32..1.0), 1..20
        ),
        docs in proptest::collection::vec(-3.0f32..3.0, 4..40),
    ) {
        let mut e = Ensemble::new(4, 0.25);
        for (f, t, l, r) in stumps {
            e.push(RegressionTree::from_raw(
                vec![f as u32], vec![t], vec![leaf_ref(0)], vec![leaf_ref(1)], vec![l, r],
            ));
        }
        let qs = QuickScorer::compile(&e).unwrap();
        for row in docs.chunks_exact(4) {
            prop_assert!((e.predict(row) - qs.score(row)).abs() < 1e-4);
        }
    }

    /// Pareto frontier points are mutually non-dominated and cover every
    /// non-dominated input.
    #[test]
    fn pareto_frontier_is_exactly_the_nondominated_set(
        pts in proptest::collection::vec((0.1f64..10.0, 0.0f64..1.0), 1..30)
    ) {
        let points: Vec<ParetoPoint> = pts.iter().enumerate().map(|(i, &(us, n))| ParetoPoint {
            name: format!("p{i}"), us_per_doc: us, ndcg10: n,
        }).collect();
        let frontier = pareto_frontier(&points);
        // `b` dominates-or-equals `a`.
        let dom_eq = |a: &ParetoPoint, b: &ParetoPoint| {
            b.us_per_doc <= a.us_per_doc && b.ndcg10 >= a.ndcg10
        };
        let strictly = |a: &ParetoPoint, b: &ParetoPoint| {
            dom_eq(a, b) && (b.us_per_doc < a.us_per_doc || b.ndcg10 > a.ndcg10)
        };
        // Frontier members never strictly dominate each other.
        for &i in &frontier {
            for &j in &frontier {
                if i != j {
                    prop_assert!(!strictly(&points[i], &points[j]));
                }
            }
        }
        // Every excluded point is dominated-or-equaled by some other point.
        for (j, q) in points.iter().enumerate() {
            if !frontier.contains(&j) {
                prop_assert!(
                    points.iter().enumerate().any(|(i, p)| i != j && dom_eq(q, p)),
                    "point {j} excluded but not dominated"
                );
            }
        }
    }
}
