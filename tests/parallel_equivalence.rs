//! Bit-exact serial-vs-parallel equivalence of the three scoring kernels.
//!
//! The parallel engine's whole contract is that pooling changes *nothing*
//! about the numbers: chunks write disjoint output ranges and reproduce
//! the serial kernel's accumulation order, so `assert_eq!` on raw `f32`
//! output — not an epsilon — must hold for every shape, including empty
//! and one-row batches. The pool itself must also survive worker panics
//! (surfaced as a typed error, no deadlock) and shut down cleanly.

use distilled_ltr::core::pool::{PoolError, WorkPool};
use distilled_ltr::core::{par_bwqs, par_gemm, par_gemm_into, par_spmm};
use distilled_ltr::dense::{gemm_with, GemmWorkspace, GotoParams, Matrix, PrepackedB};
use distilled_ltr::gbdt::tree::leaf_ref;
use distilled_ltr::gbdt::{Ensemble, RegressionTree};
use distilled_ltr::quickscorer::blockwise::BlockwiseQuickScorer;
use distilled_ltr::sparse::{spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};
use proptest::prelude::*;

fn sparse_matrix(m: usize, k: usize, keep_every: usize, seed: u64) -> CsrMatrix {
    let mut d = Matrix::random(m, k, 1.0, seed);
    for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
        if idx % keep_every != 0 {
            *v = 0.0;
        }
    }
    CsrMatrix::from_dense(&d, 0.0)
}

/// Depth-2 trees (three internal nodes, four leaves) with varied splits.
fn small_ensemble(trees: usize, nf: usize, seed: u64) -> Ensemble {
    let mut e = Ensemble::new(nf, 0.2);
    for t in 0..trees {
        let s = seed + t as u64;
        let f0 = (s % nf as u64) as u32;
        let f1 = ((s * 3 + 1) % nf as u64) as u32;
        e.push(RegressionTree::from_raw(
            vec![f0, f1, f1],
            vec![
                (s % 9) as f32 * 0.1,
                (s % 4) as f32 * 0.2 - 0.3,
                (s % 6) as f32 * 0.15,
            ],
            vec![1, leaf_ref(0), leaf_ref(2)],
            vec![2, leaf_ref(1), leaf_ref(3)],
            vec![0.05 * (s % 7) as f32, -0.1, 0.2, -0.03 * (s % 5) as f32],
        ));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel GEMM is bit-identical to the serial blocked kernel for
    /// every shape and thread count, including m = 0 and m = 1.
    #[test]
    fn par_gemm_bit_identical(
        m in 0usize..40, k in 1usize..32, n in 1usize..40,
        threads in 1usize..5, seed in 0u64..500
    ) {
        let a = Matrix::random(m, k, 1.0, seed);
        let b = Matrix::random(k, n, 1.0, seed + 1);
        let params = GotoParams::default();
        let mut expect = vec![0.0f32; m * n];
        gemm_with(m, k, n, a.as_slice(), b.as_slice(), &mut expect,
                  params, &mut GemmWorkspace::default());
        let pool = WorkPool::new(threads);
        let mut got = vec![f32::NAN; m * n];
        par_gemm_into(&pool, m, k, n, a.as_slice(), b.as_slice(), &mut got, params).unwrap();
        prop_assert_eq!(expect, got);
    }

    /// Parallel SpMM is bit-identical to the serial packed kernel,
    /// including empty (0-row) and one-row CSR operands.
    #[test]
    fn par_spmm_bit_identical(
        m in 0usize..40, k in 1usize..32, n in 1usize..32,
        keep in 1usize..8, threads in 1usize..5, seed in 0u64..500
    ) {
        let a = sparse_matrix(m, k, keep, seed);
        let b = Matrix::random(k, n, 1.0, seed + 2);
        let pb = PackedB::pack(b.as_slice(), k, n);
        let mut expect = vec![0.0f32; m * n];
        spmm_xsmm_packed(&a, &pb, &mut expect, &mut SpmmWorkspace::default());
        let pool = WorkPool::new(threads);
        let mut got = vec![f32::NAN; m * n];
        par_spmm(&pool, &a, &pb, &mut got).unwrap();
        prop_assert_eq!(expect, got);
    }

    /// Parallel BWQS is bit-identical to the serial batch scorer,
    /// including empty and single-document batches.
    #[test]
    fn par_bwqs_bit_identical(
        docs in 0usize..80, trees in 1usize..30, nf in 1usize..12,
        block in 1usize..9, threads in 1usize..5, seed in 0u64..500
    ) {
        let e = small_ensemble(trees, nf, seed);
        let bw = BlockwiseQuickScorer::compile(&e, block).unwrap();
        let features: Vec<f32> = (0..docs * nf)
            .map(|i| ((i as u64 * 29 + seed) % 101) as f32 / 101.0)
            .collect();
        let mut expect = vec![0.0f32; docs];
        bw.score_batch(&features, &mut expect);
        let pool = WorkPool::new(threads);
        let mut got = vec![f32::NAN; docs];
        par_bwqs(&pool, &bw, &features, &mut got).unwrap();
        prop_assert_eq!(expect, got);
    }
}

/// Reusing one pool across all three kernels and many calls keeps every
/// result bit-identical — no state leaks between jobs.
#[test]
fn one_pool_serves_all_kernels_repeatedly() {
    let pool = WorkPool::new(3);
    let (m, k, n) = (23, 17, 31);
    let a = Matrix::random(m, k, 1.0, 5);
    let b = Matrix::random(k, n, 1.0, 6);
    let params = GotoParams::default();
    let pb = PrepackedB::pack(b.as_slice(), k, n, params);
    let mut expect = vec![0.0f32; m * n];
    gemm_with(
        m,
        k,
        n,
        a.as_slice(),
        b.as_slice(),
        &mut expect,
        params,
        &mut GemmWorkspace::default(),
    );
    for _ in 0..5 {
        let mut got = vec![f32::NAN; m * n];
        par_gemm(&pool, m, a.as_slice(), &pb, &mut got).unwrap();
        assert_eq!(expect, got);

        let csr = sparse_matrix(m, k, 3, 7);
        let spb = PackedB::pack(b.as_slice(), k, n);
        let mut sp_expect = vec![0.0f32; m * n];
        spmm_xsmm_packed(&csr, &spb, &mut sp_expect, &mut SpmmWorkspace::default());
        let mut sp_got = vec![f32::NAN; m * n];
        par_spmm(&pool, &csr, &spb, &mut sp_got).unwrap();
        assert_eq!(sp_expect, sp_got);
    }
}

/// A panic inside one chunk surfaces as [`PoolError::WorkerPanicked`]
/// without deadlocking, and the same pool keeps working afterwards.
#[test]
fn worker_panic_is_surfaced_and_pool_recovers() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let pool = WorkPool::new(4);
    let mut out = vec![0.0f32; 64];
    let err = pool.run_chunks(&mut out, 4, |chunk, _start, _slice| {
        if chunk == 7 {
            panic!("injected chunk failure");
        }
    });
    std::panic::set_hook(prev);
    assert_eq!(err, Err(PoolError::WorkerPanicked));

    // The pool is still usable: a clean job after the panic succeeds.
    let mut ok_out = vec![0.0f32; 64];
    pool.run_chunks(&mut ok_out, 4, |_chunk, start, slice| {
        for (i, v) in slice.iter_mut().enumerate() {
            *v = (start + i) as f32;
        }
    })
    .unwrap();
    let expect: Vec<f32> = (0..64).map(|i| i as f32).collect();
    assert_eq!(ok_out, expect);
}

/// Dropping a pool with live workers joins them promptly — no deadlock,
/// no leaked threads blocking process exit.
#[test]
fn pool_shutdown_joins_without_deadlock() {
    for threads in [1, 2, 4, 8] {
        let pool = WorkPool::new(threads);
        let mut out = vec![0.0f32; 16];
        pool.run_chunks(&mut out, 2, |_c, start, slice| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = (start + i) as f32 * 2.0;
            }
        })
        .unwrap();
        drop(pool); // joins all workers; a hang here fails the test via timeout
    }
}
