#![forbid(unsafe_code)]
//! # distilled-ltr
//!
//! A Rust reproduction of *"Distilled Neural Networks for Efficient
//! Learning to Rank"* (Nardini, Rulli, Trani, Venturini — ICDE 2024 /
//! IEEE TKDE): distill LambdaMART ensembles into shallow feed-forward
//! networks, prune the first layer, score it with a sparse-dense matrix
//! kernel, and use analytic matmul-time predictors to design
//! architectures that fit a latency budget *before* training them.
//!
//! This crate is a thin facade over the workspace:
//!
//! | Crate | What it is |
//! |---|---|
//! | [`data`] | LTR datasets, LETOR parser, synthetic generators, Z-normalization |
//! | [`metrics`] | NDCG/MAP + Fisher randomization test |
//! | [`gbdt`] | LambdaMART / MART training (LightGBM stand-in) |
//! | [`quickscorer`] | QuickScorer traversal (plain, wide, block-wise, vectorized) |
//! | [`dense`] | Goto-algorithm blocked GEMM (oneDNN stand-in) |
//! | [`sparse`] | CSR + LIBXSMM-style SDMM kernel |
//! | [`nn`] | MLPs, Adam, dropout, hybrid sparse/dense inference |
//! | [`distill`] | Score-approximation distillation with midpoint augmentation |
//! | [`prune`] | Magnitude pruning, sensitivity analysis, prune/fine-tune schedules |
//! | [`predictor`] | Dense & sparse scoring-time predictors + architecture search |
//! | [`simd`] | Runtime-dispatched SSE2/AVX2 micro-kernels with scalar fallback |
//! | [`core`] | The end-to-end methodology, Pareto frontiers, scenarios |
//! | [`serve`] | Overload-safe serving: micro-batching, admission control, drain |
//! | [`obs`] | Tracing & metrics plane: per-stage spans, predictor drift, exporters |
//!
//! ## Quickstart
//!
//! ```
//! use distilled_ltr::prelude::*;
//!
//! // A small MSN30K-shaped dataset (the real one drops in via LETOR files).
//! let mut cfg = SyntheticConfig::msn30k_like(30);
//! cfg.docs_per_query = 20;
//! let data = cfg.generate();
//! let split = Split::by_query(&data, SplitRatios::PAPER, 42).unwrap();
//!
//! // Teacher forest.
//! let teacher = NeuralEngineering::train_forest(&split.train, None, 10, 16, 0.1);
//!
//! // Distill a small student and check it ranks.
//! let mut hyper = DistillHyper::msn30k().scaled_down(10);
//! hyper.train_epochs = 5;
//! let ne = NeuralEngineering::new(PipelineConfig {
//!     distill: DistillConfig { hyper, batch_size: 128, ..Default::default() },
//!     ..Default::default()
//! });
//! let student = ne.distill(&teacher, &split.train, &[16, 8]);
//! let mut scores = vec![0.0; split.test.num_docs()];
//! student.score_batch(split.test.features(), &mut scores);
//! let ndcg = evaluate_scores(&scores, &split.test).mean_ndcg10();
//! assert!(ndcg > 0.0 && ndcg <= 1.0);
//! ```

pub use dlr_core as core;
pub use dlr_data as data;
pub use dlr_dense as dense;
pub use dlr_distill as distill;
pub use dlr_gbdt as gbdt;
pub use dlr_metrics as metrics;
pub use dlr_nn as nn;
pub use dlr_obs as obs;
pub use dlr_predictor as predictor;
pub use dlr_prune as prune;
pub use dlr_quickscorer as quickscorer;
pub use dlr_serve as serve;
pub use dlr_simd as simd;
pub use dlr_sparse as sparse;

/// One-stop imports (re-exported from [`dlr_core::prelude`]).
pub mod prelude {
    pub use dlr_core::prelude::*;
    pub use dlr_distill::DistillConfig;
}
