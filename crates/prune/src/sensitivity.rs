//! Static and dynamic layer-sensitivity analysis (Figure 10).
//!
//! Both procedures "prune a growing percentage of weights in each layer,
//! one layer at a time, and evaluate the behavior of the partially-pruned
//! model on the validation set" (§5.2). The *static* version evaluates
//! immediately after masking; the *dynamic* version first re-trains the
//! surviving weights for a few epochs — and it is the dynamic analysis
//! that reveals the paper's key observation: aggressively pruning the
//! *first* layer can even improve NDCG@10 (pruning as a regularizer).

use crate::magnitude::level_mask;
use dlr_data::{Dataset, Normalizer};
use dlr_distill::DistillSession;
use dlr_metrics::evaluate_scores;
use dlr_nn::{LayerMasks, Mlp, StepLr};

/// NDCG@10 as a function of sparsity for one layer.
#[derive(Debug, Clone)]
pub struct SensitivityCurve {
    /// Layer index the curve describes.
    pub layer: usize,
    /// `(sparsity, NDCG@10 on the validation set)` per probed level.
    pub points: Vec<(f64, f64)>,
}

/// Validation NDCG@10 of `mlp` (expects raw features; normalizes first).
pub fn eval_ndcg10(mlp: &Mlp, normalizer: &Normalizer, data: &Dataset) -> f64 {
    let mut rows = data.features().to_vec();
    normalizer.apply_matrix(&mut rows);
    let mut scores = vec![0.0f32; data.num_docs()];
    mlp.score_batch(&rows, &mut scores);
    evaluate_scores(&scores, data).mean_ndcg10()
}

/// Static sensitivity: mask one layer at each sparsity level (no
/// re-training) and record validation NDCG@10.
pub fn static_sensitivity(
    mlp: &Mlp,
    normalizer: &Normalizer,
    valid: &Dataset,
    levels: &[f64],
) -> Vec<SensitivityCurve> {
    let mut curves = Vec::new();
    for layer in 0..mlp.layers().len() {
        let mut points = Vec::with_capacity(levels.len());
        for &s in levels {
            let mut probe = mlp.clone();
            let mask = level_mask(probe.layers()[layer].weights.as_slice(), s);
            let mut masks = LayerMasks::none(probe.layers().len());
            masks.set(layer, mask);
            masks.apply(&mut probe);
            points.push((s, eval_ndcg10(&probe, normalizer, valid)));
        }
        curves.push(SensitivityCurve { layer, points });
    }
    curves
}

/// Dynamic sensitivity: like [`static_sensitivity`], but each probe is
/// fine-tuned for `retrain_epochs` under its mask (using the distillation
/// loop) before evaluation.
pub fn dynamic_sensitivity(
    session: &DistillSession<'_>,
    mlp: &Mlp,
    valid: &Dataset,
    levels: &[f64],
    retrain_epochs: usize,
) -> Vec<SensitivityCurve> {
    let hyper = &session.config().hyper;
    let schedule = StepLr::constant(hyper.learning_rate);
    let mut curves = Vec::new();
    for layer in 0..mlp.layers().len() {
        let mut points = Vec::with_capacity(levels.len());
        for &s in levels {
            let mut probe = mlp.clone();
            let mask = level_mask(probe.layers()[layer].weights.as_slice(), s);
            let mut masks = LayerMasks::none(probe.layers().len());
            masks.set(layer, mask);
            masks.apply(&mut probe);
            session.run_epochs(&mut probe, &schedule, 0..retrain_epochs, Some(&masks));
            points.push((s, eval_ndcg10(&probe, session.normalizer(), valid)));
        }
        curves.push(SensitivityCurve { layer, points });
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::{Split, SplitRatios, SyntheticConfig};
    use dlr_distill::{DistillConfig, DistillHyper};
    use dlr_gbdt::{GrowthParams, LambdaMartParams, LambdaMartTrainer};

    fn setup() -> (dlr_gbdt::Ensemble, Split) {
        let mut cfg = SyntheticConfig::msn30k_like(40);
        cfg.docs_per_query = 20;
        cfg.num_features = 12;
        cfg.num_informative = 5;
        let data = cfg.generate();
        let split = Split::by_query(&data, SplitRatios::PAPER, 3).unwrap();
        let params = LambdaMartParams {
            num_trees: 10,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (teacher, _) = LambdaMartTrainer::new(params).fit(&split.train, None);
        (teacher, split)
    }

    #[test]
    fn static_curves_cover_all_layers_and_levels() {
        let (teacher, split) = setup();
        let mut hyper = DistillHyper::msn30k();
        hyper.train_epochs = 8;
        hyper.gamma_steps = vec![5, 7];
        let cfg = DistillConfig {
            hyper,
            batch_size: 64,
            ..Default::default()
        };
        let session = DistillSession::new(&teacher, &split.train, cfg);
        let model = session.train_student(&[12, 6]);
        let levels = [0.0, 0.5, 0.95];
        let curves = static_sensitivity(&model.mlp, session.normalizer(), &split.valid, &levels);
        assert_eq!(curves.len(), 3); // 12→12, 12→6, 6→1
        for c in &curves {
            assert_eq!(c.points.len(), 3);
            // Sparsity 0 leaves the model untouched: all layers' first
            // point is the unpruned validation NDCG.
            assert!((c.points[0].1 - curves[0].points[0].1).abs() < 1e-12);
            for &(_, ndcg) in &c.points {
                assert!((0.0..=1.0).contains(&ndcg));
            }
        }
        // Sparsity levels are recorded alongside their scores.
        assert_eq!(
            curves[0].points.iter().map(|p| p.0).collect::<Vec<_>>(),
            levels
        );
    }

    #[test]
    fn dynamic_recovers_better_than_static_at_high_sparsity() {
        let (teacher, split) = setup();
        let mut hyper = DistillHyper::msn30k();
        hyper.train_epochs = 12;
        hyper.gamma_steps = vec![8, 11];
        let cfg = DistillConfig {
            hyper,
            batch_size: 64,
            ..Default::default()
        };
        let session = DistillSession::new(&teacher, &split.train, cfg);
        let model = session.train_student(&[12, 6]);
        let levels = [0.9];
        let stat = static_sensitivity(&model.mlp, session.normalizer(), &split.valid, &levels);
        let dynamic = dynamic_sensitivity(&session, &model.mlp, &split.valid, &levels, 4);
        // Layer 0 at 90% sparsity: retraining should not do worse than
        // no retraining (allowing small noise).
        assert!(
            dynamic[0].points[0].1 >= stat[0].points[0].1 - 0.03,
            "dynamic {} vs static {}",
            dynamic[0].points[0].1,
            stat[0].points[0].1
        );
    }
}
