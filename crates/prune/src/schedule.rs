//! The Table 9 prune/fine-tune pipeline, specialized to the paper's
//! early-layers efficiency-oriented pruning.
//!
//! §5.2: "We prune only the first layer in an aggressive fashion and we
//! fine-tune its surviving entries and all the weights of the other
//! layers." The phase structure follows Han et al. as quoted in §6.1:
//! `E_p` epochs of interleaved pruning/fine-tuning followed by `E_ft`
//! epochs of fine-tuning only. During the pruning phase the mask is
//! re-derived every epoch — under the fixed Distiller threshold for
//! [`PruneMethod::Threshold`], or under a linearly ramped target for
//! [`PruneMethod::Level`] — and is frozen for the fine-tuning phase.

use crate::magnitude::{han_threshold, level_mask, mask_below, mask_sparsity, PruneMethod};
use dlr_distill::{DistillSession, ResilienceConfig, ResilientReport};
use dlr_nn::train::SgdTrainer;
use dlr_nn::{FaultInjector, LayerMasks, Mlp, StepLr, TrainError};

/// Configuration for [`prune_first_layer`].
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Which layer to sparsify (0 = the paper's choice, the input layer).
    pub layer: usize,
    /// How the mask is derived.
    pub method: PruneMethod,
}

impl PruneConfig {
    /// The paper's default: threshold pruning of the first layer.
    pub fn first_layer_threshold(sensitivity: f32) -> PruneConfig {
        PruneConfig {
            layer: 0,
            method: PruneMethod::Threshold { sensitivity },
        }
    }

    /// Level pruning of the first layer to a target sparsity.
    pub fn first_layer_level(sparsity: f64) -> PruneConfig {
        PruneConfig {
            layer: 0,
            method: PruneMethod::Level { sparsity },
        }
    }
}

/// Result of a prune/fine-tune run.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Achieved sparsity of the pruned layer after the final mask.
    pub final_sparsity: f64,
    /// Mean minibatch loss per epoch (pruning then fine-tuning phases).
    pub epoch_loss: Vec<f64>,
    /// Sparsity after each pruning epoch (length `E_p`).
    pub sparsity_curve: Vec<f64>,
}

/// Run the prune/fine-tune schedule on a distilled student, in place.
///
/// `session` supplies the distillation loop (real + synthetic batches,
/// teacher scores, normalizer); its `hyper` provides `E_p`, `E_ft`, the
/// learning rate and the γ schedule. Adam state persists across both
/// phases, as in a single Distiller run.
///
/// # Panics
/// Panics when `cfg.layer` is out of range for `mlp`.
pub fn prune_first_layer(
    session: &DistillSession<'_>,
    mlp: &mut Mlp,
    cfg: &PruneConfig,
) -> PruneOutcome {
    assert!(
        cfg.layer < mlp.layers().len(),
        "layer {} out of range",
        cfg.layer
    );
    let hyper = &session.config().hyper;
    let schedule = StepLr::new(hyper.learning_rate, hyper.gamma, &hyper.gamma_steps);
    let mut trainer = SgdTrainer::new(mlp, hyper.dropout, session.config().seed ^ 0x9121);
    let mut masks = LayerMasks::none(mlp.layers().len());
    let mut epoch_loss = Vec::new();
    let mut sparsity_curve = Vec::new();

    // The Distiller threshold is computed once, on the pre-pruning weights.
    let fixed_threshold = match cfg.method {
        PruneMethod::Threshold { sensitivity } => Some(han_threshold(
            mlp.layers()[cfg.layer].weights.as_slice(),
            sensitivity,
        )),
        PruneMethod::Level { .. } => None,
    };

    // Phase 1: E_p epochs of prune + fine-tune.
    for e in 0..hyper.prune_epochs {
        let weights = mlp.layers()[cfg.layer].weights.as_slice();
        let mask = match cfg.method {
            PruneMethod::Threshold { .. } => {
                mask_below(weights, fixed_threshold.expect("set above"))
            }
            PruneMethod::Level { sparsity } => {
                // Linear ramp to the target across the pruning phase.
                let ramp = sparsity * (e + 1) as f64 / hyper.prune_epochs as f64;
                level_mask(weights, ramp)
            }
        };
        sparsity_curve.push(mask_sparsity(&mask));
        masks.set(cfg.layer, mask);
        // Zeroes the pruned weights AND their Adam moments — stale
        // momentum must not resurrect a pruned weight on the next step.
        trainer.apply_masks(mlp, &masks);
        let losses = session.run_epochs_with(mlp, &mut trainer, &schedule, e..e + 1, Some(&masks));
        epoch_loss.extend(losses);
    }

    // Phase 2: E_ft fine-tuning epochs under the frozen final mask.
    let start = hyper.prune_epochs;
    let losses = session.run_epochs_with(
        mlp,
        &mut trainer,
        &schedule,
        start..start + hyper.finetune_epochs,
        Some(&masks),
    );
    epoch_loss.extend(losses);
    masks.apply(mlp);

    PruneOutcome {
        final_sparsity: mlp.layers()[cfg.layer].sparsity(),
        epoch_loss,
        sparsity_curve,
    }
}

/// Result of a crash-safe prune/fine-tune run.
#[derive(Debug, Clone)]
pub struct ResilientPruneOutcome {
    /// Achieved sparsity of the pruned layer.
    pub final_sparsity: f64,
    /// Sparsity after each pruning epoch *executed in this invocation*.
    pub sparsity_curve: Vec<f64>,
    /// Losses, guard statistics and resume provenance.
    pub report: ResilientReport,
}

/// Crash-safe variant of [`prune_first_layer`]: the same Table 9
/// prune/fine-tune schedule, driven through
/// [`DistillSession::run_epochs_resilient_with`] so every epoch boundary
/// checkpoints (masks, the frozen Distiller threshold, Adam moments, RNG
/// streams) and divergence rolls back instead of poisoning the weights.
/// Invoke again with the same `ckpt_dir` after an interruption to resume
/// bit-exactly.
///
/// The mask re-derivation runs as the epoch-preparation hook, *inside*
/// the rollback scope: a retried epoch re-derives its mask from the
/// restored weights, so recovery is deterministic.
///
/// # Errors
/// See [`DistillSession::run_epochs_resilient`].
///
/// # Panics
/// Panics when `cfg.layer` is out of range for `mlp`.
pub fn prune_first_layer_resilient(
    session: &DistillSession<'_>,
    mlp: &mut Mlp,
    cfg: &PruneConfig,
    res: &ResilienceConfig,
    ckpt_dir: &std::path::Path,
    injector: Option<&mut FaultInjector>,
) -> Result<ResilientPruneOutcome, TrainError> {
    assert!(
        cfg.layer < mlp.layers().len(),
        "layer {} out of range",
        cfg.layer
    );
    let hyper = session.config().hyper.clone();
    let schedule = StepLr::new(hyper.learning_rate, hyper.gamma, &hyper.gamma_steps);
    let total = hyper.prune_epochs + hyper.finetune_epochs;
    let layer = cfg.layer;
    let method = cfg.method;
    // epoch → sparsity; a retried epoch's prep simply overwrites.
    let mut curve: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    let mut prep = |epoch: usize,
                    mlp: &mut Mlp,
                    trainer: &mut SgdTrainer,
                    masks: &mut LayerMasks,
                    threshold: &mut Option<f32>| {
        if epoch >= hyper.prune_epochs {
            return; // fine-tune phase: the frozen mask rides in `masks`
        }
        let weights = mlp.layers()[layer].weights.as_slice();
        let mask = match method {
            PruneMethod::Threshold { sensitivity } => {
                // Frozen on first use and persisted in every checkpoint,
                // so resumed runs prune against the same bar.
                let t = *threshold.get_or_insert_with(|| han_threshold(weights, sensitivity));
                mask_below(weights, t)
            }
            PruneMethod::Level { sparsity } => {
                let ramp = sparsity * (epoch + 1) as f64 / hyper.prune_epochs as f64;
                level_mask(weights, ramp)
            }
        };
        curve.insert(epoch, mask_sparsity(&mask));
        masks.set(layer, mask);
        trainer.apply_masks(mlp, masks);
    };
    let report = session.run_epochs_resilient_with(
        mlp,
        &schedule,
        total,
        res,
        ckpt_dir,
        injector,
        Some(&mut prep),
    )?;
    let sparsity_curve = curve.into_values().collect();
    Ok(ResilientPruneOutcome {
        final_sparsity: mlp.layers()[cfg.layer].sparsity(),
        sparsity_curve,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::SyntheticConfig;
    use dlr_distill::{DistillConfig, DistillHyper};
    use dlr_gbdt::{Ensemble, GrowthParams, LambdaMartParams, LambdaMartTrainer};

    fn setup() -> (Ensemble, dlr_data::Dataset) {
        let mut cfg = SyntheticConfig::msn30k_like(30);
        cfg.docs_per_query = 20;
        cfg.num_features = 12;
        cfg.num_informative = 5;
        let data = cfg.generate();
        let params = LambdaMartParams {
            num_trees: 10,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (teacher, _) = LambdaMartTrainer::new(params).fit(&data, None);
        (teacher, data)
    }

    fn session_cfg(ep: usize, eft: usize) -> DistillConfig {
        let mut hyper = DistillHyper::msn30k();
        hyper.train_epochs = 10;
        hyper.prune_epochs = ep;
        hyper.finetune_epochs = eft;
        hyper.gamma_steps = vec![6, 9];
        DistillConfig {
            hyper,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn level_pruning_reaches_the_target() {
        let (teacher, data) = setup();
        let session = DistillSession::new(&teacher, &data, session_cfg(5, 2));
        let mut model = session.train_student(&[16, 8]);
        let out = prune_first_layer(
            &session,
            &mut model.mlp,
            &PruneConfig::first_layer_level(0.9),
        );
        assert!(
            (out.final_sparsity - 0.9).abs() < 0.02,
            "sparsity {}",
            out.final_sparsity
        );
        // Ramp is monotone.
        for w in out.sparsity_curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        assert_eq!(out.epoch_loss.len(), 7);
        // Other layers stay dense.
        assert!(model.mlp.layers()[1].sparsity() < 0.05);
    }

    #[test]
    fn threshold_pruning_increases_sparsity_over_epochs() {
        let (teacher, data) = setup();
        let session = DistillSession::new(&teacher, &data, session_cfg(6, 1));
        let mut model = session.train_student(&[16, 8]);
        let out = prune_first_layer(
            &session,
            &mut model.mlp,
            &PruneConfig::first_layer_threshold(0.8),
        );
        // The fixed threshold keeps pulling re-trained weights under it:
        // final sparsity must be at least the first epoch's.
        assert!(out.final_sparsity >= out.sparsity_curve[0] - 1e-9);
        assert!(out.final_sparsity > 0.3, "sparsity {}", out.final_sparsity);
        // Surviving weights all exceed the threshold at mask time.
        let nnz = model.mlp.layers()[0]
            .weights
            .as_slice()
            .iter()
            .filter(|&&w| w != 0.0)
            .count();
        assert!(nnz > 0, "some weights must survive");
    }

    #[test]
    fn pruned_model_still_scores_sanely() {
        let (teacher, data) = setup();
        let session = DistillSession::new(&teacher, &data, session_cfg(4, 2));
        let mut model = session.train_student(&[16, 8]);
        prune_first_layer(
            &session,
            &mut model.mlp,
            &PruneConfig::first_layer_level(0.8),
        );
        let mut out = vec![0.0f32; data.num_docs()];
        model.score_batch(data.features(), &mut out);
        assert!(out.iter().all(|s| s.is_finite()));
        // Scores still vary across documents.
        let min = out.iter().cloned().fold(f32::MAX, f32::min);
        let max = out.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max > min);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let (teacher, data) = setup();
        let session = DistillSession::new(&teacher, &data, session_cfg(1, 1));
        let mut mlp = Mlp::from_hidden(12, &[4], 1);
        let cfg = PruneConfig {
            layer: 5,
            method: PruneMethod::Level { sparsity: 0.5 },
        };
        prune_first_layer(&session, &mut mlp, &cfg);
    }
}
