#![forbid(unsafe_code)]
//! Magnitude pruning and sensitivity analysis (§2.3, §5.2).
//!
//! The paper's efficiency-oriented pruning is *element-wise magnitude
//! pruning* in the style of Han et al., as implemented by Intel's
//! Distiller framework:
//!
//! * **level pruning** zeroes a fixed fraction of the lowest-magnitude
//!   weights (with a gradual ramp towards the target sparsity);
//! * **threshold pruning** zeroes weights with `|w| ≤ t`, `t = s·σ` where
//!   `σ` is the layer's weight standard deviation and `s` a sensitivity
//!   parameter; the Distiller variant the paper adopts keeps `t` *fixed*
//!   across pruning epochs, "relying on the fact that as the tensor is
//!   pruned, more elements are pulled towards the center of the
//!   distribution and then pruned".
//!
//! [`sensitivity`] reproduces the paper's static and dynamic per-layer
//! sensitivity analysis (Figure 10), and [`schedule`] the full Table 9
//! prune/fine-tune pipeline specialized to the paper's *early-layers
//! efficiency-oriented pruning*: only the first layer is sparsified, and
//! everything (its survivors plus all other layers) is fine-tuned.

pub mod magnitude;
pub mod schedule;
pub mod sensitivity;

pub use magnitude::{level_mask, threshold_mask, PruneMethod};
pub use schedule::{
    prune_first_layer, prune_first_layer_resilient, PruneConfig, PruneOutcome,
    ResilientPruneOutcome,
};
pub use sensitivity::{dynamic_sensitivity, static_sensitivity, SensitivityCurve};
