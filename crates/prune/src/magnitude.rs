//! Magnitude-based mask construction.

/// How aggressiveness is controlled (§5.2: "the way this aggressiveness is
/// controlled distinguishes between level pruning and threshold-based
/// pruning").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneMethod {
    /// Zero exactly `sparsity` of the weights (lowest magnitudes first).
    Level {
        /// Target fraction of zeros in `[0, 1]`.
        sparsity: f64,
    },
    /// Zero weights with `|w| ≤ sensitivity · σ(initial weights)`.
    /// The threshold is computed once and *held fixed* across pruning
    /// epochs (the Distiller behaviour the paper adopts).
    Threshold {
        /// Multiplier `s` on the layer's weight standard deviation.
        sensitivity: f32,
    },
}

/// Keep-mask (1.0 keep / 0.0 prune) zeroing the lowest-magnitude
/// `sparsity` fraction of `weights`.
///
/// Exact count semantics: `floor(len · sparsity)` weights are pruned, ties
/// broken by index, so the achieved sparsity is deterministic.
///
/// # Panics
/// Panics when `sparsity` is outside `[0, 1]`.
pub fn level_mask(weights: &[f32], sparsity: f64) -> Vec<f32> {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity must be in [0, 1]"
    );
    let n = weights.len();
    let prune_count = ((n as f64) * sparsity).floor() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        weights[a]
            .abs()
            .partial_cmp(&weights[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = vec![1.0f32; n];
    for &i in &idx[..prune_count] {
        mask[i] = 0.0;
    }
    mask
}

/// Keep-mask zeroing weights with `|w| ≤ threshold`.
pub fn mask_below(weights: &[f32], threshold: f32) -> Vec<f32> {
    weights
        .iter()
        .map(|&w| f32::from(w.abs() > threshold))
        .collect()
}

/// The Han-style threshold `t = sensitivity · σ` over the given weights.
pub fn han_threshold(weights: &[f32], sensitivity: f32) -> f32 {
    sensitivity * std_dev(weights)
}

/// Keep-mask for [`PruneMethod::Threshold`]: `t = sensitivity · σ`.
pub fn threshold_mask(weights: &[f32], sensitivity: f32) -> Vec<f32> {
    mask_below(weights, han_threshold(weights, sensitivity))
}

/// Population standard deviation.
fn std_dev(weights: &[f32]) -> f32 {
    if weights.is_empty() {
        return 0.0;
    }
    let n = weights.len() as f64;
    let mean = weights.iter().map(|&w| w as f64).sum::<f64>() / n;
    let var = weights
        .iter()
        .map(|&w| (w as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() as f32
}

/// Achieved sparsity of a keep-mask.
pub fn mask_sparsity(mask: &[f32]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&m| m == 0.0).count() as f64 / mask.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_mask_prunes_smallest() {
        let w = [0.5, -0.1, 0.9, 0.05, -0.7];
        let m = level_mask(&w, 0.4); // prune 2 of 5
        assert_eq!(m, vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(mask_sparsity(&m), 0.4);
    }

    #[test]
    fn level_mask_extremes() {
        let w = [1.0, 2.0, 3.0];
        assert_eq!(level_mask(&w, 0.0), vec![1.0; 3]);
        assert_eq!(level_mask(&w, 1.0), vec![0.0; 3]);
    }

    #[test]
    fn level_mask_exact_count_with_ties() {
        let w = [0.2f32; 10];
        let m = level_mask(&w, 0.5);
        assert_eq!(mask_sparsity(&m), 0.5);
        // Deterministic: lowest indices pruned first on ties.
        assert_eq!(&m[..5], &[0.0; 5]);
        assert_eq!(&m[5..], &[1.0; 5]);
    }

    #[test]
    fn threshold_mask_uses_sigma() {
        // Symmetric weights: σ of {−1, −1, 1, 1} is 1.
        let w = [-1.0, -1.0, 1.0, 1.0, 0.5, -0.5];
        let t = han_threshold(&w[..4], 1.0);
        assert!((t - 1.0).abs() < 1e-6);
        let m = mask_below(&w, 0.75);
        assert_eq!(m, vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn gaussian_sensitivity_one_prunes_about_68_percent() {
        // §2.3: with N(0, σ²) weights, s = 1 prunes ≈ 68% of them.
        use rand::rngs::StdRng;
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let w: Vec<f32> = (0..20_000)
            .map(|_| {
                // Box–Muller.
                let u1: f32 = rng.random_range(f32::EPSILON..1.0);
                let u2: f32 = rng.random_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
            })
            .collect();
        let m = threshold_mask(&w, 1.0);
        let s = mask_sparsity(&m);
        assert!((s - 0.683).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn empty_weights_ok() {
        assert!(level_mask(&[], 0.5).is_empty());
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(mask_sparsity(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn bad_sparsity_panics() {
        level_mask(&[1.0], 1.5);
    }
}
