//! Direct training on ground-truth labels — the baselines distillation is
//! measured against.
//!
//! §3 states that score approximation "is more proficient than directly
//! learning the ground-truth relevance". To make that claim testable, this
//! module trains the *same* student architectures directly on labels with
//! the two classic objectives the paper's related work covers:
//!
//! * **pointwise** — MSE regression onto the relevance grade;
//! * **pairwise (RankNet, §2.1)** — per-query pairs `(i, j)` with
//!   `label_i > label_j` minimize `log(1 + exp(−σ(s_i − s_j)))`, i.e. the
//!   cross-entropy of the sigmoid pair probability.

use dlr_data::{Dataset, Normalizer};
use dlr_nn::train::SgdTrainer;
use dlr_nn::{Mlp, StepLr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Objective for direct label training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DirectObjective {
    /// MSE onto the raw grade (0..=4).
    PointwiseMse,
    /// RankNet pairwise cross-entropy with sigmoid steepness σ.
    RankNet {
        /// Sigmoid steepness (1.0 in the original paper).
        sigma: f32,
    },
}

/// Configuration for [`train_direct`].
#[derive(Debug, Clone)]
pub struct DirectConfig {
    /// Objective to optimize.
    pub objective: DirectObjective,
    /// Epochs over the training queries.
    pub epochs: usize,
    /// Minibatch size (documents) for the pointwise objective; RankNet
    /// batches are whole queries.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepLr,
    /// Dropout after the first layer.
    pub dropout: f32,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            objective: DirectObjective::PointwiseMse,
            epochs: 30,
            batch_size: 256,
            schedule: StepLr::constant(1e-3),
            dropout: 0.0,
            seed: 5,
        }
    }
}

/// A directly-trained model: network + the normalizer it expects.
#[derive(Debug, Clone)]
pub struct DirectModel {
    /// The trained network (normalized inputs).
    pub mlp: Mlp,
    /// Z-normalizer fitted on `train`.
    pub normalizer: Normalizer,
    /// Mean per-epoch loss.
    pub epoch_loss: Vec<f64>,
}

impl DirectModel {
    /// Score raw (unnormalized) rows.
    pub fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        let mut norm = rows.to_vec();
        self.normalizer.apply_matrix(&mut norm);
        self.mlp.score_batch(&norm, out);
    }
}

/// Train `hidden` directly on `train`'s labels.
///
/// # Panics
/// Panics on an empty dataset.
pub fn train_direct(train: &Dataset, hidden: &[usize], cfg: &DirectConfig) -> DirectModel {
    assert!(train.num_docs() > 0, "cannot train on an empty dataset");
    let normalizer = Normalizer::fit(train).expect("non-empty training set");
    let mut rows = train.features().to_vec();
    normalizer.apply_matrix(&mut rows);
    let mut mlp = Mlp::from_hidden(train.num_features(), hidden, cfg.seed ^ 0xd1ec7);
    let mut trainer = SgdTrainer::new(&mlp, cfg.dropout, cfg.seed ^ 0x7ea1);
    let f = train.num_features();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut epoch_loss = Vec::with_capacity(cfg.epochs);

    match cfg.objective {
        DirectObjective::PointwiseMse => {
            let labels = train.labels();
            let mut order: Vec<usize> = (0..train.num_docs()).collect();
            let mut batch_rows = Vec::new();
            let mut batch_targets = Vec::new();
            for epoch in 0..cfg.epochs {
                order.shuffle(&mut rng);
                let lr = cfg.schedule.lr(epoch);
                let mut sum = 0.0;
                let mut batches = 0usize;
                for chunk in order.chunks(cfg.batch_size.max(1)) {
                    batch_rows.clear();
                    batch_targets.clear();
                    for &d in chunk {
                        batch_rows.extend_from_slice(&rows[d * f..(d + 1) * f]);
                        batch_targets.push(labels[d]);
                    }
                    sum += trainer.train_batch(&mut mlp, &batch_rows, &batch_targets, lr, None);
                    batches += 1;
                }
                epoch_loss.push(sum / batches.max(1) as f64);
            }
        }
        DirectObjective::RankNet { sigma } => {
            let mut query_order: Vec<usize> = (0..train.num_queries()).collect();
            for epoch in 0..cfg.epochs {
                query_order.shuffle(&mut rng);
                let lr = cfg.schedule.lr(epoch);
                let mut sum = 0.0;
                let mut batches = 0usize;
                for &q in &query_order {
                    let r = train.query_range(q);
                    let labels = &train.labels()[r.clone()];
                    let n = labels.len();
                    if n < 2 {
                        continue;
                    }
                    let q_rows = &rows[r.start * f..r.end * f];
                    let loss =
                        trainer.train_batch_custom(&mut mlp, q_rows, n, lr, None, |preds, grad| {
                            ranknet_loss_grad(preds, labels, sigma, grad)
                        });
                    sum += loss;
                    batches += 1;
                }
                epoch_loss.push(sum / batches.max(1) as f64);
            }
        }
    }
    DirectModel {
        mlp,
        normalizer,
        epoch_loss,
    }
}

/// RankNet loss and per-document gradient over one query.
///
/// For each ordered pair with `label_i > label_j`:
/// `L += log(1 + exp(−σ(s_i − s_j)))`, `∂L/∂s_i = −σ·ρ`,
/// `∂L/∂s_j = +σ·ρ` with `ρ = 1/(1 + exp(σ(s_i − s_j)))`.
/// Loss and gradients are normalized by the pair count.
fn ranknet_loss_grad(preds: &[f32], labels: &[f32], sigma: f32, grad: &mut [f32]) -> f64 {
    grad.fill(0.0);
    let n = preds.len();
    let mut pairs = 0usize;
    let mut loss = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if labels[i] <= labels[j] {
                continue;
            }
            pairs += 1;
            let diff = sigma * (preds[i] - preds[j]);
            // log(1 + e^{-diff}), numerically stable.
            loss += if diff > 0.0 {
                ((-diff).exp() + 1.0).ln() as f64
            } else {
                (-diff) as f64 + ((diff).exp() + 1.0).ln() as f64
            };
            let rho = 1.0 / (1.0 + diff.exp());
            grad[i] -= sigma * rho;
            grad[j] += sigma * rho;
        }
    }
    if pairs == 0 {
        return 0.0;
    }
    let scale = 1.0 / pairs as f32;
    for g in grad.iter_mut() {
        *g *= scale;
    }
    loss / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::SyntheticConfig;
    use dlr_metrics::evaluate_scores;

    fn data() -> Dataset {
        let mut cfg = SyntheticConfig::msn30k_like(40);
        cfg.docs_per_query = 20;
        cfg.num_features = 14;
        cfg.num_informative = 6;
        cfg.generate()
    }

    fn ndcg_of(model: &DirectModel, d: &Dataset) -> f64 {
        let mut scores = vec![0.0f32; d.num_docs()];
        model.score_batch(d.features(), &mut scores);
        evaluate_scores(&scores, d).mean_ndcg10()
    }

    fn random_baseline(d: &Dataset) -> f64 {
        let scores: Vec<f32> = (0..d.num_docs())
            .map(|i| ((i * 2654435761) % 997) as f32)
            .collect();
        evaluate_scores(&scores, d).mean_ndcg10()
    }

    #[test]
    fn pointwise_learns_to_rank_above_random() {
        let d = data();
        let cfg = DirectConfig {
            epochs: 40,
            ..Default::default()
        };
        let model = train_direct(&d, &[24, 12], &cfg);
        let trained = ndcg_of(&model, &d);
        let random = random_baseline(&d);
        assert!(
            trained > random + 0.05,
            "trained {trained:.4} vs random {random:.4}"
        );
        // Loss decreased.
        assert!(model.epoch_loss.last().unwrap() < &model.epoch_loss[0]);
    }

    #[test]
    fn ranknet_learns_to_rank_above_random() {
        let d = data();
        let cfg = DirectConfig {
            objective: DirectObjective::RankNet { sigma: 1.0 },
            epochs: 25,
            ..Default::default()
        };
        let model = train_direct(&d, &[24, 12], &cfg);
        let trained = ndcg_of(&model, &d);
        let random = random_baseline(&d);
        assert!(
            trained > random + 0.05,
            "trained {trained:.4} vs random {random:.4}"
        );
    }

    #[test]
    fn ranknet_gradient_pushes_better_doc_up() {
        // Two docs, rel 1 > rel 0, equal scores: gradient must favour doc 0.
        let mut grad = vec![0.0f32; 2];
        let loss = ranknet_loss_grad(&[0.0, 0.0], &[1.0, 0.0], 1.0, &mut grad);
        assert!((loss - (2.0f64).ln()).abs() < 1e-6);
        assert!(grad[0] < 0.0, "loss decreases as s_0 rises");
        assert!(grad[1] > 0.0);
        assert!((grad[0] + grad[1]).abs() < 1e-7);
    }

    #[test]
    fn ranknet_gradient_vanishes_when_pair_is_well_ordered() {
        let mut grad = vec![0.0f32; 2];
        ranknet_loss_grad(&[10.0, -10.0], &[1.0, 0.0], 1.0, &mut grad);
        assert!(grad[0].abs() < 1e-6);
        assert!(grad[1].abs() < 1e-6);
    }

    #[test]
    fn degenerate_query_contributes_nothing() {
        let mut grad = vec![0.5f32; 3];
        let loss = ranknet_loss_grad(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 1.0, &mut grad);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data();
        let cfg = DirectConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = train_direct(&d, &[8], &cfg);
        let b = train_direct(&d, &[8], &cfg);
        assert_eq!(a.mlp, b.mlp);
    }
}
