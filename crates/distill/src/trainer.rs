//! The distillation training driver.
//!
//! Orchestrates §3's recipe: Z-normalize with training statistics, score
//! the real training documents with the teacher once, and at every
//! minibatch mix ~half real documents with ~half synthetic midpoint
//! samples (scored by the teacher on the fly), minimizing MSE between
//! student and teacher scores with Adam under a step-LR schedule.
//!
//! [`DistillSession`] holds everything reusable across students (teacher
//! scores, normalizer, sampler), so designing many candidate architectures
//! (§5.2) pays the preprocessing once. Epoch-level entry points accept
//! sparsity masks, which is how `dlr-prune` runs the Table 9 prune/
//! fine-tune phases with the identical loop.

use crate::augment::MidpointSampler;
use crate::hyper::DistillHyper;
use crate::teacher::Teacher;
use dlr_data::{Dataset, FeatureStats, Normalizer};
use dlr_gbdt::Ensemble;
use dlr_nn::{LayerMasks, Mlp, StepLr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Distillation configuration (see [`DistillHyper`] for the Table 9
/// schedules; this adds the knobs the paper leaves implicit).
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Epoch/LR schedule from Table 9.
    pub hyper: DistillHyper,
    /// Minibatch size (real + synthetic combined).
    pub batch_size: usize,
    /// Fraction of each batch drawn from the midpoint sampler
    /// ("half of the training data", §3 → 0.5).
    pub synthetic_fraction: f32,
    /// Master seed for shuffling, sampling and initialization.
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            hyper: DistillHyper::msn30k(),
            batch_size: 256,
            synthetic_fraction: 0.5,
            seed: 17,
        }
    }
}

/// A trained student plus the normalizer it expects at inference time.
#[derive(Debug, Clone)]
pub struct DistilledModel {
    /// The student network (operates on normalized features).
    pub mlp: Mlp,
    /// Z-normalizer fitted on the training split.
    pub normalizer: Normalizer,
    /// Mean minibatch MSE per epoch.
    pub epoch_loss: Vec<f64>,
}

impl DistilledModel {
    /// Score a row-major `n × f` block of RAW features into `out`.
    pub fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        let mut norm = rows.to_vec();
        self.normalizer.apply_matrix(&mut norm);
        self.mlp.score_batch(&norm, out);
    }
}

/// Reusable distillation state for one (teacher, training set) pair.
pub struct DistillSession<'a> {
    pub(crate) teacher: &'a dyn Teacher,
    pub(crate) cfg: DistillConfig,
    pub(crate) normalizer: Normalizer,
    pub(crate) sampler: MidpointSampler,
    /// Normalized real training rows, row-major.
    pub(crate) real_rows: Vec<f32>,
    /// Teacher scores of the real rows.
    pub(crate) real_targets: Vec<f32>,
    pub(crate) num_features: usize,
}

impl<'a> DistillSession<'a> {
    /// Prepare a session: fit the normalizer, score the training set with
    /// the teacher, and build the midpoint sampler from the teacher's
    /// split points.
    ///
    /// `train` carries RAW (unnormalized) features, as the teacher was
    /// trained on them.
    ///
    /// # Panics
    /// Panics when the teacher's feature count differs from the dataset's
    /// or the dataset is empty.
    pub fn new(teacher: &'a Ensemble, train: &Dataset, cfg: DistillConfig) -> DistillSession<'a> {
        assert_eq!(
            Teacher::num_features(teacher),
            train.num_features(),
            "teacher and dataset feature counts differ"
        );
        let stats = FeatureStats::compute(train).expect("non-empty training set");
        let normalizer = Normalizer::from_stats(&stats);
        let sampler = MidpointSampler::build(teacher, &stats);
        let mut real_targets = vec![0.0f32; train.num_docs()];
        Teacher::score_batch(teacher, train.features(), &mut real_targets);
        let mut real_rows = train.features().to_vec();
        normalizer.apply_matrix(&mut real_rows);
        DistillSession {
            teacher,
            cfg,
            normalizer,
            sampler,
            real_rows,
            real_targets,
            num_features: train.num_features(),
        }
    }

    /// The fitted normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The midpoint sampler.
    pub fn sampler(&self) -> &MidpointSampler {
        &self.sampler
    }

    /// The session configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.cfg
    }

    /// Train a fresh student of the given hidden sizes for the full
    /// `E_t` epochs of the schedule.
    pub fn train_student(&self, hidden: &[usize]) -> DistilledModel {
        let mut mlp = Mlp::from_hidden(self.num_features, hidden, self.cfg.seed ^ 0xabcd);
        let h = &self.cfg.hyper;
        let schedule = StepLr::new(h.learning_rate, h.gamma, &h.gamma_steps);
        let losses = self.run_epochs(&mut mlp, &schedule, 0..h.train_epochs, None);
        DistilledModel {
            mlp,
            normalizer: self.normalizer.clone(),
            epoch_loss: losses,
        }
    }

    /// Run epochs `range` of the distillation loop on an existing student,
    /// optionally under sparsity masks (the prune/fine-tune phases).
    /// Returns the mean minibatch loss per epoch.
    pub fn run_epochs(
        &self,
        mlp: &mut Mlp,
        schedule: &StepLr,
        range: std::ops::Range<usize>,
        masks: Option<&LayerMasks>,
    ) -> Vec<f64> {
        let mut trainer =
            dlr_nn::train::SgdTrainer::new(mlp, self.cfg.hyper.dropout, self.cfg.seed ^ 0x7e57);
        self.run_epochs_with(mlp, &mut trainer, schedule, range, masks)
    }

    /// Like [`Self::run_epochs`] but with a caller-owned trainer so Adam
    /// state persists across separate phase calls (train → prune → tune).
    pub fn run_epochs_with(
        &self,
        mlp: &mut Mlp,
        trainer: &mut dlr_nn::train::SgdTrainer,
        schedule: &StepLr,
        range: std::ops::Range<usize>,
        masks: Option<&LayerMasks>,
    ) -> Vec<f64> {
        let f = self.num_features;
        let n_real = self.real_targets.len();
        let bs = self.cfg.batch_size.max(2);
        let synth_per_batch = ((bs as f32 * self.cfg.synthetic_fraction) as usize).min(bs - 1);
        let real_per_batch = bs - synth_per_batch;

        let mut order: Vec<usize> = (0..n_real).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut batch_rows: Vec<f32> = Vec::with_capacity(bs * f);
        let mut batch_targets: Vec<f32> = Vec::with_capacity(bs);
        let mut synth_raw: Vec<f32> = Vec::new();
        let mut synth_scores: Vec<f32> = Vec::new();
        let mut losses = Vec::new();
        let mut synth_seed = self.cfg.seed ^ 0x51_17;

        for epoch in range {
            order.shuffle(&mut rng);
            let lr = schedule.lr(epoch);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(real_per_batch) {
                batch_rows.clear();
                batch_targets.clear();
                for &d in chunk {
                    batch_rows.extend_from_slice(&self.real_rows[d * f..(d + 1) * f]);
                    batch_targets.push(self.real_targets[d]);
                }
                // Synthetic half: sample raw, teacher-score raw, normalize.
                if synth_per_batch > 0 {
                    synth_raw.clear();
                    synth_seed = synth_seed.wrapping_add(0x9e3779b97f4a7c15);
                    self.sampler
                        .sample_batch(synth_per_batch, synth_seed, &mut synth_raw);
                    synth_scores.resize(synth_per_batch, 0.0);
                    self.teacher.score_batch(&synth_raw, &mut synth_scores);
                    self.normalizer.apply_matrix(&mut synth_raw);
                    batch_rows.extend_from_slice(&synth_raw);
                    batch_targets.extend_from_slice(&synth_scores);
                }
                epoch_loss += trainer.train_batch(mlp, &batch_rows, &batch_targets, lr, masks);
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::SyntheticConfig;
    use dlr_gbdt::{GrowthParams, LambdaMartParams, LambdaMartTrainer};
    use dlr_metrics::evaluate_scores;

    fn small_setup() -> (Ensemble, Dataset) {
        let mut cfg = SyntheticConfig::msn30k_like(40);
        cfg.docs_per_query = 25;
        cfg.num_features = 16;
        cfg.num_informative = 6;
        let data = cfg.generate();
        let params = LambdaMartParams {
            num_trees: 20,
            growth: GrowthParams {
                max_leaves: 16,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (teacher, _) = LambdaMartTrainer::new(params).fit(&data, None);
        (teacher, data)
    }

    fn distill_cfg(epochs: usize) -> DistillConfig {
        let mut hyper = DistillHyper::msn30k();
        hyper.train_epochs = epochs;
        hyper.gamma_steps = vec![epochs * 6 / 10, epochs * 9 / 10];
        DistillConfig {
            hyper,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn student_approximates_teacher_scores() {
        let (teacher, data) = small_setup();
        let session = DistillSession::new(&teacher, &data, distill_cfg(120));
        let model = session.train_student(&[32, 16]);
        // Training loss decreases substantially.
        let first = model.epoch_loss[0];
        let last = *model.epoch_loss.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
        // Student scores correlate with teacher scores on training data.
        let mut student = vec![0.0f32; data.num_docs()];
        model.score_batch(data.features(), &mut student);
        let mut teacher_scores = vec![0.0f32; data.num_docs()];
        teacher.predict_batch(data.features(), &mut teacher_scores);
        let corr = pearson(&student, &teacher_scores);
        assert!(corr > 0.9, "student/teacher correlation {corr}");
    }

    #[test]
    fn student_ranking_tracks_teacher_ranking() {
        let (teacher, data) = small_setup();
        let session = DistillSession::new(&teacher, &data, distill_cfg(120));
        let model = session.train_student(&[32, 16]);
        let mut student = vec![0.0f32; data.num_docs()];
        model.score_batch(data.features(), &mut student);
        let mut teacher_scores = vec![0.0f32; data.num_docs()];
        teacher.predict_batch(data.features(), &mut teacher_scores);
        let s_ndcg = evaluate_scores(&student, &data).mean_ndcg10();
        let t_ndcg = evaluate_scores(&teacher_scores, &data).mean_ndcg10();
        // §3: the student is bounded by the teacher; it should land close.
        assert!(
            s_ndcg > t_ndcg - 0.08,
            "student NDCG@10 {s_ndcg:.4} too far below teacher {t_ndcg:.4}"
        );
    }

    #[test]
    fn session_is_deterministic() {
        let (teacher, data) = small_setup();
        let s1 = DistillSession::new(&teacher, &data, distill_cfg(3));
        let s2 = DistillSession::new(&teacher, &data, distill_cfg(3));
        let m1 = s1.train_student(&[8]);
        let m2 = s2.train_student(&[8]);
        assert_eq!(m1.mlp, m2.mlp);
        assert_eq!(m1.epoch_loss, m2.epoch_loss);
    }

    #[test]
    fn masked_run_keeps_zeros() {
        let (teacher, data) = small_setup();
        let session = DistillSession::new(&teacher, &data, distill_cfg(2));
        let mut mlp = Mlp::from_hidden(16, &[8, 4], 3);
        let nw = mlp.layers()[0].num_weights();
        let mask: Vec<f32> = (0..nw).map(|i| f32::from(i % 3 == 0)).collect();
        let mut masks = LayerMasks::none(3);
        masks.set(0, mask.clone());
        masks.apply(&mut mlp);
        let schedule = StepLr::constant(1e-3);
        session.run_epochs(&mut mlp, &schedule, 0..2, Some(&masks));
        for (i, &w) in mlp.layers()[0].weights.as_slice().iter().enumerate() {
            if mask[i] == 0.0 {
                assert_eq!(w, 0.0);
            }
        }
    }

    #[test]
    fn synthetic_fraction_zero_still_trains() {
        let (teacher, data) = small_setup();
        let mut cfg = distill_cfg(3);
        cfg.synthetic_fraction = 0.0;
        let session = DistillSession::new(&teacher, &data, cfg);
        let model = session.train_student(&[8]);
        assert_eq!(model.epoch_loss.len(), 3);
        assert!(model.epoch_loss.iter().all(|l| l.is_finite()));
    }

    fn pearson(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().map(|&x| x as f64).sum::<f64>() / n;
        let mb = b.iter().map(|&x| x as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let (dx, dy) = (x as f64 - ma, y as f64 - mb);
            cov += dx * dy;
            va += dx * dx;
            vb += dy * dy;
        }
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }
}
