//! The teacher abstraction.

use dlr_gbdt::Ensemble;

/// A black-box document scorer used as a distillation teacher (§3: "the
/// core idea ... is to treat the tree-based model as a black box producing
/// accurate scores").
pub trait Teacher {
    /// Features per document.
    fn num_features(&self) -> usize;

    /// Score a row-major `n × num_features` block into `out`
    /// (raw, unnormalized features — the teacher was trained on them).
    fn score_batch(&self, rows: &[f32], out: &mut [f32]);
}

impl Teacher for Ensemble {
    fn num_features(&self) -> usize {
        Ensemble::num_features(self)
    }

    fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        self.predict_batch(rows, out);
    }
}

/// Closure adapter for tests: `(num_features, f)` scores each row with `f`.
impl<F: Fn(&[f32]) -> f32> Teacher for (usize, F) {
    fn num_features(&self) -> usize {
        self.0
    }

    fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(self.0).zip(out.iter_mut()) {
            *o = (self.1)(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_teacher_scores_rows() {
        let t = (2usize, |row: &[f32]| row[0] + 10.0 * row[1]);
        let mut out = [0.0f32; 2];
        t.score_batch(&[1.0, 2.0, 3.0, 4.0], &mut out);
        assert_eq!(out, [21.0, 43.0]);
        assert_eq!(Teacher::num_features(&t), 2);
    }
}
