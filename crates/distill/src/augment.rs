//! Midpoint data augmentation (§3).
//!
//! For each feature, Cohen et al. build a list containing every split
//! point the ensemble uses on that feature plus the feature's training-set
//! minimum and maximum; the sorted list is replaced by the midpoints of
//! adjacent pairs. Synthetic documents are then drawn coordinate-wise:
//! each feature independently picks a random midpoint from its own list.
//! Every synthetic document therefore lands strictly inside a cell of the
//! axis-aligned decomposition the teacher induces, giving the student
//! "better coverage of the whole feature space".

use dlr_data::FeatureStats;
use dlr_gbdt::Ensemble;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Per-feature midpoint lists and a coordinate-wise sampler.
#[derive(Debug, Clone)]
pub struct MidpointSampler {
    /// `midpoints[f]` is non-empty for every feature.
    midpoints: Vec<Vec<f32>>,
}

impl MidpointSampler {
    /// Build the lists from a teacher ensemble and training-set feature
    /// statistics.
    ///
    /// # Panics
    /// Panics when the ensemble and statistics disagree on the feature
    /// count.
    pub fn build(teacher: &Ensemble, stats: &FeatureStats) -> MidpointSampler {
        assert_eq!(
            teacher.num_features(),
            stats.num_features(),
            "teacher and stats must describe the same feature space"
        );
        let midpoints = (0..stats.num_features())
            .map(|f| {
                let mut pts = teacher.split_points(f);
                pts.push(stats.min[f]);
                pts.push(stats.max[f]);
                pts.sort_by(|a, b| a.partial_cmp(b).expect("finite split points"));
                pts.dedup();
                let mids: Vec<f32> = pts.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
                if mids.is_empty() {
                    // Constant feature with no splits: its only value.
                    vec![pts[0]]
                } else {
                    mids
                }
            })
            .collect();
        MidpointSampler { midpoints }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.midpoints.len()
    }

    /// Midpoint list of feature `f`.
    pub fn feature_midpoints(&self, f: usize) -> &[f32] {
        &self.midpoints[f]
    }

    /// Sample one synthetic document into `row`.
    ///
    /// # Panics
    /// Panics when `row.len() != num_features()`.
    pub fn sample_into(&self, row: &mut [f32], rng: &mut StdRng) {
        assert_eq!(row.len(), self.midpoints.len(), "row width mismatch");
        for (v, list) in row.iter_mut().zip(&self.midpoints) {
            *v = list[rng.random_range(0..list.len())];
        }
    }

    /// Append `count` synthetic documents (row-major) to `out`.
    pub fn sample_batch(&self, count: usize, seed: u64, out: &mut Vec<f32>) {
        let f = self.num_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let start = out.len();
        out.resize(start + count * f, 0.0);
        for row in out[start..].chunks_exact_mut(f) {
            self.sample_into(row, &mut rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::DatasetBuilder;
    use dlr_gbdt::tree::leaf_ref;
    use dlr_gbdt::RegressionTree;

    fn stump(feature: u32, threshold: f32) -> RegressionTree {
        RegressionTree::from_raw(
            vec![feature],
            vec![threshold],
            vec![leaf_ref(0)],
            vec![leaf_ref(1)],
            vec![0.0, 1.0],
        )
    }

    fn setup() -> (Ensemble, FeatureStats) {
        let mut e = Ensemble::new(2, 0.0);
        e.push(stump(0, 2.0));
        e.push(stump(0, 4.0));
        e.push(stump(1, 0.5));
        let mut b = DatasetBuilder::new(2);
        // Feature 0 in [0, 10]; feature 1 in [0, 1].
        b.push_query(1, &[0.0, 0.0, 10.0, 1.0], &[0.0, 1.0])
            .unwrap();
        let stats = FeatureStats::compute(&b.finish()).unwrap();
        (e, stats)
    }

    #[test]
    fn midpoints_follow_the_paper_construction() {
        let (e, stats) = setup();
        let s = MidpointSampler::build(&e, &stats);
        // Feature 0 list: splits {2, 4} + min 0 + max 10 → midpoints
        // {1, 3, 7}.
        assert_eq!(s.feature_midpoints(0), &[1.0, 3.0, 7.0]);
        // Feature 1: splits {0.5} + {0, 1} → midpoints {0.25, 0.75}.
        assert_eq!(s.feature_midpoints(1), &[0.25, 0.75]);
    }

    #[test]
    fn samples_come_from_the_lists() {
        let (e, stats) = setup();
        let s = MidpointSampler::build(&e, &stats);
        let mut out = Vec::new();
        s.sample_batch(100, 42, &mut out);
        assert_eq!(out.len(), 200);
        for row in out.chunks_exact(2) {
            assert!(s.feature_midpoints(0).contains(&row[0]));
            assert!(s.feature_midpoints(1).contains(&row[1]));
        }
        // All midpoints eventually drawn.
        let drawn0: std::collections::BTreeSet<_> =
            out.chunks_exact(2).map(|r| r[0].to_bits()).collect();
        assert_eq!(drawn0.len(), 3);
    }

    #[test]
    fn sampling_is_seeded() {
        let (e, stats) = setup();
        let s = MidpointSampler::build(&e, &stats);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.sample_batch(10, 1, &mut a);
        s.sample_batch(10, 1, &mut b);
        assert_eq!(a, b);
        let mut c = Vec::new();
        s.sample_batch(10, 2, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn featureless_splits_fall_back_to_min_max_midpoint() {
        // Feature 1 unused by the ensemble → list = midpoint of min/max.
        let mut e = Ensemble::new(2, 0.0);
        e.push(stump(0, 5.0));
        let mut b = DatasetBuilder::new(2);
        b.push_query(1, &[0.0, -2.0, 10.0, 6.0], &[0.0, 1.0])
            .unwrap();
        let stats = FeatureStats::compute(&b.finish()).unwrap();
        let s = MidpointSampler::build(&e, &stats);
        assert_eq!(s.feature_midpoints(1), &[2.0]);
    }

    #[test]
    fn constant_feature_yields_its_value() {
        let e = Ensemble::new(1, 0.0); // no trees, no splits
        let mut b = DatasetBuilder::new(1);
        b.push_query(1, &[3.0, 3.0], &[0.0, 0.0]).unwrap();
        let stats = FeatureStats::compute(&b.finish()).unwrap();
        let s = MidpointSampler::build(&e, &stats);
        assert_eq!(s.feature_midpoints(0), &[3.0]);
    }
}
