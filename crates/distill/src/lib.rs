#![forbid(unsafe_code)]
//! Knowledge distillation of tree ensembles into neural rankers.
//!
//! Implements "training by scores approximation" (§3, after Cohen et al.,
//! SIGIR'18): treat a trained ensemble of regression trees as a black box
//! *teacher*, and train a feed-forward *student* to reproduce its scores
//! with an MSE loss. The recipe's two extra ingredients are faithfully
//! reproduced:
//!
//! * **Z-normalization** of all inputs with training-set statistics;
//! * **midpoint data augmentation**: for every feature, collect the
//!   ensemble's split points plus the training min/max, sort, and replace
//!   adjacent pairs with their midpoints; half of every training batch is
//!   sampled coordinate-wise from these lists so the student sees the
//!   whole cell decomposition the teacher induces over feature space.
//!
//! [`hyper`] records the Table 9 hyperparameters verbatim. The
//! [`DistillSession`] type exposes epoch-level control so `dlr-prune` can
//! run the same loop with sparsity masks during prune/fine-tune phases.

pub mod augment;
pub mod direct;
pub mod hyper;
pub mod resilient;
pub mod teacher;
pub mod trainer;

pub use augment::MidpointSampler;
pub use direct::{train_direct, DirectConfig, DirectModel, DirectObjective};
pub use hyper::DistillHyper;
pub use resilient::{EpochPrep, ResilienceConfig, ResilientReport};
pub use teacher::Teacher;
pub use trainer::{DistillConfig, DistillSession, DistilledModel};
