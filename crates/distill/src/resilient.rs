//! Crash-safe, self-healing distillation epochs.
//!
//! [`DistillSession::run_epochs_resilient`] wraps the §3 training loop in
//! the robustness machinery of `dlr-nn`: every epoch boundary can emit an
//! atomic, checksummed [`Checkpoint`]; every batch runs under the
//! divergence guard; a non-finite loss or gradient rolls the epoch back
//! to its last-good state and retries at a backed-off learning rate; and
//! on startup the driver recovers from the newest *intact* checkpoint in
//! the directory, skipping corrupt files.
//!
//! Determinism contract: a run interrupted at any epoch boundary and
//! resumed from its checkpoint produces **bit-identical** final weights
//! to an uninterrupted run, because the checkpoint captures every piece
//! of mutable loop state — weights, Adam moments, dropout and shuffle RNG
//! streams, the synthetic-sampler seed, masks, the frozen prune
//! threshold, and the guard's LR scale. To make the shuffle stream
//! self-contained, the resilient loop reshuffles a *fresh identity
//! permutation* each epoch (the RNG state alone then determines the
//! order), which is why its trajectories differ from the legacy
//! cumulative-shuffle [`DistillSession::run_epochs_with`].

use crate::trainer::DistillSession;
use dlr_nn::train::SgdTrainer;
use dlr_nn::{
    Checkpoint, CheckpointManager, FaultInjector, GuardConfig, GuardStats, LayerMasks, Mlp, StepLr,
    TrainError,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::Path;

/// Robustness knobs for the resilient epoch drivers.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Divergence-guard settings (clipping, backoff, rollback budget).
    pub guard: GuardConfig,
    /// Checkpoint every this many epochs (the final epoch always
    /// checkpoints). `0` disables periodic checkpoints entirely.
    pub checkpoint_every: usize,
    /// Checkpoints retained on disk (see [`CheckpointManager`]).
    pub keep_last: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            guard: GuardConfig::default(),
            checkpoint_every: 1,
            keep_last: 3,
        }
    }
}

/// What a resilient run did, beyond the trained weights.
#[derive(Debug, Clone, Default)]
pub struct ResilientReport {
    /// Mean minibatch loss per epoch *executed in this invocation*.
    pub epoch_loss: Vec<f64>,
    /// Epoch the run resumed from, when a checkpoint was recovered.
    pub resumed_from: Option<usize>,
    /// Guard statistics (anomalies, clips, rollbacks) for this invocation.
    pub stats: GuardStats,
    /// Corrupt/unreadable checkpoints skipped during recovery.
    pub checkpoints_skipped: usize,
}

/// Per-epoch preparation hook: runs once per epoch *inside* the retry
/// loop, before any batch, so a rollback replays it on the restored
/// state. The prune schedule uses it to re-derive masks (and freeze the
/// Distiller threshold into the checkpointed state on first use).
pub type EpochPrep<'p> =
    dyn FnMut(usize, &mut Mlp, &mut SgdTrainer, &mut LayerMasks, &mut Option<f32>) + 'p;

/// Mutable loop state owned by the resilient driver; exactly the fields a
/// [`Checkpoint`] persists (plus scratch).
struct LoopState {
    epoch: usize,
    lr_scale: f32,
    synth_seed: u64,
    rng: StdRng,
    threshold: Option<f32>,
    masks: LayerMasks,
    trainer: SgdTrainer,
}

impl<'a> DistillSession<'a> {
    /// Resilient counterpart of [`DistillSession::run_epochs`]: run the
    /// distillation loop from the newest intact checkpoint in `ckpt_dir`
    /// (or from scratch) up to `total_epochs`, checkpointing at epoch
    /// boundaries and self-healing from divergence.
    ///
    /// `injector`, when armed, drives the deterministic fault plan (NaN
    /// batches, simulated crashes, checkpoint corruption) for testing.
    ///
    /// # Errors
    /// [`TrainError::Diverged`] when the rollback budget is exhausted,
    /// [`TrainError::InjectedCrash`] when the plan crashes the run,
    /// [`TrainError::Checkpoint`] on checkpoint I/O failures, and
    /// [`TrainError::Incompatible`] when a recovered checkpoint does not
    /// match `mlp`'s architecture.
    pub fn run_epochs_resilient(
        &self,
        mlp: &mut Mlp,
        schedule: &StepLr,
        total_epochs: usize,
        res: &ResilienceConfig,
        ckpt_dir: &Path,
        injector: Option<&mut FaultInjector>,
    ) -> Result<ResilientReport, TrainError> {
        self.run_epochs_resilient_with(mlp, schedule, total_epochs, res, ckpt_dir, injector, None)
    }

    /// Like [`Self::run_epochs_resilient`] with an epoch-preparation hook
    /// (how the prune/fine-tune schedule rides the same loop).
    ///
    /// # Errors
    /// See [`Self::run_epochs_resilient`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_epochs_resilient_with(
        &self,
        mlp: &mut Mlp,
        schedule: &StepLr,
        total_epochs: usize,
        res: &ResilienceConfig,
        ckpt_dir: &Path,
        mut injector: Option<&mut FaultInjector>,
        mut prep: Option<&mut EpochPrep<'_>>,
    ) -> Result<ResilientReport, TrainError> {
        let manager = CheckpointManager::new(ckpt_dir, res.keep_last)?;
        let mut report = ResilientReport::default();

        // Recover or initialize the full loop state.
        let (recovered, skipped) = manager.load_latest_valid()?;
        report.checkpoints_skipped = skipped.len();
        let mut st = match recovered {
            Some(ck) => {
                if !same_architecture(mlp, &ck.mlp) {
                    return Err(TrainError::Incompatible(format!(
                        "checkpoint in {} holds a different architecture",
                        ckpt_dir.display()
                    )));
                }
                report.resumed_from = Some(ck.epoch);
                *mlp = ck.mlp;
                let trainer =
                    SgdTrainer::from_state(mlp, &ck.trainer).map_err(TrainError::Incompatible)?;
                LoopState {
                    epoch: ck.epoch,
                    lr_scale: ck.lr_scale,
                    synth_seed: ck.synth_seed,
                    rng: StdRng::from_state(ck.shuffle_rng),
                    threshold: ck.threshold,
                    masks: ck.masks,
                    trainer,
                }
            }
            None => LoopState {
                epoch: 0,
                lr_scale: 1.0,
                synth_seed: self.cfg.seed ^ 0x51_17,
                rng: StdRng::seed_from_u64(self.cfg.seed),
                threshold: None,
                masks: LayerMasks::none(mlp.layers().len()),
                trainer: SgdTrainer::new(mlp, self.cfg.hyper.dropout, self.cfg.seed ^ 0x7e57),
            },
        };

        let f = self.num_features;
        let n_real = self.real_targets.len();
        let bs = self.cfg.batch_size.max(2);
        let synth_per_batch = ((bs as f32 * self.cfg.synthetic_fraction) as usize).min(bs - 1);
        let real_per_batch = bs - synth_per_batch;

        let mut order: Vec<usize> = (0..n_real).collect();
        let mut batch_rows: Vec<f32> = Vec::with_capacity(bs * f);
        let mut batch_targets: Vec<f32> = Vec::with_capacity(bs);
        let mut synth_raw: Vec<f32> = Vec::new();
        let mut synth_scores: Vec<f32> = Vec::new();
        let mut global_step = 0u64;

        while st.epoch < total_epochs {
            let epoch = st.epoch;
            // Last-good snapshot: everything a retry must restore.
            let snap_mlp = mlp.clone();
            let snap_trainer = st.trainer.export_state();
            let snap_rng = st.rng.state();
            let snap_synth = st.synth_seed;
            let snap_masks = st.masks.clone();
            let snap_threshold = st.threshold;
            let base_scale = st.lr_scale;
            let mut attempts = 0u32;

            let epoch_mean = loop {
                if let Some(prep) = prep.as_mut() {
                    prep(
                        epoch,
                        mlp,
                        &mut st.trainer,
                        &mut st.masks,
                        &mut st.threshold,
                    );
                }
                let use_masks = (!st.masks.is_empty()).then_some(&st.masks);
                // Fresh identity permutation: the RNG state alone
                // determines this epoch's order (checkpointable).
                for (i, o) in order.iter_mut().enumerate() {
                    *o = i;
                }
                order.shuffle(&mut st.rng);
                let lr = schedule.lr(epoch) * st.lr_scale;
                let mut epoch_loss = 0.0f64;
                let mut batches = 0usize;
                let mut anomaly = None;
                for chunk in order.chunks(real_per_batch) {
                    batch_rows.clear();
                    batch_targets.clear();
                    for &d in chunk {
                        batch_rows.extend_from_slice(&self.real_rows[d * f..(d + 1) * f]);
                        batch_targets.push(self.real_targets[d]);
                    }
                    if synth_per_batch > 0 {
                        synth_raw.clear();
                        st.synth_seed = st.synth_seed.wrapping_add(0x9e3779b97f4a7c15);
                        self.sampler
                            .sample_batch(synth_per_batch, st.synth_seed, &mut synth_raw);
                        synth_scores.resize(synth_per_batch, 0.0);
                        self.teacher.score_batch(&synth_raw, &mut synth_scores);
                        self.normalizer.apply_matrix(&mut synth_raw);
                        batch_rows.extend_from_slice(&synth_raw);
                        batch_targets.extend_from_slice(&synth_scores);
                    }
                    let poison = injector
                        .as_mut()
                        .is_some_and(|inj| inj.poison_step(global_step));
                    global_step += 1;
                    match st.trainer.train_batch_guarded(
                        mlp,
                        &batch_rows,
                        &batch_targets,
                        lr,
                        use_masks,
                        &res.guard,
                        poison,
                    ) {
                        Ok(b) => {
                            epoch_loss += b.loss;
                            if b.clipped {
                                report.stats.clipped_batches += 1;
                            }
                            batches += 1;
                        }
                        Err(a) => {
                            anomaly = Some(a);
                            break;
                        }
                    }
                }
                match anomaly {
                    None => break epoch_loss / batches.max(1) as f64,
                    Some(a) => {
                        report.stats.record(&a);
                        if attempts == res.guard.max_rollbacks {
                            return Err(TrainError::Diverged {
                                epoch,
                                rollbacks: attempts,
                                anomaly: a,
                            });
                        }
                        attempts += 1;
                        report.stats.rollbacks += 1;
                        *mlp = snap_mlp.clone();
                        st.trainer
                            .import_state(&snap_trainer)
                            .expect("snapshot matches trainer");
                        st.rng = StdRng::from_state(snap_rng);
                        st.synth_seed = snap_synth;
                        st.masks = snap_masks.clone();
                        st.threshold = snap_threshold;
                        st.lr_scale = base_scale * res.guard.lr_backoff.powi(attempts as i32);
                    }
                }
            };
            report.epoch_loss.push(epoch_mean);
            st.epoch = epoch + 1;

            let boundary = res.checkpoint_every > 0
                && (st.epoch % res.checkpoint_every == 0 || st.epoch == total_epochs);
            if boundary {
                let ck = Checkpoint {
                    epoch: st.epoch,
                    lr_scale: st.lr_scale,
                    synth_seed: st.synth_seed,
                    shuffle_rng: st.rng.state(),
                    threshold: st.threshold,
                    masks: st.masks.clone(),
                    trainer: st.trainer.export_state(),
                    mlp: mlp.clone(),
                };
                let path = manager.save(&ck)?;
                if let Some(inj) = injector.as_mut() {
                    inj.corrupt_checkpoint(epoch, &path)
                        .map_err(dlr_nn::CheckpointError::from)?;
                    if inj.should_crash_after(epoch) {
                        return Err(TrainError::InjectedCrash { epoch });
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Whether two models have identical layer shapes.
fn same_architecture(a: &Mlp, b: &Mlp) -> bool {
    a.layers().len() == b.layers().len()
        && a.layers().iter().zip(b.layers()).all(|(x, y)| {
            x.weights.rows() == y.weights.rows() && x.weights.cols() == y.weights.cols()
        })
}
