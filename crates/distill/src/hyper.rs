//! Table 9: training and pruning hyperparameters.
//!
//! | Dataset   | E_t | E_p | E_ft | γ    | γ_step        | Dropout |
//! |-----------|-----|-----|------|------|---------------|---------|
//! | MSN30K    | 100 | 80  | 20   | 0.1  | 50, 80        | —       |
//! | Istella-S | 250 | 60  | 190  | 0.5  | 90, 130, 180  | 0.1     |
//!
//! Both phases use Adam with learning rate 0.001 and no weight decay.

/// The paper's per-dataset training/pruning schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillHyper {
    /// Training epochs (E_t).
    pub train_epochs: usize,
    /// Pruning epochs: prune + fine-tune interleaved (E_p).
    pub prune_epochs: usize,
    /// Pure fine-tuning epochs after pruning stops (E_ft).
    pub finetune_epochs: usize,
    /// Base learning rate (Adam).
    pub learning_rate: f32,
    /// LR decay factor γ.
    pub gamma: f32,
    /// Epochs at which the LR is scaled by γ.
    pub gamma_steps: Vec<usize>,
    /// Dropout after the first layer (0 disables).
    pub dropout: f32,
}

impl DistillHyper {
    /// MSN30K row of Table 9.
    pub fn msn30k() -> DistillHyper {
        DistillHyper {
            train_epochs: 100,
            prune_epochs: 80,
            finetune_epochs: 20,
            learning_rate: 1e-3,
            gamma: 0.1,
            gamma_steps: vec![50, 80],
            dropout: 0.0,
        }
    }

    /// Istella-S row of Table 9.
    pub fn istella_s() -> DistillHyper {
        DistillHyper {
            train_epochs: 250,
            prune_epochs: 60,
            finetune_epochs: 190,
            learning_rate: 1e-3,
            gamma: 0.5,
            gamma_steps: vec![90, 130, 180],
            dropout: 0.1,
        }
    }

    /// Shrink every epoch count by `factor` (≥ 1), keeping the LR decay
    /// milestones proportionally placed. Used to run the full pipeline at
    /// laptop scale while preserving the schedule's *shape*.
    pub fn scaled_down(&self, factor: usize) -> DistillHyper {
        let f = factor.max(1);
        DistillHyper {
            train_epochs: (self.train_epochs / f).max(1),
            prune_epochs: (self.prune_epochs / f).max(1),
            finetune_epochs: (self.finetune_epochs / f).max(1),
            learning_rate: self.learning_rate,
            gamma: self.gamma,
            gamma_steps: self.gamma_steps.iter().map(|&s| (s / f).max(1)).collect(),
            dropout: self.dropout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_values() {
        let m = DistillHyper::msn30k();
        assert_eq!(m.train_epochs, 100);
        assert_eq!(m.prune_epochs, 80);
        assert_eq!(m.finetune_epochs, 20);
        assert_eq!(m.gamma, 0.1);
        assert_eq!(m.gamma_steps, vec![50, 80]);
        assert_eq!(m.dropout, 0.0);
        let i = DistillHyper::istella_s();
        assert_eq!(i.train_epochs, 250);
        assert_eq!(i.gamma_steps, vec![90, 130, 180]);
        assert_eq!(i.dropout, 0.1);
        assert_eq!(i.learning_rate, 1e-3);
    }

    #[test]
    fn scaling_preserves_shape() {
        let s = DistillHyper::msn30k().scaled_down(10);
        assert_eq!(s.train_epochs, 10);
        assert_eq!(s.prune_epochs, 8);
        assert_eq!(s.finetune_epochs, 2);
        assert_eq!(s.gamma_steps, vec![5, 8]);
        // Degenerate factors never hit zero epochs.
        let t = DistillHyper::msn30k().scaled_down(1000);
        assert!(t.train_epochs >= 1 && t.prune_epochs >= 1);
    }
}
