//! The observability plane's only notion of time.
//!
//! Every span and drift sample carries *server nanos*: a `u64` read from
//! an injected [`NanoClock`]. The serving stack hands [`crate::Obs`] the
//! same clock it runs on (`dlr-serve`'s `Clock`, monotonic in production,
//! manual in tests), so recorded traces are bit-reproducible under a
//! manual clock. This module is deliberately the *only* file in the
//! crate allowed to touch ambient time — the recording paths
//! (`sink`/`metrics`/`drift`/`export`) are inside the repository's
//! determinism lint fence and never read a clock themselves.

use std::time::Instant;

/// A monotonic nanosecond source. The observability plane never
/// interprets the values beyond ordering and subtraction, so any
/// monotonically non-decreasing `u64` works — wall time, a manual test
/// clock, or a simulation step counter.
pub trait NanoClock: Send + Sync {
    /// Current server time in nanoseconds.
    fn now_nanos(&self) -> u64;
}

/// Default production clock: nanoseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl NanoClock for WallClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::default();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
