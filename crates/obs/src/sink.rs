//! Fixed-capacity, overwrite-oldest span storage.
//!
//! [`TraceSink`] is the hot-path destination for [`Span`]s: a small
//! fixed set of shards, each a mutex-guarded ring. Recording takes one
//! short lock on the shard selected by the span's trace id, writes one
//! slot, and returns — it never allocates after construction, never
//! blocks on a full ring (the oldest span in the shard is overwritten
//! instead), and never reorders the recorder. The accounting identity
//!
//! ```text
//! spans_opened == spans_resident + spans_dropped
//! ```
//!
//! holds at every quiescent point: each `record` either grows the
//! resident set by one or evicts exactly one older span.

use crate::sync::{AtomicU64, Mutex, MutexGuard};
use std::sync::atomic::Ordering;
use std::sync::PoisonError;

/// Which stage of the request path a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Admission → taken by the dispatcher.
    QueueWait,
    /// Micro-batch formation (take → rows assembled).
    Batch,
    /// Batch handed to the engine → scores delivered-ready.
    Dispatch,
    /// Dense GEMM kernel execution.
    KernelGemm,
    /// Sparse-dense (SDMM/SpMM) kernel execution.
    KernelSdmm,
    /// Vectorized QuickScorer forest traversal.
    KernelVqs,
    /// Off-path shadow scoring of a staged model.
    Shadow,
    /// Canary-split scoring of a candidate model.
    Canary,
    /// The robust layer degraded this batch to the fallback.
    Degrade,
    /// The robust layer rescued a bad primary output.
    Rescue,
    /// Admission control refused the request (predicted deadline miss).
    Shed,
    /// The deadline expired while the request was queued.
    Expired,
    /// The batch failed (engine error or isolated panic).
    Failed,
    /// Synthetic span from the trace-pressure fault injector.
    Synthetic,
}

impl Stage {
    /// Stable label used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue-wait",
            Stage::Batch => "batch",
            Stage::Dispatch => "dispatch",
            Stage::KernelGemm => "kernel-gemm",
            Stage::KernelSdmm => "kernel-sdmm",
            Stage::KernelVqs => "kernel-vqs",
            Stage::Shadow => "shadow",
            Stage::Canary => "canary",
            Stage::Degrade => "degrade",
            Stage::Rescue => "rescue",
            Stage::Shed => "shed",
            Stage::Expired => "expired",
            Stage::Failed => "failed",
            Stage::Synthetic => "synthetic",
        }
    }
}

/// One closed interval of one stage, attributed to one trace (request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace id: the server's request id (0 is reserved for synthetic
    /// and unattributed spans).
    pub id: u64,
    /// The stage this span measures.
    pub stage: Stage,
    /// Model version that served it, when known.
    pub version: Option<std::sync::Arc<str>>,
    /// Stage entry, in server nanos.
    pub start_nanos: u64,
    /// Stage exit, in server nanos.
    pub end_nanos: u64,
}

impl Span {
    /// Span length in nanos (saturating; a manual clock can be frozen).
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// One shard's ring: insertion order wraps, so `next` always points at
/// the oldest slot once the ring is full.
struct Ring {
    spans: Vec<Span>,
    next: usize,
    capacity: usize,
}

/// Sharded, bounded span storage. See the module docs.
pub struct TraceSink {
    shards: Vec<Mutex<Ring>>,
    opened: AtomicU64,
    dropped: AtomicU64,
}

fn lock_ring(shard: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    // A poisoned ring still holds structurally valid spans; recording
    // must keep working on the serving path.
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

impl TraceSink {
    /// A sink of `shards` rings holding `spans_per_shard` spans each
    /// (both clamped to ≥ 1).
    pub fn new(shards: usize, spans_per_shard: usize) -> TraceSink {
        let shards = shards.max(1);
        let capacity = spans_per_shard.max(1);
        TraceSink {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Ring {
                        spans: Vec::with_capacity(capacity),
                        next: 0,
                        capacity,
                    })
                })
                .collect(),
            opened: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one span. Constant-time, never blocks on capacity: a full
    /// shard overwrites its oldest span and counts the eviction.
    pub fn record(&self, span: Span) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        let idx = (span.id as usize) % self.shards.len();
        let mut ring = match self.shards.get(idx) {
            Some(shard) => lock_ring(shard),
            None => return,
        };
        if ring.spans.len() < ring.capacity {
            ring.spans.push(span);
        } else {
            let slot = ring.next;
            if let Some(old) = ring.spans.get_mut(slot) {
                *old = span;
            }
            ring.next = (slot + 1) % ring.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans ever recorded.
    pub fn spans_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Spans evicted by ring wrap.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently resident across all shards.
    pub fn spans_resident(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock_ring(s).spans.len() as u64)
            .sum()
    }

    /// Snapshot every resident span, oldest-first within each shard.
    /// Allocation happens here, never in [`record`](Self::record).
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let ring = lock_ring(shard);
            if ring.spans.len() == ring.capacity {
                out.extend_from_slice(&ring.spans[ring.next..]);
                out.extend_from_slice(&ring.spans[..ring.next]);
            } else {
                out.extend_from_slice(&ring.spans);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, start: u64) -> Span {
        Span {
            id,
            stage: Stage::Dispatch,
            version: None,
            start_nanos: start,
            end_nanos: start + 10,
        }
    }

    #[test]
    fn books_balance_without_wrap() {
        let sink = TraceSink::new(2, 4);
        for i in 0..5 {
            sink.record(span(i, i));
        }
        assert_eq!(sink.spans_opened(), 5);
        assert_eq!(sink.spans_dropped(), 0);
        assert_eq!(sink.spans_resident(), 5);
        assert_eq!(sink.spans().len(), 5);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_evictions() {
        let sink = TraceSink::new(1, 3);
        for i in 0..7 {
            sink.record(span(0, i));
        }
        assert_eq!(sink.spans_opened(), 7);
        assert_eq!(sink.spans_dropped(), 4);
        assert_eq!(sink.spans_resident(), 3);
        // Oldest-first snapshot holds exactly the last three spans.
        let starts: Vec<u64> = sink.spans().iter().map(|s| s.start_nanos).collect();
        assert_eq!(starts, vec![4, 5, 6]);
        assert_eq!(
            sink.spans_opened(),
            sink.spans_resident() + sink.spans_dropped()
        );
    }

    #[test]
    fn shards_partition_by_trace_id() {
        let sink = TraceSink::new(2, 2);
        // Ids 0/2 land in shard 0, ids 1/3 in shard 1: no cross-shard
        // eviction even though each shard only holds two spans.
        for id in [0u64, 1, 2, 3] {
            sink.record(span(id, id));
        }
        assert_eq!(sink.spans_dropped(), 0);
        assert_eq!(sink.spans_resident(), 4);
    }

    #[test]
    fn stage_labels_are_stable() {
        assert_eq!(Stage::QueueWait.as_str(), "queue-wait");
        assert_eq!(Stage::KernelSdmm.as_str(), "kernel-sdmm");
        assert_eq!(Stage::Synthetic.as_str(), "synthetic");
        assert_eq!(span(1, 5).duration_nanos(), 10);
    }
}
