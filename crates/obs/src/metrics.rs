//! Named counters, gauges and log2 histograms behind cheap handles.
//!
//! [`MetricsRegistry`] interns metric names once, at registration time,
//! and hands back handles ([`Counter`], [`Gauge`], [`Histogram`]) that
//! record through plain relaxed atomics — no lock, no allocation, no
//! name lookup on the hot path. Registration is idempotent by name, so
//! two subsystems asking for `serve_batches_total` share one cell. The
//! registry keeps insertion order (a `Vec`, not a hash map), so
//! snapshots enumerate deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of power-of-two buckets, matching
/// `dlr_core::serve::LatencyHistogram`'s layout: bucket `b` holds values
/// whose bit length is `b` (bucket 0 is exactly 0; the last bucket
/// absorbs the open tail).
pub const HISTOGRAM_BUCKETS: usize = 40;

fn bucket(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (high-water semantics).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of one log2 histogram.
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

/// A log2 histogram handle; the unit is whatever the registrant's name
/// says (`*_us` by convention on the serving path).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one value.
    pub fn record(&self, value: u64) {
        let cells = &self.0;
        if let Some(b) = cells.buckets.get(bucket(value)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        cells.total.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the cells for percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.0.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            total: self.0.total.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (power-of-two layout).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Total recorded values.
    pub total: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket holding the `p`-quantile sample, or
    /// `None` when empty. Falls back to the last non-empty bucket if the
    /// per-bucket counts lag the total (a concurrent-recording snapshot
    /// can be transiently short).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut last_nonempty = None;
        for (b, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                last_nonempty = Some(b);
            }
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_upper_bound(b));
            }
        }
        last_nonempty.map(bucket_upper_bound)
    }

    /// Mean recorded value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }
}

fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// One registered metric family, in insertion order.
enum Entry {
    Counter(String, Counter),
    Gauge(String, Gauge),
    Histogram(String, Histogram),
}

/// The process-wide (per-[`crate::Obs`]) metric name space.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

fn lock_entries(registry: &MetricsRegistry) -> MutexGuard<'_, Vec<Entry>> {
    // Registration only pushes fully-built entries; recover from poison.
    registry
        .entries
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// Counter handle for `name`, creating it on first sight.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = lock_entries(self);
        for e in entries.iter() {
            if let Entry::Counter(n, c) = e {
                if n == name {
                    return c.clone();
                }
            }
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        entries.push(Entry::Counter(name.to_string(), c.clone()));
        c
    }

    /// Gauge handle for `name`, creating it on first sight.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = lock_entries(self);
        for e in entries.iter() {
            if let Entry::Gauge(n, g) = e {
                if n == name {
                    return g.clone();
                }
            }
        }
        let g = Gauge(Arc::new(AtomicU64::new(0)));
        entries.push(Entry::Gauge(name.to_string(), g.clone()));
        g
    }

    /// Histogram handle for `name`, creating it on first sight.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut entries = lock_entries(self);
        for e in entries.iter() {
            if let Entry::Histogram(n, h) = e {
                if n == name {
                    return h.clone();
                }
            }
        }
        let cells = HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        };
        let h = Histogram(Arc::new(cells));
        entries.push(Entry::Histogram(name.to_string(), h.clone()));
        h
    }

    /// Every metric's current value, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = lock_entries(self);
        let mut snap = MetricsSnapshot::default();
        for e in entries.iter() {
            match e {
                Entry::Counter(n, c) => snap.counters.push((n.clone(), c.get())),
                Entry::Gauge(n, g) => snap.gauges.push((n.clone(), g.get())),
                Entry::Histogram(n, h) => snap.histograms.push((n.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Point-in-time values of every registered metric.
#[derive(Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for each counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for each gauge, in registration order.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for each histogram, in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counters, vec![("x_total".to_string(), 3)]);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let reg = MetricsRegistry::default();
        let g = reg.gauge("depth");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_percentiles_and_mean() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("lat_us");
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total, 100);
        assert_eq!(snap.percentile(0.5), Some(15));
        assert_eq!(snap.percentile(0.99), Some(1023));
        let mean = snap.mean().expect("non-empty");
        assert!((mean - 109.0).abs() < 1e-9);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("empty");
        assert_eq!(h.snapshot().percentile(0.999), None);
        assert_eq!(h.snapshot().mean(), None);
    }

    #[test]
    fn zero_lands_in_the_exact_zero_bucket() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("z");
        h.record(0);
        assert_eq!(h.snapshot().percentile(0.999), Some(0));
    }

    #[test]
    fn snapshot_keeps_registration_order() {
        let reg = MetricsRegistry::default();
        reg.counter("b_total");
        reg.counter("a_total");
        reg.gauge("g");
        reg.histogram("h");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b_total", "a_total"]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
    }
}
