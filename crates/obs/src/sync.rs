//! Synchronization primitive aliases for the span ring.
//!
//! With the `mc` feature on, the trace sink's shard mutexes and
//! accounting atomics resolve to `dlr-mc`'s schedule-controlled shims so
//! the model checker can explore concurrent recording around the ring
//! wrap; without it (every release and bench build) they are plain `std`
//! types.

#[cfg(feature = "mc")]
pub(crate) use dlr_mc::sync::atomic::AtomicU64;
#[cfg(feature = "mc")]
pub(crate) use dlr_mc::sync::{Mutex, MutexGuard};

#[cfg(not(feature = "mc"))]
pub(crate) use std::sync::atomic::AtomicU64;
#[cfg(not(feature = "mc"))]
pub(crate) use std::sync::{Mutex, MutexGuard};
