//! `dlr-obs` — the serving stack's observability plane.
//!
//! One [`Obs`] instance bundles the three recording surfaces and the
//! clock they share:
//!
//! * a [`TraceSink`] of per-stage [`Span`]s (fixed capacity,
//!   overwrite-oldest, sharded by trace id),
//! * a [`MetricsRegistry`] of named counters / gauges / log2 histograms
//!   recorded through relaxed atomics,
//! * a [`DriftTracker`] comparing forecast batch latency (the paper's
//!   Eq. 3/5 cost model) against measured latency.
//!
//! Time is injected: spans carry *server nanos* from a [`NanoClock`],
//! which the serving layer backs with its own `Clock` — monotonic in
//! production, manual in tests — so whole traces are bit-reproducible
//! under a deterministic clock. The crate has no dependencies, and the
//! recording paths never allocate, panic, or touch ambient time.
//!
//! Consumers: [`Obs::snapshot_prometheus`] / [`Obs::snapshot_json`] for
//! scraping or shutdown dumps, and [`Obs::trace_dump`] for per-request
//! waterfalls of the slowest traces.

#![forbid(unsafe_code)]

pub mod clock;
pub mod drift;
pub mod export;
pub mod metrics;
pub mod sink;
mod sync;

pub use clock::{NanoClock, WallClock};
pub use drift::{DriftSummary, DriftTracker};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use sink::{Span, Stage, TraceSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sizing knobs for one [`Obs`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace-sink shards (each an independent mutex + ring).
    pub shards: usize,
    /// Span slots per shard; the sink holds `shards × spans_per_shard`
    /// spans before overwrite-oldest kicks in.
    pub spans_per_shard: usize,
    /// Rolling predictor-drift window, in `(predicted, actual)` pairs.
    pub drift_window: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            shards: 8,
            spans_per_shard: 1024,
            drift_window: 1024,
        }
    }
}

/// The assembled observability plane. Cheap to share (`Arc<Obs>`); all
/// recording methods take `&self`.
pub struct Obs {
    clock: Arc<dyn NanoClock>,
    sink: TraceSink,
    metrics: MetricsRegistry,
    drift: DriftTracker,
    /// Trace id the dispatcher is currently executing, so kernel scope
    /// guards deep in `dlr-core` can attribute their spans without
    /// threading ids through every call signature. One dispatcher owns
    /// one engine, so a single cell suffices per server; id 0 means
    /// "unattributed".
    current_trace: AtomicU64,
}

impl Obs {
    /// An observability plane with default sizing over `clock`.
    pub fn new(clock: Arc<dyn NanoClock>) -> Obs {
        Obs::with_config(clock, ObsConfig::default())
    }

    /// An observability plane with explicit sizing over `clock`.
    pub fn with_config(clock: Arc<dyn NanoClock>, config: ObsConfig) -> Obs {
        Obs {
            clock,
            sink: TraceSink::new(config.shards, config.spans_per_shard),
            metrics: MetricsRegistry::default(),
            drift: DriftTracker::new(config.drift_window),
            current_trace: AtomicU64::new(0),
        }
    }

    /// Convenience: a default-sized plane on the wall clock.
    pub fn wall() -> Obs {
        Obs::new(Arc::new(WallClock::default()))
    }

    /// Current server nanos from the injected clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The span storage.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// The metric name space.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The predictor-drift tracker.
    pub fn drift(&self) -> &DriftTracker {
        &self.drift
    }

    /// Counter handle (see [`MetricsRegistry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Gauge handle (see [`MetricsRegistry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// Histogram handle (see [`MetricsRegistry::histogram`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics.histogram(name)
    }

    /// Record one span with caller-supplied server nanos.
    pub fn record_span(
        &self,
        id: u64,
        stage: Stage,
        version: Option<Arc<str>>,
        start_nanos: u64,
        end_nanos: u64,
    ) {
        self.sink.record(Span {
            id,
            stage,
            version,
            start_nanos,
            end_nanos,
        });
    }

    /// Record one `(predicted, actual)` latency pair in nanos.
    pub fn record_drift(&self, predicted_nanos: u64, actual_nanos: u64) {
        self.drift.record(predicted_nanos, actual_nanos);
    }

    /// Attribute subsequent [`scope`](Self::scope) spans to trace `id`.
    pub fn set_current_trace(&self, id: u64) {
        self.current_trace.store(id, Ordering::Relaxed);
    }

    /// The trace id kernel scope guards currently attribute to.
    pub fn current_trace(&self) -> u64 {
        self.current_trace.load(Ordering::Relaxed)
    }

    /// A scope guard that records a span of `stage` — attributed to the
    /// current trace — from now until drop. This is the kernel hook:
    /// two atomic loads and one clock read on entry, one clock read and
    /// one sink write on drop.
    pub fn scope(&self, stage: Stage) -> ScopeGuard<'_> {
        ScopeGuard {
            obs: self,
            stage,
            id: self.current_trace(),
            start_nanos: self.now_nanos(),
        }
    }

    /// Every resident span (allocation happens here, not at record
    /// time).
    pub fn spans(&self) -> Vec<Span> {
        self.sink.spans()
    }

    /// Prometheus-style text snapshot (see [`export::prometheus_text`]).
    pub fn snapshot_prometheus(&self) -> String {
        export::prometheus_text(self)
    }

    /// Machine JSON snapshot (see [`export::json_text`]).
    pub fn snapshot_json(&self) -> String {
        export::json_text(self)
    }

    /// Waterfalls of the `n` slowest resident traces (see
    /// [`export::trace_dump`]).
    pub fn trace_dump(&self, n: usize) -> String {
        export::trace_dump(self, n)
    }

    /// Whether `spans_opened == spans_resident + spans_dropped` — the
    /// sink's conservation law, assertable at any quiescent point.
    pub fn books_balance(&self) -> bool {
        self.sink.spans_opened() == self.sink.spans_resident() + self.sink.spans_dropped()
    }
}

/// Records one span of `stage` over its own lifetime. See
/// [`Obs::scope`].
pub struct ScopeGuard<'a> {
    obs: &'a Obs,
    stage: Stage,
    id: u64,
    start_nanos: u64,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        let end = self.obs.now_nanos();
        self.obs
            .record_span(self.id, self.stage, None, self.start_nanos, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic test clock: manually advanced nanos.
    struct Step(AtomicU64);
    impl NanoClock for Step {
        fn now_nanos(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn scope_guard_attributes_to_the_current_trace() {
        let clock = Arc::new(Step(AtomicU64::new(100)));
        let obs = Obs::new(Arc::clone(&clock) as Arc<dyn NanoClock>);
        obs.set_current_trace(42);
        {
            let _g = obs.scope(Stage::KernelGemm);
            clock.0.store(175, Ordering::SeqCst);
        }
        let spans = obs.spans();
        assert_eq!(
            spans,
            vec![Span {
                id: 42,
                stage: Stage::KernelGemm,
                version: None,
                start_nanos: 100,
                end_nanos: 175,
            }]
        );
        assert!(obs.books_balance());
    }

    #[test]
    fn handles_share_cells_across_clones() {
        let obs = Obs::wall();
        let c = obs.counter("x_total");
        obs.counter("x_total").add(2);
        c.inc();
        assert_eq!(obs.counter("x_total").get(), 3);
    }

    #[test]
    fn books_balance_across_ring_wrap() {
        let clock = Arc::new(Step(AtomicU64::new(0)));
        let obs = Obs::with_config(
            clock,
            ObsConfig {
                shards: 1,
                spans_per_shard: 4,
                drift_window: 4,
            },
        );
        for i in 0..10 {
            obs.record_span(i, Stage::Dispatch, None, i, i + 1);
        }
        assert_eq!(obs.sink().spans_opened(), 10);
        assert_eq!(obs.sink().spans_dropped(), 6);
        assert!(obs.books_balance());
    }
}
