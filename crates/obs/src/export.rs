//! The two consumers of the observability plane: a scrapeable snapshot
//! (Prometheus-style text and machine JSON) and a per-request waterfall
//! reconstruction for the slowest traces.
//!
//! Everything here reads point-in-time snapshots — no exporter ever
//! holds a recording lock while formatting, and output ordering is
//! fully deterministic (registration order for metrics, trace id order
//! for ties in the waterfall ranking).

use crate::sink::Span;
use crate::Obs;
use std::fmt::Write as _;

fn write_opt_ratio(out: &mut String, name: &str, v: Option<f64>) {
    match v {
        Some(x) => {
            let _ = writeln!(out, "{name} {x:.6}");
        }
        None => {
            let _ = writeln!(out, "{name} NaN");
        }
    }
}

/// Prometheus-style text exposition of every metric, the span
/// accounting, and the drift statistics.
pub fn prometheus_text(obs: &Obs) -> String {
    let mut out = String::new();
    let sink = obs.sink();
    let _ = writeln!(out, "# TYPE dlr_spans_opened_total counter");
    let _ = writeln!(out, "dlr_spans_opened_total {}", sink.spans_opened());
    let _ = writeln!(out, "# TYPE dlr_spans_dropped_total counter");
    let _ = writeln!(out, "dlr_spans_dropped_total {}", sink.spans_dropped());
    let _ = writeln!(out, "# TYPE dlr_spans_resident gauge");
    let _ = writeln!(out, "dlr_spans_resident {}", sink.spans_resident());

    let snap = obs.metrics().snapshot();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
            if let Some(bound) = h.percentile(q) {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {bound}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.total);
    }

    let drift = obs.drift().summary();
    let _ = writeln!(out, "# TYPE dlr_drift_ratio gauge");
    write_opt_ratio(&mut out, "dlr_drift_ratio", drift.drift_ratio);
    let _ = writeln!(out, "# TYPE dlr_drift_sign_error_rate gauge");
    write_opt_ratio(&mut out, "dlr_drift_sign_error_rate", drift.sign_error_rate);
    let _ = writeln!(out, "# TYPE dlr_drift_window gauge");
    let _ = writeln!(out, "dlr_drift_window {}", drift.window_len);
    let _ = writeln!(out, "# TYPE dlr_drift_recorded_total counter");
    let _ = writeln!(out, "dlr_drift_recorded_total {}", drift.recorded);
    out
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "null".to_string(),
    }
}

/// Machine-readable JSON snapshot of the same state as
/// [`prometheus_text`].
pub fn json_text(obs: &Obs) -> String {
    let mut out = String::new();
    let sink = obs.sink();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"spans\": {{\"opened\": {}, \"resident\": {}, \"dropped_by_ring_wrap\": {}}},",
        sink.spans_opened(),
        sink.spans_resident(),
        sink.spans_dropped()
    );
    let snap = obs.metrics().snapshot();
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{name}\": {v}");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{name}\": {v}");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}\"{name}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50_le\": {}, \"p99_le\": {}, \"p999_le\": {}}}",
            h.total,
            h.sum,
            json_opt(h.mean()),
            h.percentile(0.5).map_or("null".to_string(), |v| v.to_string()),
            h.percentile(0.99).map_or("null".to_string(), |v| v.to_string()),
            h.percentile(0.999).map_or("null".to_string(), |v| v.to_string()),
        );
    }
    out.push_str("},\n");
    let drift = obs.drift().summary();
    let _ = writeln!(
        out,
        "  \"drift\": {{\"window\": {}, \"recorded\": {}, \"predicted_sum_nanos\": {}, \"actual_sum_nanos\": {}, \"ratio\": {}, \"sign_error_rate\": {}}}",
        drift.window_len,
        drift.recorded,
        drift.predicted_sum_nanos,
        drift.actual_sum_nanos,
        json_opt(drift.drift_ratio),
        json_opt(drift.sign_error_rate)
    );
    out.push('}');
    out
}

/// One reconstructed trace: every resident span of one request.
struct Trace {
    id: u64,
    start: u64,
    end: u64,
    spans: Vec<Span>,
}

/// Reconstruct per-request waterfalls for the `n` slowest resident
/// traces (by wall span from first stage entry to last stage exit).
/// Synthetic spans (trace id 0) are excluded from the ranking.
pub fn trace_dump(obs: &Obs, n: usize) -> String {
    let mut spans = obs.sink().spans();
    spans.sort_by(|a, b| {
        (a.id, a.start_nanos, a.stage, a.end_nanos).cmp(&(
            b.id,
            b.start_nanos,
            b.stage,
            b.end_nanos,
        ))
    });
    let mut traces: Vec<Trace> = Vec::new();
    for span in spans {
        if span.id == 0 {
            continue;
        }
        match traces.last_mut() {
            Some(t) if t.id == span.id => {
                t.start = t.start.min(span.start_nanos);
                t.end = t.end.max(span.end_nanos);
                t.spans.push(span);
            }
            _ => traces.push(Trace {
                id: span.id,
                start: span.start_nanos,
                end: span.end_nanos,
                spans: vec![span],
            }),
        }
    }
    // Slowest first; ties broken by trace id for determinism.
    traces.sort_by(|a, b| (b.end - b.start, a.id).cmp(&(a.end - a.start, b.id)));
    traces.truncate(n);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "slowest {} trace(s) of {} resident",
        traces.len(),
        obs.sink().spans_resident()
    );
    for t in &traces {
        let _ = writeln!(
            out,
            "trace {} — {} ns total ({} span(s))",
            t.id,
            t.end - t.start,
            t.spans.len()
        );
        for s in &t.spans {
            let version = s
                .version
                .as_ref()
                .map(|v| format!(" [{v}]"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<12} {:>12} .. {:<12} ({} ns){}",
                s.stage.as_str(),
                s.start_nanos,
                s.end_nanos,
                s.duration_nanos(),
                version
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Stage;
    use crate::Obs;
    use std::sync::Arc;

    struct Frozen;
    impl crate::NanoClock for Frozen {
        fn now_nanos(&self) -> u64 {
            0
        }
    }

    fn obs() -> Obs {
        Obs::new(Arc::new(Frozen))
    }

    #[test]
    fn prometheus_text_covers_every_family() {
        let o = obs();
        o.counter("serve_batches_total").add(3);
        o.gauge("serve_queue_depth_max").set(7);
        o.histogram("serve_execute_us").record(100);
        o.record_drift(10, 20);
        o.record_span(1, Stage::Dispatch, None, 0, 50);
        let text = prometheus_text(&o);
        assert!(text.contains("dlr_spans_opened_total 1"), "{text}");
        assert!(text.contains("serve_batches_total 3"), "{text}");
        assert!(text.contains("serve_queue_depth_max 7"), "{text}");
        assert!(text.contains("serve_execute_us_count 1"), "{text}");
        assert!(text.contains("dlr_drift_ratio 2.000000"), "{text}");
        assert!(
            text.contains("dlr_drift_sign_error_rate 1.000000"),
            "{text}"
        );
    }

    #[test]
    fn json_text_is_balanced_and_complete() {
        let o = obs();
        o.counter("c_total").inc();
        o.histogram("h_us").record(5);
        let json = json_text(&o);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"dropped_by_ring_wrap\": 0"), "{json}");
        assert!(json.contains("\"c_total\": 1"), "{json}");
        assert!(json.contains("\"p50_le\": 7"), "{json}");
        assert!(json.contains("\"ratio\": null"), "{json}");
    }

    #[test]
    fn trace_dump_ranks_slowest_first_and_skips_synthetic() {
        let o = obs();
        o.record_span(1, Stage::QueueWait, None, 0, 10);
        o.record_span(1, Stage::Dispatch, None, 10, 30);
        o.record_span(2, Stage::QueueWait, None, 0, 100);
        o.record_span(0, Stage::Synthetic, None, 0, 9999);
        let dump = trace_dump(&o, 1);
        assert!(dump.contains("trace 2 — 100 ns total"), "{dump}");
        assert!(!dump.contains("trace 1"), "{dump}");
        assert!(!dump.contains("synthetic"), "{dump}");
        let both = trace_dump(&o, 10);
        assert!(both.contains("trace 1 — 30 ns total (2 span(s))"), "{both}");
        assert!(both.contains("queue-wait"), "{both}");
    }
}
