//! Predictor-drift tracking: is the paper's cost model still honest?
//!
//! The Eq. 3/5 scoring-time predictors (`LatencyForecaster` /
//! `BudgetForecast`) are calibrated once per host, then trusted by
//! admission control and the degradation state machine. [`DriftTracker`]
//! turns that trust into a monitored invariant: every scored batch
//! contributes a `(predicted, actual)` nanosecond pair to a fixed
//! rolling window, from which two statistics fall out:
//!
//! * **drift ratio** — `Σ actual / Σ predicted` over the window. 1.0
//!   means the model is calibrated; > 1.0 means it underforecasts
//!   (dangerous: admission control admits work it cannot finish);
//!   < 1.0 means it overforecasts (sheds traffic it could have served).
//! * **sign-error rate** — the fraction of batches whose actual latency
//!   exceeded the prediction, regardless of magnitude.
//!
//! The window is a fixed-capacity overwrite-oldest ring, so memory is
//! constant and the statistics follow regime changes instead of
//! averaging them away.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// One forecast comparison, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    predicted_nanos: u64,
    actual_nanos: u64,
}

struct Window {
    samples: Vec<Sample>,
    next: usize,
    capacity: usize,
    recorded: u64,
}

/// Rolling predicted-vs-actual latency tracker. See the module docs.
pub struct DriftTracker {
    window: Mutex<Window>,
}

/// Point-in-time drift statistics over the rolling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSummary {
    /// Pairs currently in the window.
    pub window_len: usize,
    /// Pairs recorded over the tracker's lifetime.
    pub recorded: u64,
    /// Σ predicted nanos over the window.
    pub predicted_sum_nanos: u64,
    /// Σ actual nanos over the window.
    pub actual_sum_nanos: u64,
    /// `Σ actual / Σ predicted`; `None` when empty or the predictions
    /// sum to zero.
    pub drift_ratio: Option<f64>,
    /// Fraction of windowed pairs with `actual > predicted`; `None`
    /// when the window is empty.
    pub sign_error_rate: Option<f64>,
}

fn lock_window(tracker: &DriftTracker) -> MutexGuard<'_, Window> {
    // Samples are plain pairs; recover from poison and keep tracking.
    tracker
        .window
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

impl DriftTracker {
    /// A tracker windowing the most recent `window` pairs (≥ 1).
    pub fn new(window: usize) -> DriftTracker {
        let capacity = window.max(1);
        DriftTracker {
            window: Mutex::new(Window {
                samples: Vec::with_capacity(capacity),
                next: 0,
                capacity,
                recorded: 0,
            }),
        }
    }

    /// Record one `(predicted, actual)` pair in nanoseconds.
    pub fn record(&self, predicted_nanos: u64, actual_nanos: u64) {
        let mut w = lock_window(self);
        w.recorded = w.recorded.saturating_add(1);
        let sample = Sample {
            predicted_nanos,
            actual_nanos,
        };
        if w.samples.len() < w.capacity {
            w.samples.push(sample);
        } else {
            let slot = w.next;
            if let Some(old) = w.samples.get_mut(slot) {
                *old = sample;
            }
            w.next = (slot + 1) % w.capacity;
        }
    }

    /// `Σ actual / Σ predicted` over the window.
    pub fn drift_ratio(&self) -> Option<f64> {
        self.summary().drift_ratio
    }

    /// Fraction of windowed pairs whose actual exceeded the prediction.
    pub fn sign_error_rate(&self) -> Option<f64> {
        self.summary().sign_error_rate
    }

    /// All drift statistics in one consistent snapshot.
    pub fn summary(&self) -> DriftSummary {
        let w = lock_window(self);
        let mut predicted = 0u64;
        let mut actual = 0u64;
        let mut under = 0u64;
        for s in &w.samples {
            predicted = predicted.saturating_add(s.predicted_nanos);
            actual = actual.saturating_add(s.actual_nanos);
            if s.actual_nanos > s.predicted_nanos {
                under += 1;
            }
        }
        let n = w.samples.len();
        DriftSummary {
            window_len: n,
            recorded: w.recorded,
            predicted_sum_nanos: predicted,
            actual_sum_nanos: actual,
            drift_ratio: if n == 0 || predicted == 0 {
                None
            } else {
                Some(actual as f64 / predicted as f64)
            },
            sign_error_rate: if n == 0 {
                None
            } else {
                Some(under as f64 / n as f64)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_none() {
        let t = DriftTracker::new(8);
        assert_eq!(t.drift_ratio(), None);
        assert_eq!(t.sign_error_rate(), None);
        assert_eq!(t.summary().window_len, 0);
    }

    #[test]
    fn exact_ratio_and_sign_errors() {
        let t = DriftTracker::new(8);
        t.record(20_000, 30_000); // under-forecast
        t.record(20_000, 30_000); // under-forecast
        t.record(40_000, 20_000); // over-forecast
                                  // 80_000 / 80_000 = 1.0 exactly; 2 of 3 under.
        assert_eq!(t.drift_ratio(), Some(1.0));
        let rate = t.sign_error_rate().expect("non-empty");
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.summary().recorded, 3);
    }

    #[test]
    fn window_overwrites_oldest() {
        let t = DriftTracker::new(2);
        t.record(1, 100); // evicted below
        t.record(10, 10);
        t.record(10, 30);
        let s = t.summary();
        assert_eq!(s.window_len, 2);
        assert_eq!(s.recorded, 3);
        assert_eq!(s.predicted_sum_nanos, 20);
        assert_eq!(s.actual_sum_nanos, 40);
        assert_eq!(s.drift_ratio, Some(2.0));
        assert_eq!(s.sign_error_rate, Some(0.5));
    }

    #[test]
    fn zero_predictions_disable_the_ratio_only() {
        let t = DriftTracker::new(4);
        t.record(0, 500);
        assert_eq!(t.drift_ratio(), None);
        assert_eq!(t.sign_error_rate(), Some(1.0));
    }
}
