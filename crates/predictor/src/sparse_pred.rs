//! The sparse-dense multiplication time predictor (Equation 5).
//!
//! The LIBXSMM-style kernel's cost decomposes into three memory-bound
//! terms (§4.4):
//!
//! * `L_c` per **active row** of `A` — loading and storing the `N_b`
//!   accumulator vectors of `C_i`;
//! * `L_a` per **non-zero** of `A` — loading the element and issuing `N_b`
//!   FMA instructions;
//! * `L_b` per **active column** of `A` — the first (uncached) load of the
//!   corresponding row of `B`; later touches hit cache and are free.
//!
//! All three scale with the batch width, so the stored coefficients are
//! per-column-of-B (`N`-normalized): `T(N) = N · (|a_r|·l_c + nnz·l_a +
//! |a_c|·l_b)`. The paper derives them *by difference* from synthetic
//! matrices with controlled structure; [`crate::calibrate`] implements
//! that procedure and [`SparsePredictor::paper_like`] ships coefficients
//! consistent with the paper's Table 4 magnitudes.

use dlr_sparse::CsrMatrix;

/// Structure summary of a sparse matrix, the predictor's only input
/// (known *a priori* for a pruned layer, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrShapeStats {
    /// Rows with at least one non-zero (`|a_r|`).
    pub active_rows: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Columns with at least one non-zero (`|a_c|`).
    pub active_cols: usize,
}

impl CsrShapeStats {
    /// Extract the statistics from a CSR matrix.
    pub fn of(a: &CsrMatrix) -> CsrShapeStats {
        CsrShapeStats {
            active_rows: a.active_rows(),
            nnz: a.nnz(),
            active_cols: a.active_cols(),
        }
    }

    /// Worst-case stats for an `m×k` matrix at the given sparsity: every
    /// row and column assumed active (the assumption behind Figure 11).
    pub fn worst_case(m: usize, k: usize, sparsity: f64) -> CsrShapeStats {
        let nnz = ((m * k) as f64 * (1.0 - sparsity)).round() as usize;
        CsrShapeStats {
            active_rows: m,
            nnz,
            active_cols: k,
        }
    }
}

/// Equation 5 with N-normalized coefficients (seconds per B-column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsePredictor {
    /// Per-non-zero cost `l_a` (seconds per B-column).
    pub la: f64,
    /// Per-active-column cost `l_b`.
    pub lb: f64,
    /// Per-active-row cost `l_c` (load + store ⇒ the paper's `L_c = 2·L_b`).
    pub lc: f64,
    /// Amdahl serial fraction of the parallel SpMM driver (dispatch plus
    /// the shared packed-B build), used by the `_mt` predictions.
    pub serial_fraction: f64,
}

impl SparsePredictor {
    /// Build from calibrated `l_a` and `l_b`, enforcing the paper's
    /// empirically-verified `l_c = 2·l_b`.
    pub fn from_la_lb(la: f64, lb: f64) -> SparsePredictor {
        SparsePredictor {
            la,
            lb,
            lc: 2.0 * lb,
            serial_fraction: crate::dense_pred::DEFAULT_SERIAL_FRACTION,
        }
    }

    /// Replace the Amdahl serial fraction (clamped to `[0, 1]`), usually
    /// with a value fitted by `calibrate::fit_serial_fraction`.
    pub fn with_serial_fraction(mut self, serial_fraction: f64) -> SparsePredictor {
        self.serial_fraction = serial_fraction.clamp(0.0, 1.0);
        self
    }

    /// Predicted speedup at `threads` workers, Amdahl's law:
    /// `1 / (s + (1 - s)/p)`.
    pub fn speedup(&self, threads: usize) -> f64 {
        let p = threads.max(1) as f64;
        let s = self.serial_fraction.clamp(0.0, 1.0);
        1.0 / (s + (1.0 - s) / p)
    }

    /// Coefficients of the same order as the paper's i9-9900K
    /// measurements (Table 4 reverse-engineered: a 400×136 layer at 99.5%
    /// sparsity costs ≈ 0.2 µs at N = 16, a 50×136 layer at 98.7% costs
    /// ≈ 0.2 µs at N = 64).
    pub fn paper_like() -> SparsePredictor {
        SparsePredictor::from_la_lb(1.2e-11, 1.0e-11)
    }

    /// Predicted seconds for `A · B` with `N` columns of B.
    pub fn predict_secs(&self, stats: CsrShapeStats, n: usize) -> f64 {
        n as f64
            * (stats.active_rows as f64 * self.lc
                + stats.nnz as f64 * self.la
                + stats.active_cols as f64 * self.lb)
    }

    /// Predicted microseconds, the unit of Tables 3 and 4.
    pub fn predict_us(&self, stats: CsrShapeStats, n: usize) -> f64 {
        self.predict_secs(stats, n) * 1e6
    }

    /// [`Self::predict_secs`] on `threads` workers — the Eq. 5 time
    /// divided by the Amdahl [`Self::speedup`].
    pub fn predict_secs_mt(&self, stats: CsrShapeStats, n: usize, threads: usize) -> f64 {
        self.predict_secs(stats, n) / self.speedup(threads)
    }

    /// [`Self::predict_us`] on `threads` workers.
    pub fn predict_us_mt(&self, stats: CsrShapeStats, n: usize, threads: usize) -> f64 {
        self.predict_secs_mt(stats, n, threads) * 1e6
    }

    /// Predicted speedup of sparse-at-`sparsity` over a dense multiply of
    /// the same shape that runs at `dense_gflops` (the Figure 11 curves;
    /// worst-case active rows/columns).
    pub fn speedup_vs_dense(
        &self,
        m: usize,
        k: usize,
        n: usize,
        sparsity: f64,
        dense_gflops: f64,
    ) -> f64 {
        let dense_secs = 2.0 * m as f64 * k as f64 * n as f64 / (dense_gflops * 1e9);
        let sparse_secs = self.predict_secs(CsrShapeStats::worst_case(m, k, sparsity), n);
        dense_secs / sparse_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_dense::Matrix;

    #[test]
    fn stats_from_csr() {
        let d = Matrix::from_vec(3, 4, vec![1., 0., 0., 0., 0., 0., 0., 0., 1., 0., 0., 2.]);
        let a = CsrMatrix::from_dense(&d, 0.0);
        let s = CsrShapeStats::of(&a);
        assert_eq!(
            s,
            CsrShapeStats {
                active_rows: 2,
                nnz: 3,
                active_cols: 2
            }
        );
    }

    #[test]
    fn prediction_is_linear_in_n() {
        let p = SparsePredictor::paper_like();
        let s = CsrShapeStats {
            active_rows: 100,
            nnz: 700,
            active_cols: 136,
        };
        let t16 = p.predict_secs(s, 16);
        let t64 = p.predict_secs(s, 64);
        assert!((t64 / t16 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq5_structure() {
        let p = SparsePredictor::from_la_lb(1.0, 10.0); // exaggerated units
        let s = CsrShapeStats {
            active_rows: 2,
            nnz: 3,
            active_cols: 5,
        };
        // T/N = 2·20 + 3·1 + 5·10 = 93.
        assert!((p.predict_secs(s, 1) - 93.0).abs() < 1e-9);
        assert_eq!(p.lc, 20.0);
    }

    #[test]
    fn same_shape_different_sparsity_distinguished() {
        // §4.4: the predictor "can fruitfully distinguish between matrices
        // with the same shape but with different sparsity percentages".
        let p = SparsePredictor::paper_like();
        let lo = CsrShapeStats::worst_case(200, 136, 0.982);
        let hi = CsrShapeStats::worst_case(200, 136, 0.971);
        assert!(p.predict_secs(hi, 64) > p.predict_secs(lo, 64) * 1.1);
    }

    #[test]
    fn paper_like_magnitudes_match_table4() {
        // 400×136 @ 0.995 sparsity, N = 16 → ~0.2 µs (Table 4 row 1).
        let p = SparsePredictor::paper_like();
        let t = p.predict_us(CsrShapeStats::worst_case(400, 136, 0.995), 16);
        assert!((0.05..0.6).contains(&t), "predicted {t:.3} µs");
        // 50×136 @ 0.987, N = 64 → ~0.2 µs (last row).
        let t = p.predict_us(CsrShapeStats::worst_case(50, 136, 0.987), 64);
        assert!((0.05..0.6).contains(&t), "predicted {t:.3} µs");
    }

    #[test]
    fn speedup_grows_superlinearly_near_total_sparsity() {
        // Figure 11: "quadratic growth of the sparse speedup in the
        // selected range".
        let p = SparsePredictor::paper_like();
        let s90 = p.speedup_vs_dense(400, 136, 64, 0.90, 90.0);
        let s95 = p.speedup_vs_dense(400, 136, 64, 0.95, 90.0);
        let s99 = p.speedup_vs_dense(400, 136, 64, 0.99, 90.0);
        assert!(s95 > s90);
        assert!(s99 > s95);
        // Gains accelerate: the 95→99 jump beats the 90→95 jump.
        assert!(s99 - s95 > s95 - s90);
    }

    #[test]
    fn mt_prediction_follows_amdahl() {
        let p = SparsePredictor::paper_like().with_serial_fraction(0.25);
        let s = CsrShapeStats::worst_case(400, 136, 0.98);
        let t1 = p.predict_secs(s, 64);
        assert!((p.predict_secs_mt(s, 64, 1) - t1).abs() < 1e-18);
        let t4 = p.predict_secs_mt(s, 64, 4);
        // 1/(0.25 + 0.75/4) = 2.2857…× speedup.
        assert!((t1 / t4 - 1.0 / 0.4375).abs() < 1e-9);
        assert!((p.predict_us_mt(s, 64, 4) - t4 * 1e6).abs() < 1e-12);
        // Clamp out-of-range fractions.
        assert_eq!(
            SparsePredictor::paper_like()
                .with_serial_fraction(-2.0)
                .serial_fraction,
            0.0
        );
    }

    #[test]
    fn worst_case_rounds_nnz() {
        let s = CsrShapeStats::worst_case(10, 10, 0.95);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.active_rows, 10);
        assert_eq!(s.active_cols, 10);
    }
}
