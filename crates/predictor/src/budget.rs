//! Serve-time latency budget forecasting.
//!
//! The paper uses the Equation 3 predictor at *design* time, to decide
//! which architectures are worth training. This module reuses it at
//! *serve* time: [`BudgetForecast`] binds a [`DensePredictor`] to one
//! concrete architecture and answers "how long will a batch of `n`
//! documents take?", so a serving layer can route a batch to a cheaper
//! fallback *before* blowing its deadline. A safety factor absorbs the
//! predictor's optimism about real machines (allocator noise, cache
//! pollution from co-resident stages).

use crate::dense_pred::DensePredictor;
use std::time::Duration;

/// Per-batch latency forecast for one fixed architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetForecast {
    predictor: DensePredictor,
    input_dim: usize,
    hidden: Vec<usize>,
    safety_factor: f64,
    pruned_first_layer: bool,
    threads: usize,
}

impl BudgetForecast {
    /// Forecast for a dense network `input_dim → hidden… → 1`.
    pub fn dense(predictor: DensePredictor, input_dim: usize, hidden: Vec<usize>) -> Self {
        BudgetForecast {
            predictor,
            input_dim,
            hidden,
            safety_factor: 1.0,
            pruned_first_layer: false,
            threads: 1,
        }
    }

    /// Forecast for the same architecture with a ≥95%-sparse first layer,
    /// whose cost the §6 design rule treats as negligible.
    pub fn pruned(predictor: DensePredictor, input_dim: usize, hidden: Vec<usize>) -> Self {
        BudgetForecast {
            pruned_first_layer: true,
            ..Self::dense(predictor, input_dim, hidden)
        }
    }

    /// Multiply forecasts by `factor` (> 1 is pessimistic headroom).
    ///
    /// # Panics
    /// Panics when `factor` is not finite and positive.
    pub fn with_safety_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "safety factor must be finite and positive"
        );
        self.safety_factor = factor;
        self
    }

    /// Forecast for a scoring engine running on `threads` pool workers:
    /// predictions divide by the predictor's Amdahl
    /// [`speedup`](DensePredictor::speedup). `threads` is clamped to ≥ 1;
    /// the default is 1 (serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Pool workers this forecast assumes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Predicted wall-clock seconds to score a batch of `num_docs`.
    pub fn forecast_batch_secs(&self, num_docs: usize) -> f64 {
        if num_docs == 0 {
            return 0.0;
        }
        let us_per_doc = if self.pruned_first_layer {
            self.predictor.predict_pruned_us_per_doc_mt(
                self.input_dim,
                &self.hidden,
                num_docs,
                self.threads,
            )
        } else {
            self.predictor.predict_forward_us_per_doc_mt(
                self.input_dim,
                &self.hidden,
                num_docs,
                self.threads,
            )
        };
        us_per_doc * 1e-6 * num_docs as f64 * self.safety_factor
    }

    /// Predicted wall-clock time to score a batch of `num_docs`.
    pub fn forecast_batch(&self, num_docs: usize) -> Duration {
        Duration::from_secs_f64(self.forecast_batch_secs(num_docs).max(0.0))
    }

    /// Predicted nanoseconds to score a batch of `num_docs`, saturating
    /// at `u64::MAX`. Observability planes compare this integer against
    /// measured span durations, so offering it here keeps the
    /// prediction/measurement units identical without a lossy round-trip
    /// through `Duration` at every call site.
    pub fn forecast_batch_nanos(&self, num_docs: usize) -> u64 {
        let nanos = self.forecast_batch_secs(num_docs).max(0.0) * 1e9;
        if nanos >= u64::MAX as f64 {
            u64::MAX
        } else {
            nanos as u64
        }
    }

    /// Whether a batch of `num_docs` is predicted to fit `budget`.
    pub fn fits(&self, num_docs: usize, budget: Duration) -> bool {
        self.forecast_batch(num_docs) <= budget
    }

    /// Adapt into the closure shape serving layers consume (any
    /// `Fn(usize) -> Option<Duration>` is a latency forecaster).
    pub fn into_forecaster(self) -> impl Fn(usize) -> Option<Duration> {
        move |num_docs| Some(self.forecast_batch(num_docs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forecast() -> BudgetForecast {
        BudgetForecast::dense(DensePredictor::paper_i9_9900k(), 136, vec![128, 64, 32])
    }

    #[test]
    fn forecast_scales_with_batch_size() {
        let f = forecast();
        let one = f.forecast_batch_secs(1);
        let hundred = f.forecast_batch_secs(100);
        assert!(one > 0.0);
        assert!(hundred > one * 50.0, "cost must grow with the batch");
        assert_eq!(f.forecast_batch_secs(0), 0.0);
    }

    #[test]
    fn pruned_forecast_is_cheaper() {
        let dense = forecast();
        let pruned =
            BudgetForecast::pruned(DensePredictor::paper_i9_9900k(), 136, vec![128, 64, 32]);
        assert!(pruned.forecast_batch_secs(100) < dense.forecast_batch_secs(100));
    }

    #[test]
    fn safety_factor_multiplies() {
        let plain = forecast();
        let padded = forecast().with_safety_factor(2.0);
        let n = 64;
        let ratio = padded.forecast_batch_secs(n) / plain.forecast_batch_secs(n);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fits_compares_against_budget() {
        let f = forecast();
        let t = f.forecast_batch(100);
        assert!(f.fits(100, t + Duration::from_micros(1)));
        assert!(!f.fits(100, t.saturating_sub(Duration::from_micros(1))));
        let hook = f.into_forecaster();
        assert_eq!(hook(100), Some(t));
    }

    #[test]
    fn threads_shrink_the_forecast_by_the_amdahl_speedup() {
        let serial = forecast();
        let parallel = forecast().with_threads(4);
        assert_eq!(parallel.threads(), 4);
        let n = 512;
        let speedup = DensePredictor::paper_i9_9900k().speedup(4);
        let ratio = serial.forecast_batch_secs(n) / parallel.forecast_batch_secs(n);
        assert!((ratio - speedup).abs() < 1e-9, "ratio {ratio} vs {speedup}");
        // threads = 0 is clamped to serial.
        assert_eq!(
            forecast().with_threads(0).forecast_batch_secs(n),
            serial.forecast_batch_secs(n)
        );
        // The forecaster closure keeps the thread term.
        let hook = forecast().with_threads(4).into_forecaster();
        assert_eq!(hook(n), Some(parallel.forecast_batch(n)));
    }

    #[test]
    fn nanos_forecast_matches_the_duration_forecast() {
        let f = forecast();
        let nanos = f.forecast_batch_nanos(100);
        let dur = f.forecast_batch(100).as_nanos() as u64;
        let diff = nanos.abs_diff(dur);
        assert!(diff <= 1, "nanos {nanos} vs duration {dur}");
        assert_eq!(f.forecast_batch_nanos(0), 0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_safety_factor_rejected() {
        forecast().with_safety_factor(0.0);
    }
}
