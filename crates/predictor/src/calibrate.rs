//! On-host calibration of both predictors.
//!
//! The paper's predictors are "hybrid analytical-empirical": the formulas
//! are analytic, but the coefficients come from measurements on the target
//! CPU (§4.2's GFLOPS sweeps, §4.4's calibration-by-difference). This
//! module reruns those measurements on whatever machine the library is
//! deployed on, which is exactly what a user must do to predict scoring
//! times for *their* hardware.

use crate::dense_pred::DensePredictor;
use crate::sparse_pred::SparsePredictor;
use dlr_dense::measure_gemm_gflops;
use dlr_simd::Isa;
use dlr_sparse::{spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};
use std::time::Instant;

/// Both predictors calibrated on this machine.
///
/// Every coefficient here (GFLOPS zones, `L_a`/`L_b`/`L_c`) is a
/// *measurement* of the scoring kernels, and those kernels are dispatched
/// through `dlr-simd` at runtime — so a calibration is only valid for the
/// dispatch path that was active while it ran. The `isa` field records
/// that path; predictions should not be applied to a process whose active
/// ISA differs (e.g. a calibration taken under `DLR_SIMD=scalar` badly
/// overestimates AVX2 scoring times).
#[derive(Debug, Clone)]
pub struct HostCalibration {
    /// Dispatch path the kernels used during measurement.
    pub isa: Isa,
    /// Dense (Equation 3) predictor with host-measured GFLOPS zones.
    pub dense: DensePredictor,
    /// Sparse (Equation 5) predictor with host-measured coefficients.
    pub sparse: SparsePredictor,
}

impl HostCalibration {
    /// Run both calibrations under the process's active dispatch choice.
    /// `quick` trades accuracy for speed (fewer repetitions, smaller probe
    /// matrices) — appropriate for tests and CI; experiments should pass
    /// `false`.
    pub fn measure(quick: bool) -> HostCalibration {
        // Resolve the dispatch choice *before* measuring so the recorded
        // label is exactly what the probed kernels used.
        let isa = dlr_simd::active();
        HostCalibration {
            isa,
            dense: calibrate_dense(quick),
            sparse: calibrate_sparse(quick),
        }
    }

    /// [`Self::measure`] with the kernel dispatch pinned to `isa` for the
    /// duration of the measurement (restored afterwards). Use this to
    /// build a per-ISA table of predictors — e.g. to forecast how scoring
    /// budgets shift on hosts without AVX2.
    ///
    /// The pin is process-wide ([`dlr_simd::force`]), so kernels running
    /// concurrently on other threads will also observe it; calibrate from
    /// a quiet process.
    ///
    /// # Errors
    /// When `isa` is not supported on this host, returns the host's best
    /// supported level without measuring anything.
    pub fn measure_forced(isa: Isa, quick: bool) -> Result<HostCalibration, Isa> {
        let prev = dlr_simd::force(isa)?;
        let cal = HostCalibration {
            isa,
            dense: calibrate_dense(quick),
            sparse: calibrate_sparse(quick),
        };
        // Restoring the previous choice cannot fail: `force` returned it,
        // so it was supported.
        let _ = dlr_simd::force(prev);
        Ok(cal)
    }
}

/// Measure GFLOPS over an `(m, k)` probe grid at a representative batch
/// size and collapse the measurements into the paper's three `k`-zones
/// (boundaries at 128 and 512, Figure 6).
pub fn calibrate_dense(quick: bool) -> DensePredictor {
    let (n, reps) = if quick { (128, 3) } else { (1000, 7) };
    let ms: &[usize] = if quick { &[64, 256] } else { &[64, 256, 512] };
    let zone_ks: [&[usize]; 3] = if quick {
        [&[32, 96], &[192, 384], &[768]]
    } else {
        [&[32, 64, 128], &[192, 256, 512], &[768, 1024]]
    };
    let mut zones = Vec::with_capacity(3);
    let bounds = [128usize, 512, usize::MAX];
    for (zi, ks) in zone_ks.iter().enumerate() {
        let mut samples = Vec::new();
        for &k in ks.iter() {
            for &m in ms {
                samples.push(measure_gemm_gflops(m, k, n, 1, reps));
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite GFLOPS"));
        let median = samples[samples.len() / 2];
        zones.push((bounds[zi], median.max(0.01)));
    }
    DensePredictor::from_zones(zones)
}

/// Median seconds for one `A·B` with the LIBXSMM-style kernel, timing
/// batches of repetitions to beat clock resolution on sub-µs kernels.
pub fn time_spmm(a: &CsrMatrix, n: usize, reps: usize) -> f64 {
    let b: Vec<f32> = (0..a.cols() * n)
        .map(|i| ((i * 37) % 17) as f32 / 7.0 - 1.0)
        .collect();
    let packed = PackedB::pack(&b, a.cols(), n);
    let mut c = vec![0.0f32; a.rows() * n];
    let mut ws = SpmmWorkspace::default();
    // Warm up and estimate a single-shot duration.
    spmm_xsmm_packed(a, &packed, &mut c, &mut ws);
    let t = Instant::now();
    spmm_xsmm_packed(a, &packed, &mut c, &mut ws);
    let single = t.elapsed().as_secs_f64().max(1e-9);
    // Aim for ~2 ms per timed sample.
    let inner = ((2e-3 / single) as usize).clamp(1, 200_000);
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for _ in 0..inner {
            spmm_xsmm_packed(a, &packed, &mut c, &mut ws);
        }
        samples.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("finite durations"));
    samples[samples.len() / 2]
}

/// Single-column matrix `A_c`: one non-zero per row, all in column 0.
fn matrix_ac(m: usize, k: usize) -> CsrMatrix {
    CsrMatrix::new(m, k, vec![0.5; m], vec![0; m], (0..=m).collect())
        .expect("valid single-column CSR")
}

/// Two-column matrix `A_2c`: two non-zeros per row, columns 0 and 1.
fn matrix_a2c(m: usize, k: usize) -> CsrMatrix {
    let values = vec![0.5; 2 * m];
    let col_idx: Vec<u32> = (0..m).flat_map(|_| [0u32, 1]).collect();
    let row_ptr: Vec<usize> = (0..=m).map(|i| 2 * i).collect();
    CsrMatrix::new(m, k, values, col_idx, row_ptr).expect("valid two-column CSR")
}

/// Permutation matrix `A_rd`: one non-zero per row *and* per column, with
/// the column order randomized (seeded). A plain diagonal would walk B's
/// rows sequentially — prefetch-friendly in a way real pruned layers never
/// are — and underestimate `L_b`.
fn matrix_ard(m: usize, k: usize) -> CsrMatrix {
    assert!(k >= m, "permutation construction needs k >= m");
    let mut cols: Vec<u32> = (0..m as u32).collect();
    // Deterministic Fisher–Yates with a small LCG; no RNG dependency here.
    let mut state = 0x2545F4914F6CDD1Du64 ^ (m as u64);
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        cols.swap(i, j);
    }
    CsrMatrix::new(m, k, vec![0.5; m], cols, (0..=m).collect()).expect("valid permutation CSR")
}

/// The §4.4 calibration-by-difference:
///
/// ```text
/// T(A_rd) − T(A_c)  = (k − 1)·L_b          →  L_b
/// T(A_2c) − T(A_c)  = nnz·L_a + L_b        →  L_a
/// T(A_c)            = m·L_c + m·L_a + L_b  →  L_c
/// ```
///
/// Coefficients are N-normalized and averaged over the paper's grid
/// (M = K ∈ {200..500}, N ∈ {16, 32, 64}).
///
/// **Deviation from the paper:** the paper sets `L_c = 2·L_b`, an
/// identity they verified empirically for LIBXSMM's JIT-generated code.
/// Our generic (non-JIT) kernel pays a larger per-row cost — loop setup
/// and the accumulator store — so `L_c` is *measured* from `T(A_c)`
/// instead, which the three probe matrices determine for free. The
/// paper-faithful constructor [`SparsePredictor::from_la_lb`] still
/// applies `L_c = 2·L_b` for users with hardwired kernels.
pub fn calibrate_sparse(quick: bool) -> SparsePredictor {
    let sizes: &[usize] = if quick {
        &[200, 300]
    } else {
        &[200, 300, 400, 500]
    };
    let ns: &[usize] = if quick { &[32] } else { &[16, 32, 64] };
    let reps = if quick { 3 } else { 7 };
    let mut las = Vec::new();
    let mut lbs = Vec::new();
    let mut lcs = Vec::new();
    for &mk in sizes {
        let (m, k) = (mk, mk);
        let ac = matrix_ac(m, k);
        let ard = matrix_ard(m, k);
        let a2c = matrix_a2c(m, k);
        for &n in ns {
            let t_ac = time_spmm(&ac, n, reps);
            let t_ard = time_spmm(&ard, n, reps);
            let t_a2c = time_spmm(&a2c, n, reps);
            let lb = (t_ard - t_ac) / (k - 1) as f64 / n as f64;
            let la = (t_a2c - t_ac - lb * n as f64) / m as f64 / n as f64;
            if lb.is_finite() && lb > 0.0 {
                lbs.push(lb);
            }
            if la.is_finite() && la > 0.0 {
                las.push(la);
                let lc = (t_ac / n as f64 - lb) / m as f64 - la;
                if lc.is_finite() && lc > 0.0 {
                    lcs.push(lc);
                }
            }
        }
    }
    let mean = |v: &[f64], fallback: f64| {
        if v.is_empty() {
            fallback
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    // Fall back to paper-like magnitudes if a term was unmeasurable
    // (timer noise on very fast machines).
    let paper = SparsePredictor::paper_like();
    let la = mean(&las, paper.la);
    let lb = mean(&lbs, paper.lb);
    let lc = mean(&lcs, 2.0 * lb);
    SparsePredictor {
        la,
        lb,
        lc,
        serial_fraction: paper.serial_fraction,
    }
}

/// Fit the Amdahl serial fraction from one serial/parallel timing pair:
/// solving `T(p) = T(1)·(s + (1 − s)/p)` for `s` gives
/// `s = (p·T(p)/T(1) − 1) / (p − 1)`, clamped to `[0, 1]` (timer noise
/// can push the raw estimate outside the physical range; a parallel run
/// *slower* than serial clamps to a fully-serial 1.0).
///
/// The measurement half lives next to the parallel drivers
/// (`dlr-core::parallel::measure_gemm_speedup`); this is the pure fitting
/// step, usable with any externally-timed kernel. `threads <= 1` carries
/// no information about scaling and returns the default fraction.
pub fn fit_serial_fraction(serial_secs: f64, parallel_secs: f64, threads: usize) -> f64 {
    let usable = |t: f64| t.is_finite() && t > 0.0;
    if threads <= 1 || !usable(serial_secs) || !usable(parallel_secs) {
        return crate::dense_pred::DEFAULT_SERIAL_FRACTION;
    }
    let p = threads as f64;
    let ratio = parallel_secs / serial_secs;
    ((p * ratio - 1.0) / (p - 1.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_pred::CsrShapeStats;

    #[test]
    fn calibration_matrices_have_the_prescribed_structure() {
        let ac = matrix_ac(5, 7);
        assert_eq!(ac.nnz(), 5);
        assert_eq!(ac.active_rows(), 5);
        assert_eq!(ac.active_cols(), 1);
        let ard = matrix_ard(5, 7);
        assert_eq!(ard.nnz(), 5);
        assert_eq!(ard.active_cols(), 5);
        let a2c = matrix_a2c(5, 7);
        assert_eq!(a2c.nnz(), 10);
        assert_eq!(a2c.active_cols(), 2);
    }

    #[test]
    fn quick_dense_calibration_produces_sane_zones() {
        let p = calibrate_dense(true);
        assert_eq!(p.zones().len(), 3);
        for &(_, g) in p.zones() {
            assert!(g > 0.01 && g < 10_000.0, "GFLOPS {g}");
        }
    }

    #[test]
    fn quick_sparse_calibration_produces_positive_coefficients() {
        let p = calibrate_sparse(true);
        assert!(p.la > 0.0 && p.la < 1e-5, "la = {}", p.la);
        assert!(p.lb > 0.0 && p.lb < 1e-5, "lb = {}", p.lb);
        // L_c is measured (see the calibrate_sparse docs); it must be a
        // positive per-row cost of plausible magnitude.
        assert!(p.lc > 0.0 && p.lc < 1e-5, "lc = {}", p.lc);
    }

    #[test]
    fn calibrated_sparse_predictor_tracks_measurements() {
        // Predict a structured matrix the calibration never saw and check
        // the prediction lands within a generous factor of the measured
        // time (timers on shared machines are noisy).
        let p = calibrate_sparse(true);
        let m = 300;
        let k = 300;
        // Three non-zeros per row across three columns.
        let values = vec![0.5f32; 3 * m];
        let col_idx: Vec<u32> = (0..m).flat_map(|_| [0u32, 1, 2]).collect();
        let row_ptr: Vec<usize> = (0..=m).map(|i| 3 * i).collect();
        let a = CsrMatrix::new(m, k, values, col_idx, row_ptr).unwrap();
        let n = 32;
        let measured = time_spmm(&a, n, 3);
        let predicted = p.predict_secs(CsrShapeStats::of(&a), n);
        let ratio = predicted / measured;
        assert!(
            (0.2..5.0).contains(&ratio),
            "predicted {predicted:.2e}s vs measured {measured:.2e}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn serial_fraction_fit_inverts_amdahl() {
        // Perfect 4-thread scaling of the parallel 90% → s = 0.1 exactly.
        let s = 0.1;
        let t1 = 2.0;
        let t4 = t1 * (s + (1.0 - s) / 4.0);
        assert!((fit_serial_fraction(t1, t4, 4) - s).abs() < 1e-12);
        // Embarrassingly parallel: T(p) = T(1)/p → s = 0.
        assert_eq!(fit_serial_fraction(1.0, 0.25, 4), 0.0);
        // No speedup at all → fully serial.
        assert_eq!(fit_serial_fraction(1.0, 1.0, 4), 1.0);
        // Slower than serial (noise) clamps instead of going above 1.
        assert_eq!(fit_serial_fraction(1.0, 1.5, 4), 1.0);
        // Superlinear (cache effects) clamps at 0.
        assert_eq!(fit_serial_fraction(1.0, 0.1, 4), 0.0);
        // Degenerate inputs fall back to the default.
        let d = crate::dense_pred::DEFAULT_SERIAL_FRACTION;
        assert_eq!(fit_serial_fraction(1.0, 0.5, 1), d);
        assert_eq!(fit_serial_fraction(0.0, 0.5, 4), d);
        assert_eq!(fit_serial_fraction(1.0, f64::NAN, 4), d);
    }

    /// `measure_forced` mutates the process-wide dispatch choice; the two
    /// tests touching it serialize on this lock so neither observes the
    /// other's temporary pin.
    static DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn forced_calibration_tags_the_isa_and_restores_dispatch() {
        let _guard = DISPATCH_LOCK.lock().expect("dispatch lock");
        let before = dlr_simd::active();
        // Scalar is supported everywhere, so the forced path always runs.
        let cal =
            HostCalibration::measure_forced(Isa::Scalar, true).expect("scalar is always supported");
        assert_eq!(cal.isa, Isa::Scalar);
        assert!(cal.sparse.la > 0.0 && cal.dense.zones().len() == 3);
        assert_eq!(dlr_simd::active(), before, "dispatch choice restored");
    }

    #[test]
    fn host_calibration_records_the_active_isa() {
        let _guard = DISPATCH_LOCK.lock().expect("dispatch lock");
        // Zone/coefficient sanity is covered by the quick_* tests; here we
        // only check the label matches the process's dispatch choice.
        let cal = HostCalibration::measure(true);
        assert_eq!(cal.isa, dlr_simd::active());
    }

    #[test]
    fn time_spmm_scales_with_batch() {
        let a = matrix_a2c(200, 200);
        let t16 = time_spmm(&a, 16, 3);
        let t128 = time_spmm(&a, 128, 3);
        assert!(t128 > t16, "t128 {t128} <= t16 {t16}");
    }
}
