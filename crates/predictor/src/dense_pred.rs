//! The dense forward-pass time predictor (Equation 3 + the Figure 6
//! GFLOPS zones).

/// Predicts dense GEMM / forward-pass times from a `k`-keyed GFLOPS
/// lookup table.
///
/// §4.2 observes that a single size-independent `t_m` is unreliable; the
/// heatmap of Figure 6 collapses into horizontal stripes along `k`, so
/// GFLOPS are modeled as a step function of the reduction dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DensePredictor {
    /// `(k_upper_inclusive, gflops)` sorted by `k_upper_inclusive`
    /// ascending; the last entry must have `k_upper_inclusive == usize::MAX`.
    zones: Vec<(usize, f64)>,
    /// Amdahl serial fraction of the parallel GEMM driver: the share of a
    /// batch's time (packing B̃, dispatch, stragglers) that does not
    /// shrink with more threads. Calibrated by
    /// `calibrate::fit_serial_fraction`; see [`Self::speedup`].
    serial_fraction: f64,
}

/// Default Amdahl serial fraction when no calibration has run: packing B̃
/// plus dispatch overhead is a ~10% share on the mid-size batches the
/// paper benchmarks.
pub const DEFAULT_SERIAL_FRACTION: f64 = 0.1;

impl DensePredictor {
    /// The paper's measured zones for the i9-9900K (Figure 6):
    /// k ≤ 128 → 90 GFLOPS, 128 < k ≤ 512 → 110, k > 512 → 130.
    pub fn paper_i9_9900k() -> DensePredictor {
        DensePredictor::from_zones(vec![(128, 90.0), (512, 110.0), (usize::MAX, 130.0)])
    }

    /// Build from explicit zones.
    ///
    /// # Panics
    /// Panics when zones are empty, unsorted, non-positive, or the last
    /// zone does not cover all `k`.
    pub fn from_zones(zones: Vec<(usize, f64)>) -> DensePredictor {
        assert!(!zones.is_empty(), "need at least one zone");
        assert!(
            zones.windows(2).all(|w| w[0].0 < w[1].0),
            "zones must be sorted by k upper bound"
        );
        assert!(
            zones.iter().all(|&(_, g)| g > 0.0),
            "GFLOPS must be positive"
        );
        assert_eq!(
            zones.last().expect("non-empty").0,
            usize::MAX,
            "last zone must cover all k"
        );
        DensePredictor {
            zones,
            serial_fraction: DEFAULT_SERIAL_FRACTION,
        }
    }

    /// Replace the Amdahl serial fraction (clamped to `[0, 1]`), usually
    /// with a value fitted by `calibrate::fit_serial_fraction`.
    pub fn with_serial_fraction(mut self, serial_fraction: f64) -> DensePredictor {
        self.serial_fraction = serial_fraction.clamp(0.0, 1.0);
        self
    }

    /// The Amdahl serial fraction used by the `_mt` predictions.
    pub fn serial_fraction(&self) -> f64 {
        self.serial_fraction
    }

    /// Predicted speedup at `threads` workers, Amdahl's law:
    /// `1 / (s + (1 - s)/p)` with `s` the [serial
    /// fraction](Self::serial_fraction).
    pub fn speedup(&self, threads: usize) -> f64 {
        let p = threads.max(1) as f64;
        let s = self.serial_fraction;
        1.0 / (s + (1.0 - s) / p)
    }

    /// The zone table.
    pub fn zones(&self) -> &[(usize, f64)] {
        &self.zones
    }

    /// Effective GFLOPS for a reduction dimension `k`.
    pub fn gflops_for(&self, k: usize) -> f64 {
        for &(upper, g) in &self.zones {
            if k <= upper {
                return g;
            }
        }
        unreachable!("last zone covers usize::MAX")
    }

    /// Predicted seconds for one `m×k · k×n` GEMM (`2·m·k·n` FLOPs).
    pub fn predict_matmul_secs(&self, m: usize, k: usize, n: usize) -> f64 {
        2.0 * m as f64 * k as f64 * n as f64 / (self.gflops_for(k) * 1e9)
    }

    /// Per-layer predicted seconds of a full forward pass on a batch of
    /// `n` documents for the architecture
    /// `input_dim → hidden[0] → … → hidden.last() → 1`.
    pub fn predict_layers_secs(&self, input_dim: usize, hidden: &[usize], n: usize) -> Vec<f64> {
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(1);
        dims.windows(2)
            .map(|w| self.predict_matmul_secs(w[1], w[0], n))
            .collect()
    }

    /// Predicted scoring time in µs/document (Equation 3, with the bias
    /// and activation terms dropped as the paper does).
    pub fn predict_forward_us_per_doc(&self, input_dim: usize, hidden: &[usize], n: usize) -> f64 {
        let total: f64 = self.predict_layers_secs(input_dim, hidden, n).iter().sum();
        total / n.max(1) as f64 * 1e6
    }

    /// Relative execution-time share of each layer (Table 7's breakdown).
    pub fn layer_impacts(&self, input_dim: usize, hidden: &[usize], n: usize) -> Vec<f64> {
        let layers = self.predict_layers_secs(input_dim, hidden, n);
        let total: f64 = layers.iter().sum();
        if total <= 0.0 {
            return vec![0.0; layers.len()];
        }
        layers.iter().map(|&t| t / total).collect()
    }

    /// Predicted µs/doc after pruning the first layer to ≥ 95% sparsity —
    /// the §6 design rule: "forecast the overall execution time by
    /// subtracting the contribution of the dense first layer", whose
    /// sparse replacement is negligible at that sparsity (Figure 11).
    pub fn predict_pruned_us_per_doc(&self, input_dim: usize, hidden: &[usize], n: usize) -> f64 {
        let layers = self.predict_layers_secs(input_dim, hidden, n);
        let total: f64 = layers.iter().sum();
        (total - layers[0]) / n.max(1) as f64 * 1e6
    }

    /// [`Self::predict_matmul_secs`] on `threads` workers — the Eq. 3 time
    /// divided by the Amdahl [`Self::speedup`].
    pub fn predict_matmul_secs_mt(&self, m: usize, k: usize, n: usize, threads: usize) -> f64 {
        self.predict_matmul_secs(m, k, n) / self.speedup(threads)
    }

    /// [`Self::predict_forward_us_per_doc`] on `threads` workers.
    pub fn predict_forward_us_per_doc_mt(
        &self,
        input_dim: usize,
        hidden: &[usize],
        n: usize,
        threads: usize,
    ) -> f64 {
        self.predict_forward_us_per_doc(input_dim, hidden, n) / self.speedup(threads)
    }

    /// [`Self::predict_pruned_us_per_doc`] on `threads` workers.
    pub fn predict_pruned_us_per_doc_mt(
        &self,
        input_dim: usize,
        hidden: &[usize],
        n: usize,
        threads: usize,
    ) -> f64 {
        self.predict_pruned_us_per_doc(input_dim, hidden, n) / self.speedup(threads)
    }
}

impl Default for DensePredictor {
    fn default() -> Self {
        DensePredictor::paper_i9_9900k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_zones() {
        let p = DensePredictor::paper_i9_9900k();
        assert_eq!(p.gflops_for(1), 90.0);
        assert_eq!(p.gflops_for(128), 90.0);
        assert_eq!(p.gflops_for(129), 110.0);
        assert_eq!(p.gflops_for(512), 110.0);
        assert_eq!(p.gflops_for(513), 130.0);
        assert_eq!(p.gflops_for(1_000_000), 130.0);
    }

    #[test]
    fn matmul_prediction_formula() {
        let p = DensePredictor::from_zones(vec![(usize::MAX, 100.0)]);
        // 2*100*200*50 = 2e6 FLOPs at 100 GFLOPS = 20 µs.
        let secs = p.predict_matmul_secs(100, 200, 50);
        assert!((secs - 2e-5).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_shapes_are_in_the_right_ballpark() {
        // Table 2 predicts 14.5 µs/doc for 1000×500×500×100 on 136
        // features at batch 1000, and 1.3 µs/doc for 200×100×100×50.
        let p = DensePredictor::paper_i9_9900k();
        let big = p.predict_forward_us_per_doc(136, &[1000, 500, 500, 100], 1000);
        assert!(
            (10.0..20.0).contains(&big),
            "1000×500×500×100 → {big:.1} µs"
        );
        let small = p.predict_forward_us_per_doc(136, &[200, 100, 100, 50], 1000);
        assert!(
            (0.8..2.0).contains(&small),
            "200×100×100×50 → {small:.2} µs"
        );
        // And the 500×100 two-layer net ≈ 2.2 µs in Table 2.
        let two = p.predict_forward_us_per_doc(136, &[500, 100], 1000);
        assert!((1.2..3.2).contains(&two), "500×100 → {two:.2} µs");
    }

    #[test]
    fn first_layer_dominates_small_architectures() {
        // Table 7: for 100×50×50×10, the first layer is ~60% of the time.
        let p = DensePredictor::paper_i9_9900k();
        let impacts = p.layer_impacts(136, &[100, 50, 50, 10], 1000);
        assert_eq!(impacts.len(), 5);
        assert!(impacts[0] > 0.5, "first layer impact {:.2}", impacts[0]);
        let sum: f64 = impacts.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pruned_prediction_subtracts_first_layer() {
        let p = DensePredictor::paper_i9_9900k();
        let dense = p.predict_forward_us_per_doc(136, &[200, 100, 100, 50], 1000);
        let pruned = p.predict_pruned_us_per_doc(136, &[200, 100, 100, 50], 1000);
        let impact = p.layer_impacts(136, &[200, 100, 100, 50], 1000)[0];
        assert!((pruned - dense * (1.0 - impact)).abs() < 1e-9);
        assert!(pruned < dense);
    }

    #[test]
    fn deeper_zones_change_predictions() {
        let fast = DensePredictor::from_zones(vec![(usize::MAX, 200.0)]);
        let slow = DensePredictor::from_zones(vec![(usize::MAX, 50.0)]);
        let f = fast.predict_forward_us_per_doc(136, &[400, 200], 512);
        let s = slow.predict_forward_us_per_doc(136, &[400, 200], 512);
        assert!((s / f - 4.0).abs() < 1e-6);
    }

    #[test]
    fn amdahl_speedup_behaves() {
        let p = DensePredictor::paper_i9_9900k();
        // Defaults: s = 0.1 → speedup(1) = 1, speedup(4) = 1/(0.1+0.225).
        assert!((p.speedup(1) - 1.0).abs() < 1e-12);
        assert!((p.speedup(4) - 1.0 / 0.325).abs() < 1e-9);
        // Monotone in threads, bounded by 1/s.
        assert!(p.speedup(2) < p.speedup(4));
        assert!(p.speedup(1_000_000) < 1.0 / p.serial_fraction() + 1e-9);
        // Fully serial workload never speeds up.
        let serial = p.clone().with_serial_fraction(1.0);
        assert!((serial.speedup(64) - 1.0).abs() < 1e-12);
        // Out-of-range fractions are clamped.
        assert_eq!(
            DensePredictor::paper_i9_9900k()
                .with_serial_fraction(7.0)
                .serial_fraction(),
            1.0
        );
        // `_mt` predictions divide the serial time by the speedup.
        let t1 = p.predict_forward_us_per_doc(136, &[200, 100], 1000);
        let t4 = p.predict_forward_us_per_doc_mt(136, &[200, 100], 1000, 4);
        assert!((t4 - t1 / p.speedup(4)).abs() < 1e-9);
        let m1 = p.predict_matmul_secs(100, 200, 50);
        assert!((p.predict_matmul_secs_mt(100, 200, 50, 1) - m1).abs() < 1e-15);
        let pr1 = p.predict_pruned_us_per_doc(136, &[200, 100], 1000);
        let pr4 = p.predict_pruned_us_per_doc_mt(136, &[200, 100], 1000, 4);
        assert!(pr4 < pr1);
    }

    #[test]
    #[should_panic(expected = "last zone")]
    fn zones_must_cover_all_k() {
        DensePredictor::from_zones(vec![(100, 90.0)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn zones_must_be_sorted() {
        DensePredictor::from_zones(vec![(512, 110.0), (128, 90.0), (usize::MAX, 130.0)]);
    }
}
