#![forbid(unsafe_code)]
//! Analytic scoring-time predictors for neural rankers (§4.2, §4.4).
//!
//! The paper's methodological contribution: estimate the forward-pass time
//! of a feed-forward network *before training it*, from nothing but the
//! architecture (layer sizes) and per-layer sparsity. Two predictors:
//!
//! * [`DensePredictor`] — Equation 3. The total time is dominated by the
//!   per-layer GEMMs, `T ≈ t_m · (f·l₁ + Σ l_i·l_{i−1} + l_d)`, where
//!   `t_m = 1/GFLOPS` is *not* constant: measured GFLOPS depend strongly
//!   on the reduction dimension `k` (Figures 4–6). The predictor therefore
//!   keeps a small lookup table of GFLOPS zones keyed by `k`, either the
//!   paper's i9-9900K values (130/110/90 GFLOPS for k ≥ 512 / 128–512 /
//!   ≤ 128) or values calibrated on the host with
//!   [`calibrate::calibrate_dense`].
//! * [`SparsePredictor`] — Equation 5,
//!   `T = |a_r|·L_c + nnz·L_a + |a_c|·L_b`, with the three coefficients
//!   recovered *by difference* from three specially-structured matrices
//!   (single-column `A_c`, one-nonzero-per-row-and-column `A_rd`,
//!   two-column `A_2c`), exactly the §4.4 procedure.
//!
//! [`search`] turns the predictors into the paper's §5.2 design loop:
//! enumerate architectures, predict dense and pruned-first-layer times,
//! and train *only* the candidates that fit the latency budget.

pub mod budget;
pub mod calibrate;
pub mod dense_pred;
pub mod search;
pub mod sparse_pred;

pub use budget::BudgetForecast;
pub use calibrate::{calibrate_dense, calibrate_sparse, fit_serial_fraction, HostCalibration};
pub use dense_pred::{DensePredictor, DEFAULT_SERIAL_FRACTION};
pub use search::{design_architectures, ArchCandidate, SearchSpace};
pub use sparse_pred::{CsrShapeStats, SparsePredictor};
