//! Architecture design under a latency budget (§5.2, §6.1).
//!
//! The paper's design loop: given the scoring time of the tree-based
//! competitor (or an SLA), enumerate candidate architectures, predict
//! their dense and pruned-first-layer scoring times with the analytic
//! predictors, and train *only* the candidates that fit — "tearing down
//! the costs, in terms of time and energy consumption, of the
//! experimental phase".

use crate::dense_pred::DensePredictor;

/// The enumeration space for candidate architectures.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Allowed hidden-layer widths, e.g. the paper's menu of
    /// 25/50/…/1000.
    pub widths: Vec<usize>,
    /// Allowed hidden-layer counts (the paper proposes 2, 3 and 4).
    pub depths: Vec<usize>,
    /// Batch size the latency is evaluated at.
    pub batch: usize,
    /// Pool workers the serving host scores with (1 = serial). Predicted
    /// times divide by the predictor's Amdahl speedup at this count, so a
    /// multi-core budget admits larger architectures.
    pub threads: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            widths: vec![
                10, 25, 30, 50, 75, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1000,
            ],
            depths: vec![2, 3, 4],
            batch: 1000,
            threads: 1,
        }
    }
}

/// One candidate architecture with its predicted costs.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchCandidate {
    /// Hidden sizes, e.g. `[400, 200, 200, 100]`.
    pub hidden: Vec<usize>,
    /// Predicted dense scoring time (µs/doc).
    pub dense_us: f64,
    /// Predicted first-layer share of the dense time (Tables 10–11).
    pub first_layer_impact: f64,
    /// Predicted scoring time after pruning the first layer (µs/doc).
    pub pruned_us: f64,
}

/// Enumerate all monotone (non-increasing) hidden-size sequences from the
/// space and keep those whose *pruned* predicted time fits
/// `budget_us_per_doc`. Results are sorted by predicted dense time,
/// largest (most expressive) first, so callers can train the top few.
pub fn design_architectures(
    predictor: &DensePredictor,
    input_dim: usize,
    budget_us_per_doc: f64,
    space: &SearchSpace,
) -> Vec<ArchCandidate> {
    let mut out = Vec::new();
    let threads = space.threads.max(1);
    for &depth in &space.depths {
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(partial) = stack.pop() {
            if partial.len() == depth {
                let dense_us = predictor.predict_forward_us_per_doc_mt(
                    input_dim,
                    &partial,
                    space.batch,
                    threads,
                );
                let pruned_us = predictor.predict_pruned_us_per_doc_mt(
                    input_dim,
                    &partial,
                    space.batch,
                    threads,
                );
                if pruned_us <= budget_us_per_doc {
                    let impact = if dense_us > 0.0 {
                        1.0 - pruned_us / dense_us
                    } else {
                        0.0
                    };
                    out.push(ArchCandidate {
                        hidden: partial,
                        dense_us,
                        first_layer_impact: impact,
                        pruned_us,
                    });
                }
                continue;
            }
            let cap = partial.last().copied().unwrap_or(usize::MAX);
            for &w in space.widths.iter().filter(|&&w| w <= cap) {
                // Cheap lower bound: a partial architecture's pruned time
                // only grows as layers are appended; prune the branch when
                // it already exceeds the budget.
                let mut probe = partial.clone();
                probe.push(w);
                let lower =
                    predictor.predict_pruned_us_per_doc_mt(input_dim, &probe, space.batch, threads);
                if lower <= budget_us_per_doc {
                    stack.push(probe);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        b.dense_us
            .partial_cmp(&a.dense_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.hidden.cmp(&a.hidden))
    });
    out.dedup_by(|a, b| a.hidden == b.hidden);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> DensePredictor {
        DensePredictor::paper_i9_9900k()
    }

    fn small_space() -> SearchSpace {
        SearchSpace {
            widths: vec![25, 50, 100, 200, 400],
            depths: vec![2, 3, 4],
            batch: 1000,
            threads: 1,
        }
    }

    #[test]
    fn all_candidates_fit_the_budget() {
        let c = design_architectures(&predictor(), 136, 1.0, &small_space());
        assert!(!c.is_empty());
        for cand in &c {
            assert!(
                cand.pruned_us <= 1.0,
                "{:?} pruned {}",
                cand.hidden,
                cand.pruned_us
            );
            assert_eq!(cand.hidden.len(), cand.hidden.len(),);
            // Monotone non-increasing widths.
            assert!(
                cand.hidden.windows(2).all(|w| w[0] >= w[1]),
                "{:?}",
                cand.hidden
            );
        }
    }

    #[test]
    fn sorted_most_expressive_first() {
        let c = design_architectures(&predictor(), 136, 2.0, &small_space());
        for w in c.windows(2) {
            assert!(w[0].dense_us >= w[1].dense_us - 1e-12);
        }
    }

    #[test]
    fn tighter_budget_fewer_candidates() {
        let loose = design_architectures(&predictor(), 136, 5.0, &small_space());
        let tight = design_architectures(&predictor(), 136, 0.2, &small_space());
        assert!(tight.len() < loose.len());
        // Every tight candidate also appears under the loose budget.
        for t in &tight {
            assert!(loose.iter().any(|l| l.hidden == t.hidden));
        }
    }

    #[test]
    fn impact_matches_predictor_breakdown() {
        let c = design_architectures(&predictor(), 136, 3.0, &small_space());
        let cand = c.first().expect("non-empty");
        let impacts = predictor().layer_impacts(136, &cand.hidden, 1000);
        assert!((cand.first_layer_impact - impacts[0]).abs() < 1e-9);
    }

    #[test]
    fn paper_high_quality_candidates_appear() {
        // Table 10: 200×100×100×50 predicts 0.8 µs pruned; under a 1 µs
        // budget it must be discovered.
        let space = SearchSpace {
            widths: vec![25, 50, 100, 200, 300],
            depths: vec![3, 4],
            batch: 1000,
            threads: 1,
        };
        let c = design_architectures(&predictor(), 136, 1.0, &space);
        assert!(
            c.iter().any(|cand| cand.hidden == vec![200, 100, 100, 50]),
            "expected 200×100×100×50 in {:?}",
            c.iter().map(|x| x.hidden.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_threads_admit_larger_architectures() {
        // The same budget on a 4-thread host must admit a superset of the
        // serial candidates: every time is divided by the Amdahl speedup.
        let serial = design_architectures(&predictor(), 136, 1.0, &small_space());
        let mut mt_space = small_space();
        mt_space.threads = 4;
        let parallel = design_architectures(&predictor(), 136, 1.0, &mt_space);
        assert!(parallel.len() > serial.len());
        for s in &serial {
            assert!(
                parallel.iter().any(|p| p.hidden == s.hidden),
                "{:?} lost when threads grew",
                s.hidden
            );
        }
        // Reported times carry the thread speedup.
        let speedup = predictor().speedup(4);
        let probe_hidden = &serial[0].hidden;
        let p = parallel
            .iter()
            .find(|c| &c.hidden == probe_hidden)
            .expect("superset");
        assert!((serial[0].pruned_us / p.pruned_us - speedup).abs() < 1e-9);
        // threads = 0 behaves like serial.
        let mut zero = small_space();
        zero.threads = 0;
        let z = design_architectures(&predictor(), 136, 1.0, &zero);
        assert_eq!(z.len(), serial.len());
    }

    #[test]
    fn no_duplicates() {
        let c = design_architectures(&predictor(), 136, 2.0, &small_space());
        let mut seen = std::collections::BTreeSet::new();
        for cand in &c {
            assert!(
                seen.insert(cand.hidden.clone()),
                "duplicate {:?}",
                cand.hidden
            );
        }
    }
}
