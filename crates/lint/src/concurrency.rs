//! Concurrency-correctness passes: lock ordering, atomics discipline,
//! dispatcher blocking, and guards held across unwind boundaries.
//!
//! These passes build a lightweight *brace-tree model* on top of the
//! token stream — function spans (`fn` ident → matched body braces) and
//! a per-function guard-liveness walk — rather than a full parser. A
//! guard becomes live at `let g = ….lock()…;` (or a call to a same-file
//! helper returning `MutexGuard`) and dies at `drop(g)` or the end of
//! its enclosing block. Same-file call summaries are propagated to a
//! fixpoint, so `f` holding a guard while calling `g`, which locks a
//! second mutex three helpers deep, is still seen.
//!
//! What each pass flags:
//!
//! * **LOCK_ORDER** — a second acquisition while a guard on a
//!   *different* mutex is live (a lock-order edge; the workspace level
//!   assembles all edges and reports cycles), or on the *same* label
//!   (a self-deadlock with `std::sync::Mutex`).
//! * **ATOMIC_ORDERING** — `Ordering::Relaxed` on an atomic whose name
//!   matches a configured publish/ready/shutdown pattern. Relaxed is
//!   fine for pure counters; it is wrong for flags that publish other
//!   memory.
//! * **BLOCKING_IN_DISPATCHER** — condvar waits, joins, sleeps, file
//!   I/O or formatting in the configured dispatcher batch-execution /
//!   kernel hot-path functions.
//! * **GUARD_ACROSS_AWAITABLE** — a `MutexGuard` held across
//!   `catch_unwind` or a user-scorer callback (`.score_batch(…)`):
//!   either can run arbitrary model code, and an unwind with the lock
//!   held poisons it on the serving path.
//!
//! The model is deliberately conservative: liveness extends to the end
//! of the enclosing block even past early returns, and call summaries
//! are same-file only (cross-file edges would need type information a
//! token-level tool does not have). Deliberate violations carry
//! `[[allow]]` entries in `lint.toml` with their justification.

use crate::diag::{Diagnostic, LintId};
use crate::lexer::{in_ranges, Lexed, TokKind};
use std::collections::BTreeSet;

fn diag(out: &mut Vec<Diagnostic>, file: &str, line: u32, lint: LintId, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    });
}

/// One directed lock-acquisition edge (`from` held while `to` is
/// acquired), for the workspace-level cycle check. Nodes are
/// `file::label`, so the graph stays meaningful when two files use the
/// same field name for different mutexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Held lock, as `file::label`.
    pub from: String,
    /// Acquired lock, as `file::label`.
    pub to: String,
    /// File the acquisition happens in.
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

// ---------------------------------------------------------------------
// Brace-tree model: function spans over the token stream.

/// One `fn` item: its name and the token range of its body braces.
struct FnSpan {
    name: String,
    /// Token indices of the body's `{` and its matching `}`.
    body: (usize, usize),
    line: u32,
}

/// Token index of the `}` matching the `{` at `open`.
fn match_brace(lx: &Lexed<'_>, open: usize) -> usize {
    let toks = &lx.tokens;
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Every `fn` with a body. `fn(` function-pointer types and bodyless
/// trait-method declarations are skipped.
fn fn_spans(lx: &Lexed<'_>) -> Vec<FnSpan> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` pointer type
        }
        // Find the body `{` — or a `;` first (trait declaration).
        let mut j = i + 2;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            match t.text {
                "{" => {
                    body = Some((j, match_brace(lx, j)));
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(body) = body {
            out.push(FnSpan {
                name: name_tok.text.to_string(),
                body,
                line: toks[i].line,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Acquisition / call / awaitable event detection.

/// What a token position means to the guard walk.
enum Event {
    /// `.lock()` on a receiver, or a call to a guard-returning helper.
    Acquire { label: String, line: u32 },
    /// Call to another same-file `fn` (summaries propagate through it).
    Call { name: String, line: u32 },
    /// `catch_unwind(…)` or a user-scorer callback `.score_batch(…)`.
    Awaitable { what: &'static str, line: u32 },
}

/// Final field name of the receiver ending at token `i` (exclusive):
/// `self.shared.stats.lock()` → `stats`; `ACTIVE.load(..)` → `ACTIVE`.
fn receiver_label(lx: &Lexed<'_>, dot: usize) -> String {
    match dot.checked_sub(1).and_then(|j| lx.tokens.get(j)) {
        Some(t) if t.kind == TokKind::Ident || t.kind == TokKind::Int => t.text.to_string(),
        _ => "<expr>".to_string(),
    }
}

/// The event starting at token `i`, if any. `helpers` maps same-file
/// guard-returning helper names to the lock label they acquire; `fns`
/// is every same-file fn name.
fn event_at(
    lx: &Lexed<'_>,
    i: usize,
    helpers: &[(String, String)],
    fns: &BTreeSet<String>,
) -> Option<Event> {
    let toks = &lx.tokens;
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = i.checked_sub(1).and_then(|j| toks.get(j)).map(|t| t.text);
    let next = toks.get(i + 1).map(|t| t.text);
    let line = t.line;
    // `.lock()` — the std / shim Mutex acquisition shape.
    if t.text == "lock" && prev == Some(".") && next == Some("(") {
        if toks.get(i + 2).map(|t| t.text) == Some(")") {
            return Some(Event::Acquire {
                label: receiver_label(lx, i - 1),
                line,
            });
        }
        return None;
    }
    if next == Some("(") && prev != Some(".") && prev != Some("fn") {
        // Free-function call: a guard-returning helper is an acquisition
        // with that helper's label; any other same-file fn is a call the
        // summaries walk through.
        if let Some((_, label)) = helpers.iter().find(|(n, _)| n == t.text) {
            return Some(Event::Acquire {
                label: label.clone(),
                line,
            });
        }
        if t.text == "catch_unwind" {
            return Some(Event::Awaitable {
                what: "catch_unwind",
                line,
            });
        }
        if fns.contains(t.text) {
            return Some(Event::Call {
                name: t.text.to_string(),
                line,
            });
        }
        return None;
    }
    // User-scorer callback: `.score_batch(…)` / `.score_batch_meta(…)`
    // runs arbitrary model code.
    if (t.text == "score_batch" || t.text == "score_batch_meta")
        && prev == Some(".")
        && next == Some("(")
    {
        return Some(Event::Awaitable {
            what: "a user-scorer callback",
            line,
        });
    }
    None
}

/// Per-fn summary used by the fixpoint: every lock label the fn may
/// acquire (transitively, same file) and whether it may reach an
/// unwind boundary / scorer callback.
#[derive(Default, Clone)]
struct FnSummary {
    labels: BTreeSet<String>,
    calls: BTreeSet<String>,
    awaits: bool,
}

/// Same-file guard-returning helpers: a `fn` whose signature mentions
/// `MutexGuard` maps to the label of the first `.lock()` in its body.
fn helper_map(lx: &Lexed<'_>, spans: &[FnSpan]) -> Vec<(String, String)> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    for (k, s) in spans.iter().enumerate() {
        // Signature = tokens between the fn name and the body brace,
        // bounded below by the previous span to avoid scanning the file.
        let sig_start = spans
            .get(k.wrapping_sub(1))
            .filter(|_| k > 0)
            .map_or(0, |p| p.body.1);
        let returns_guard = toks[sig_start..s.body.0]
            .iter()
            .rev()
            .take_while(|t| t.text != ")")
            .any(|t| t.text == "MutexGuard");
        if !returns_guard {
            continue;
        }
        let label = toks[s.body.0..=s.body.1]
            .iter()
            .enumerate()
            .find_map(|(off, t)| {
                let i = s.body.0 + off;
                if t.text == "lock"
                    && toks.get(i.wrapping_sub(1)).map(|p| p.text) == Some(".")
                    && toks.get(i + 1).map(|n| n.text) == Some("(")
                {
                    Some(receiver_label(lx, i - 1))
                } else {
                    None
                }
            });
        if let Some(label) = label {
            out.push((s.name.clone(), label));
        }
    }
    out
}

/// Direct summaries for every fn, then the same-file call fixpoint.
fn summarize(lx: &Lexed<'_>, spans: &[FnSpan], helpers: &[(String, String)]) -> Vec<FnSummary> {
    let names: BTreeSet<String> = spans.iter().map(|s| s.name.clone()).collect();
    let mut sums: Vec<FnSummary> = spans
        .iter()
        .map(|s| {
            let mut sum = FnSummary::default();
            for i in s.body.0..=s.body.1 {
                match event_at(lx, i, helpers, &names) {
                    Some(Event::Acquire { label, .. }) => {
                        sum.labels.insert(label);
                    }
                    Some(Event::Call { name, .. }) => {
                        sum.calls.insert(name);
                    }
                    Some(Event::Awaitable { .. }) => sum.awaits = true,
                    None => {}
                }
            }
            sum
        })
        .collect();
    // Fixpoint over same-file calls. Bounded: each round either adds a
    // label/flag or terminates, and the lattice is finite.
    loop {
        let mut changed = false;
        for i in 0..sums.len() {
            let callee_names: Vec<String> = sums[i].calls.iter().cloned().collect();
            for callee in callee_names {
                for (j, s) in spans.iter().enumerate() {
                    if s.name != callee {
                        continue;
                    }
                    let (labels, awaits) = (sums[j].labels.clone(), sums[j].awaits);
                    let before = sums[i].labels.len();
                    sums[i].labels.extend(labels);
                    if sums[i].labels.len() != before || (awaits && !sums[i].awaits) {
                        changed = true;
                    }
                    sums[i].awaits |= awaits;
                }
            }
        }
        if !changed {
            return sums;
        }
    }
}

// ---------------------------------------------------------------------
// The guard-liveness walk (LOCK_ORDER + GUARD_ACROSS_AWAITABLE).

/// A live `MutexGuard` binding.
struct LiveGuard {
    name: String,
    label: String,
    depth: i64,
}

/// **Passes — lock discipline.** Walks every fn body tracking live
/// guards; emits LOCK_ORDER on nested acquisitions (and records the
/// edge) and GUARD_ACROSS_AWAITABLE when a guard is live across an
/// unwind boundary or scorer callback. See the module docs.
pub fn lock_discipline(
    lx: &Lexed<'_>,
    file: &str,
    tests: &[(u32, u32)],
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let spans = fn_spans(lx);
    let helpers = helper_map(lx, &spans);
    let names: BTreeSet<String> = spans.iter().map(|s| s.name.clone()).collect();
    let sums = summarize(lx, &spans, &helpers);
    for span in &spans {
        if in_ranges(tests, span.line) {
            continue;
        }
        walk_fn(lx, file, span, &helpers, &names, &spans, &sums, edges, out);
    }
}

/// Report a nested acquisition of `to` (at `line`) under the live
/// guards, recording edges. `via` names an intervening same-file call.
#[allow(clippy::too_many_arguments)]
fn report_nested(
    file: &str,
    line: u32,
    guards: &[LiveGuard],
    to: &str,
    via: Option<&str>,
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let mut held: Vec<&str> = Vec::new();
    for g in guards {
        if held.contains(&g.label.as_str()) {
            continue;
        }
        held.push(&g.label);
        edges.push(LockEdge {
            from: format!("{file}::{}", g.label),
            to: format!("{file}::{to}"),
            file: file.to_string(),
            line,
        });
    }
    let same = held.contains(&to);
    let route = via.map_or(String::new(), |f| format!(" (via `{f}`)"));
    let message = if same {
        format!(
            "acquires `{to}`{route} while a guard on `{to}` is already live in this fn: \
             self-deadlock with std::sync::Mutex; drop the guard first"
        )
    } else {
        format!(
            "acquires `{to}`{route} while holding `{}`: nested locks need a documented \
             order (this edge joins the workspace lock graph; a justified [[allow]] \
             records the hierarchy)",
            held.join("`, `")
        )
    };
    diag(out, file, line, LintId::LockOrder, message);
}

/// Walk one fn body. See [`lock_discipline`].
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    lx: &Lexed<'_>,
    file: &str,
    span: &FnSpan,
    helpers: &[(String, String)],
    names: &BTreeSet<String>,
    spans: &[FnSpan],
    sums: &[FnSummary],
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    let (open, close) = span.body;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0i64;
    let mut i = open;
    while i <= close {
        let t = toks[i];
        match t.text {
            "{" => {
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                guards.retain(|g| g.depth != depth);
                depth -= 1;
                i += 1;
                continue;
            }
            _ => {}
        }
        // `drop(name)` ends a guard's liveness early.
        if t.kind == TokKind::Ident && t.text == "drop" {
            if let (Some(p1), Some(p2), Some(p3)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if p1.text == "(" && p2.kind == TokKind::Ident && p3.text == ")" {
                    guards.retain(|g| g.name != p2.text);
                    i += 4;
                    continue;
                }
            }
        }
        // `let` statement (or `if let` / `while let` condition): scan to
        // its terminator, process events inside, and bind a guard when
        // the initializer acquires one.
        if t.kind == TokKind::Ident && t.text == "let" {
            let is_cond = i
                .checked_sub(1)
                .and_then(|j| toks.get(j))
                .is_some_and(|p| p.text == "if" || p.text == "while");
            // `let x = { … };` — a block-expression initializer scopes
            // any guard it creates to the block, so process it
            // token-by-token (inner bindings then die at the block's
            // `}`) instead of treating the statement opaquely.
            if !is_cond && block_initializer(lx, i + 1, close) {
                i += 1;
                continue;
            }
            let (end, brace_terminated) = stmt_end(lx, i + 1, close, is_cond);
            let mut first_label: Option<String> = None;
            for k in i + 1..end {
                process_event(
                    lx,
                    file,
                    k,
                    helpers,
                    names,
                    spans,
                    sums,
                    &guards,
                    edges,
                    out,
                    Some(&mut first_label),
                );
            }
            if let Some(label) = first_label {
                let name = toks[i + 1..end]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                    .map_or("_", |t| t.text)
                    .to_string();
                // A condition-bound guard lives inside the block that
                // follows; a plain binding lives in the current block.
                let at = if brace_terminated { depth + 1 } else { depth };
                guards.push(LiveGuard {
                    name,
                    label,
                    depth: at,
                });
            }
            i = if brace_terminated { end } else { end + 1 };
            continue;
        }
        process_event(
            lx, file, i, helpers, names, spans, sums, &guards, edges, out, None,
        );
        i += 1;
    }
}

/// Does the `let` statement starting at `from` (just past `let`) have a
/// block-expression initializer (`= { … }`)? The `==` operator is one
/// fused token, so a bare `=` at nesting level 0 is the initializer.
fn block_initializer(lx: &Lexed<'_>, from: usize, close: usize) -> bool {
    let toks = &lx.tokens;
    let mut d = 0i64;
    let mut k = from;
    while k <= close {
        let text = toks[k].text;
        if d == 0 {
            if text == "=" {
                return toks.get(k + 1).map(|t| t.text) == Some("{");
            }
            if text == ";" {
                return false;
            }
        }
        match text {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            _ => {}
        }
        k += 1;
    }
    false
}

/// Find the end of a `let` statement starting after the `let` keyword:
/// the `;` at nesting level 0, or — for `if let` / `while let` — the
/// block `{`. Returns (token index, terminated-by-brace).
fn stmt_end(lx: &Lexed<'_>, from: usize, close: usize, is_cond: bool) -> (usize, bool) {
    let toks = &lx.tokens;
    let mut d = 0i64;
    let mut k = from;
    while k <= close {
        let text = toks[k].text;
        if d == 0 {
            if text == ";" {
                return (k, false);
            }
            if is_cond && text == "{" {
                return (k, true);
            }
        }
        match text {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            _ => {}
        }
        k += 1;
    }
    (close, false)
}

/// Handle one token position during the walk: nested-acquisition and
/// across-awaitable checks against the live guards. When `bind` is
/// given (inside a `let` initializer) the first acquisition's label is
/// reported back so the caller can create the binding.
#[allow(clippy::too_many_arguments)]
fn process_event(
    lx: &Lexed<'_>,
    file: &str,
    i: usize,
    helpers: &[(String, String)],
    names: &BTreeSet<String>,
    spans: &[FnSpan],
    sums: &[FnSummary],
    guards: &[LiveGuard],
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Diagnostic>,
    bind: Option<&mut Option<String>>,
) {
    match event_at(lx, i, helpers, names) {
        Some(Event::Acquire { label, line }) => {
            if !guards.is_empty() {
                report_nested(file, line, guards, &label, None, edges, out);
            }
            if let Some(slot) = bind {
                if slot.is_none() {
                    *slot = Some(label);
                }
            }
        }
        Some(Event::Call { name, line }) => {
            if guards.is_empty() {
                return;
            }
            let Some(j) = spans.iter().position(|s| s.name == name) else {
                return;
            };
            for label in &sums[j].labels {
                report_nested(file, line, guards, label, Some(&name), edges, out);
            }
            if sums[j].awaits {
                diag(
                    out,
                    file,
                    line,
                    LintId::GuardAcrossAwaitable,
                    format!(
                        "MutexGuard held across call to `{name}`, which reaches \
                         catch_unwind or a user-scorer callback; an unwind with the \
                         lock held poisons it on the serving path"
                    ),
                );
            }
        }
        Some(Event::Awaitable { what, line }) if !guards.is_empty() => {
            diag(
                out,
                file,
                line,
                LintId::GuardAcrossAwaitable,
                format!(
                    "MutexGuard held across {what}; arbitrary model code runs (and \
                     may unwind) while the lock is held"
                ),
            );
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Workspace-level lock-order cycle detection.

/// **Pass — lock-order cycles.** Assembles every recorded edge into one
/// directed graph and reports each elementary cycle once. A cycle means
/// two code paths acquire the same locks in opposite orders — the
/// deadlock the per-file findings only hint at — so cycles are *not*
/// allowlistable; break the cycle instead.
pub fn lock_cycles(edges: &[LockEdge], out: &mut Vec<Diagnostic>) {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from.as_str()) {
            nodes.push(&e.from);
        }
        if !nodes.contains(&e.to.as_str()) {
            nodes.push(&e.to);
        }
    }
    nodes.sort_unstable();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        let mut path: Vec<&str> = vec![start];
        dfs_cycles(start, start, edges, &mut path, &mut seen, out);
    }
}

fn dfs_cycles<'a>(
    start: &str,
    at: &str,
    edges: &'a [LockEdge],
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    for e in edges {
        // Self-loops are the per-file same-label re-lock finding's job;
        // the graph pass reports genuine multi-lock inversions.
        if e.from != at || e.from == e.to {
            continue;
        }
        if e.to == start {
            // Canonicalize: rotate so the smallest node leads, and report
            // each cycle exactly once.
            let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            let min = cycle
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .map_or(0, |(i, _)| i);
            cycle.rotate_left(min);
            if seen.insert(cycle.clone()) {
                out.push(Diagnostic {
                    file: e.file.clone(),
                    line: e.line,
                    lint: LintId::LockOrder,
                    message: format!(
                        "lock-order cycle: {} -> {}; two paths acquire these locks in \
                         opposite orders and can deadlock — break the cycle (this \
                         finding is not allowlistable)",
                        cycle.join(" -> "),
                        cycle[0]
                    ),
                });
            }
            continue;
        }
        if path.contains(&e.to.as_str()) || e.to.as_str() < start {
            continue; // visit each cycle from its smallest node only
        }
        path.push(&e.to);
        dfs_cycles(start, &e.to, edges, path, seen, out);
        path.pop();
    }
}

// ---------------------------------------------------------------------
// ATOMIC_ORDERING.

/// Atomic RMW/load/store method names an `Ordering::` argument rides on.
const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// **Pass — ATOMIC_ORDERING.** Flags `Ordering::Relaxed` on atomics
/// whose receiver name matches a configured publish/ready/shutdown
/// pattern (case-insensitive substring). Relaxed counters are exempt by
/// construction: only matching names are checked, and a deliberate
/// value-only cell takes an `[[allow]]` with its reason.
pub fn atomic_ordering(
    lx: &Lexed<'_>,
    file: &str,
    tests: &[(u32, u32)],
    publish: &[String],
    out: &mut Vec<Diagnostic>,
) {
    if publish.is_empty() {
        return;
    }
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        // `::` lexes as two `:` tokens.
        let is_relaxed = toks[i].text == "Ordering"
            && toks.get(i + 1).map(|t| t.text) == Some(":")
            && toks.get(i + 2).map(|t| t.text) == Some(":")
            && toks.get(i + 3).map(|t| t.text) == Some("Relaxed");
        if !is_relaxed || in_ranges(tests, toks[i].line) {
            continue;
        }
        // Walk back a short window for the method call this ordering
        // argument belongs to: `recv.method(…, Ordering::Relaxed)`.
        let floor = i.saturating_sub(12);
        let found = (floor..i).rev().find(|&m| {
            toks[m].kind == TokKind::Ident
                && ATOMIC_METHODS.contains(&toks[m].text)
                && m >= 1
                && toks[m - 1].text == "."
                && toks.get(m + 1).map(|t| t.text) == Some("(")
        });
        let Some(m) = found else { continue };
        let recv = receiver_label(lx, m - 1);
        let lower = recv.to_ascii_lowercase();
        if let Some(pat) = publish
            .iter()
            .find(|p| lower.contains(&p.to_ascii_lowercase()))
        {
            diag(
                out,
                file,
                toks[i].line,
                LintId::AtomicOrdering,
                format!(
                    "`Ordering::Relaxed` on `{recv}.{}` — the name matches publish/ready \
                     pattern `{pat}` from lint.toml; a flag that publishes other memory \
                     needs Release/Acquire (a pure counter or value-only cell takes a \
                     justified [[allow]])",
                    toks[m].text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// BLOCKING_IN_DISPATCHER.

/// Blocking/alloc-heavy method calls banned in dispatcher hot paths.
const BANNED_METHODS: [&str; 3] = ["wait", "wait_timeout", "join"];
/// Banned free calls (`sleep(…)`, incl. `thread::sleep`).
const BANNED_CALLS: [&str; 1] = ["sleep"];
/// Banned path heads (`File::open`, `OpenOptions::new`, `fs::…`).
const BANNED_PATHS: [&str; 3] = ["File", "OpenOptions", "fs"];
/// Banned macros (I/O or allocation-heavy formatting).
const BANNED_MACROS: [&str; 5] = ["println", "eprintln", "print", "dbg", "format"];

/// **Pass — BLOCKING_IN_DISPATCHER.** Within the configured
/// `[dispatcher]` functions of this file (`fns` holds bare fn names),
/// flags condvar waits, thread joins, sleeps, file I/O, and formatting
/// macros: the batch-execution region and kernel hot paths must never
/// deschedule or allocate for I/O while a batch is in flight.
pub fn blocking_in_dispatcher(
    lx: &Lexed<'_>,
    file: &str,
    tests: &[(u32, u32)],
    fns: &[String],
    out: &mut Vec<Diagnostic>,
) {
    if fns.is_empty() {
        return;
    }
    let toks = &lx.tokens;
    for span in fn_spans(lx) {
        if !fns.contains(&span.name) || in_ranges(tests, span.line) {
            continue;
        }
        for i in span.body.0..=span.body.1 {
            let t = toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|j| toks.get(j)).map(|t| t.text);
            let next = toks.get(i + 1).map(|t| t.text);
            let what = if BANNED_METHODS.contains(&t.text) && prev == Some(".") && next == Some("(")
            {
                format!("`.{}()` blocks", t.text)
            } else if BANNED_CALLS.contains(&t.text) && prev != Some(".") && next == Some("(") {
                format!("`{}()` deschedules the dispatcher", t.text)
            } else if BANNED_PATHS.contains(&t.text)
                && next == Some(":")
                && toks.get(i + 2).map(|t| t.text) == Some(":")
            {
                format!("`{}::` file I/O blocks on the kernel", t.text)
            } else if BANNED_MACROS.contains(&t.text) && next == Some("!") {
                format!("`{}!` does I/O or allocates for formatting", t.text)
            } else {
                continue;
            };
            diag(
                out,
                file,
                t.line,
                LintId::BlockingInDispatcher,
                format!(
                    "{what} inside dispatcher/kernel hot path `fn {}`; move it off the \
                     batch-execution path (or add a justified [[allow]] for an injected \
                     test fault)",
                    span.name
                ),
            );
        }
    }
}

/// Bare fn names configured for `file` from `[dispatcher]` entries of
/// the form `path/to/file.rs::fn_name`.
pub fn dispatcher_fns_for(file: &str, entries: &[String]) -> Vec<String> {
    entries
        .iter()
        .filter_map(|e| {
            let (path, name) = e.split_once("::")?;
            (path == file).then(|| name.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mod_ranges};

    fn run_discipline(src: &str) -> (Vec<Diagnostic>, Vec<LockEdge>) {
        let lx = lex(src);
        let tests = test_mod_ranges(&lx);
        let mut out = Vec::new();
        let mut edges = Vec::new();
        lock_discipline(&lx, "f.rs", &tests, &mut edges, &mut out);
        (out, edges)
    }

    #[test]
    fn nested_lock_in_one_fn_flags_and_records_the_edge() {
        let src = "fn f(a: &M, b: &M) {\n    let g = a.inner.lock().unwrap();\n    let h = b.other.lock().unwrap();\n}\n";
        let (d, e) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::LockOrder);
        assert_eq!(d[0].line, 3);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "f.rs::inner");
        assert_eq!(e[0].to, "f.rs::other");
    }

    #[test]
    fn dropped_guard_ends_liveness() {
        let src = "fn f(a: &M, b: &M) {\n    let g = a.inner.lock().unwrap();\n    drop(g);\n    let h = b.other.lock().unwrap();\n}\n";
        let (d, e) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn block_scope_ends_liveness() {
        let src = "fn f(a: &M, b: &M) {\n    {\n        let g = a.inner.lock().unwrap();\n    }\n    let h = b.other.lock().unwrap();\n}\n";
        let (d, _) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn block_expression_initializer_scopes_its_guard() {
        // The worker-loop shape: the guard lives inside the block that
        // computes `job`, not in the binding itself.
        let src = "fn f(s: &S) {\n    let job = {\n        let mut slot = s.slot.lock().unwrap();\n        slot.take()\n    };\n    let r = catch_unwind(|| job());\n    let mut slot = s.slot.lock().unwrap();\n}\n";
        let (d, _) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_label_relock_is_a_self_deadlock() {
        let src = "fn f(a: &M) {\n    let g = a.state.lock().unwrap();\n    let h = a.state.lock().unwrap();\n}\n";
        let (d, _) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("self-deadlock"), "{d:?}");
    }

    #[test]
    fn helper_returning_guard_counts_as_acquisition() {
        let src = "fn lock_state(s: &S) -> MutexGuard<'_, T> {\n    s.state.lock().unwrap()\n}\nfn f(s: &S, b: &M) {\n    let g = lock_state(s);\n    let h = b.other.lock().unwrap();\n}\n";
        let (d, e) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(e[0].from, "f.rs::state");
    }

    #[test]
    fn call_summary_propagates_through_same_file_fns() {
        let src = "fn inner_lock(b: &M) {\n    let h = b.other.lock().unwrap();\n    h.use_it();\n}\nfn f(a: &M, b: &M) {\n    let g = a.state.lock().unwrap();\n    inner_lock(b);\n}\n";
        let (d, e) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("via `inner_lock`"), "{d:?}");
        assert_eq!(e[0].from, "f.rs::state");
        assert_eq!(e[0].to, "f.rs::other");
    }

    #[test]
    fn guard_across_catch_unwind_flags() {
        let src = "fn f(a: &M) {\n    let g = a.state.lock().unwrap();\n    let r = catch_unwind(|| score());\n}\n";
        let (d, _) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::GuardAcrossAwaitable);
    }

    #[test]
    fn guard_across_scorer_callback_flags() {
        let src = "fn f(a: &M, rows: &[f32], out: &mut [f32]) {\n    let mut s = a.scorer.lock().unwrap();\n    s.score_batch(rows, out);\n}\n";
        let (d, _) = run_discipline(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::GuardAcrossAwaitable);
    }

    #[test]
    fn catch_unwind_without_guard_is_fine() {
        let src = "fn f() {\n    let r = catch_unwind(|| score());\n}\n";
        let (d, _) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn condvar_wait_reassignment_keeps_liveness_without_new_edge() {
        let src = "fn f(q: &Q) {\n    let mut state = q.state.lock().unwrap();\n    while state.empty {\n        state = q.cv.wait(state).unwrap();\n    }\n}\n";
        let (d, _) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_mod_fns_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &M, b: &M) {\n        let g = a.x.lock().unwrap();\n        let h = b.y.lock().unwrap();\n    }\n}\n";
        let (d, _) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn raw_string_lock_text_does_not_fire() {
        let src = "fn f() {\n    let s = r#\"a.lock() b.lock()\"#;\n    let t = \".lock()\";\n}\n";
        let (d, e) = run_discipline(src);
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn cycle_between_two_files_is_reported_once() {
        let edges = vec![
            LockEdge {
                from: "a.rs::m1".into(),
                to: "a.rs::m2".into(),
                file: "a.rs".into(),
                line: 10,
            },
            LockEdge {
                from: "a.rs::m2".into(),
                to: "a.rs::m1".into(),
                file: "a.rs".into(),
                line: 20,
            },
        ];
        let mut out = Vec::new();
        lock_cycles(&edges, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, LintId::LockOrder);
        assert!(out[0].message.contains("cycle"), "{out:?}");
    }

    #[test]
    fn acyclic_hierarchy_reports_no_cycle() {
        let edges = vec![LockEdge {
            from: "a.rs::state".into(),
            to: "a.rs::scorer".into(),
            file: "a.rs".into(),
            line: 10,
        }];
        let mut out = Vec::new();
        lock_cycles(&edges, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    fn run_atomics(src: &str, pats: &[&str]) -> Vec<Diagnostic> {
        let lx = lex(src);
        let tests = test_mod_ranges(&lx);
        let pats: Vec<String> = pats.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        atomic_ordering(&lx, "f.rs", &tests, &pats, &mut out);
        out
    }

    #[test]
    fn relaxed_on_publish_flag_flags() {
        let src = "fn f(s: &S) { s.ready.store(true, Ordering::Relaxed); }\n";
        let d = run_atomics(src, &["ready"]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::AtomicOrdering);
    }

    #[test]
    fn relaxed_on_counter_is_exempt() {
        let src = "fn f(s: &S) { s.opened.fetch_add(1, Ordering::Relaxed); }\n";
        let d = run_atomics(src, &["ready", "active"]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn seqcst_on_publish_flag_is_fine() {
        let src = "fn f(s: &S) { s.ready.store(true, Ordering::SeqCst); }\n";
        let d = run_atomics(src, &["ready"]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn match_is_case_insensitive_static_names() {
        let src = "fn f() { ACTIVE.store(1, Ordering::Relaxed); }\n";
        let d = run_atomics(src, &["active"]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ACTIVE"), "{d:?}");
    }

    fn run_blocking(src: &str, fns: &[&str]) -> Vec<Diagnostic> {
        let lx = lex(src);
        let tests = test_mod_ranges(&lx);
        let fns: Vec<String> = fns.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        blocking_in_dispatcher(&lx, "f.rs", &tests, &fns, &mut out);
        out
    }

    #[test]
    fn sleep_and_format_in_dispatcher_fn_flag() {
        let src = "fn execute() {\n    std::thread::sleep(d);\n    let s = format!(\"x\");\n}\nfn other() { std::thread::sleep(d); }\n";
        let d = run_blocking(src, &["execute"]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.lint == LintId::BlockingInDispatcher));
        assert!(d.iter().all(|x| x.message.contains("fn execute")));
    }

    #[test]
    fn condvar_wait_in_dispatcher_fn_flags() {
        let src = "fn execute(q: &Q, g: G) {\n    let g = q.cv.wait(g).unwrap();\n}\n";
        let d = run_blocking(src, &["execute"]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("blocks"), "{d:?}");
    }

    #[test]
    fn unconfigured_fns_are_not_checked() {
        let src = "fn helper() { std::thread::sleep(d); }\n";
        let d = run_blocking(src, &["execute"]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dispatcher_entries_parse_file_scoped_names() {
        let entries = vec![
            "crates/serve/src/dispatch.rs::execute".to_string(),
            "crates/simd/src/gemm.rs::micro_kernel_8x8".to_string(),
        ];
        assert_eq!(
            dispatcher_fns_for("crates/serve/src/dispatch.rs", &entries),
            vec!["execute".to_string()]
        );
        assert!(dispatcher_fns_for("crates/serve/src/queue.rs", &entries).is_empty());
    }
}
