//! The four lint passes, each a pure function over one file's tokens.
//!
//! Every pass receives the lexed file, the set of `#[cfg(test)]` line
//! ranges, and pushes [`Diagnostic`]s. Whether a pass applies to a file
//! at all is decided by the caller from `lint.toml`'s module sets; the
//! passes themselves are config-free and unit-testable on snippets.

use crate::diag::{Diagnostic, LintId};
use crate::lexer::{in_ranges, Lexed, TokKind, Token};

fn diag(out: &mut Vec<Diagnostic>, file: &str, line: u32, lint: LintId, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    });
}

/// Integer-type names for cast detection.
const INT_TYPES: [&str; 12] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// **Pass 1 — hot-path panic-freedom.**
///
/// In designated hot-path modules, flags `.unwrap()` / `.expect(…)`,
/// `panic!` / `todo!` / `unimplemented!`, and slices indexed by integer
/// literals. Shape `assert!`s are deliberately allowed: they encode input
/// contracts, while the banned forms encode *absence* of error handling.
/// Test modules are exempt.
pub fn panic_freedom(lx: &Lexed<'_>, file: &str, tests: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_ranges(tests, t.line) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].kind == TokKind::Op && toks[i - 1].text == ".";
        let next_bang = toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokKind::Op && n.text == "!");
        match t.text {
            "unwrap" | "expect" if prev_dot => diag(
                out,
                file,
                t.line,
                LintId::HotpathPanic,
                format!(
                    "`.{}()` can panic in a hot-path module; use the try_* typed-error API \
                     (or add a justified [[allow]] entry in lint.toml)",
                    t.text
                ),
            ),
            "panic" | "todo" | "unimplemented" if next_bang => diag(
                out,
                file,
                t.line,
                LintId::HotpathPanic,
                format!(
                    "`{}!` in a hot-path module; return a typed error instead \
                     (or add a justified [[allow]] entry in lint.toml)",
                    t.text
                ),
            ),
            _ => {}
        }
    }
    // Slice indexing by literal: `expr[<int>]` where expr ends in an
    // identifier, `)` or `]`.
    for i in 1..toks.len() {
        let t = toks[i];
        if t.kind != TokKind::Op || t.text != "[" || in_ranges(tests, t.line) {
            continue;
        }
        let prev = toks[i - 1];
        let indexable = prev.kind == TokKind::Ident
            || (prev.kind == TokKind::Op && (prev.text == ")" || prev.text == "]"));
        let lit_index = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Op && n.text == "]");
        if indexable && lit_index {
            diag(
                out,
                file,
                t.line,
                LintId::HotpathIndex,
                format!(
                    "slice indexed by literal `[{}]` can panic in a hot-path module; \
                     use .first()/.get()/array patterns",
                    toks[i + 1].text
                ),
            );
        }
    }
}

/// **Pass 2 — unsafe hygiene (per-file half).**
///
/// Every `unsafe` block, fn, or impl must be preceded by a comment
/// containing `SAFETY` (accepting `// SAFETY:` and `/// # Safety` doc
/// sections). The search walks upward from the `unsafe` token, skipping
/// blank lines and lines of the same unfinished statement, and stops at
/// the previous statement boundary (`;`, `{` or `}` on a code line).
/// `unsafe fn(...)` *pointer types* are not flagged — they declare a
/// contract, they don't discharge one.
pub fn unsafe_hygiene(lx: &Lexed<'_>, file: &str, raw_lines: &[&str], out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe fn(` is a function-pointer type, not a definition.
        let next = toks.get(i + 1);
        let next2 = toks.get(i + 2);
        if next.is_some_and(|n| n.text == "fn") && next2.is_some_and(|n| n.text == "(") {
            continue;
        }
        if has_preceding_safety_comment(lx, raw_lines, t.line) {
            continue;
        }
        diag(
            out,
            file,
            t.line,
            LintId::UnsafeNoSafety,
            "`unsafe` without a preceding `// SAFETY:` comment explaining why the \
             invariants hold"
                .to_string(),
        );
    }
}

fn has_preceding_safety_comment(lx: &Lexed<'_>, raw_lines: &[&str], line: u32) -> bool {
    // Same line: `// SAFETY: …` above a wrapped statement still ends up
    // on an earlier line, so only look upward.
    let mut l = line.saturating_sub(1);
    let floor = line.saturating_sub(10).max(1);
    while l >= floor && l >= 1 {
        let info = lx.line(l);
        if info.safety_comment {
            return true;
        }
        if info.has_code {
            // A code line that completes an earlier statement ends the
            // search; a continuation line (e.g. `let slice =`) does not.
            let text = raw_lines.get(l as usize - 1).copied().unwrap_or("");
            if text.contains(';') || text.contains('}') || text.contains('{') {
                return false;
            }
        }
        if l == 1 {
            break;
        }
        l -= 1;
    }
    false
}

/// **Pass 3 — determinism.**
///
/// In kernel / serialization / checkpoint paths, wall-clock reads,
/// hash-order iteration, and unseeded RNG construction all break the
/// bit-exact replay guarantees (resume-equals-uninterrupted, parallel-
/// equals-serial). Test modules are exempt — tests may time things.
pub fn determinism(lx: &Lexed<'_>, file: &str, tests: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if t.kind != TokKind::Ident || in_ranges(tests, t.line) {
            continue;
        }
        let message = match t.text {
            "Instant" | "SystemTime" => format!(
                "`{}` reads the wall clock in a deterministic path; inject time from the \
                 caller or move the timing out of this module",
                t.text
            ),
            "HashMap" | "HashSet" => format!(
                "`{}` iteration order is nondeterministic; use a Vec, BTreeMap or BTreeSet \
                 so replay stays bit-exact",
                t.text
            ),
            "thread_rng" | "from_entropy" => format!(
                "`{}` constructs an unseeded RNG; use StdRng::seed_from_u64 with a recorded \
                 seed",
                t.text
            ),
            _ => continue,
        };
        diag(out, file, t.line, LintId::Nondeterminism, message);
    }
}

/// **Pass 4 — numeric hygiene.**
///
/// `float_casts` (kernel modules only): bare `as f32` / `as f64`, and
/// float-literal → integer `as` casts; kernels must use the audited
/// helpers in `dlr-num`. `float_eq` (everywhere outside tests): `==` /
/// `!=` against a float literal compares bit patterns.
pub fn float_casts(lx: &Lexed<'_>, file: &str, tests: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || in_ranges(tests, t.line) {
            continue;
        }
        let target = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Ident => n.text,
            _ => continue,
        };
        if target == "f32" || target == "f64" {
            diag(
                out,
                file,
                t.line,
                LintId::FloatCast,
                format!(
                    "bare `as {target}` cast in a kernel; use the audited dlr-num helpers \
                     (approx_f32/approx_f64/ratio_f64) so rounding is explicit"
                ),
            );
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        if prev_float && INT_TYPES.contains(&target) {
            diag(
                out,
                file,
                t.line,
                LintId::FloatCast,
                format!(
                    "float literal truncated with `as {target}` in a kernel; use the audited \
                     dlr-num helpers (trunc_usize) so saturation/NaN behaviour is explicit"
                ),
            );
        }
    }
}

/// **Pass 5 — SIMD `#[target_feature]` hygiene.**
///
/// Hand-written SIMD is fenced into the `[simd]` module set (dlr-simd):
/// a `#[target_feature]` attribute anywhere else is flagged outright.
/// Inside the set, the decorated fn must be `unsafe` (callers must prove
/// CPU support — the runtime dispatch table is the only sanctioned
/// prover), must stay private to its dispatch module (no `pub`, so the
/// only way in is the safe wrapper that checks `supported()`), and must
/// carry a SAFETY contract comment within the same upward-search window
/// as [`unsafe_hygiene`].
pub fn simd_target_feature(
    lx: &Lexed<'_>,
    file: &str,
    raw_lines: &[&str],
    in_simd_set: bool,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "target_feature" {
            continue;
        }
        // Only the attribute form `#[target_feature(...)]` counts; a bare
        // mention (doc text is not tokenized, but e.g. a string compare
        // helper) is not.
        let is_attr = i >= 2
            && toks[i - 1].kind == TokKind::Op
            && toks[i - 1].text == "["
            && toks[i - 2].kind == TokKind::Op
            && toks[i - 2].text == "#";
        if !is_attr {
            continue;
        }
        if !in_simd_set {
            diag(
                out,
                file,
                t.line,
                LintId::SimdTargetFeature,
                "`#[target_feature]` outside the `[simd]` module set in lint.toml; \
                 hand-written SIMD belongs in dlr-simd behind its runtime dispatch table"
                    .to_string(),
            );
            continue;
        }
        // Walk forward to the `fn` this attribute decorates, noting the
        // qualifiers in between (further attributes, `pub`, `unsafe`).
        let mut saw_unsafe = false;
        let mut saw_pub = false;
        let mut found_fn = false;
        for n in &toks[i + 1..] {
            if n.kind != TokKind::Ident {
                continue;
            }
            match n.text {
                "unsafe" => saw_unsafe = true,
                "pub" => saw_pub = true,
                "fn" => {
                    found_fn = true;
                    break;
                }
                _ => {}
            }
        }
        if !found_fn {
            continue; // attribute on a non-fn item; rustc rejects this
        }
        if !saw_unsafe {
            diag(
                out,
                file,
                t.line,
                LintId::SimdTargetFeature,
                "`#[target_feature]` fn must be declared `unsafe`: only the dispatch \
                 table may prove the CPU supports these instructions"
                    .to_string(),
            );
        }
        if saw_pub {
            diag(
                out,
                file,
                t.line,
                LintId::SimdTargetFeature,
                "`#[target_feature]` fn must stay private to its dispatch module; \
                 expose it only through the safe wrapper that checks `supported()`"
                    .to_string(),
            );
        }
        if !has_preceding_safety_comment(lx, raw_lines, t.line) {
            diag(
                out,
                file,
                t.line,
                LintId::SimdTargetFeature,
                "`#[target_feature]` fn needs a SAFETY contract (`/// # Safety` doc \
                 section or `// SAFETY:` comment) above the attribute"
                    .to_string(),
            );
        }
    }
}

/// Float `==` / `!=` against a literal. See [`float_casts`].
pub fn float_eq(lx: &Lexed<'_>, file: &str, tests: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let is_float = |t: Option<&Token<'_>>| t.is_some_and(|t| t.kind == TokKind::Float);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Op || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if in_ranges(tests, t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        // Allow a leading minus: `x == -1.0`.
        let next_after_minus = if next.is_some_and(|n| n.kind == TokKind::Op && n.text == "-") {
            toks.get(i + 2)
        } else {
            next
        };
        if is_float(prev) || is_float(next_after_minus) {
            diag(
                out,
                file,
                t.line,
                LintId::FloatEq,
                format!(
                    "float `{}` against a literal compares bit patterns; use a tolerance, or \
                     allowlist if this is an exact sentinel (e.g. a prune mask)",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mod_ranges};

    type Pass = fn(&Lexed<'_>, &str, &[(u32, u32)], &mut Vec<Diagnostic>);

    fn run(src: &str, pass: Pass) -> Vec<Diagnostic> {
        let lx = lex(src);
        let tests = test_mod_ranges(&lx);
        let mut out = Vec::new();
        pass(&lx, "f.rs", &tests, &mut out);
        out
    }

    #[test]
    fn unwrap_in_code_but_not_in_tests_or_strings() {
        let src = "fn a(x: Option<u8>) { x.unwrap(); }\n\
                   fn b() { let _ = \".unwrap()\"; }\n\
                   #[cfg(test)]\nmod tests { fn c(x: Option<u8>) { x.unwrap(); } }\n";
        let d = run(src, panic_freedom);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].lint, LintId::HotpathPanic);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let d = run(
            "fn a(x: Option<u8>) { x.unwrap_or_else(|| 0); }",
            panic_freedom,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn literal_index_flags_but_ranges_and_attrs_do_not() {
        let src = "#[derive(Clone)]\nfn a(v: &[u8]) { let _ = v[0]; let _ = &v[1..3]; }\n\
                   fn b() { let t: [u8; 4] = [0; 4]; }\n";
        let d = run(src, panic_freedom);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::HotpathIndex);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn determinism_catches_clock_and_hash() {
        let src = "use std::time::Instant;\nfn t() { let m = HashMap::new(); }\n";
        let d = run(src, determinism);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn float_cast_catches_as_f32() {
        let d = run("fn k(n: usize) -> f32 { n as f32 }", float_casts);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::FloatCast);
    }

    #[test]
    fn int_to_int_casts_are_fine() {
        let d = run("fn k(n: u32) -> usize { n as usize }", float_casts);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        let src = "fn f(x: f32) -> bool { x == 0.0 }\nfn g(x: f32) -> bool { -1.0 != x }\n";
        let d = run(src, float_eq);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn int_eq_is_fine() {
        let d = run("fn f(x: u8) -> bool { x == 0 }", float_eq);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_without_comment_flags() {
        let src = "fn f(p: *mut u8) { unsafe { *p = 1; } }\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, LintId::UnsafeNoSafety);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: p is valid by contract.\n    unsafe { *p = 1; }\n}\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_comment_across_wrapped_statement_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: disjoint.\n    let q =\n        unsafe { p.add(1) };\n}\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_comment_across_statement_boundary_fails() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: covers only this one.\n    unsafe { *p = 1; }\n    unsafe { *p = 2; }\n}\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_flagged() {
        let src = "struct J { call: unsafe fn(*const (), usize) }\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    fn run_simd(src: &str, in_set: bool) -> Vec<Diagnostic> {
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        simd_target_feature(&lx, "f.rs", &lines, in_set, &mut out);
        out
    }

    const GOOD_KERNEL: &str = "/// Adds lanes.\n///\n/// # Safety\n/// Caller must prove AVX2.\n#[target_feature(enable = \"avx2\")]\nunsafe fn add_avx2(a: &[f32]) {}\n";

    #[test]
    fn target_feature_outside_simd_set_flags() {
        let d = run_simd(GOOD_KERNEL, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, LintId::SimdTargetFeature);
        assert!(d[0].message.contains("outside the `[simd]`"), "{d:?}");
    }

    #[test]
    fn well_formed_kernel_in_set_passes() {
        let d = run_simd(GOOD_KERNEL, true);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safe_target_feature_fn_flags() {
        let src =
            "// SAFETY: fine.\n#[target_feature(enable = \"avx2\")]\nfn add_avx2(a: &[f32]) {}\n";
        let d = run_simd(src, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("must be declared `unsafe`"), "{d:?}");
    }

    #[test]
    fn pub_target_feature_fn_flags() {
        let src = "// SAFETY: fine.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn add_avx2(a: &[f32]) {}\n";
        let d = run_simd(src, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("must stay private"), "{d:?}");
    }

    #[test]
    fn missing_safety_contract_flags() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn add_avx2(a: &[f32]) {}\n";
        let d = run_simd(src, true);
        // The missing-SAFETY finding from this pass; unsafe_hygiene would
        // add its own when run by the driver.
        assert!(
            d.iter().any(|x| x.message.contains("SAFETY contract")),
            "{d:?}"
        );
    }

    #[test]
    fn intervening_attribute_does_not_hide_qualifiers() {
        let src =
            "// SAFETY: fine.\n#[target_feature(enable = \"sse2\")]\n#[inline]\nunsafe fn f() {}\n";
        let d = run_simd(src, true);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn target_feature_in_string_literal_is_ignored() {
        let src = "fn f() { let _ = \"#[target_feature]\"; }\n";
        let d = run_simd(src, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn doc_safety_section_counts() {
        let src = "/// Does things.\n///\n/// # Safety\n/// p must be valid.\nunsafe fn f(p: *mut u8) { }\n";
        let lx = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        unsafe_hygiene(&lx, "f.rs", &lines, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
