//! A minimal Rust tokenizer for lint passes.
//!
//! The container has no registry access, so `dlr-lint` cannot lean on
//! `syn` or `proc-macro2`; this hand-rolled lexer covers exactly what the
//! passes need: identifiers, numeric literals (int vs float), operators,
//! and brackets, each with a 1-based line number — with string literals
//! (including raw/byte/C strings), char literals, lifetimes, and comments
//! stripped out of the token stream so a `panic!` inside a string never
//! trips a lint. Comments are kept on the side, per line, because the
//! unsafe-hygiene pass must find `// SAFETY:` text above `unsafe` sites.
//!
//! It is a *lexer*, not a parser: passes match on small token windows
//! (`.` `unwrap`, `as` `f32`, `#` `[` `cfg` `(` `test` …) which is robust
//! exactly because Rust's token-level grammar is stable even where its
//! type system is out of reach for a dependency-free tool.

/// What a token is, as far as the lint passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, `f32`, …).
    Ident,
    /// Integer literal (`0`, `0x1F`, `1_000`, `7usize`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f32`).
    Float,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Operator or punctuation; multi-char only for `==` / `!=`.
    Op,
}

/// One token with its source text and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Per-line facts the passes need alongside the token stream.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Line carries at least one token (code, not just comment/blank).
    pub has_code: bool,
    /// Line carries (part of) a comment whose text contains `safety`
    /// case-insensitively (`// SAFETY:`, `/// # Safety`, …).
    pub safety_comment: bool,
    /// Line carries (part of) any comment.
    pub has_comment: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All code tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// Indexed by 1-based line number (entry 0 unused).
    pub lines: Vec<LineInfo>,
}

impl Lexed<'_> {
    /// Line info for a 1-based line, or a default for out-of-range lines.
    pub fn line(&self, line: u32) -> LineInfo {
        self.lines.get(line as usize).cloned().unwrap_or_default()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Advance past a char boundary-safe identifier starting at `pos`.
    fn eat_ident(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.src[self.pos..].chars().next() {
            if is_ident_continue(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }
}

/// Tokenize `src`, stripping comments/strings/chars and recording
/// per-line comment facts.
pub fn lex(src: &str) -> Lexed<'_> {
    let line_count = src.lines().count() + 2;
    let mut out = Lexed {
        tokens: Vec::new(),
        lines: vec![LineInfo::default(); line_count],
    };
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek_at(1) == Some(b'*') => lex_block_comment(&mut cur, &mut out),
            b'"' => lex_string(&mut cur, false, 0),
            b'\'' => lex_char_or_lifetime(&mut cur, &mut out),
            b'0'..=b'9' => lex_number(&mut cur, &mut out),
            _ => {
                let c = match cur.src[cur.pos..].chars().next() {
                    Some(c) => c,
                    None => break,
                };
                if is_ident_start(c) {
                    lex_ident_or_prefixed_string(&mut cur, &mut out);
                } else {
                    // Operator/punctuation; fuse `==` and `!=`.
                    let start = cur.pos;
                    cur.bump();
                    if (b == b'=' || b == b'!') && cur.peek() == Some(b'=') {
                        cur.bump();
                    }
                    push(&mut out, TokKind::Op, &cur.src[start..cur.pos], line);
                }
            }
        }
    }
    out
}

fn push<'a>(out: &mut Lexed<'a>, kind: TokKind, text: &'a str, line: u32) {
    if let Some(info) = out.lines.get_mut(line as usize) {
        info.has_code = true;
    }
    out.tokens.push(Token { kind, text, line });
}

fn mark_comment(out: &mut Lexed<'_>, line: u32, text: &str) {
    let safety = text.to_ascii_lowercase().contains("safety");
    if let Some(info) = out.lines.get_mut(line as usize) {
        info.has_comment = true;
        info.safety_comment |= safety;
    }
}

fn lex_line_comment<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.pos;
    let line = cur.line;
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    mark_comment(out, line, &cur.src[start..cur.pos]);
}

fn lex_block_comment<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    // Nested block comments, marking every covered line.
    let mut depth = 0usize;
    let mut line_start = cur.pos;
    loop {
        match (cur.peek(), cur.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
                if depth == 0 {
                    break;
                }
            }
            (Some(b'\n'), _) => {
                let line = cur.line;
                mark_comment(out, line, &cur.src[line_start..cur.pos]);
                cur.bump();
                line_start = cur.pos;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated; tolerate
        }
    }
    let line = cur.line;
    mark_comment(out, line, &cur.src[line_start..cur.pos]);
}

/// A string literal body starting at the opening quote. `raw` disables
/// escape processing; raw strings end at `"` followed by `hashes` `#`s.
fn lex_string(cur: &mut Cursor<'_>, raw: bool, hashes: usize) {
    cur.bump(); // opening quote
    if raw {
        while cur.peek().is_some() {
            if cur.peek() == Some(b'"') {
                let mut ok = true;
                for i in 0..hashes {
                    if cur.peek_at(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return;
                }
            }
            cur.bump();
        }
        return;
    }
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump(); // skip escaped char
            }
            b'"' => return,
            _ => {}
        }
    }
}

fn lex_char_or_lifetime<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    // `'a` / `'static` are lifetimes; `'a'`, `'\n'`, `'\u{1F600}'` chars.
    let line = cur.line;
    let start = cur.pos;
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            cur.bump();
            cur.bump(); // escape head (n, ', u, x, …)
            while let Some(b) = cur.peek() {
                cur.bump();
                if b == b'\'' {
                    break;
                }
            }
        }
        Some(_) => {
            let c = cur.src[cur.pos..].chars().next().unwrap_or('\0');
            if is_ident_start(c) && cur.peek_at(c.len_utf8()) != Some(b'\'') {
                // Lifetime: consume the identifier.
                cur.eat_ident();
                push(out, TokKind::Lifetime, &cur.src[start..cur.pos], line);
            } else {
                // Plain char literal like 'a' or '€'.
                cur.pos += c.len_utf8();
                if cur.peek() == Some(b'\'') {
                    cur.bump();
                }
            }
        }
        None => {}
    }
}

fn lex_number<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let line = cur.line;
    let start = cur.pos;
    let radix_prefixed = cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        );
    if radix_prefixed {
        cur.bump();
        cur.bump();
        while let Some(b) = cur.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
        push(out, TokKind::Int, &cur.src[start..cur.pos], line);
        return;
    }
    let mut is_float = false;
    while let Some(b) = cur.peek() {
        if b.is_ascii_digit() || b == b'_' {
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part — only when followed by a digit, so `1..n` ranges
    // and `x.0` tuple fields (lexed after a previous `.` token) stay ints.
    let after_dot_is_digit =
        cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit());
    let prev_is_dot = matches!(
        out.tokens.last(),
        Some(Token {
            kind: TokKind::Op,
            text: ".",
            ..
        })
    );
    if after_dot_is_digit && !prev_is_dot {
        is_float = true;
        cur.bump(); // the dot
        while let Some(b) = cur.peek() {
            if b.is_ascii_digit() || b == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let sign = matches!(cur.peek_at(1), Some(b'+' | b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            if sign {
                cur.bump();
            }
            while let Some(b) = cur.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Suffix (`f32`, `usize`, …) — attaches to the literal.
    if cur.src[cur.pos..]
        .chars()
        .next()
        .is_some_and(is_ident_start)
    {
        let suffix = cur.eat_ident();
        if suffix.starts_with('f') {
            is_float = true;
        }
    }
    let kind = if is_float {
        TokKind::Float
    } else {
        TokKind::Int
    };
    push(out, kind, &cur.src[start..cur.pos], line);
}

fn lex_ident_or_prefixed_string<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let line = cur.line;
    let start = cur.pos;
    let ident = cur.eat_ident();
    // String prefixes: r"", r#""#, b"", br#""#, c"", cr#""#.
    if matches!(ident, "r" | "b" | "br" | "c" | "cr") {
        let raw = ident.contains('r') && ident != "c";
        let mut hashes = 0usize;
        if raw {
            while cur.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
        }
        if cur.peek_at(hashes) == Some(b'"') {
            for _ in 0..hashes {
                cur.bump();
            }
            lex_string(cur, raw, hashes);
            return;
        }
        if ident == "r" && hashes >= 1 {
            // Raw identifier `r#ident`: skip the `#`, lex the identifier.
            cur.bump();
            let raw_ident = cur.eat_ident();
            push(out, TokKind::Ident, raw_ident, line);
            return;
        }
    }
    push(out, TokKind::Ident, &cur.src[start..cur.pos], line);
}

/// 1-based line ranges (inclusive) covered by `#[cfg(test)] mod … { … }`
/// blocks, used by passes that only apply outside tests.
pub fn test_mod_ranges(lx: &Lexed<'_>) -> Vec<(u32, u32)> {
    let toks = &lx.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Scan forward to `mod <name> {`, skipping further attributes.
        let mut j = i + 7;
        while j < toks.len() && toks[j].text != "mod" && toks[j].text != "fn" {
            j += 1;
        }
        // Find the opening brace of the item, then match it.
        while j < toks.len() && toks[j].text != "{" {
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let mut depth = 0i64;
        let mut end_line = toks[j].line;
        while j < toks.len() {
            match toks[j].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

/// True when `line` falls in any of `ranges` (inclusive).
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.iter().map(|t| t.text.to_string()).collect()
    }

    #[test]
    fn strings_chars_comments_are_stripped() {
        let src = r####"
            let a = "has panic! inside"; // a panic! comment
            let b = 'x';
            let c = r#"raw "panic!" body"#;
            /* block panic!
               over lines */
            let d = b"bytes";
        "####;
        let t = texts(src);
        assert!(!t.iter().any(|s| s.contains("panic")), "{t:?}");
        assert!(t.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<&str> = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let t = lex("let x = 1 + 2.0 + 1e-3 + 0x1F + 7usize + 2f32 + v.0;");
        let kinds: Vec<(String, TokKind)> = t
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text.to_string(), t.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("1".into(), TokKind::Int),
                ("2.0".into(), TokKind::Float),
                ("1e-3".into(), TokKind::Float),
                ("0x1F".into(), TokKind::Int),
                ("7usize".into(), TokKind::Int),
                ("2f32".into(), TokKind::Float),
                ("0".into(), TokKind::Int), // tuple field, not 0.;
            ]
        );
    }

    #[test]
    fn tuple_field_chains_stay_integers() {
        let t = lex("let y = x.0.1;");
        let nums: Vec<(String, TokKind)> = t
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text.to_string(), t.kind))
            .collect();
        assert_eq!(
            nums,
            vec![("0".into(), TokKind::Int), ("1".into(), TokKind::Int)]
        );
    }

    #[test]
    fn line_numbers_and_comment_flags() {
        let src = "let a = 1;\n// SAFETY: fine\nunsafe { x() }\n";
        let t = lex(src);
        let unsafe_tok = t.tokens.iter().find(|t| t.text == "unsafe").expect("tok");
        assert_eq!(unsafe_tok.line, 3);
        assert!(t.line(2).safety_comment);
        assert!(!t.line(2).has_code);
        assert!(t.line(1).has_code);
    }

    #[test]
    fn eq_ops_are_fused() {
        let t = lex("if a == 1.0 || b != 2 {}");
        let ops: Vec<&str> = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Op)
            .map(|t| t.text)
            .collect();
        assert!(ops.contains(&"=="));
        assert!(ops.contains(&"!="));
    }

    #[test]
    fn cfg_test_mod_ranges_cover_the_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lx = lex(src);
        let r = test_mod_ranges(&lx);
        assert_eq!(r, vec![(2, 5)]);
        assert!(in_ranges(&r, 4));
        assert!(!in_ranges(&r, 6));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let t = texts("let r#type = 1;");
        assert!(t.contains(&"type".to_string()));
    }
}
