//! Diagnostics: lint IDs and the machine-readable output format.

use std::fmt;

/// Every lint the checker can emit, with its stable ID string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintId {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in a hot-path
    /// module.
    HotpathPanic,
    /// Slice indexed by an integer literal in a hot-path module.
    HotpathIndex,
    /// `unsafe` without a preceding `// SAFETY:` comment.
    UnsafeNoSafety,
    /// Crate has no unsafe code but does not `#![forbid(unsafe_code)]`.
    ForbidUnsafeMissing,
    /// Wall-clock, hash-order or unseeded-RNG nondeterminism in a
    /// deterministic path.
    Nondeterminism,
    /// Bare `as` float cast in a kernel.
    FloatCast,
    /// Float `==`/`!=` against a literal outside tests.
    FloatEq,
    /// `#[target_feature]` hygiene: such fns must live in the `[simd]`
    /// module set, be `unsafe`, stay private to their dispatch module,
    /// and carry a SAFETY contract.
    SimdTargetFeature,
    /// Allowlist entry that matched nothing (stale config).
    UnusedAllow,
    /// Nested lock acquisition without a documented order, a same-label
    /// re-lock (self-deadlock), or a cycle in the workspace lock graph.
    LockOrder,
    /// `Ordering::Relaxed` on an atomic whose name matches a configured
    /// publish/ready/shutdown pattern.
    AtomicOrdering,
    /// Condvar wait, join, sleep, file I/O or formatting in a configured
    /// dispatcher batch-execution / kernel hot-path fn.
    BlockingInDispatcher,
    /// `MutexGuard` held across `catch_unwind` or a user-scorer
    /// callback.
    GuardAcrossAwaitable,
}

impl LintId {
    /// The stable ID string printed between brackets.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::HotpathPanic => "HOTPATH_PANIC",
            LintId::HotpathIndex => "HOTPATH_INDEX",
            LintId::UnsafeNoSafety => "UNSAFE_NO_SAFETY",
            LintId::ForbidUnsafeMissing => "FORBID_UNSAFE_MISSING",
            LintId::Nondeterminism => "NONDETERMINISM",
            LintId::FloatCast => "FLOAT_CAST",
            LintId::FloatEq => "FLOAT_EQ",
            LintId::SimdTargetFeature => "SIMD_TARGET_FEATURE",
            LintId::UnusedAllow => "UNUSED_ALLOW",
            LintId::LockOrder => "LOCK_ORDER",
            LintId::AtomicOrdering => "ATOMIC_ORDERING",
            LintId::BlockingInDispatcher => "BLOCKING_IN_DISPATCHER",
            LintId::GuardAcrossAwaitable => "GUARD_ACROSS_AWAITABLE",
        }
    }

    /// Every ID, for documentation and config validation.
    pub const ALL: [LintId; 13] = [
        LintId::HotpathPanic,
        LintId::HotpathIndex,
        LintId::UnsafeNoSafety,
        LintId::ForbidUnsafeMissing,
        LintId::Nondeterminism,
        LintId::FloatCast,
        LintId::FloatEq,
        LintId::SimdTargetFeature,
        LintId::UnusedAllow,
        LintId::LockOrder,
        LintId::AtomicOrdering,
        LintId::BlockingInDispatcher,
        LintId::GuardAcrossAwaitable,
    ];
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, formatted as `file:line: [LINT_ID] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Which lint fired.
    pub lint: LintId,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_machine_readable() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 42,
            lint: LintId::HotpathPanic,
            message: "`.unwrap()` in a hot-path module".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:42: [HOTPATH_PANIC] `.unwrap()` in a hot-path module"
        );
    }

    #[test]
    fn ids_are_unique() {
        for (i, a) in LintId::ALL.iter().enumerate() {
            for b in &LintId::ALL[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }
}
