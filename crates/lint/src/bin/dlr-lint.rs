//! CLI for the workspace invariant checker.
//!
//! ```text
//! dlr-lint [--check] [--root DIR] [--config FILE]
//! ```
//!
//! Prints one `file:line: [LINT_ID] message` per finding. Exits 0 when
//! clean, 2 when there are findings (or the config is invalid). `--check`
//! is the CI entry point — identical, but spelled out so invocations
//! self-document intent. Without `--root`, the workspace root is found by
//! walking up from the current directory to the nearest `lint.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

use dlr_lint::{lint_workspace, Config};

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // explicit CI spelling; behaviour is identical
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: dlr-lint [--check] [--root DIR] [--config FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dlr-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| find_root(std::env::current_dir().ok()?)) {
        Some(r) => r,
        None => {
            eprintln!("dlr-lint: no lint.toml found here or in any parent directory");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dlr-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dlr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dlr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    eprintln!(
        "dlr-lint: {} finding(s), {} suppressed by allowlist, {} file(s) scanned",
        report.diagnostics.len(),
        report.suppressed,
        report.files_scanned
    );
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
