//! Workspace sweep: file discovery, per-file pass dispatch, allowlist
//! filtering, and the crate-level `#![forbid(unsafe_code)]` check.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::concurrency::{self, LockEdge};
use crate::config::{in_set, Config};
use crate::diag::{Diagnostic, LintId};
use crate::lexer::{lex, test_mod_ranges, TokKind};
use crate::passes;

/// Outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint one file's source. `rel_path` selects which passes apply (via the
/// config's module sets); files under `tests/` are treated as all-test.
/// Returns raw findings — allowlist filtering happens in
/// [`lint_workspace`] (or [`apply_allowlist`] directly).
pub fn lint_file(rel_path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let mut edges = Vec::new();
    lint_file_with_edges(rel_path, source, cfg, &mut edges)
}

/// [`lint_file`], additionally appending this file's lock-acquisition
/// edges to `edges` for the workspace-level cycle check.
pub fn lint_file_with_edges(
    rel_path: &str,
    source: &str,
    cfg: &Config,
    edges: &mut Vec<LockEdge>,
) -> Vec<Diagnostic> {
    let lx = lex(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut tests = test_mod_ranges(&lx);
    if rel_path.starts_with("tests/") || rel_path.contains("/tests/") {
        // Integration-test files are test code end to end.
        tests.push((0, u32::MAX));
    }
    let mut out = Vec::new();
    if in_set(rel_path, &cfg.hot_path) {
        passes::panic_freedom(&lx, rel_path, &tests, &mut out);
    }
    passes::unsafe_hygiene(&lx, rel_path, &raw_lines, &mut out);
    // Always runs: outside the `[simd]` set the attribute itself is the
    // violation, so the pass cannot be gated on set membership.
    passes::simd_target_feature(
        &lx,
        rel_path,
        &raw_lines,
        in_set(rel_path, &cfg.simd),
        &mut out,
    );
    if in_set(rel_path, &cfg.deterministic) {
        passes::determinism(&lx, rel_path, &tests, &mut out);
    }
    if in_set(rel_path, &cfg.kernels) {
        passes::float_casts(&lx, rel_path, &tests, &mut out);
    }
    passes::float_eq(&lx, rel_path, &tests, &mut out);
    if in_set(rel_path, &cfg.concurrency) {
        concurrency::lock_discipline(&lx, rel_path, &tests, edges, &mut out);
    }
    // Always runs: a Relaxed publish flag is wrong wherever it lives —
    // only the name patterns come from config.
    concurrency::atomic_ordering(&lx, rel_path, &tests, &cfg.atomics_publish, &mut out);
    let dispatcher = concurrency::dispatcher_fns_for(rel_path, &cfg.dispatcher_fns);
    concurrency::blocking_in_dispatcher(&lx, rel_path, &tests, &dispatcher, &mut out);
    out.sort_by_key(|d| d.line);
    out
}

/// Filter `raw` through the allowlist: a diagnostic is suppressed when an
/// entry's lint ID and file match and the offending source line contains
/// the entry's pattern. Marks used entries in `used` (parallel to
/// `cfg.allow`). Returns (kept, suppressed_count).
pub fn apply_allowlist(
    raw: Vec<Diagnostic>,
    source: &str,
    cfg: &Config,
    used: &mut [bool],
) -> (Vec<Diagnostic>, usize) {
    let lines: Vec<&str> = source.lines().collect();
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    'diags: for d in raw {
        let line_text = lines.get(d.line as usize - 1).copied().unwrap_or("");
        for (i, a) in cfg.allow.iter().enumerate() {
            if a.lint == d.lint.as_str() && a.file == d.file && line_text.contains(&a.pattern) {
                if let Some(slot) = used.get_mut(i) {
                    *slot = true;
                }
                suppressed += 1;
                continue 'diags;
            }
        }
        kept.push(d);
    }
    (kept, suppressed)
}

/// Recursively collect `.rs` files under `root/<include dirs>`, skipping
/// excluded prefixes. Paths come back workspace-relative with forward
/// slashes, sorted — directory traversal order must not leak into output.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_file() {
            files.push(inc.clone());
            continue;
        }
        if dir.is_dir() {
            walk(root, &dir, cfg, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            // Never descend into build output.
            if rel == "target" || rel.ends_with("/target") {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint the whole workspace at `root` with `cfg`.
///
/// Beyond the per-file passes this adds the two cross-file checks:
/// crates with zero `unsafe` must declare `#![forbid(unsafe_code)]`
/// ([`LintId::ForbidUnsafeMissing`]), and allowlist entries that matched
/// nothing are reported ([`LintId::UnusedAllow`]) so the allowlist can
/// never rot.
///
/// # Errors
/// I/O errors reading the tree.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let files = collect_files(root, cfg)?;
    let mut report = Report::default();
    let mut used = vec![false; cfg.allow.len()];
    // crate root dir (e.g. "crates/dense") -> has any `unsafe` token.
    let mut crates: Vec<(String, bool)> = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let raw = lint_file_with_edges(rel, &source, cfg, &mut edges);
        let (kept, suppressed) = apply_allowlist(raw, &source, cfg, &mut used);
        report.suppressed += suppressed;
        report.diagnostics.extend(kept);
        report.files_scanned += 1;

        if let Some(crate_root) = crate_root_of(rel) {
            let has_unsafe = lex(&source)
                .tokens
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "unsafe");
            match crates.iter_mut().find(|(c, _)| *c == crate_root) {
                Some((_, flag)) => *flag |= has_unsafe,
                None => crates.push((crate_root, has_unsafe)),
            }
        }
    }
    for (crate_root, has_unsafe) in &crates {
        if *has_unsafe {
            continue;
        }
        let lib_rel = if crate_root == "." {
            "src/lib.rs".to_string()
        } else {
            format!("{crate_root}/src/lib.rs")
        };
        let lib_path = root.join(&lib_rel);
        if !lib_path.is_file() {
            continue; // bin-only crate roots have no lib to annotate
        }
        let lib_src = fs::read_to_string(&lib_path)?;
        if !lib_src.contains("#![forbid(unsafe_code)]") {
            report.diagnostics.push(Diagnostic {
                file: lib_rel,
                line: 1,
                lint: LintId::ForbidUnsafeMissing,
                message: format!(
                    "crate `{crate_root}` has no unsafe code; declare #![forbid(unsafe_code)] \
                     so none can creep in"
                ),
            });
        }
    }
    // Lock-order cycles are assembled from every file's edges —
    // including edges whose per-file finding was allowlisted: an
    // [[allow]] documents one nesting, it does not license a cycle.
    concurrency::lock_cycles(&edges, &mut report.diagnostics);
    for (i, a) in cfg.allow.iter().enumerate() {
        if !used[i] {
            report.diagnostics.push(Diagnostic {
                file: "lint.toml".to_string(),
                line: 0,
                lint: LintId::UnusedAllow,
                message: format!(
                    "allow entry #{} ({} in {}, pattern `{}`) matched nothing; remove it",
                    i + 1,
                    a.lint,
                    a.file,
                    a.pattern
                ),
            });
        }
    }
    report.diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.as_str()).cmp(&(b.file.as_str(), b.line, b.lint.as_str()))
    });
    Ok(report)
}

/// The crate directory a workspace-relative path belongs to:
/// `crates/<name>/…` → `crates/<name>`; `src/…` → `` (the root package).
fn crate_root_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        return Some(format!("crates/{name}"));
    }
    if rel.starts_with("src/") {
        return Some(".".to_string()); // root package; lib at src/lib.rs
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_hot(file: &str) -> Config {
        Config {
            hot_path: vec![file.to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn lint_file_applies_only_configured_passes() {
        let src = "fn a(x: Option<u8>) { x.unwrap(); }\n";
        let hot = lint_file("hot.rs", src, &cfg_hot("hot.rs"));
        assert_eq!(hot.len(), 1);
        let cold = lint_file("cold.rs", src, &cfg_hot("hot.rs"));
        assert!(cold.is_empty(), "{cold:?}");
    }

    #[test]
    fn tests_dir_files_are_fully_exempt_from_panic_lints() {
        let src = "fn a(x: Option<u8>) { x.unwrap(); }\n";
        let d = lint_file("tests/foo.rs", src, &cfg_hot("tests/foo.rs"));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allowlist_suppresses_by_line_pattern_and_marks_used() {
        let src = "fn a(x: Option<u8>) { x.unwrap(); // deliberate\n}\n";
        let mut cfg = cfg_hot("hot.rs");
        cfg.allow.push(crate::config::AllowEntry {
            lint: "HOTPATH_PANIC".into(),
            file: "hot.rs".into(),
            pattern: "// deliberate".into(),
            reason: "test".into(),
        });
        let raw = lint_file("hot.rs", src, &cfg);
        assert_eq!(raw.len(), 1);
        let mut used = vec![false];
        let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        assert!(used[0]);
    }

    #[test]
    fn simd_pass_runs_everywhere_but_respects_the_set() {
        let src =
            "// SAFETY: dispatch-only.\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        let cfg = Config {
            simd: vec!["crates/simd/src/".to_string()],
            ..Config::default()
        };
        let inside = lint_file("crates/simd/src/gemm.rs", src, &cfg);
        assert!(inside.is_empty(), "{inside:?}");
        let outside = lint_file("crates/dense/src/lib.rs", src, &cfg);
        assert_eq!(outside.len(), 1, "{outside:?}");
        assert_eq!(outside[0].lint, LintId::SimdTargetFeature);
    }

    #[test]
    fn crate_root_mapping() {
        assert_eq!(
            crate_root_of("crates/dense/src/gemm/blocked.rs").as_deref(),
            Some("crates/dense")
        );
        assert_eq!(crate_root_of("src/lib.rs").as_deref(), Some("."));
        assert_eq!(crate_root_of("examples/quickstart.rs"), None);
    }
}
