#![forbid(unsafe_code)]
//! `dlr-lint` — a dependency-free workspace invariant checker.
//!
//! The paper's pipeline only works because every stage is bit-reproducible
//! (distill → prune → fine-tune replays exactly; resume equals
//! uninterrupted; parallel equals serial) and because the serving hot path
//! never panics. Those invariants used to live in tests and reviewer
//! memory; this crate makes them machine-checked on every commit.
//!
//! The passes, configured by `lint.toml` at the workspace root:
//!
//! | Lint ID | What it enforces |
//! |---|---|
//! | `HOTPATH_PANIC` | No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in hot-path modules |
//! | `HOTPATH_INDEX` | No slice-indexing-by-literal in hot-path modules |
//! | `UNSAFE_NO_SAFETY` | Every `unsafe` preceded by a `// SAFETY:` comment |
//! | `FORBID_UNSAFE_MISSING` | Crates with zero unsafe declare `#![forbid(unsafe_code)]` |
//! | `NONDETERMINISM` | No wall clock / hash-order / unseeded RNG in deterministic paths |
//! | `FLOAT_CAST` | No bare `as` float casts in kernels (use `dlr-num`) |
//! | `FLOAT_EQ` | No float `==` against literals outside tests |
//! | `SIMD_TARGET_FEATURE` | `#[target_feature]` fns live in `[simd]`, unsafe, private, SAFETY-documented |
//! | `UNUSED_ALLOW` | Allowlist entries must match something |
//! | `LOCK_ORDER` | Nested lock acquisitions follow a documented order; the workspace lock graph is acyclic |
//! | `ATOMIC_ORDERING` | No `Ordering::Relaxed` on publish/ready/shutdown flags (counters exempt) |
//! | `BLOCKING_IN_DISPATCHER` | No waits/joins/sleeps/file I/O/formatting in dispatcher + kernel hot paths |
//! | `GUARD_ACROSS_AWAITABLE` | No `MutexGuard` held across `catch_unwind` or user-scorer callbacks |
//!
//! The concurrency passes ([`concurrency`]) build a lightweight
//! brace-tree model — fn spans and a guard-liveness walk over the token
//! stream, with same-file call summaries to a fixpoint — rather than a
//! full parser; see that module's docs for the model and its deliberate
//! limits.
//!
//! The container has no registry access, so there is no `syn` here: a
//! [`lexer`] strips strings/chars/comments and hands the passes plain
//! tokens with `file:line` spans. Diagnostics print as
//! `file:line: [LINT_ID] message` — greppable, CI-parseable.
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p dlr-lint --release -- --check
//! ```
//!
//! Library entry points: [`Config::parse`], [`lint_file`] (one file,
//! pass-selection by path), [`lint_workspace`] (the full sweep with
//! allowlist filtering and cross-file checks).

pub mod concurrency;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod workspace;

pub use config::{AllowEntry, Config, ConfigError};
pub use diag::{Diagnostic, LintId};
pub use workspace::{
    apply_allowlist, collect_files, lint_file, lint_file_with_edges, lint_workspace, Report,
};
