//! Hand-rolled parser for `lint.toml`.
//!
//! The linter is dependency-free, so this is not a general TOML
//! implementation — it covers exactly the subset the config uses:
//!
//! ```toml
//! [section]
//! key = "string"
//! key = [
//!     "item",        # comment
//!     "item",
//! ]
//!
//! [[allow]]
//! lint = "HOTPATH_PANIC"
//! file = "crates/dense/src/gemm/blocked.rs"
//! pattern = "unwrap_or_else(|e| panic!"
//! reason = "documented legacy panicking wrapper; serving uses try_*"
//! ```
//!
//! Unknown sections or keys are errors: a typo in the config must not
//! silently disable a lint.

use std::fmt;

/// One allowlist entry: suppresses diagnostics of `lint` in `file` whose
/// source line contains `pattern`. `reason` is mandatory — an allowlist
/// entry without a justification is itself a config error.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Lint ID string, e.g. `HOTPATH_PANIC`.
    pub lint: String,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Substring the offending source line must contain.
    pub pattern: String,
    /// Why the violation is intended.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan.
    pub include: Vec<String>,
    /// Path prefixes to skip (vendored code, build output).
    pub exclude: Vec<String>,
    /// Hot-path files: panic-freedom lints apply here.
    pub hot_path: Vec<String>,
    /// Deterministic files: wall-clock / hash-order / unseeded-RNG lints.
    pub deterministic: Vec<String>,
    /// Kernel files: numeric-cast hygiene.
    pub kernels: Vec<String>,
    /// SIMD kernel files: the only place `#[target_feature]` may appear,
    /// and where each such fn must be unsafe, private and SAFETY-documented.
    pub simd: Vec<String>,
    /// Concurrency-critical files: lock-order and guard-across-awaitable
    /// lints apply here (and feed the workspace lock graph).
    pub concurrency: Vec<String>,
    /// Case-insensitive name substrings marking an atomic as a
    /// publish/ready/shutdown flag: `Ordering::Relaxed` on a matching
    /// receiver is flagged (everywhere; pure counters don't match).
    pub atomics_publish: Vec<String>,
    /// Dispatcher batch-execution / kernel hot-path fns, as
    /// `path/to/file.rs::fn_name`: blocking and formatting are banned
    /// inside them.
    pub dispatcher_fns: Vec<String>,
    /// Allowlist entries.
    pub allow: Vec<AllowEntry>,
}

/// A config parse/validation failure with its `lint.toml` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing `# comment` that is outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1, // skip escaped char inside strings
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parse a `"quoted string"`, rejecting anything else.
fn parse_string(raw: &str, line: u32) -> Result<String, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected a double-quoted string, got `{raw}`"),
            )
        })?;
    // The only escape the config needs is `\"`; pass everything else
    // through verbatim (patterns contain `|`, `!`, `(`…).
    Ok(inner.replace("\\\"", "\""))
}

impl Config {
    /// Parse the config text. See the module docs for the grammar.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        #[derive(PartialEq)]
        enum Section {
            None,
            Scan,
            HotPath,
            Deterministic,
            Kernels,
            Simd,
            Concurrency,
            Atomics,
            Dispatcher,
            Allow,
        }
        let mut section = Section::None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                section = Section::Allow;
                cfg.allow.push(AllowEntry::default());
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = match name {
                    "scan" => Section::Scan,
                    "hot_path" => Section::HotPath,
                    "deterministic" => Section::Deterministic,
                    "kernels" => Section::Kernels,
                    "simd" => Section::Simd,
                    "concurrency" => Section::Concurrency,
                    "atomics" => Section::Atomics,
                    "dispatcher" => Section::Dispatcher,
                    other => return Err(err(lineno, format!("unknown section `[{other}]`"))),
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            // Array values may continue over following lines until `]`.
            let items = if value.starts_with('[') {
                let mut buf = String::from(value);
                let mut end = lineno;
                while !buf.trim_end().ends_with(']') {
                    match lines.next() {
                        Some((j, cont)) => {
                            end = j as u32 + 1;
                            buf.push(' ');
                            buf.push_str(strip_comment(cont).trim());
                        }
                        None => return Err(err(end, "unterminated array")),
                    }
                }
                let inner = buf
                    .trim()
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(lineno, "malformed array"))?;
                let mut out = Vec::new();
                for piece in inner.split(',') {
                    let piece = piece.trim();
                    if piece.is_empty() {
                        continue;
                    }
                    out.push(parse_string(piece, lineno)?);
                }
                Some(out)
            } else {
                None
            };
            match (&section, key) {
                (Section::Scan, "include") => {
                    cfg.include = items.ok_or_else(|| err(lineno, "include must be an array"))?;
                }
                (Section::Scan, "exclude") => {
                    cfg.exclude = items.ok_or_else(|| err(lineno, "exclude must be an array"))?;
                }
                (Section::HotPath, "files") => {
                    cfg.hot_path = items.ok_or_else(|| err(lineno, "files must be an array"))?;
                }
                (Section::Deterministic, "files") => {
                    cfg.deterministic =
                        items.ok_or_else(|| err(lineno, "files must be an array"))?;
                }
                (Section::Kernels, "files") => {
                    cfg.kernels = items.ok_or_else(|| err(lineno, "files must be an array"))?;
                }
                (Section::Simd, "files") => {
                    cfg.simd = items.ok_or_else(|| err(lineno, "files must be an array"))?;
                }
                (Section::Concurrency, "files") => {
                    cfg.concurrency = items.ok_or_else(|| err(lineno, "files must be an array"))?;
                }
                (Section::Atomics, "publish") => {
                    cfg.atomics_publish =
                        items.ok_or_else(|| err(lineno, "publish must be an array"))?;
                }
                (Section::Dispatcher, "fns") => {
                    let fns = items.ok_or_else(|| err(lineno, "fns must be an array"))?;
                    for f in &fns {
                        if !f.contains("::") {
                            return Err(err(
                                lineno,
                                format!("dispatcher fn `{f}` must be `path/to/file.rs::fn_name`"),
                            ));
                        }
                    }
                    cfg.dispatcher_fns = fns;
                }
                (Section::Allow, k @ ("lint" | "file" | "pattern" | "reason")) => {
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| err(lineno, "allow key outside [[allow]]"))?;
                    let v = parse_string(value, lineno)?;
                    match k {
                        "lint" => entry.lint = v,
                        "file" => entry.file = v,
                        "pattern" => entry.pattern = v,
                        _ => entry.reason = v,
                    }
                }
                (Section::None, _) => {
                    return Err(err(lineno, format!("`{key}` outside any section")));
                }
                _ => return Err(err(lineno, format!("unknown key `{key}` in this section"))),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for (i, a) in self.allow.iter().enumerate() {
            if a.lint.is_empty() || a.file.is_empty() || a.pattern.is_empty() {
                return Err(err(
                    0,
                    format!(
                        "allow entry #{}: lint, file and pattern are all required",
                        i + 1
                    ),
                ));
            }
            if a.reason.trim().is_empty() {
                return Err(err(
                    0,
                    format!(
                        "allow entry #{} ({} in {}): a non-empty reason is required",
                        i + 1,
                        a.lint,
                        a.file
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Does `path` fall in `set`? Entries ending in `/` are directory
/// prefixes; anything else must match exactly.
pub fn in_set(path: &str, set: &[String]) -> bool {
    set.iter().any(|entry| {
        if let Some(prefix) = entry.strip_suffix('/') {
            path.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('/'))
        } else {
            path == entry
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[scan]
include = ["crates", "src"]
exclude = ["compat"]

[hot_path]
files = [
    "crates/core/src/serve.rs",   # trailing comment
    "crates/dense/src/",
]

[deterministic]
files = ["crates/nn/src/checkpoint.rs"]

[kernels]
files = []

[simd]
files = ["crates/simd/src/"]

[[allow]]
lint = "HOTPATH_PANIC"
file = "crates/dense/src/gemm/blocked.rs"
pattern = "unwrap_or_else(|e| panic!"
reason = "documented legacy wrapper"
"##;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        assert_eq!(cfg.include, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["compat"]);
        assert_eq!(cfg.hot_path.len(), 2);
        assert_eq!(cfg.deterministic, vec!["crates/nn/src/checkpoint.rs"]);
        assert!(cfg.kernels.is_empty());
        assert_eq!(cfg.simd, vec!["crates/simd/src/"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].pattern, "unwrap_or_else(|e| panic!");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let bad = "[[allow]]\nlint = \"X\"\nfile = \"a.rs\"\npattern = \"p\"\n";
        let e = Config::parse(bad).expect_err("must fail");
        assert!(e.message.contains("reason"), "{e}");
    }

    #[test]
    fn unknown_section_is_rejected() {
        let e = Config::parse("[typo]\nfiles = []\n").expect_err("must fail");
        assert!(e.message.contains("unknown section"), "{e}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let e = Config::parse("[hot_path]\nfile = []\n").expect_err("must fail");
        assert!(e.message.contains("unknown key"), "{e}");
    }

    #[test]
    fn set_membership_prefix_vs_exact() {
        let set = vec!["crates/dense/src/".to_string(), "src/lib.rs".to_string()];
        assert!(in_set("crates/dense/src/gemm/blocked.rs", &set));
        assert!(in_set("src/lib.rs", &set));
        assert!(!in_set("crates/dense/srcx/foo.rs", &set));
        assert!(!in_set("src/lib2.rs", &set));
        assert!(!in_set("crates/dense/src", &set));
    }

    #[test]
    fn concurrency_atomics_and_dispatcher_sections_parse() {
        let cfg = Config::parse(
            "[concurrency]\nfiles = [\"crates/serve/src/queue.rs\"]\n\
             [atomics]\npublish = [\"ready\", \"active\"]\n\
             [dispatcher]\nfns = [\"crates/serve/src/dispatch.rs::execute\"]\n",
        )
        .expect("parse");
        assert_eq!(cfg.concurrency, vec!["crates/serve/src/queue.rs"]);
        assert_eq!(cfg.atomics_publish, vec!["ready", "active"]);
        assert_eq!(
            cfg.dispatcher_fns,
            vec!["crates/serve/src/dispatch.rs::execute"]
        );
    }

    #[test]
    fn dispatcher_fn_without_file_scope_is_rejected() {
        let e = Config::parse("[dispatcher]\nfns = [\"execute\"]\n").expect_err("must fail");
        assert!(e.message.contains("file.rs::fn_name"), "{e}");
    }

    #[test]
    fn hash_inside_pattern_string_survives() {
        let cfg = Config::parse(
            "[[allow]]\nlint = \"L\"\nfile = \"f.rs\"\npattern = \"x # y\"\nreason = \"r\"\n",
        )
        .expect("parse");
        assert_eq!(cfg.allow[0].pattern, "x # y");
    }
}
