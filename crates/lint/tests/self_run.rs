//! The linter's own acceptance test: the workspace it ships in must lint
//! clean with the checked-in `lint.toml`. Any new violation (or newly
//! unused allowlist entry) fails this test, so `cargo test` alone catches
//! invariant regressions even without the CI lint job.

use dlr_lint::{lint_workspace, Config};
use std::path::Path;

#[test]
fn workspace_lints_clean_with_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::parse(&toml).expect("lint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("lint the workspace");
    assert!(
        report.diagnostics.is_empty(),
        "dlr-lint found violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the tree.
    assert!(report.files_scanned > 100, "{} files", report.files_scanned);
}
