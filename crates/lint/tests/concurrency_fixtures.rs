//! Fixture tests for the concurrency passes, mirroring `fixtures.rs`:
//! one positive case per lint asserting the exact `file:line`, one
//! allowlisted (or out-of-set) negative case proving suppression, plus
//! lexer blind-spot fixtures — raw strings containing `lock(` /
//! `unsafe`, nested block comments straddling `#[cfg(test)]`, and
//! char-literal braces — that a naive regex pass would trip over.

use dlr_lint::{apply_allowlist, lint_file, lint_file_with_edges, Config, LintId};

const BASE_CFG: &str = r#"
[scan]
include = ["crates"]
exclude = []

[concurrency]
files = ["crates/conc/src/"]

[atomics]
publish = ["ready", "active", "shutdown"]

[dispatcher]
fns = ["crates/conc/src/dispatch.rs::execute"]
"#;

fn cfg() -> Config {
    Config::parse(BASE_CFG).expect("base fixture config parses")
}

fn cfg_with_allow(lint: &str, file: &str, pattern: &str) -> Config {
    let toml = format!(
        "{BASE_CFG}\n[[allow]]\nlint = \"{lint}\"\nfile = \"{file}\"\npattern = \"{pattern}\"\nreason = \"fixture\"\n"
    );
    Config::parse(&toml).expect("allow fixture config parses")
}

// ---------------------------------------------------------------------
// LOCK_ORDER

#[test]
fn lock_order_flags_nested_acquisition_with_exact_location() {
    let src = "pub fn f(a: &A, b: &B) {\n    let g = a.state.lock().unwrap();\n    let h = b.stats.lock().unwrap();\n}\n";
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::LockOrder);
    assert_eq!(diags[0].file, "crates/conc/src/lib.rs");
    assert_eq!(diags[0].line, 3);
    assert_eq!(
        diags[0].to_string(),
        format!(
            "crates/conc/src/lib.rs:3: [LOCK_ORDER] {}",
            diags[0].message
        )
    );
}

#[test]
fn lock_order_records_the_edge_for_the_workspace_graph() {
    let src = "pub fn f(a: &A, b: &B) {\n    let g = a.state.lock().unwrap();\n    let h = b.stats.lock().unwrap();\n}\n";
    let mut edges = Vec::new();
    let _ = lint_file_with_edges("crates/conc/src/lib.rs", src, &cfg(), &mut edges);
    assert_eq!(edges.len(), 1, "{edges:?}");
    assert_eq!(edges[0].from, "crates/conc/src/lib.rs::state");
    assert_eq!(edges[0].to, "crates/conc/src/lib.rs::stats");
}

#[test]
fn lock_order_out_of_set_and_allowlist_negatives() {
    let src = "pub fn f(a: &A, b: &B) {\n    let g = a.state.lock().unwrap();\n    let h = b.stats.lock().unwrap();\n}\n";
    // Out of the [concurrency] set: pass does not run.
    assert!(lint_file("crates/other/src/lib.rs", src, &cfg()).is_empty());
    // In set, allowlisted: finding suppressed and entry marked used.
    let cfg = cfg_with_allow("LOCK_ORDER", "crates/conc/src/lib.rs", "stats.lock()");
    let raw = lint_file("crates/conc/src/lib.rs", src, &cfg);
    assert_eq!(raw.len(), 1);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed, 1);
    assert_eq!(used, vec![true]);
}

// ---------------------------------------------------------------------
// ATOMIC_ORDERING

#[test]
fn atomic_ordering_flags_relaxed_publish_flag_with_exact_location() {
    let src = "pub fn f(s: &S) {\n    s.ready.store(true, Ordering::Relaxed);\n}\n";
    // Runs on every scanned file — no set membership needed.
    let diags = lint_file("crates/anywhere/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::AtomicOrdering);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("ready"), "{diags:?}");
}

#[test]
fn atomic_ordering_spares_counters_and_honors_the_allowlist() {
    // `opened` matches no publish pattern: a pure counter stays Relaxed.
    let counter = "pub fn f(s: &S) {\n    s.opened.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert!(lint_file("crates/anywhere/src/lib.rs", counter, &cfg()).is_empty());

    let src = "pub fn f() {\n    ACTIVE.store(1, Ordering::Relaxed);\n}\n";
    let cfg = cfg_with_allow(
        "ATOMIC_ORDERING",
        "crates/anywhere/src/lib.rs",
        "Ordering::Relaxed",
    );
    let raw = lint_file("crates/anywhere/src/lib.rs", src, &cfg);
    assert_eq!(raw.len(), 1);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed, 1);
    assert_eq!(used, vec![true]);
}

// ---------------------------------------------------------------------
// BLOCKING_IN_DISPATCHER

#[test]
fn blocking_in_dispatcher_flags_sleep_with_exact_location() {
    let src = "pub fn execute() {\n    std::thread::sleep(d);\n}\npub fn helper() {\n    std::thread::sleep(d);\n}\n";
    let diags = lint_file("crates/conc/src/dispatch.rs", src, &cfg());
    // Only the configured fn is checked; `helper` sleeps freely.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::BlockingInDispatcher);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("fn execute"), "{diags:?}");
}

#[test]
fn blocking_in_dispatcher_wrong_file_and_allowlist_negatives() {
    let src = "pub fn execute() {\n    std::thread::sleep(d);\n}\n";
    // Same fn name in an unconfigured file: not a dispatcher.
    assert!(lint_file("crates/conc/src/lib.rs", src, &cfg()).is_empty());
    let cfg = cfg_with_allow(
        "BLOCKING_IN_DISPATCHER",
        "crates/conc/src/dispatch.rs",
        "thread::sleep(",
    );
    let raw = lint_file("crates/conc/src/dispatch.rs", src, &cfg);
    assert_eq!(raw.len(), 1);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed, 1);
    assert_eq!(used, vec![true]);
}

// ---------------------------------------------------------------------
// GUARD_ACROSS_AWAITABLE

#[test]
fn guard_across_awaitable_flags_catch_unwind_with_exact_location() {
    let src = "pub fn f(a: &A) {\n    let g = a.state.lock().unwrap();\n    let r = std::panic::catch_unwind(|| g.run());\n}\n";
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::GuardAcrossAwaitable);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn guard_across_awaitable_dropped_guard_and_allowlist_negatives() {
    // Guard dropped before the unwind boundary: clean.
    let dropped = "pub fn f(a: &A) {\n    let g = a.state.lock().unwrap();\n    drop(g);\n    let r = std::panic::catch_unwind(|| run());\n}\n";
    assert!(lint_file("crates/conc/src/lib.rs", dropped, &cfg()).is_empty());

    let src = "pub fn f(a: &A, rows: &[f32], out: &mut [f32]) {\n    let mut s = a.scorer.lock().unwrap();\n    s.score_batch(rows, out);\n}\n";
    let cfg = cfg_with_allow(
        "GUARD_ACROSS_AWAITABLE",
        "crates/conc/src/lib.rs",
        "score_batch(",
    );
    let raw = lint_file("crates/conc/src/lib.rs", src, &cfg);
    assert_eq!(raw.len(), 1);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed, 1);
    assert_eq!(used, vec![true]);
}

// ---------------------------------------------------------------------
// Lexer blind spots: text that defeats naive regex scanning.

#[test]
fn raw_string_containing_lock_calls_is_not_an_acquisition() {
    // `.lock()` inside string literals — raw, raw-with-hashes, plain —
    // must not create guards or edges.
    let src = "pub fn f(b: &B) {\n    let doc = r#\"a.state.lock() then b.stats.lock()\"#;\n    let plain = \"x.state.lock()\";\n    let h = b.stats.lock().unwrap();\n}\n";
    let mut edges = Vec::new();
    let diags = lint_file_with_edges("crates/conc/src/lib.rs", src, &cfg(), &mut edges);
    assert!(diags.is_empty(), "{diags:?}");
    assert!(edges.is_empty(), "{edges:?}");
}

#[test]
fn raw_string_containing_unsafe_does_not_defeat_forbid_check_tokens() {
    // The token stream sees no `unsafe` ident here; a raw string spelling
    // it is data. (The workspace FORBID_UNSAFE_MISSING check keys off the
    // same token stream.)
    let src = "pub fn f() -> &'static str {\n    r#\"unsafe { lock( } \"#\n}\n";
    let lx_has_unsafe = src.contains("unsafe"); // raw text does…
    assert!(lx_has_unsafe);
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert!(diags.is_empty(), "{diags:?}"); // …but the lexer strips it
}

#[test]
fn nested_block_comment_straddling_cfg_test_keeps_exemption_honest() {
    // The `#[cfg(test)]` inside a nested block comment must NOT open a
    // test-exemption range: the nested lock after it is production code
    // and must still be flagged.
    let src = "/* outer /* #[cfg(test)] mod tests { */ still comment */\npub fn f(a: &A, b: &B) {\n    let g = a.state.lock().unwrap();\n    let h = b.stats.lock().unwrap();\n}\n";
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::LockOrder);
    assert_eq!(diags[0].line, 4);
}

#[test]
fn real_cfg_test_module_after_nested_comment_is_still_exempt() {
    // Dual of the previous fixture: a real test module following the
    // tricky comment still gets its exemption.
    let src = "/* /* #[cfg(test)] */ */\n#[cfg(test)]\nmod tests {\n    fn f(a: &A, b: &B) {\n        let g = a.state.lock().unwrap();\n        let h = b.stats.lock().unwrap();\n    }\n}\n";
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn char_literal_braces_do_not_derail_the_brace_tree() {
    // '{' and '}' as char literals must not corrupt fn-span matching:
    // the nested lock below them still gets its exact line.
    let src = "pub fn f(a: &A, b: &B) {\n    let open = '{';\n    let close = '}';\n    let g = a.state.lock().unwrap();\n    let h = b.stats.lock().unwrap();\n}\n";
    let diags = lint_file("crates/conc/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn char_literal_braces_inside_dispatcher_fn_keep_blocking_scoped() {
    // If the brace tree broke on '{', the sleep in `helper` would appear
    // to be inside `execute` (or execute's sleep would be missed).
    let src = "pub fn execute() {\n    let b = '}';\n    std::thread::sleep(d);\n}\npub fn helper() {\n    let b = '{';\n    std::thread::sleep(d);\n}\n";
    let diags = lint_file("crates/conc/src/dispatch.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("fn execute"), "{diags:?}");
}
