//! Fixture tests: one per lint, a positive case asserting the exact
//! `file:line` of the diagnostic plus an allowlisted (or out-of-set)
//! negative case proving the suppression path works.

use dlr_lint::{apply_allowlist, lint_file, lint_workspace, Config, LintId};

const BASE_CFG: &str = r#"
[scan]
include = ["crates", "src"]
exclude = []

[hot_path]
files = ["crates/hot/src/"]

[deterministic]
files = ["crates/det/src/"]

[kernels]
files = ["crates/kern/src/"]

[simd]
files = ["crates/simd/src/"]
"#;

fn cfg() -> Config {
    Config::parse(BASE_CFG).expect("base fixture config parses")
}

fn cfg_with_allow(lint: &str, file: &str, pattern: &str) -> Config {
    let toml = format!(
        "{BASE_CFG}\n[[allow]]\nlint = \"{lint}\"\nfile = \"{file}\"\npattern = \"{pattern}\"\nreason = \"fixture\"\n"
    );
    Config::parse(&toml).expect("allow fixture config parses")
}

#[test]
fn hotpath_panic_flags_unwrap_with_exact_location() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n";
    let diags = lint_file("crates/hot/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::HotpathPanic);
    assert_eq!(diags[0].file, "crates/hot/src/lib.rs");
    assert_eq!(diags[0].line, 2);
    assert_eq!(
        diags[0].to_string(),
        format!(
            "crates/hot/src/lib.rs:2: [HOTPATH_PANIC] {}",
            diags[0].message
        )
    );
}

#[test]
fn hotpath_panic_ignores_cold_files_and_test_mods() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n";
    assert!(lint_file("crates/cold/src/lib.rs", src, &cfg()).is_empty());

    let test_src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
    assert!(lint_file("crates/hot/src/lib.rs", test_src, &cfg()).is_empty());
}

#[test]
fn hotpath_panic_allowlist_suppresses_and_marks_used() {
    let src = "pub fn f() {\n    try_f().unwrap_or_else(|e| panic!(\"{e}\"));\n}\n";
    let cfg = cfg_with_allow(
        "HOTPATH_PANIC",
        "crates/hot/src/lib.rs",
        "unwrap_or_else(|e| panic!",
    );
    let raw = lint_file("crates/hot/src/lib.rs", src, &cfg);
    assert_eq!(raw.len(), 1);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty());
    assert_eq!(suppressed, 1);
    assert_eq!(used, vec![true]);
}

#[test]
fn hotpath_index_flags_literal_indexing_only() {
    let src = "pub fn f(v: &[u32], i: usize) -> u32 {\n    let a = v[i];\n    let b = v[0];\n    a + b\n}\n";
    let diags = lint_file("crates/hot/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::HotpathIndex);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    let diags = lint_file("crates/cold/src/ptr.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::UnsafeNoSafety);
    assert_eq!(diags[0].file, "crates/cold/src/ptr.rs");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn unsafe_with_safety_comment_passes() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(lint_file("crates/cold/src/ptr.rs", src, &cfg()).is_empty());
}

#[test]
fn nondeterminism_flags_instant_and_hashmap_in_deterministic_set() {
    let src = "use std::time::Instant;\nuse std::collections::HashMap;\npub fn f() {\n    let t = Instant::now();\n    let m: HashMap<u32, u32> = HashMap::new();\n    drop((t, m));\n}\n";
    let diags = lint_file("crates/det/src/kernel.rs", src, &cfg());
    assert!(
        diags.iter().all(|d| d.lint == LintId::Nondeterminism),
        "{diags:?}"
    );
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert!(lines.contains(&4), "Instant::now at line 4: {lines:?}");
    assert!(lines.contains(&5), "HashMap::new at line 5: {lines:?}");
    // The same source outside the deterministic set is fine.
    assert!(lint_file("crates/cold/src/kernel.rs", src, &cfg()).is_empty());
}

#[test]
fn float_cast_flags_bare_as_in_kernels_only() {
    let src = "pub fn f(n: usize) -> f32 {\n    n as f32\n}\n";
    let diags = lint_file("crates/kern/src/gemm.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::FloatCast);
    assert_eq!(diags[0].line, 2);
    assert!(lint_file("crates/cold/src/gemm.rs", src, &cfg()).is_empty());
}

#[test]
fn float_eq_flags_literal_comparison_and_respects_allowlist() {
    let src = "pub fn f(x: f32) -> bool {\n    x == 0.0\n}\n";
    let diags = lint_file("crates/cold/src/lib.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::FloatEq);
    assert_eq!(diags[0].line, 2);

    let cfg = cfg_with_allow("FLOAT_EQ", "crates/cold/src/lib.rs", "x == 0.0");
    let raw = lint_file("crates/cold/src/lib.rs", src, &cfg);
    let mut used = vec![false; cfg.allow.len()];
    let (kept, suppressed) = apply_allowlist(raw, src, &cfg, &mut used);
    assert!(kept.is_empty());
    assert_eq!(suppressed, 1);
}

#[test]
fn simd_target_feature_outside_set_is_flagged() {
    let src = "/// # Safety\n/// Caller must prove AVX2 support.\n#[target_feature(enable = \"avx2\")]\nunsafe fn k(a: &[f32]) {}\n";
    let diags = lint_file("crates/hot/src/fast.rs", src, &cfg());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, LintId::SimdTargetFeature);
    assert_eq!(diags[0].file, "crates/hot/src/fast.rs");
    assert_eq!(diags[0].line, 3);
    // The identical kernel inside the [simd] set is well-formed.
    assert!(lint_file("crates/simd/src/gemm.rs", src, &cfg()).is_empty());
}

#[test]
fn simd_target_feature_hygiene_inside_set() {
    // Missing `unsafe` and `pub` escape hatch are both flagged, with the
    // SAFETY contract present so only those two findings fire.
    let src = "// SAFETY: dispatch table proves support.\n#[target_feature(enable = \"avx2\")]\npub fn k(a: &[f32]) {}\n";
    let diags = lint_file("crates/simd/src/gemm.rs", src, &cfg());
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == LintId::SimdTargetFeature));
    assert!(diags.iter().any(|d| d.message.contains("`unsafe`")));
    assert!(diags.iter().any(|d| d.message.contains("private")));
}

#[test]
fn simd_target_feature_without_safety_contract_is_flagged() {
    let src = "#[target_feature(enable = \"sse2\")]\nunsafe fn k(a: &[f32]) {}\n";
    let diags = lint_file("crates/simd/src/sdmm.rs", src, &cfg());
    // One finding from the SIMD pass; unsafe_hygiene adds its own for the
    // bare `unsafe` token.
    assert!(
        diags
            .iter()
            .any(|d| d.lint == LintId::SimdTargetFeature && d.message.contains("SAFETY contract")),
        "{diags:?}"
    );
}

/// Build a scratch one-crate workspace under `CARGO_TARGET_TMPDIR`.
fn scratch_workspace(name: &str, lib_src: &str) -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/foo/src");
    std::fs::create_dir_all(&src_dir).expect("create scratch workspace");
    std::fs::write(src_dir.join("lib.rs"), lib_src).expect("write scratch lib.rs");
    root
}

#[test]
fn forbid_unsafe_missing_fires_at_crate_root_line_1() {
    let root = scratch_workspace("forbid-missing", "pub fn f() {}\n");
    let report = lint_workspace(&root, &cfg()).expect("lint scratch workspace");
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.lint, LintId::ForbidUnsafeMissing);
    assert_eq!(d.file, "crates/foo/src/lib.rs");
    assert_eq!(d.line, 1);
}

#[test]
fn forbid_unsafe_present_passes() {
    let root = scratch_workspace("forbid-present", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    let report = lint_workspace(&root, &cfg()).expect("lint scratch workspace");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn unused_allow_entry_is_reported() {
    let root = scratch_workspace("unused-allow", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    let cfg = cfg_with_allow("HOTPATH_PANIC", "crates/foo/src/lib.rs", "never matches");
    let report = lint_workspace(&root, &cfg).expect("lint scratch workspace");
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.lint, LintId::UnusedAllow);
    assert_eq!(d.file, "lint.toml");
}
