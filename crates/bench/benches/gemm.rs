//! Dense GEMM: Goto-blocked kernel vs the naive triple loop, across the
//! layer shapes the paper's networks actually multiply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_dense::gemm::blocked::{gemm_with, GemmWorkspace, GotoParams};
use dlr_dense::gemm::naive::naive_gemm_into;
use dlr_dense::Matrix;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // (m, k, n): first layers and hidden layers at batch 64 and 1000.
    for &(m, k, n) in &[
        (400usize, 136usize, 64usize),
        (200, 200, 64),
        (400, 136, 1000),
        (500, 500, 256),
    ] {
        let a = Matrix::random(m, k, 1.0, 1);
        let b = Matrix::random(k, n, 1.0, 2);
        let mut cbuf = vec![0.0f32; m * n];
        let mut ws = GemmWorkspace::default();
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| {
                bch.iter(|| {
                    gemm_with(
                        m,
                        k,
                        n,
                        black_box(a.as_slice()),
                        black_box(b.as_slice()),
                        &mut cbuf,
                        GotoParams::default(),
                        &mut ws,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| {
                bch.iter(|| {
                    naive_gemm_into(
                        m,
                        k,
                        n,
                        black_box(a.as_slice()),
                        black_box(b.as_slice()),
                        &mut cbuf,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
