//! Ablations of the design choices DESIGN.md calls out:
//! Goto parameter presets, SDMM batch-width sensitivity, and BWQS block
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_core::prelude::*;
use dlr_dense::gemm::blocked::{gemm_with, GemmWorkspace, GotoParams};
use dlr_dense::Matrix;
use dlr_sparse::{spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};
use std::hint::black_box;

fn bench_goto_params(c: &mut Criterion) {
    let (m, k, n) = (400usize, 136usize, 256usize);
    let a = Matrix::random(m, k, 1.0, 1);
    let b = Matrix::random(k, n, 1.0, 2);
    let mut cbuf = vec![0.0f32; m * n];
    let mut ws = GemmWorkspace::default();
    let mut group = c.benchmark_group("goto_params_400x136x256");
    for (name, params) in [
        ("default", GotoParams::default()),
        ("onednn_avx2", GotoParams::onednn_avx2()),
        (
            "tiny_blocks",
            GotoParams {
                mc: 16,
                nc: 64,
                kc: 32,
            },
        ),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                gemm_with(
                    m,
                    k,
                    n,
                    black_box(a.as_slice()),
                    b.as_slice(),
                    &mut cbuf,
                    params,
                    &mut ws,
                )
            })
        });
    }
    group.finish();
}

fn bench_sdmm_batch_width(c: &mut Criterion) {
    // Eq. 5 assumes B stays cache-resident; the paper observed the
    // assumption break for N >= 128.
    let (m, k) = (400usize, 136usize);
    let mut dense = Matrix::random(m, k, 1.0, 3);
    for (i, v) in dense.as_mut_slice().iter_mut().enumerate() {
        if i % 50 != 0 {
            *v = 0.0;
        }
    }
    let a = CsrMatrix::from_dense(&dense, 0.0);
    let mut group = c.benchmark_group("sdmm_batch_width");
    for &n in &[16usize, 64, 256] {
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32).collect();
        let packed = PackedB::pack(&b, k, n);
        let mut ws = SpmmWorkspace::default();
        let mut cbuf = vec![0.0f32; m * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| spmm_xsmm_packed(black_box(&a), &packed, &mut cbuf, &mut ws))
        });
    }
    group.finish();
}

fn bench_bwqs_block_size(c: &mut Criterion) {
    let mut cfg = SyntheticConfig::msn30k_like(30);
    cfg.docs_per_query = 40;
    let data = cfg.generate();
    let params = LambdaMartParams {
        num_trees: 100,
        growth: GrowthParams {
            max_leaves: 64,
            ..Default::default()
        },
        early_stopping_rounds: 0,
        ..Default::default()
    };
    let (e, _) = LambdaMartTrainer::new(params).fit(&data, None);
    let docs = data.features()[..136 * 512].to_vec();
    let mut out = vec![0.0f32; 512];
    let mut group = c.benchmark_group("bwqs_block_size_100trees");
    group.sample_size(20);
    for &block in &[10usize, 25, 50, 100] {
        let mut bw = QuickScorerScorer::compile_blockwise(&e, block, "bwqs");
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, _| {
            b.iter(|| bw.score_batch(black_box(&docs), &mut out))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_goto_params,
    bench_sdmm_batch_width,
    bench_bwqs_block_size
);
criterion_main!(benches);
