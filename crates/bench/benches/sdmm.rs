//! Sparse-dense multiplication: LIBXSMM-style kernel vs naive CSR loop,
//! sweeping the sparsity range that pruning produces (Table 3 shapes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_dense::Matrix;
use dlr_sparse::{spmm_naive, spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn sparse(m: usize, k: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dense = Matrix::zeros(m, k);
    let nnz = ((m * k) as f64 * (1.0 - sparsity)).round().max(1.0) as usize;
    let mut placed = 0;
    while placed < nnz {
        let i = rng.random_range(0..m);
        let j = rng.random_range(0..k);
        if dense.get(i, j) == 0.0 {
            dense.set(i, j, rng.random_range(0.1..1.0f32));
            placed += 1;
        }
    }
    CsrMatrix::from_dense(&dense, 0.0)
}

fn bench_sdmm(c: &mut Criterion) {
    let (m, k, n) = (400usize, 136usize, 64usize);
    let b: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 / 6.0 - 1.0).collect();
    let mut group = c.benchmark_group("sdmm_400x136_n64");
    for &sparsity in &[0.90f64, 0.95, 0.98, 0.99] {
        let a = sparse(m, k, sparsity, 7);
        let packed = PackedB::pack(&b, k, n);
        let mut ws = SpmmWorkspace::default();
        let mut cbuf = vec![0.0f32; m * n];
        group.bench_with_input(
            BenchmarkId::new("xsmm", format!("{sparsity}")),
            &sparsity,
            |bch, _| bch.iter(|| spmm_xsmm_packed(black_box(&a), &packed, &mut cbuf, &mut ws)),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{sparsity}")),
            &sparsity,
            |bch, _| bch.iter(|| spmm_naive(black_box(&a), &b, n, &mut cbuf)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sdmm);
criterion_main!(benches);
