//! Tree-ensemble traversal: QuickScorer (plain / blockwise / vectorized)
//! vs classic root-to-leaf traversal, by forest size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_core::prelude::*;
use std::hint::black_box;

fn setup(trees: usize, leaves: usize) -> (Ensemble, Vec<f32>, usize) {
    let mut cfg = SyntheticConfig::msn30k_like(30);
    cfg.docs_per_query = 40;
    let data = cfg.generate();
    let params = LambdaMartParams {
        num_trees: trees,
        growth: GrowthParams {
            max_leaves: leaves,
            ..Default::default()
        },
        early_stopping_rounds: 0,
        ..Default::default()
    };
    let (e, _) = LambdaMartTrainer::new(params).fit(&data, None);
    let docs = data.features()[..136 * 512].to_vec();
    (e, docs, 136)
}

fn bench_quickscorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal_512docs");
    group.sample_size(20);
    for &trees in &[50usize, 200] {
        let (e, docs, nf) = setup(trees, 64);
        let n = docs.len() / nf;
        let mut out = vec![0.0f32; n];
        let mut naive = EnsembleScorer::new(e.clone(), "naive");
        let mut qs = QuickScorerScorer::compile(&e, "qs");
        let mut vqs = QuickScorerScorer::compile_vectorized(&e, "vqs");
        let mut bw = QuickScorerScorer::compile_blockwise(&e, 32, "bwqs");
        group.bench_with_input(BenchmarkId::new("naive", trees), &trees, |b, _| {
            b.iter(|| naive.score_batch(black_box(&docs), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("quickscorer", trees), &trees, |b, _| {
            b.iter(|| qs.score_batch(black_box(&docs), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("vectorized", trees), &trees, |b, _| {
            b.iter(|| vqs.score_batch(black_box(&docs), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("blockwise", trees), &trees, |b, _| {
            b.iter(|| bw.score_batch(black_box(&docs), &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quickscorer);
criterion_main!(benches);
