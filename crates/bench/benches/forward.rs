//! Neural forward pass: dense vs hybrid (sparse first layer) inference,
//! the Table 8 kernel comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_nn::hybrid::HybridWorkspace;
use dlr_nn::{HybridMlp, LayerMasks, Mlp, MlpWorkspace};
use dlr_prune::level_mask;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let input_dim = 136;
    let arch = [400usize, 200, 200, 100];
    let batch = 64;
    let rows: Vec<f32> = (0..batch * input_dim)
        .map(|i| (i % 17) as f32 / 8.0 - 1.0)
        .collect();
    let mut out = vec![0.0f32; batch];

    let mut group = c.benchmark_group("forward_400x200x200x100_n64");
    for &sparsity in &[0.95f64, 0.987] {
        let mut mlp = Mlp::from_hidden(input_dim, &arch, 5);
        let mask = level_mask(mlp.layers()[0].weights.as_slice(), sparsity);
        let mut masks = LayerMasks::none(mlp.layers().len());
        masks.set(0, mask);
        masks.apply(&mut mlp);
        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        let mut mws = MlpWorkspace::default();
        let mut hws = HybridWorkspace::default();
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| mlp.score_batch_with(black_box(&rows), &mut out, &mut mws)),
        );
        group.bench_with_input(
            BenchmarkId::new("hybrid", format!("{sparsity}")),
            &sparsity,
            |b, _| b.iter(|| hybrid.score_batch_with(black_box(&rows), &mut out, &mut hws)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
