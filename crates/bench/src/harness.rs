//! Dataset/model construction shared by the repro binaries.

use dlr_core::prelude::*;
use dlr_distill::DistillConfig;

/// Experiment scale, read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Queries per synthetic dataset (`DLR_QUERIES`, default 150).
    pub queries: usize,
    /// Divisor applied to the Table 9 epoch counts
    /// (`DLR_EPOCH_DIV`, default 5).
    pub epoch_div: usize,
    /// Divisor applied to the paper's forest sizes
    /// (`DLR_TREE_DIV`, default 2).
    pub tree_div: usize,
    /// Timed passes per scoring-time measurement
    /// (`DLR_TIMING_REPS`, default 3).
    pub timing_reps: usize,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or(d)
        };
        Scale {
            queries: get("DLR_QUERIES", 150),
            epoch_div: get("DLR_EPOCH_DIV", 5),
            tree_div: get("DLR_TREE_DIV", 2),
            timing_reps: get("DLR_TIMING_REPS", 3),
        }
    }

    /// A paper-sized tree count scaled by `tree_div`.
    pub fn trees(&self, paper_trees: usize) -> usize {
        (paper_trees / self.tree_div).max(5)
    }

    /// Print the experiment banner with the active scale.
    pub fn banner(&self, experiment: &str) {
        println!("=== {experiment} ===");
        println!(
            "scale: {} queries, epochs/{}  trees/{}  (set DLR_QUERIES / DLR_EPOCH_DIV / DLR_TREE_DIV to rescale)\n",
            self.queries, self.epoch_div, self.tree_div
        );
    }
}

/// Which paper dataset the synthetic stand-in mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// MSLR-WEB30K-like (136 features).
    Msn30k,
    /// Istella-S-like (220 features).
    IstellaS,
}

impl Corpus {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Corpus::Msn30k => "MSN30K-like",
            Corpus::IstellaS => "Istella-S-like",
        }
    }

    /// Generate and split the synthetic stand-in at the given scale.
    pub fn split(&self, scale: Scale) -> Split {
        let cfg = match self {
            Corpus::Msn30k => SyntheticConfig::msn30k_like(scale.queries),
            Corpus::IstellaS => SyntheticConfig::istella_s_like(scale.queries),
        };
        Split::by_query(&cfg.generate(), SplitRatios::PAPER, 42).expect("valid paper ratios")
    }

    /// Table 9 hyperparameters for this corpus, epoch-scaled.
    pub fn hyper(&self, scale: Scale) -> DistillHyper {
        match self {
            Corpus::Msn30k => DistillHyper::msn30k().scaled_down(scale.epoch_div),
            Corpus::IstellaS => DistillHyper::istella_s().scaled_down(scale.epoch_div),
        }
    }

    /// Distillation configuration for this corpus.
    pub fn distill_cfg(&self, scale: Scale) -> DistillConfig {
        DistillConfig {
            hyper: self.hyper(scale),
            batch_size: 256,
            ..Default::default()
        }
    }
}

/// Train a LambdaMART forest with exactly `trees` trees (no early stop),
/// the way the paper's named competitors ("878 trees, 64 leaves") are
/// specified.
pub fn forest_exact(train: &Dataset, trees: usize, leaves: usize) -> Ensemble {
    let params = LambdaMartParams {
        num_trees: trees,
        learning_rate: 0.1,
        growth: GrowthParams {
            max_leaves: leaves,
            ..Default::default()
        },
        early_stopping_rounds: 0,
        ..Default::default()
    };
    LambdaMartTrainer::new(params).fit(train, None).0
}

/// Train a teacher forest the paper's way: "the ensemble of regression
/// trees with the best performance on a validation set" — LambdaMART with
/// early stopping, truncated to the best evaluation point. Without this,
/// 256-leaf teachers overfit badly at laptop scale and Table 5's
/// teacher-quality ordering inverts.
pub fn teacher_forest(
    train: &Dataset,
    valid: &Dataset,
    max_trees: usize,
    leaves: usize,
) -> Ensemble {
    let params = LambdaMartParams {
        num_trees: max_trees,
        learning_rate: 0.1,
        growth: GrowthParams {
            max_leaves: leaves,
            ..Default::default()
        },
        eval_every: (max_trees / 10).max(5),
        early_stopping_rounds: 3,
        ..Default::default()
    };
    LambdaMartTrainer::new(params).fit(train, Some(valid)).0
}

/// A [`NeuralEngineering`] pipeline for a corpus at a scale.
pub fn pipeline(corpus: Corpus, scale: Scale) -> NeuralEngineering {
    NeuralEngineering::new(PipelineConfig {
        distill: corpus.distill_cfg(scale),
        prune: PruneConfig::first_layer_level(0.95),
        timing_batch: 1000,
        timing_reps: scale.timing_reps,
        ..Default::default()
    })
}

/// Evaluate + time a scorer, returning its trade-off point and per-query
/// metrics.
pub fn eval_scorer(
    ne: &NeuralEngineering,
    scorer: &mut dyn DocumentScorer,
    test: &Dataset,
) -> (ParetoPoint, EvalReport) {
    ne.evaluate(scorer, test)
}

/// Significance marker against a baseline's per-query NDCG@10
/// (Fisher randomization, p < 0.05): returns `"*"`, or `""`.
pub fn sig_vs(a: &EvalReport, baseline: &EvalReport, symbol: &str) -> String {
    if a.ndcg10.len() != baseline.ndcg10.len() {
        return String::new();
    }
    let out = fisher_randomization(&a.ndcg10, &baseline.ndcg10, 2000, 99);
    if out.mean_diff > 0.0 && out.significant(0.05) {
        symbol.to_string()
    } else {
        String::new()
    }
}

/// Format a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        // Don't mutate the environment (tests run in parallel): defaults
        // apply when the variables are unset.
        let s = Scale::from_env();
        assert!(s.queries > 0 && s.epoch_div > 0 && s.tree_div > 0);
        assert!(s.trees(878) >= 5);
    }

    #[test]
    fn corpus_shapes() {
        let scale = Scale {
            queries: 12,
            epoch_div: 10,
            tree_div: 8,
            timing_reps: 1,
        };
        let msn = Corpus::Msn30k.split(scale);
        assert_eq!(msn.train.num_features(), 136);
        let ist = Corpus::IstellaS.split(scale);
        assert_eq!(ist.train.num_features(), 220);
        assert!(Corpus::Msn30k.hyper(scale).train_epochs >= 1);
    }

    #[test]
    fn forest_exact_has_exact_trees() {
        let scale = Scale {
            queries: 10,
            epoch_div: 10,
            tree_div: 8,
            timing_reps: 1,
        };
        let split = Corpus::Msn30k.split(scale);
        let e = forest_exact(&split.train, 7, 8);
        assert_eq!(e.num_trees(), 7);
        assert!(e.max_leaves() <= 8);
    }
}
