//! Table 3: MKL-style vs LIBXSMM-style sparse-dense multiplication.
//!
//! The paper shows LIBXSMM beating MKL on the small, very sparse,
//! asymmetric matrices that pruned first layers produce (shapes `m×136`,
//! sparsity 0.96–0.996, batch 64), "with a speedup factor often larger
//! than 2x". Our MKL stand-in is the naive CSR loop (Algorithm 1); the
//! LIBXSMM stand-in is the SIMD-blocked row kernel. The claim under test
//! is the ordering and the speedup factor's magnitude.

use dlr_bench::{f, Scale, Table};
use dlr_dense::Matrix;
use dlr_sparse::{spmm_naive, spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 3 — MKL-style (naive CSR) vs LIBXSMM-style SDMM");

    // (m, k, sparsity) — the first layers of real MSN30K models (Table 3).
    let cases = [
        (400, 136, 0.996),
        (300, 136, 0.985),
        (200, 136, 0.971),
        (100, 136, 0.989),
        (50, 136, 0.968),
    ];
    let n = 64;
    let reps = scale.timing_reps.max(5);

    let mut table = Table::new(&[
        "Shape",
        "Sparsity",
        "naive/MKL-style (us)",
        "xsmm-style (us)",
        "Speedup",
    ]);
    for (m, k, sparsity) in cases {
        let a = random_sparse(m, k, sparsity, (m * k) as u64);
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 31) % 17) as f32 / 8.0 - 1.0)
            .collect();
        let naive_us = time_naive(&a, &b, n, reps) * 1e6;
        let xsmm_us = time_xsmm(&a, &b, n, reps) * 1e6;
        table.row(&[
            format!("{m}x{k}"),
            f(sparsity, 3),
            f(naive_us, 2),
            f(xsmm_us, 2),
            format!("{:.1}x", naive_us / xsmm_us),
        ]);
    }
    table.print();
    println!("\npaper (MKL vs LIBXSMM, us): 3.1/1.2, 2.5/1.4, 2.8/1.6, 1.0/0.4, 0.7/0.2");
}

fn random_sparse(m: usize, k: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dense = Matrix::zeros(m, k);
    let nnz = ((m * k) as f64 * (1.0 - sparsity)).round().max(1.0) as usize;
    let mut placed = 0usize;
    while placed < nnz {
        let i = rng.random_range(0..m);
        let j = rng.random_range(0..k);
        if dense.get(i, j) == 0.0 {
            dense.set(
                i,
                j,
                rng.random_range(0.1..1.0f32) * if rng.random::<bool>() { 1.0 } else { -1.0 },
            );
            placed += 1;
        }
    }
    CsrMatrix::from_dense(&dense, 0.0)
}

fn time_naive(a: &CsrMatrix, b: &[f32], n: usize, reps: usize) -> f64 {
    let mut c = vec![0.0f32; a.rows() * n];
    spmm_naive(a, b, n, &mut c); // warm-up
    let inner = 2000;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            spmm_naive(a, b, n, &mut c);
        }
        samples.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    median(samples)
}

fn time_xsmm(a: &CsrMatrix, b: &[f32], n: usize, reps: usize) -> f64 {
    let packed = PackedB::pack(b, a.cols(), n);
    let mut ws = SpmmWorkspace::default();
    let mut c = vec![0.0f32; a.rows() * n];
    spmm_xsmm_packed(a, &packed, &mut c, &mut ws); // warm-up
    let inner = 2000;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            spmm_xsmm_packed(a, &packed, &mut c, &mut ws);
        }
        samples.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    median(samples)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}
