//! Table 5: better teachers make better students.
//!
//! The paper distills the same two architectures from a 64-leaf forest and
//! from a 256-leaf forest; the 256-leaf teacher is itself better
//! (0.5291 vs 0.5246 NDCG@10) and transfers part of that advantage to the
//! student. Claims under test: (1) the 256-leaf teacher outranks the
//! 64-leaf one, (2) each student improves when its teacher improves,
//! (3) the student is teacher-agnostic in scoring time (not shown: times
//! are identical by construction).

use dlr_bench::{f, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 5 — teacher quality transfers to students (MSN30K-like)");

    let split = Corpus::Msn30k.split(scale);
    let ne = pipeline(Corpus::Msn30k, scale);

    eprintln!("training 64-leaf teacher...");
    let teacher64 = teacher_forest(&split.train, &split.valid, scale.trees(878), 64);
    eprintln!("training 256-leaf teacher...");
    let teacher256 = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);

    let ndcg_of_forest = |e: &Ensemble| {
        let mut scores = vec![0.0f32; split.test.num_docs()];
        e.predict_batch(split.test.features(), &mut scores);
        evaluate_scores(&scores, &split.test)
    };
    let r64 = ndcg_of_forest(&teacher64);
    let r256 = ndcg_of_forest(&teacher256);

    let archs: [&[usize]; 2] = [&[500, 100], &[1000, 500, 500, 100]];
    let mut table = Table::new(&["Model", "Teacher", "NDCG@10"]);
    table.row(&[
        format!("{} trees, 64 leaves", teacher64.num_trees()),
        "/".into(),
        f(r64.mean_ndcg10(), 4),
    ]);
    table.row(&[
        format!("{} trees, 256 leaves", teacher256.num_trees()),
        "/".into(),
        f(r256.mean_ndcg10(), 4),
    ]);

    let mut improvements = Vec::new();
    for arch in archs {
        let name = arch
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        let mut per_teacher = Vec::new();
        for (tname, teacher) in [("64-leaf", &teacher64), ("256-leaf", &teacher256)] {
            eprintln!("distilling {name} from the {tname} teacher...");
            let model = ne.distill(teacher, &split.train, arch);
            let mut scorer = MlpScorer::new(model.mlp, model.normalizer, name.clone());
            let mut scores = vec![0.0f32; split.test.num_docs()];
            scorer.score_batch(split.test.features(), &mut scores);
            let report = evaluate_scores(&scores, &split.test);
            per_teacher.push(report.mean_ndcg10());
            table.row(&[
                name.clone(),
                format!("{tname} teacher"),
                f(report.mean_ndcg10(), 4),
            ]);
        }
        improvements.push((name, per_teacher[1] - per_teacher[0]));
    }
    table.print();

    println!();
    for (name, delta) in &improvements {
        println!(
            "teacher upgrade effect on {name}: {}{:.4} NDCG@10 (paper: positive for both students)",
            if *delta >= 0.0 { "+" } else { "" },
            delta
        );
    }
    println!(
        "\nteacher gap (256-leaf − 64-leaf): {:+.4} (paper: +0.0045)",
        r256.mean_ndcg10() - r64.mean_ndcg10()
    );
}
