//! Figure 5: GEMM throughput at constant m·k, varying the aspect ratio.
//!
//! The paper fixes the weight-matrix area (m·k = const) and slides the
//! shape from tall-narrow to short-wide: small k with large m degrades
//! badly, while small m with large k stays fast. This is the asymmetry
//! that makes k (not m) the axis of the predictor's GFLOPS zones.

use dlr_bench::{f, Scale, Table};
use dlr_dense::measure_gemm_gflops;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Figure 5 — GFLOPS at constant m*k, varying aspect ratio");

    const AREA: usize = 1 << 16; // 65536 weights, a mid-size layer
    let ms = [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let n = 256;
    let reps = scale.timing_reps.max(5);

    let mut table = Table::new(&["m", "k", "m*k", "GFLOPS"]);
    let mut first = None;
    let mut last = None;
    for &m in &ms {
        let k = AREA / m;
        let g = measure_gemm_gflops(m, k, n, 1, reps);
        if first.is_none() {
            first = Some(g);
        }
        last = Some(g);
        table.row(&[m.to_string(), k.to_string(), AREA.to_string(), f(g, 1)]);
    }
    table.print();
    let (first, last) = (first.unwrap_or(0.0), last.unwrap_or(0.0));
    println!("\nsmall-m/large-k GFLOPS: {first:.1}  vs  large-m/small-k GFLOPS: {last:.1}");
    println!(
        "expected shape: left side (large k) fast, right side (small k) degraded (paper Figure 5)."
    );
}
