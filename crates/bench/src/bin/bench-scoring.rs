//! Smoke benchmark for the parallel batch-scoring engine.
//!
//! Times the three hot kernels — blocked GEMM, LIBXSMM-style SpMM and
//! BWQS — serially and through a [`WorkPool`] at 1/2/4 threads, asserts
//! the pooled outputs are bit-identical to serial, and emits
//! `BENCH_scoring.json` with per-kernel throughput, speedups and fitted
//! Amdahl serial fractions. (Amdahl fits need ≥2 threads, so 1-thread
//! runs record `serial_fraction: null` rather than the fit floor.)
//!
//! A `simd` section sweeps each kernel single-threaded over every ISA the
//! host supports (scalar / SSE2 / AVX2+FMA, via [`dlr_simd::force`]) and
//! records per-ISA throughput and speedup over scalar, plus the host's
//! detected feature set. The QuickScorer entry benches the vectorized
//! (vQS) scorer — that is where the mask-step kernel lives; BWQS traversal
//! is scalar by design.
//!
//! ```text
//! cargo run --release -p dlr-bench --bin bench-scoring            # full sizes
//! cargo run --release -p dlr-bench --bin bench-scoring -- --check # CI smoke
//! ```
//!
//! `--check` shrinks the problem sizes and rep counts so CI can verify the
//! whole path (pool, drivers, JSON emission) in a few seconds. Speedups
//! are only meaningful when `host_parallelism` in the JSON is ≥ the thread
//! count: on a single-core host every parallel run degenerates to the
//! caller draining all chunks itself.

use dlr_core::{par_bwqs, par_gemm, par_spmm, SpeedupSample, WorkPool};
use dlr_dense::{gemm_with, GemmWorkspace, GotoParams, Matrix, PrepackedB};
use dlr_gbdt::tree::leaf_ref;
use dlr_gbdt::{Ensemble, RegressionTree};
use dlr_quickscorer::blockwise::BlockwiseQuickScorer;
use dlr_quickscorer::VectorizedQuickScorer;
use dlr_simd::Isa;
use dlr_sparse::{spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Problem sizes: the paper's Istella-S serving shape (220 features,
/// 4096-document batches) in full mode, toy shapes under `--check`.
struct Sizes {
    mode: &'static str,
    /// Documents per batch (GEMM/SpMM `n`, BWQS batch).
    docs: usize,
    /// Input features (GEMM/SpMM reduction dim `k`, BWQS features).
    feats: usize,
    /// First-layer width (GEMM/SpMM `m`).
    hidden: usize,
    /// Keep one weight in `keep_every` for the sparse layer (~98% sparse).
    keep_every: usize,
    trees: usize,
    reps: usize,
}

impl Sizes {
    fn from_args() -> Sizes {
        let check = std::env::args().any(|a| a == "--check");
        if check {
            Sizes {
                mode: "check",
                docs: 256,
                feats: 32,
                hidden: 64,
                keep_every: 8,
                trees: 20,
                reps: 2,
            }
        } else {
            Sizes {
                mode: "full",
                docs: 4096,
                feats: 220,
                hidden: 512,
                keep_every: 50,
                trees: 200,
                reps: 5,
            }
        }
    }
}

/// Median wall-clock seconds over `reps` runs (after one warm-up).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Run {
    threads: usize,
    parallel_secs: f64,
    speedup: f64,
    /// Fitted Amdahl serial fraction; `None` for 1-thread runs, where the
    /// fit is undefined (speedup(1) ≡ 1 for every fraction) and recording
    /// the fitter's floor would be misleading.
    serial_fraction: Option<f64>,
}

struct KernelReport {
    kernel: &'static str,
    shape: String,
    /// Work per call, in `unit`s — divides by seconds for throughput.
    work: f64,
    unit: &'static str,
    serial_secs: f64,
    runs: Vec<Run>,
}

impl KernelReport {
    fn measure(
        kernel: &'static str,
        shape: String,
        work: f64,
        unit: &'static str,
        reps: usize,
        mut serial: impl FnMut(),
        mut parallel: impl FnMut(&WorkPool),
    ) -> KernelReport {
        let serial_secs = median_secs(reps, &mut serial);
        let runs = THREAD_COUNTS
            .iter()
            .map(|&t| {
                let pool = WorkPool::new(t);
                let parallel_secs = median_secs(reps, || parallel(&pool));
                let sample = SpeedupSample {
                    threads: t,
                    serial_secs,
                    parallel_secs,
                };
                Run {
                    threads: t,
                    parallel_secs,
                    speedup: sample.speedup(),
                    serial_fraction: (t > 1).then(|| sample.serial_fraction()),
                }
            })
            .collect();
        KernelReport {
            kernel,
            shape,
            work,
            unit,
            serial_secs,
            runs,
        }
    }

    fn print(&self) {
        println!(
            "{:<6} {}  serial {:.3} ms  ({:.1} {}/s)",
            self.kernel,
            self.shape,
            self.serial_secs * 1e3,
            self.work / self.serial_secs,
            self.unit
        );
        for r in &self.runs {
            let sf = r
                .serial_fraction
                .map_or("n/a".to_string(), |f| format!("{f:.2}"));
            println!(
                "       {} threads: {:.3} ms  speedup {:.2}x  serial-fraction {}",
                r.threads,
                r.parallel_secs * 1e3,
                r.speedup,
                sf
            );
        }
    }

    fn json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                let sf = r
                    .serial_fraction
                    .map_or("null".to_string(), |f| format!("{f:.4}"));
                format!(
                    "{{\"threads\":{},\"parallel_secs\":{:.9},\"speedup\":{:.4},\"serial_fraction\":{}}}",
                    r.threads, r.parallel_secs, r.speedup, sf
                )
            })
            .collect();
        format!(
            "{{\"kernel\":\"{}\",\"shape\":\"{}\",\"unit\":\"{}\",\"work_per_call\":{:.6},\"serial_secs\":{:.9},\"runs\":[{}]}}",
            self.kernel,
            self.shape,
            self.unit,
            self.work,
            self.serial_secs,
            runs.join(",")
        )
    }
}

/// One kernel's single-threaded ISA sweep for the `simd` JSON section.
struct SimdKernelReport {
    kernel: &'static str,
    shape: String,
    /// Work per call, in `unit`s — divides by seconds for throughput.
    work: f64,
    unit: &'static str,
    /// `(isa, median secs)`, scalar first (ascending ISA order).
    runs: Vec<(Isa, f64)>,
}

impl SimdKernelReport {
    /// Time `f` once per supported ISA with the process-wide dispatch
    /// forced to that level ([`dlr_simd::force`]); the previous choice is
    /// restored afterwards. Single-threaded by construction — `f` runs on
    /// this thread only.
    fn sweep(
        kernel: &'static str,
        shape: String,
        work: f64,
        unit: &'static str,
        reps: usize,
        mut f: impl FnMut(),
    ) -> SimdKernelReport {
        let runs = Isa::ALL
            .iter()
            .copied()
            .filter(|&isa| dlr_simd::supported(isa))
            .map(|isa| {
                let prev = dlr_simd::force(isa).expect("forcing a supported ISA");
                let secs = median_secs(reps, &mut f);
                dlr_simd::force(prev).expect("restoring the dispatch choice");
                (isa, secs)
            })
            .collect();
        SimdKernelReport {
            kernel,
            shape,
            work,
            unit,
            runs,
        }
    }

    fn scalar_secs(&self) -> f64 {
        self.runs
            .iter()
            .find(|(isa, _)| *isa == Isa::Scalar)
            .map_or(f64::NAN, |(_, s)| *s)
    }

    fn print(&self) {
        let scalar = self.scalar_secs();
        for (isa, secs) in &self.runs {
            println!(
                "       {:<6} {:>6}: {:.3} ms  ({:.1} {}/s)  {:.2}x vs scalar",
                self.kernel,
                isa.name(),
                secs * 1e3,
                self.work / secs,
                self.unit,
                scalar / secs
            );
        }
    }

    fn json(&self) -> String {
        let scalar = self.scalar_secs();
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|(isa, secs)| {
                format!(
                    "{{\"isa\":\"{}\",\"secs\":{:.9},\"throughput\":{:.4},\"speedup_vs_scalar\":{:.4}}}",
                    isa.name(),
                    secs,
                    self.work / secs,
                    scalar / secs
                )
            })
            .collect();
        format!(
            "{{\"kernel\":\"{}\",\"shape\":\"{}\",\"unit\":\"{}\",\"work_per_call\":{:.6},\"runs\":[{}]}}",
            self.kernel,
            self.shape,
            self.unit,
            self.work,
            runs.join(",")
        )
    }
}

/// A depth-2 tree (three internal nodes, four leaves) with
/// deterministically varied features, thresholds and leaf values.
fn synthetic_ensemble(trees: usize, nf: usize) -> Ensemble {
    let mut e = Ensemble::new(nf, 0.1);
    for t in 0..trees {
        let s = t as u64;
        let f0 = (s * 7 % nf as u64) as u32;
        let f1 = ((s * 13 + 3) % nf as u64) as u32;
        let tree = RegressionTree::from_raw(
            vec![f0, f1, f1],
            vec![
                0.2 + (s % 7) as f32 * 0.1,
                0.1 + (s % 3) as f32 * 0.2,
                0.5 + (s % 5) as f32 * 0.08,
            ],
            vec![1, leaf_ref(0), leaf_ref(2)],
            vec![2, leaf_ref(1), leaf_ref(3)],
            vec![0.01 * (s % 11) as f32, -0.2, 0.3, -0.02 * (s % 9) as f32],
        );
        e.push(tree);
    }
    e
}

fn assert_bit_identical(expect: &[f32], got: &[f32], kernel: &str) {
    assert_eq!(
        expect, got,
        "{kernel}: pooled output differs from serial — determinism contract broken"
    );
}

fn main() {
    let sz = Sizes::from_args();
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "=== bench-scoring ({} mode, host parallelism {}) ===\n",
        sz.mode, host
    );

    let (m, k, n) = (sz.hidden, sz.feats, sz.docs);
    let params = GotoParams::default();

    // --- GEMM: dense first layer, m×k weights · k×n feature-major batch.
    let a = Matrix::random(m, k, 1.0, 17);
    let b = Matrix::random(k, n, 1.0, 18);
    let pb = PrepackedB::pack(b.as_slice(), k, n, params);
    let mut expect = vec![0.0f32; m * n];
    let mut ws = GemmWorkspace::default();
    gemm_with(
        m,
        k,
        n,
        a.as_slice(),
        b.as_slice(),
        &mut expect,
        params,
        &mut ws,
    );
    let mut c = vec![f32::NAN; m * n];
    par_gemm(&WorkPool::new(2), m, a.as_slice(), &pb, &mut c).expect("par_gemm");
    assert_bit_identical(&expect, &c, "gemm");
    let mut c_par = vec![0.0f32; m * n];
    let gemm = KernelReport::measure(
        "gemm",
        format!("{m}x{k} . {k}x{n}"),
        2.0 * m as f64 * k as f64 * n as f64 / 1e9,
        "GFLOP",
        sz.reps,
        || gemm_with(m, k, n, a.as_slice(), b.as_slice(), &mut c, params, &mut ws),
        |pool| par_gemm(pool, m, a.as_slice(), &pb, &mut c_par).expect("par_gemm"),
    );
    gemm.print();

    // --- SpMM: ~98%-sparse first layer in CSR against the packed batch.
    let mut dense_w = Matrix::random(m, k, 1.0, 19);
    for (idx, v) in dense_w.as_mut_slice().iter_mut().enumerate() {
        if idx % sz.keep_every != 0 {
            *v = 0.0;
        }
    }
    let csr = CsrMatrix::from_dense(&dense_w, 0.0);
    let packed = PackedB::pack(b.as_slice(), k, n);
    let mut sp_ws = SpmmWorkspace::default();
    spmm_xsmm_packed(&csr, &packed, &mut expect, &mut sp_ws);
    par_spmm(&WorkPool::new(2), &csr, &packed, &mut c).expect("par_spmm");
    assert_bit_identical(&expect, &c, "spmm");
    let spmm = KernelReport::measure(
        "spmm",
        format!("{m}x{k} ({:.1}% sparse) . {k}x{n}", csr.sparsity() * 100.0),
        n as f64,
        "docs",
        sz.reps,
        || spmm_xsmm_packed(&csr, &packed, &mut c, &mut sp_ws),
        |pool| par_spmm(pool, &csr, &packed, &mut c_par).expect("par_spmm"),
    );
    spmm.print();

    // --- BWQS: blockwise tree-ensemble traversal over the document batch.
    let ensemble = synthetic_ensemble(sz.trees, sz.feats);
    let bw = BlockwiseQuickScorer::compile(&ensemble, 16).expect("compile BWQS");
    let docs: Vec<f32> = (0..n * sz.feats)
        .map(|i| ((i * 31) % 97) as f32 / 97.0)
        .collect();
    let mut bw_expect = vec![0.0f32; n];
    bw.score_batch(&docs, &mut bw_expect);
    let mut bw_out = vec![f32::NAN; n];
    par_bwqs(&WorkPool::new(2), &bw, &docs, &mut bw_out).expect("par_bwqs");
    assert_bit_identical(&bw_expect, &bw_out, "bwqs");
    let mut bw_par = vec![0.0f32; n];
    let bwqs = KernelReport::measure(
        "bwqs",
        format!("{} trees x {n} docs", sz.trees),
        n as f64,
        "docs",
        sz.reps,
        || bw.score_batch(&docs, &mut bw_out),
        |pool| par_bwqs(pool, &bw, &docs, &mut bw_par).expect("par_bwqs"),
    );
    bwqs.print();

    // --- SIMD sweep: each kernel single-threaded, dispatch forced to
    // every ISA the host supports. The vQS scorer stands in for
    // QuickScorer here — its mask step is the dlr-simd kernel. GEMM runs
    // the full batch shape; SDMM runs a per-query micro-batch (the
    // paper's serving granularity, §5) so packed B is cache-resident and
    // the sweep measures the kernel's arithmetic, not DRAM bandwidth —
    // at the full 4096-doc shape every ISA is equally memory-bound.
    println!("\nsimd dispatch sweep (single-threaded):");
    let simd_gemm = SimdKernelReport::sweep(
        "gemm",
        format!("{m}x{k} . {k}x{n}"),
        2.0 * m as f64 * k as f64 * n as f64 / 1e9,
        "GFLOP",
        sz.reps,
        || gemm_with(m, k, n, a.as_slice(), b.as_slice(), &mut c, params, &mut ws),
    );
    simd_gemm.print();
    let nq = (sz.docs / 32).max(64);
    let bq = Matrix::random(k, nq, 1.0, 21);
    let packed_q = PackedB::pack(bq.as_slice(), k, nq);
    let mut cq = vec![0.0f32; m * nq];
    let mut sp_ws_q = SpmmWorkspace::default();
    // More reps: the micro-batch call is ~16x shorter than the full one.
    let simd_spmm = SimdKernelReport::sweep(
        "sdmm",
        format!("{m}x{k} ({:.1}% sparse) . {k}x{nq}", csr.sparsity() * 100.0),
        nq as f64,
        "docs",
        sz.reps * 32,
        || spmm_xsmm_packed(&csr, &packed_q, &mut cq, &mut sp_ws_q),
    );
    simd_spmm.print();
    let vqs = VectorizedQuickScorer::compile(&ensemble).expect("compile vQS");
    let mut vq_out = vec![0.0f32; n];
    let simd_vqs = SimdKernelReport::sweep(
        "vqs",
        format!("{} trees x {n} docs", sz.trees),
        n as f64,
        "docs",
        sz.reps,
        || vqs.score_batch(&docs, &mut vq_out),
    );
    simd_vqs.print();

    // --- Emit BENCH_scoring.json.
    let kernels: Vec<String> = [&gemm, &spmm, &bwqs].iter().map(|r| r.json()).collect();
    let features: Vec<String> = dlr_simd::dispatch::feature_summary()
        .iter()
        .map(|(name, det)| format!("\"{name}\":{det}"))
        .collect();
    let simd_kernels: Vec<String> = [&simd_gemm, &simd_spmm, &simd_vqs]
        .iter()
        .map(|r| r.json())
        .collect();
    let simd_json = format!(
        "{{\"detected\":{{{}}},\"active\":\"{}\",\"kernels\":[{}]}}",
        features.join(","),
        dlr_simd::active().name(),
        simd_kernels.join(",")
    );
    let json = format!(
        "{{\"bench\":\"scoring\",\"mode\":\"{}\",\"host_parallelism\":{},\"thread_counts\":[1,2,4],\"docs\":{},\"features\":{},\"simd\":{},\"kernels\":[{}]}}\n",
        sz.mode,
        host,
        sz.docs,
        sz.feats,
        simd_json,
        kernels.join(",")
    );
    std::fs::write("BENCH_scoring.json", &json).expect("write BENCH_scoring.json");
    println!("\nwrote BENCH_scoring.json ({} mode)", sz.mode);
    if host < *THREAD_COUNTS.last().unwrap() {
        println!(
            "note: host exposes {host} core(s); multi-thread speedups are bounded by hardware."
        );
    }
}
