//! The §3 claim: distilling teacher scores beats training the same
//! network directly on ground-truth labels.
//!
//! Cohen et al. (and the paper, §3) argue that approximating the scores
//! of a strong listwise tree ensemble "is more proficient than directly
//! learning the ground-truth relevance": the teacher has already
//! extracted the structure of the relevance distribution, giving the
//! simple student a smoother target. We train one architecture four ways —
//! pointwise MSE on labels, RankNet pairwise on labels, distillation
//! without augmentation, full distillation — and compare test NDCG@10.

use dlr_bench::{f, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;
use dlr_distill::{train_direct, DirectConfig, DirectObjective, DistillConfig};
use dlr_nn::StepLr;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Ablation — direct label training vs distillation (MSN30K-like)");

    let split = Corpus::Msn30k.split(scale);
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    let arch: &[usize] = &[200, 100, 100, 50];
    let hyper = Corpus::Msn30k.hyper(scale);

    let eval = |scores: &[f32]| evaluate_scores(scores, &split.test).mean_ndcg10();
    let mut table = Table::new(&["Training", "Test NDCG@10"]);

    // Teacher reference.
    let mut teacher_scores = vec![0.0f32; split.test.num_docs()];
    teacher.predict_batch(split.test.features(), &mut teacher_scores);
    table.row(&[
        "teacher (tree ensemble)".into(),
        f(eval(&teacher_scores), 4),
    ]);

    // Direct: pointwise and RankNet, same epoch budget as distillation.
    for (name, objective) in [
        (
            "direct pointwise MSE on labels",
            DirectObjective::PointwiseMse,
        ),
        (
            "direct RankNet pairwise on labels",
            DirectObjective::RankNet { sigma: 1.0 },
        ),
    ] {
        eprintln!("training {name}...");
        let cfg = DirectConfig {
            objective,
            epochs: hyper.train_epochs,
            schedule: StepLr::new(hyper.learning_rate, hyper.gamma, &hyper.gamma_steps),
            dropout: hyper.dropout,
            ..Default::default()
        };
        let model = train_direct(&split.train, arch, &cfg);
        let mut scores = vec![0.0f32; split.test.num_docs()];
        model.score_batch(split.test.features(), &mut scores);
        table.row(&[name.into(), f(eval(&scores), 4)]);
    }

    // Distillation with and without midpoint augmentation.
    for (name, frac) in [
        ("distilled (no augmentation)", 0.0f32),
        ("distilled (half synthetic, §3)", 0.5),
    ] {
        eprintln!("training {name}...");
        let cfg = DistillConfig {
            hyper: hyper.clone(),
            batch_size: 256,
            synthetic_fraction: frac,
            ..Default::default()
        };
        let session = DistillSession::new(&teacher, &split.train, cfg);
        let model = session.train_student(arch);
        let mut scores = vec![0.0f32; split.test.num_docs()];
        model.score_batch(split.test.features(), &mut scores);
        table.row(&[name.into(), f(eval(&scores), 4)]);
    }

    table.print();
    println!("\nexpected shape (§3): distillation >= direct training on the same");
    println!("architecture and budget, with the teacher as the upper reference.");
}
