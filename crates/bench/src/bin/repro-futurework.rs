//! §7 future work, implemented: int8 weight quantization and early-exit
//! cascades on top of the distilled/pruned student.
//!
//! The paper's conclusions propose quantization and early exiting as the
//! next efficiency steps. This binary takes the Table 8 student and
//! reports, on the same test split:
//!
//! * f32 dense student — the baseline;
//! * int8-weight quantized student — 4× smaller weights, quality delta;
//! * a two-stage cascade — a tiny first-stage net exits most documents
//!   early, the full student rescopes only the top candidates per batch.

use dlr_bench::{f, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;
use dlr_nn::QuantizedMlp;

/// Adapter: quantized MLP + normalizer as a [`DocumentScorer`].
struct QuantScorer {
    q: QuantizedMlp,
    normalizer: Normalizer,
}

impl DocumentScorer for QuantScorer {
    fn num_features(&self) -> usize {
        self.q.input_dim()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let mut norm = rows.to_vec();
        self.normalizer.apply_matrix(&mut norm);
        self.q.score_batch(&norm, out);
    }

    fn name(&self) -> String {
        "int8-quantized student".into()
    }
}

fn main() {
    let scale = Scale::from_env();
    scale.banner("Future work (§7) — quantization and early-exit cascade");

    let split = Corpus::Msn30k.split(scale);
    let ne = pipeline(Corpus::Msn30k, scale);
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    eprintln!("distilling the full student (200x100x100x50)...");
    let full = ne.distill(&teacher, &split.train, &[200, 100, 100, 50]);
    eprintln!("distilling the tiny stage-one student (32x16)...");
    let tiny = ne.distill(&teacher, &split.train, &[32, 16]);

    let mut table = Table::new(&["Model", "NDCG@10", "us/doc", "Weight bytes"]);
    let float_bytes: usize = full.mlp.layers().iter().map(|l| l.num_weights() * 4).sum();

    // f32 baseline.
    let mut base = MlpScorer::new(full.mlp.clone(), full.normalizer.clone(), "f32 student");
    let (pt, _) = ne.evaluate(&mut base, &split.test);
    table.row(&[
        pt.name,
        f(pt.ndcg10, 4),
        f(pt.us_per_doc, 2),
        float_bytes.to_string(),
    ]);

    // Quantized.
    let q = QuantizedMlp::from_mlp(&full.mlp);
    let qbytes = q.weight_bytes();
    let mut quant = QuantScorer {
        q,
        normalizer: full.normalizer.clone(),
    };
    let (pt, _) = ne.evaluate(&mut quant, &split.test);
    table.row(&[
        pt.name,
        f(pt.ndcg10, 4),
        f(pt.us_per_doc, 2),
        qbytes.to_string(),
    ]);

    // Cascade: tiny net exits most docs, full student rescopes top 20.
    let stage1 = MlpScorer::new(tiny.mlp.clone(), tiny.normalizer.clone(), "tiny");
    let stage2 = MlpScorer::new(full.mlp.clone(), full.normalizer.clone(), "full");
    let mut cascade = CascadeScorer::new(stage1, stage2, 20, "cascade (tiny -> top-20 full)");
    // Score per query so "top 20" means top 20 of each result list.
    let mut scores = vec![0.0f32; split.test.num_docs()];
    for qi in 0..split.test.num_queries() {
        let r = split.test.query_range(qi);
        let qref = split.test.query(qi).expect("valid query");
        cascade.score_batch(qref.features, &mut scores[r]);
    }
    let ndcg = evaluate_scores(&scores, &split.test).mean_ndcg10();
    // Time the per-query cascade pass.
    let t = std::time::Instant::now();
    for qi in 0..split.test.num_queries() {
        let r = split.test.query_range(qi);
        let qref = split.test.query(qi).expect("valid query");
        cascade.score_batch(qref.features, &mut scores[r]);
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / split.test.num_docs() as f64;
    table.row(&[
        "cascade (tiny -> top-20 full)".into(),
        f(ndcg, 4),
        f(us, 2),
        "-".into(),
    ]);

    table.print();
    println!("\nexpected shape: quantization keeps NDCG within noise at 4x smaller weights;");
    println!("the cascade approaches the full student's NDCG@10 at a fraction of its cost.");
}
