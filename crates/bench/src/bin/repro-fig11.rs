//! Figure 11: predicted SDMM speedup over dense as a function of
//! sparsity, for first-layer shapes (worst-case active rows/columns).
//!
//! The paper uses these curves to pick the first-layer sparsity target:
//! beyond ~95% the sparse multiply is an order of magnitude faster than
//! its dense counterpart, making the layer's cost negligible.

use dlr_bench::{f, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Figure 11 — predicted sparse speedup vs sparsity");

    let sparse = SparsePredictor::paper_like();
    let dense = DensePredictor::paper_i9_9900k();
    let shapes = [(400usize, 136usize), (300, 136), (200, 136), (100, 136)];
    let sparsities = [0.80, 0.85, 0.90, 0.95, 0.97, 0.99];
    let n = 64;

    let mut headers: Vec<String> = vec!["Shape".into()];
    headers.extend(sparsities.iter().map(|s| format!("{:.0}%", s * 100.0)));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);
    for (m, k) in shapes {
        let mut row = vec![format!("{m}x{k}")];
        for &s in &sparsities {
            let speedup = sparse.speedup_vs_dense(m, k, n, s, dense.gflops_for(k));
            row.push(format!("{}x", f(speedup, 1)));
        }
        table.row(&row);
    }
    table.print();
    println!("\nexpected shape: speedup grows super-linearly towards full sparsity");
    println!("(paper: ~10x at 95% for 400x136, ~25x at 98.7%).");

    let at95 = sparse.speedup_vs_dense(400, 136, n, 0.95, dense.gflops_for(136));
    let at987 = sparse.speedup_vs_dense(400, 136, n, 0.987, dense.gflops_for(136));
    println!("\n400x136: {at95:.1}x at 95% sparsity, {at987:.1}x at 98.7% (paper: ~10x, ~25x)");
}
