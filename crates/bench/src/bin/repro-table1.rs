//! Table 1: QuickScorer-traversed forests vs distilled neural networks on
//! MSN30K — the motivating comparison.
//!
//! Paper result: forests dominate plain distilled nets on both axes —
//! Large Forest (878×64) beats Large Net (1000×500×500×100) at 3x lower
//! scoring time; Small Forest beats Small Net (500×100) at 2.8x lower
//! time. The claim under test is the *ordering*: every forest is faster
//! than the comparable net, and the Large Forest is the most accurate
//! model overall. `*`/`†` mark statistically significant NDCG@10
//! improvements over Mid/Small Forest (Fisher randomization, p < 0.05).

use dlr_bench::{f, forest_exact, pipeline, sig_vs, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 1 — forests (QuickScorer) vs distilled nets, MSN30K-like");

    let split = Corpus::Msn30k.split(scale);
    let ne = pipeline(Corpus::Msn30k, scale);
    println!(
        "data: {} train / {} valid / {} test docs\n",
        split.train.num_docs(),
        split.valid.num_docs(),
        split.test.num_docs()
    );

    // Forests at the paper's three sizes (tree counts scaled by DLR_TREE_DIV).
    let sizes = [
        ("Large Forest", scale.trees(878)),
        ("Mid Forest", scale.trees(157)),
        ("Small Forest", scale.trees(79)),
    ];
    let mut forest_models = Vec::new();
    for (name, trees) in sizes {
        eprintln!("training {name} ({trees} trees x 64 leaves)...");
        forest_models.push((name, forest_exact(&split.train, trees, 64)));
    }

    // Students distilled from the large forest (the most accurate teacher
    // available at this scale).
    let teacher = &forest_models[0].1;
    let nets: [(&str, &[usize]); 2] = [
        ("Large Net", &[1000, 500, 500, 100]),
        ("Small Net", &[500, 100]),
    ];
    let mut students = Vec::new();
    for (name, arch) in nets {
        eprintln!("distilling {name} {arch:?}...");
        students.push((name, ne.distill(teacher, &split.train, arch)));
    }

    // Evaluate everything.
    let mut results: Vec<(String, ParetoPoint, EvalReport)> = Vec::new();
    for (name, forest) in &forest_models {
        let mut scorer = QuickScorerScorer::compile(forest, *name);
        let (pt, report) = ne.evaluate(&mut scorer, &split.test);
        results.push((name.to_string(), pt, report));
    }
    for (name, model) in &students {
        let mut scorer = MlpScorer::new(model.mlp.clone(), model.normalizer.clone(), *name);
        let (pt, report) = ne.evaluate(&mut scorer, &split.test);
        results.push((name.to_string(), pt, report));
    }

    let mid = results[1].2.clone();
    let small = results[2].2.clone();
    let mut table = Table::new(&["Model", "NDCG@10", "NDCG", "MAP", "Scoring Time (us/doc)"]);
    for (name, pt, report) in &results {
        let marks = format!(
            "{}{}",
            sig_vs(report, &mid, "*"),
            sig_vs(report, &small, "+")
        );
        table.row(&[
            format!("{name}{marks}"),
            f(report.mean_ndcg10(), 4),
            f(report.mean_ndcg_full(), 4),
            f(report.mean_ap(), 4),
            f(pt.us_per_doc, 2),
        ]);
    }
    table.print();
    println!("\n(*: sig. better than Mid Forest, +: sig. better than Small Forest; Fisher p<0.05)");
    println!("\npaper shape: every forest faster than the comparable net;");
    println!("Large Forest most accurate; Large Net slowest by a wide margin.");
    let lf_time = results[0].1.us_per_doc;
    let ln_time = results[3].1.us_per_doc;
    println!(
        "\nLarge Net / Large Forest scoring-time ratio: {:.1}x (paper: 3.0x)",
        ln_time / lf_time
    );
}
