//! Figure 6: GFLOPS heatmap over (m, k) at n = 1000, and the derived
//! k-zones.
//!
//! The paper's heatmap collapses into three horizontal stripes along k
//! (≤128 / 128–512 / ≥512), which become the dense predictor's lookup
//! table. We print the measured heatmap plus the per-k-zone medians this
//! host yields.

use dlr_bench::{f, Scale, Table};
use dlr_dense::measure_gemm_gflops;
use dlr_predictor::calibrate_dense;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Figure 6 — GFLOPS heatmap over (m, k) at n = 1000");

    let ms = [32usize, 64, 128, 256, 512, 1024];
    let ks = [32usize, 64, 128, 256, 512, 1024];
    let n = 1000;
    let reps = scale.timing_reps.max(3);

    let mut headers: Vec<String> = vec!["m \\ k".to_string()];
    headers.extend(ks.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for &m in &ms {
        let mut row = vec![m.to_string()];
        for &k in &ks {
            row.push(f(measure_gemm_gflops(m, k, n, 1, reps), 0));
        }
        table.row(&row);
    }
    table.print();

    println!("\nderived k-zones on this host (predictor calibration):");
    let p = calibrate_dense(false);
    for &(bound, g) in p.zones() {
        if bound == usize::MAX {
            println!("  k > 512        -> {g:.1} GFLOPS");
        } else if bound == 128 {
            println!("  k <= 128       -> {g:.1} GFLOPS");
        } else {
            println!("  128 < k <= {bound} -> {g:.1} GFLOPS");
        }
    }
    println!("\npaper (i9-9900K): k<=128 -> 90, 128<k<=512 -> 110, k>512 -> 130 GFLOPS.");
}
