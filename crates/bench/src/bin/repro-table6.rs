//! Table 6: dense neural networks alone do not beat QuickScorer.
//!
//! The paper designs 2/3/4-layer dense nets matching the scoring time of
//! 300-tree and 500-tree forests and finds them close in quality but with
//! no clear win on either axis — the motivation for adding pruning.
//! Claims under test: dense nets land in the same time range as their
//! budget forest, deeper-but-narrower beats shallower-but-wider at equal
//! time, and no dense net beats its forest on both axes.

use dlr_bench::{f, forest_exact, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 6 — QuickScorer vs dense nets at matched budgets (MSN30K-like)");

    let split = Corpus::Msn30k.split(scale);
    let ne = pipeline(Corpus::Msn30k, scale);

    eprintln!("training teacher (256 leaves)...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);

    let groups: [(&str, usize, [&[usize]; 3]); 2] = [
        (
            "QuickScorer 300, 64",
            scale.trees(300),
            [&[500, 100], &[300, 200, 100], &[300, 150, 150, 30]],
        ),
        (
            "QuickScorer 500, 64",
            scale.trees(500),
            [&[1000, 200], &[600, 300, 100], &[500, 250, 250, 100]],
        ),
    ];

    let mut table = Table::new(&["Model", "Scoring Time (us/doc)", "NDCG@10"]);
    for (forest_name, trees, archs) in groups {
        eprintln!("training {forest_name} ({trees} trees)...");
        let forest = forest_exact(&split.train, trees, 64);
        let mut qs = QuickScorerScorer::compile(&forest, forest_name);
        let (pt, report) = ne.evaluate(&mut qs, &split.test);
        table.row(&[
            forest_name.to_string(),
            f(pt.us_per_doc, 2),
            f(report.mean_ndcg10(), 4),
        ]);
        for arch in archs {
            let name = arch
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("x");
            eprintln!("distilling {name}...");
            let model = ne.distill(&teacher, &split.train, arch);
            let mut scorer = MlpScorer::new(model.mlp, model.normalizer, name.clone());
            let (pt, report) = ne.evaluate(&mut scorer, &split.test);
            table.row(&[name, f(pt.us_per_doc, 2), f(report.mean_ndcg10(), 4)]);
        }
    }
    table.print();
    println!("\npaper shape: dense nets sit near the forest's scoring time with slightly");
    println!("lower NDCG@10; 4-layer nets beat 2-layer nets of equal budget.");
}
