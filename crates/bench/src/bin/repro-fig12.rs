//! Figure 12: effectiveness-efficiency comparison in the *high-quality
//! retrieval* scenario.
//!
//! Forests of growing size form the tree-based Pareto frontier; the
//! paper's designed, distilled and pruned nets (Table 10 architectures)
//! form the neural one. Claim under test: the neural frontier lies on or
//! below the tree-based frontier over most of the admissible region
//! (models within 99% of the best forest's NDCG@10).
//!
//! `DLR_DATASET=istella` switches to the Istella-S-like corpus.

use dlr_bench::{f, forest_exact, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let corpus = match std::env::var("DLR_DATASET").as_deref() {
        Ok("istella") => Corpus::IstellaS,
        _ => Corpus::Msn30k,
    };
    scale.banner(&format!(
        "Figure 12 — high-quality retrieval Pareto ({})",
        corpus.name()
    ));

    let split = corpus.split(scale);
    let ne = pipeline(corpus, scale);

    // Tree-based competitors.
    let forest_sizes = [300usize, 500, 878];
    let mut tree_points = Vec::new();
    for paper_trees in forest_sizes {
        let trees = scale.trees(paper_trees);
        eprintln!("training forest {paper_trees} (-> {trees} trees x 64 leaves)...");
        let forest = forest_exact(&split.train, trees, 64);
        let mut qs = QuickScorerScorer::compile(&forest, format!("QS {paper_trees}x64"));
        let (pt, _) = ne.evaluate(&mut qs, &split.test);
        tree_points.push(pt);
    }

    // Teacher + neural candidates (the Table 10 architectures).
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    let archs: Vec<&[usize]> = match corpus {
        Corpus::Msn30k => vec![&[300, 200, 100], &[200, 100, 100, 50], &[200, 50, 50, 25]],
        Corpus::IstellaS => {
            vec![
                &[800, 400, 400, 200],
                &[800, 200, 200, 100],
                &[300, 200, 100],
            ]
        }
    };
    let mut net_points = Vec::new();
    for arch in archs {
        let name = arch
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        eprintln!("distilling + pruning {name}...");
        let student = ne.distill_and_prune(&teacher, &split.train, arch);
        let mut scorer = HybridScorer::new(
            student.hybrid,
            student.dense.normalizer.clone(),
            format!("NN {name} (sparse L1)"),
        );
        let (pt, _) = ne.evaluate(&mut scorer, &split.test);
        net_points.push(pt);
    }

    // Admission rule: ≥ 99% of the best tree-based NDCG@10.
    let best_tree = tree_points
        .iter()
        .map(|p| p.ndcg10)
        .fold(f64::MIN, f64::max);
    let scenario = Scenario::paper_high_quality();

    let mut table = Table::new(&["Model", "NDCG@10", "us/doc", "Admitted", "On frontier"]);
    let all: Vec<ParetoPoint> = tree_points
        .iter()
        .chain(net_points.iter())
        .cloned()
        .collect();
    let frontier = pareto_frontier(&all);
    for (i, p) in all.iter().enumerate() {
        table.row(&[
            p.name.clone(),
            f(p.ndcg10, 4),
            f(p.us_per_doc, 2),
            if scenario.admits(best_tree, p) {
                "yes".into()
            } else {
                "no".into()
            },
            if frontier.contains(&i) {
                "yes".into()
            } else {
                "".into()
            },
        ]);
    }
    table.print();

    let tree_frontier: Vec<ParetoPoint> = pareto_frontier(&tree_points)
        .into_iter()
        .map(|i| tree_points[i].clone())
        .collect();
    let net_frontier: Vec<ParetoPoint> = pareto_frontier(&net_points)
        .into_iter()
        .map(|i| net_points[i].clone())
        .collect();
    println!(
        "\nneural frontier dominates tree frontier: {}",
        frontier_dominates(&net_frontier, &tree_frontier)
    );
    println!("paper shape (MSN30K): neural frontier below the tree one everywhere;");
    println!("(Istella-S): frontiers intersect near the top-quality region.");
}
