//! Table 10: predicted scoring times when pruning the first layer
//! (high-quality retrieval architectures).
//!
//! Pure predictor output — exactly how the paper uses it: locate a model
//! on the time axis *before* training anything. For each architecture we
//! report the predicted dense time, the first layer's share, and the
//! predicted time once the first layer is pruned to ≥ 95% sparsity
//! (its SDMM cost becomes negligible, Figure 11).

use dlr_bench::{f, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 10 — predicted pruned scoring time (high-quality)");

    let predictor = DensePredictor::paper_i9_9900k();
    let batch = 1000;
    let cases: [(&str, usize, &[usize]); 6] = [
        ("MSN30K", 136, &[300, 200, 100]),
        ("MSN30K", 136, &[200, 100, 100, 50]),
        ("MSN30K", 136, &[200, 50, 50, 25]),
        ("Istella-S", 220, &[800, 400, 400, 200]),
        ("Istella-S", 220, &[800, 200, 200, 100]),
        ("Istella-S", 220, &[300, 200, 100]),
    ];

    let mut table = Table::new(&[
        "Dataset",
        "Model",
        "Sc. Time (us/doc)",
        "1st layer impact (%)",
        "Predicted pruned (us/doc)",
    ]);
    for (ds, input_dim, arch) in cases {
        let dense = predictor.predict_forward_us_per_doc(input_dim, arch, batch);
        let impact = predictor.layer_impacts(input_dim, arch, batch)[0];
        let pruned = predictor.predict_pruned_us_per_doc(input_dim, arch, batch);
        table.row(&[
            ds.to_string(),
            arch.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            f(dense, 1),
            f(impact * 100.0, 0),
            f(pruned, 1),
        ]);
    }
    table.print();
    println!("\npaper: 2.4/30/1.7, 1.3/39/0.8, 0.9/58/0.4, 11.9/23/9.1, 6.5/41/3.8, 2.8/41/1.6");
}
