//! Ablation: the Cohen et al. midpoint data augmentation on vs off (§3).
//!
//! The distillation recipe fills half of every batch with synthetic
//! documents sampled coordinate-wise from the teacher's split-point
//! midpoints. This ablation distills the same student with augmentation
//! fractions {0, 0.25, 0.5} and reports test NDCG@10 and the student's
//! fidelity to the teacher (score RMSE) — the quantity augmentation is
//! supposed to improve by covering the whole feature-space decomposition.

use dlr_bench::{f, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;
use dlr_distill::DistillConfig;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Ablation — midpoint augmentation fraction (MSN30K-like)");

    let split = Corpus::Msn30k.split(scale);
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    let mut teacher_scores = vec![0.0f32; split.test.num_docs()];
    teacher.predict_batch(split.test.features(), &mut teacher_scores);
    let teacher_ndcg = evaluate_scores(&teacher_scores, &split.test).mean_ndcg10();

    let mut table = Table::new(&["Synthetic fraction", "NDCG@10", "Teacher-score RMSE (test)"]);
    for frac in [0.0f32, 0.25, 0.5] {
        eprintln!("distilling with synthetic fraction {frac}...");
        let cfg = DistillConfig {
            hyper: Corpus::Msn30k.hyper(scale),
            batch_size: 256,
            synthetic_fraction: frac,
            ..Default::default()
        };
        let session = DistillSession::new(&teacher, &split.train, cfg);
        let model = session.train_student(&[200, 100, 100, 50]);
        let mut student_scores = vec![0.0f32; split.test.num_docs()];
        model.score_batch(split.test.features(), &mut student_scores);
        let ndcg = evaluate_scores(&student_scores, &split.test).mean_ndcg10();
        let rmse = (student_scores
            .iter()
            .zip(&teacher_scores)
            .map(|(s, t)| ((s - t) as f64).powi(2))
            .sum::<f64>()
            / student_scores.len() as f64)
            .sqrt();
        table.row(&[format!("{frac}"), f(ndcg, 4), f(rmse, 4)]);
    }
    table.print();
    println!("\nteacher NDCG@10: {teacher_ndcg:.4}");
    println!("expected shape: augmentation improves teacher fidelity (lower RMSE)");
    println!("and keeps or improves NDCG@10 — the paper adopts fraction 0.5.");
}
