//! Table 8: the flagship result — the hybrid (sparse-first-layer) net
//! beats QuickScorer forests on both axes.
//!
//! The paper's 400×200×200×100 student, distilled from the 256-leaf
//! teacher and with its first layer pruned to 98.7% sparsity, matches the
//! 878-tree forest's NDCG@10 while scoring 3.2x faster. Claims under
//! test: (1) the sparse model is faster than the dense one, (2) the
//! sparse model's quality is at least the dense one's (pruning as a
//! regularizer), (3) the sparse model beats the forests' time at
//! comparable quality.

use dlr_bench::{f, forest_exact, pipeline, sig_vs, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 8 — dense & sparse 400x200x200x100 vs QuickScorer (MSN30K-like)");

    let split = Corpus::Msn30k.split(scale);
    let mut ne = pipeline(Corpus::Msn30k, scale);
    // The paper's final model: 98.7% sparse first layer.
    ne.cfg.prune = PruneConfig::first_layer_level(0.987);

    let forests = [
        ("878 trees", scale.trees(878)),
        ("500 trees", scale.trees(500)),
        ("300 trees", scale.trees(300)),
    ];
    let mut rows: Vec<(String, ParetoPoint, EvalReport)> = Vec::new();
    for (name, trees) in forests {
        eprintln!("training forest {name} ({trees} trees x 64 leaves)...");
        let forest = forest_exact(&split.train, trees, 64);
        let mut qs = QuickScorerScorer::compile(&forest, format!("QuickScorer {name}"));
        let (pt, report) = ne.evaluate(&mut qs, &split.test);
        rows.push((pt.name.clone(), pt, report));
    }

    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    eprintln!("distilling + pruning 400x200x200x100...");
    let student = ne.distill_and_prune(&teacher, &split.train, &[400, 200, 200, 100]);

    // Dense version: same trained weights but with the first layer kept
    // dense-path (zeros still present — the timing difference is the
    // kernel, exactly the paper's dense-vs-sparse comparison).
    let mut dense = MlpScorer::new(
        student.dense.mlp.clone(),
        student.dense.normalizer.clone(),
        "Neural Dense",
    );
    let (pt, report) = ne.evaluate(&mut dense, &split.test);
    rows.push((pt.name.clone(), pt, report));

    let mut sparse = HybridScorer::new(
        student.hybrid.clone(),
        student.dense.normalizer.clone(),
        "Neural Sparse",
    );
    let (pt, report) = ne.evaluate(&mut sparse, &split.test);
    rows.push((pt.name.clone(), pt, report));

    let dense_report = rows[3].2.clone();
    let mut table = Table::new(&["Model", "NDCG@10", "Sc. Time (us/doc)"]);
    for (name, pt, report) in &rows {
        let mark = if name.starts_with("Neural") {
            sig_vs(report, &dense_report, "^")
        } else {
            String::new()
        };
        table.row(&[
            format!("{name}{mark}"),
            f(report.mean_ndcg10(), 4),
            f(pt.us_per_doc, 2),
        ]);
    }
    table.print();
    println!("\n(^: sig. better than Neural Dense; Fisher p<0.05)");
    println!(
        "\nfirst-layer sparsity achieved: {:.1}% (paper: 98.7%)",
        student.first_layer_sparsity * 100.0
    );
    println!(
        "sparse vs dense speedup: {:.1}x (paper: 3.8 -> 2.6 us = 1.5x)",
        rows[3].1.us_per_doc / rows[4].1.us_per_doc
    );
    println!(
        "sparse vs largest forest speedup: {:.1}x (paper: 3.2x at equal NDCG@10)",
        rows[0].1.us_per_doc / rows[4].1.us_per_doc
    );
}
