//! Table 2: dense time predictor vs. real execution time.
//!
//! The paper reports predicted vs. measured scoring time (µs/doc, batch
//! 1000) for four architectures on 136 input features. We calibrate the
//! GFLOPS zone table on this host, then time real dense forward passes
//! with the blocked GEMM. Absolute values differ from the i9-9900K; the
//! claim under test is that prediction ≈ measurement per architecture.

use dlr_bench::{f, Scale, Table};
use dlr_core::prelude::*;
use dlr_data::DatasetBuilder;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 2 — dense prediction model vs real scoring time");

    println!("calibrating dense predictor on this host...");
    let predictor = calibrate_dense(false);
    println!("GFLOPS zones (k-bound, GFLOPS): {:?}\n", predictor.zones());

    let archs: [&[usize]; 4] = [
        &[1000, 500, 500, 100],
        &[200, 100, 100, 50],
        &[300, 150, 150, 30],
        &[500, 100],
    ];
    let input_dim = 136;
    let batch = 1000;

    // Random documents; forward time does not depend on values.
    let rows: Vec<f32> = (0..batch * input_dim)
        .map(|i| ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    // Identity normalizer (statistics of the random rows).
    let mut b = DatasetBuilder::new(input_dim);
    b.push_query(1, &rows, &vec![0.0; batch]).unwrap();
    let normalizer = Normalizer::fit(&b.finish()).unwrap();

    let mut table = Table::new(&["Model", "Real (us/doc)", "Predicted (us/doc)", "Ratio"]);
    for arch in archs {
        let mlp = Mlp::from_hidden(input_dim, arch, 7);
        let mut scorer = MlpScorer::new(mlp, normalizer.clone(), arch_name(arch));
        let real = measure_us_per_doc(&mut scorer, &rows, batch, scale.timing_reps.max(5));
        let pred = predictor.predict_forward_us_per_doc(input_dim, arch, batch);
        table.row(&[arch_name(arch), f(real, 2), f(pred, 2), f(pred / real, 2)]);
    }
    table.print();
    println!("\npaper (i9-9900K): 14.4/14.5, 1.3/1.3, 2.0/2.2, 2.1/2.2 us/doc");
}

fn arch_name(arch: &[usize]) -> String {
    arch.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("x")
}
