//! Ablation: first-layer-only pruning vs uniform all-layer pruning (§5.2).
//!
//! The paper prunes *only* the first layer because (a) it dominates the
//! execution time and (b) dynamic sensitivity shows it tolerates extreme
//! sparsity. This ablation compares, at an equal total-parameter budget:
//!
//! * the paper's choice — first layer pruned hard, others dense;
//! * uniform level pruning of every layer to the same overall sparsity.
//!
//! Reported: test NDCG@10 and the hybrid model's measured scoring time
//! (uniform pruning leaves every layer semi-sparse, which the SDMM kernel
//! cannot exploit at moderate sparsity — the efficiency argument).

use dlr_bench::{f, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;
use dlr_nn::LayerMasks;
use dlr_prune::level_mask;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Ablation — first-layer-only vs uniform all-layer pruning");

    let split = Corpus::Msn30k.split(scale);
    let ne = pipeline(Corpus::Msn30k, scale);
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);

    let arch: &[usize] = &[400, 200, 200, 100];
    let session = DistillSession::new(&teacher, &split.train, ne.cfg.distill.clone());
    eprintln!("distilling the base student {arch:?}...");
    let base = session.train_student(arch);

    // Budget: zero out as many weights as first-layer-only @ 98% removes.
    let l1_weights = base.mlp.layers()[0].num_weights();
    let total_weights: usize = base.mlp.layers().iter().map(|l| l.num_weights()).sum();
    let removed = (l1_weights as f64 * 0.98) as usize;
    let uniform_sparsity = removed as f64 / total_weights as f64;

    let hyper = &ne.cfg.distill.hyper;
    let schedule = dlr_nn::StepLr::new(hyper.learning_rate, hyper.gamma, &hyper.gamma_steps);
    let tune_epochs = hyper.prune_epochs + hyper.finetune_epochs;

    let mut table = Table::new(&["Strategy", "L1 sparsity", "NDCG@10", "us/doc (hybrid L1)"]);
    for (name, first_only) in [
        ("first-layer-only @98%", true),
        ("uniform all layers", false),
    ] {
        eprintln!("pruning + fine-tuning: {name}...");
        let mut mlp = base.mlp.clone();
        let mut masks = LayerMasks::none(mlp.layers().len());
        if first_only {
            let mask = level_mask(mlp.layers()[0].weights.as_slice(), 0.98);
            masks.set(0, mask);
        } else {
            for i in 0..mlp.layers().len() {
                let mask = level_mask(mlp.layers()[i].weights.as_slice(), uniform_sparsity);
                masks.set(i, mask);
            }
        }
        masks.apply(&mut mlp);
        session.run_epochs(&mut mlp, &schedule, 0..tune_epochs, Some(&masks));
        masks.apply(&mut mlp);

        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        let l1_sparsity = hybrid.first_layer_sparsity();
        let mut scorer = HybridScorer::new(hybrid, session.normalizer().clone(), name.to_string());
        let (pt, _) = ne.evaluate(&mut scorer, &split.test);
        table.row(&[
            name.to_string(),
            f(l1_sparsity, 3),
            f(pt.ndcg10, 4),
            f(pt.us_per_doc, 2),
        ]);
    }
    table.print();
    println!(
        "\nequal parameter budget: {} weights removed of {} ({}% uniform)",
        removed,
        total_weights,
        (uniform_sparsity * 100.0).round()
    );
    println!("expected shape: first-layer-only is faster (its layer's SDMM cost vanishes,");
    println!("uniform ~25% sparsity speeds up nothing) at comparable or better NDCG@10.");
}
