//! Figure 10: static vs dynamic sensitivity analysis of a
//! 400×200×200×100 student on MSN30K-like data.
//!
//! The paper prunes each layer in isolation at growing sparsities and
//! evaluates validation NDCG@10, without re-training (static) and with
//! re-training (dynamic). Claims under test: static sensitivity degrades
//! with sparsity (first layers worst); dynamic re-training recovers most
//! of the loss, and the first layer tolerates extreme sparsity — the
//! observation the whole §5.2 pruning strategy rests on.

use dlr_bench::{f, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;
use dlr_distill::DistillConfig;
use dlr_prune::{dynamic_sensitivity, static_sensitivity};

fn main() {
    let scale = Scale::from_env();
    scale.banner("Figure 10 — static and dynamic sensitivity (400x200x200x100)");

    let split = Corpus::Msn30k.split(scale);
    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    let cfg = DistillConfig {
        hyper: Corpus::Msn30k.hyper(scale),
        batch_size: 256,
        ..Default::default()
    };
    let session = DistillSession::new(&teacher, &split.train, cfg);
    eprintln!("distilling the student...");
    let model = session.train_student(&[400, 200, 200, 100]);

    let levels = [0.5, 0.7, 0.8, 0.9, 0.95, 0.98];
    eprintln!("running static sensitivity...");
    let stat = static_sensitivity(&model.mlp, session.normalizer(), &split.valid, &levels);
    let retrain = (Corpus::Msn30k.hyper(scale).train_epochs / 4).max(1);
    eprintln!("running dynamic sensitivity ({retrain} retrain epochs per probe)...");
    let dynamic = dynamic_sensitivity(&session, &model.mlp, &split.valid, &levels, retrain);

    for (title, curves) in [("STATIC", &stat), ("DYNAMIC", &dynamic)] {
        println!("\n{title} sensitivity — validation NDCG@10 per layer and sparsity:");
        let mut headers: Vec<String> = vec!["Layer".into()];
        headers.extend(levels.iter().map(|l| format!("{:.0}%", l * 100.0)));
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&refs);
        for c in curves {
            let mut row = vec![format!("fc{}", c.layer + 1)];
            row.extend(c.points.iter().map(|&(_, n)| f(n, 4)));
            table.row(&row);
        }
        table.print();
    }

    println!("\npaper shape: static curves fall with sparsity (early layers worst);");
    println!("dynamic curves stay flat, with the first layer tolerating 95%+ sparsity");
    println!("and sometimes *beating* the dense model (pruning as regularizer).");
}
