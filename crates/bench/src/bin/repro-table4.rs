//! Table 4: sparse time predictor vs. real SDMM execution time.
//!
//! Calibrates Equation 5's coefficients on this host via the paper's
//! by-difference procedure, then predicts and measures the multiplication
//! time of first-layer-shaped random sparse matrices at N ∈ {16, 32, 64}.
//! The claim under test: predictions track measurements closely enough to
//! distinguish same-shape matrices with different sparsities.

use dlr_bench::{f, Scale, Table};
use dlr_dense::Matrix;
use dlr_predictor::{calibrate::time_spmm, calibrate_sparse, CsrShapeStats};
use dlr_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 4 — sparse time predictor vs real SDMM time");

    println!("calibrating sparse predictor (A_c / A_rd / A_2c by-difference)...");
    let p = calibrate_sparse(false);
    println!(
        "l_a = {:.3e}  l_b = {:.3e}  l_c = {:.3e}  (s per B-column)\n",
        p.la, p.lb, p.lc
    );

    let cases = [
        (400, 136, 0.995),
        (400, 136, 0.986),
        (300, 136, 0.985),
        (200, 136, 0.982),
        (200, 136, 0.971),
        (100, 136, 0.989),
        (100, 136, 0.967),
        (50, 136, 0.987),
    ];
    let ns = [16usize, 32, 64];
    let reps = scale.timing_reps.max(5);

    let mut table = Table::new(&[
        "Shape",
        "Sparsity",
        "N=16 real",
        "N=16 pred",
        "N=32 real",
        "N=32 pred",
        "N=64 real",
        "N=64 pred",
    ]);
    for (m, k, sparsity) in cases {
        let a = random_sparse(m, k, sparsity, (m + k) as u64 * 7919);
        let stats = CsrShapeStats::of(&a);
        let mut cells = vec![format!("{m}x{k}"), f(sparsity, 3)];
        for n in ns {
            let real = time_spmm(&a, n, reps) * 1e6;
            let pred = p.predict_us(stats, n);
            cells.push(f(real, 2));
            cells.push(f(pred, 2));
        }
        table.row(&cells);
    }
    table.print();
    println!("\npaper row 1 (400x136 @.995): 0.2/0.2, 0.4/0.4, 0.9/0.8 us");
}

fn random_sparse(m: usize, k: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dense = Matrix::zeros(m, k);
    let nnz = ((m * k) as f64 * (1.0 - sparsity)).round().max(1.0) as usize;
    let mut placed = 0usize;
    while placed < nnz {
        let i = rng.random_range(0..m);
        let j = rng.random_range(0..k);
        if dense.get(i, j) == 0.0 {
            dense.set(i, j, rng.random_range(0.1..1.0f32));
            placed += 1;
        }
    }
    CsrMatrix::from_dense(&dense, 0.0)
}
