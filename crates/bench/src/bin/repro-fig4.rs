//! Figure 4: GEMM throughput as m and k grow, per batch size n.
//!
//! The paper sweeps square-ish weight shapes and shows GFLOPS rising with
//! matrix size even with oneDNN's small-shape refinements. We print one
//! series per n; the claim under test is monotone-ish growth with m = k
//! and higher throughput at larger n.

use dlr_bench::{f, Scale, Table};
use dlr_dense::measure_gemm_gflops;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Figure 4 — GFLOPS as m = k grows, per batch size n");

    let mks = [16usize, 32, 64, 128, 256, 512, 1024];
    let ns = [64usize, 256, 1000];
    let reps = scale.timing_reps.max(5);

    let mut table = Table::new(&["m=k", "n=64", "n=256", "n=1000"]);
    for &mk in &mks {
        let mut row = vec![mk.to_string()];
        for &n in &ns {
            row.push(f(measure_gemm_gflops(mk, mk, n, 1, reps), 1));
        }
        table.row(&row);
    }
    table.print();
    println!("\nexpected shape: GFLOPS grow with m=k and with n (paper Figure 4).");
}
