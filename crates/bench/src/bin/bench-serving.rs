//! Open-loop load benchmark for the `dlr-serve` front-end.
//!
//! Drives the server with seeded Poisson arrivals plus heavy-tail
//! bursts at a ladder of offered QPS levels and reports, per level:
//! delivered QPS, end-to-end latency percentiles (p50/p99/p999), shed
//! rate, and degradation rate — then the **max sustainable QPS**: the
//! highest offered level that loses < 1% of submissions and keeps p99
//! under the request deadline. Emits `BENCH_serving.json`.
//!
//! ```text
//! cargo run --release -p dlr-bench --bin bench-serving            # full ladder
//! cargo run --release -p dlr-bench --bin bench-serving -- --check # CI smoke
//! ```
//!
//! Open-loop means arrivals never wait for responses: when the
//! generator falls behind schedule it submits in catch-up bursts, so
//! overload shows up as queueing, shedding, and degradation instead of
//! silently throttled offered load. The admission and degradation
//! forecasters are calibrated from measured per-document service time
//! (the Eq. 3 linear model) before the sweep.

use dlr_core::scoring::DocumentScorer;
use dlr_core::serve::RobustScorer;
use dlr_metrics::GateConfig;
use dlr_obs::Obs;
use dlr_serve::{
    BatchConfig, Clock, ModelRegistry, MonotonicClock, Response, RolloutConfig, ScoreRequest,
    Server, ServerConfig, ServerStats, SubmitError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Primary scorer: one dot product per document — enough arithmetic for
/// service time to scale with batched documents.
struct DotScorer {
    weights: Vec<f32>,
}

impl DotScorer {
    fn new(nf: usize) -> DotScorer {
        DotScorer {
            weights: (0..nf).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect(),
        }
    }
}

impl DocumentScorer for DotScorer {
    fn num_features(&self) -> usize {
        self.weights.len()
    }
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(self.weights.len()).zip(out.iter_mut()) {
            *o = row.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
        }
    }
    fn name(&self) -> String {
        "dot".into()
    }
}

/// Fallback: first feature only — the cheap degraded path.
struct FirstFeature {
    nf: usize,
}

impl DocumentScorer for FirstFeature {
    fn num_features(&self) -> usize {
        self.nf
    }
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(self.nf).zip(out.iter_mut()) {
            *o = row.first().copied().unwrap_or(0.0);
        }
    }
    fn name(&self) -> String {
        "first-feature".into()
    }
}

struct Sizes {
    mode: &'static str,
    /// Documents per query (every request is one query).
    docs: usize,
    /// Features per document.
    feats: usize,
    /// Per-request latency budget.
    deadline: Duration,
    /// Offered-QPS ladder, ascending.
    levels: Vec<f64>,
    /// Seconds of offered load per level.
    window_secs: f64,
}

impl Sizes {
    fn from_args() -> Sizes {
        let check = std::env::args().any(|a| a == "--check");
        if check {
            Sizes {
                mode: "check",
                docs: 4,
                feats: 8,
                deadline: Duration::from_millis(10),
                levels: vec![500.0, 2_000.0],
                window_secs: 0.15,
            }
        } else {
            Sizes {
                mode: "full",
                docs: 16,
                feats: 32,
                deadline: Duration::from_millis(2),
                levels: vec![1_000.0, 4_000.0, 16_000.0, 64_000.0, 256_000.0],
                window_secs: 1.0,
            }
        }
    }
}

/// Measured linear service-time model `t(docs) = base + per_doc · docs`
/// (the Eq. 3 shape), calibrated by timing the primary scorer directly.
#[derive(Clone, Copy)]
struct LinearModel {
    base_secs: f64,
    per_doc_secs: f64,
}

impl LinearModel {
    fn calibrate(nf: usize) -> LinearModel {
        let mut scorer = DotScorer::new(nf);
        let time_batch = |scorer: &mut DotScorer, docs: usize| -> f64 {
            let rows = vec![0.5f32; docs * nf];
            let mut out = vec![0.0f32; docs];
            let reps = 200;
            let t0 = Instant::now();
            for _ in 0..reps {
                scorer.score_batch(&rows, &mut out);
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let small = 16usize;
        let large = 512usize;
        let t_small = time_batch(&mut scorer, small);
        let t_large = time_batch(&mut scorer, large);
        let per_doc = ((t_large - t_small) / (large - small) as f64).max(1e-9);
        LinearModel {
            base_secs: (t_small - per_doc * small as f64).max(0.0),
            per_doc_secs: per_doc,
        }
    }

    fn forecast(self, docs: usize) -> Duration {
        Duration::from_secs_f64(self.base_secs + self.per_doc_secs * docs as f64)
    }
}

/// One offered-load level's outcome.
struct LevelReport {
    offered_qps: f64,
    delivered_qps: f64,
    stats: ServerStats,
    /// (shed + rejected + expired + failed) / submitted.
    loss_rate: f64,
    shed_rate: f64,
    /// fallback-scored / scored.
    degrade_rate: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    wall_secs: f64,
}

impl LevelReport {
    fn print(&self) {
        println!(
            "offered {:>9.0} qps | delivered {:>9.0} qps | shed {:>6.2}% | degraded {:>6.2}% | lost {:>6.2}% | p50 {:>6}us p99 {:>6}us p999 {:>6}us",
            self.offered_qps,
            self.delivered_qps,
            self.shed_rate * 100.0,
            self.degrade_rate * 100.0,
            self.loss_rate * 100.0,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"offered_qps\":{:.1},\"delivered_qps\":{:.1},\"submitted\":{},\"admitted\":{},\"shed\":{},\"rejected_full\":{},\"scored_primary\":{},\"scored_fallback\":{},\"expired\":{},\"failed\":{},\"loss_rate\":{:.5},\"shed_rate\":{:.5},\"degrade_rate\":{:.5},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"wall_secs\":{:.4}}}",
            self.offered_qps,
            self.delivered_qps,
            self.stats.submitted,
            self.stats.admitted,
            self.stats.shed,
            self.stats.rejected_full,
            self.stats.scored_primary,
            self.stats.scored_fallback,
            self.stats.expired,
            self.stats.failed,
            self.loss_rate,
            self.shed_rate,
            self.degrade_rate,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.wall_secs,
        )
    }
}

/// Drive one offered-QPS level open-loop and account the outcome. With
/// `with_obs`, the full tracing plane records every span and drift pair
/// (the overhead-measurement arm); without, every hook is the no-op
/// branch (the baseline arm and the ladder).
fn run_level(
    sz: &Sizes,
    model: LinearModel,
    offered_qps: f64,
    seed: u64,
    with_obs: bool,
) -> (LevelReport, Option<Arc<Obs>>) {
    let clock = Arc::new(MonotonicClock::default());
    let obs =
        with_obs.then(|| Arc::new(Obs::new(Arc::clone(&clock) as Arc<dyn dlr_obs::NanoClock>)));
    let mut engine = RobustScorer::new(
        DotScorer::new(sz.feats),
        FirstFeature { nf: sz.feats },
        "bench-serving",
    )
    .with_forecaster(move |docs: usize| Some(model.forecast(docs)));
    if let Some(obs) = &obs {
        engine = engine.with_obs(Arc::clone(obs));
    }
    let server = Server::start(
        engine,
        ServerConfig {
            batch: BatchConfig {
                max_batch_docs: 256,
                max_wait: Duration::from_micros(200),
            },
            queue_capacity: 512,
            admission: Some(Box::new(move |docs: usize| Some(model.forecast(docs)))),
            clock: Some(clock as Arc<dyn Clock>),
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let features = vec![0.5f32; sz.docs * sz.feats];
    let mut handles = Vec::new();
    let start = Instant::now();
    let mut arrival = 0.0f64;
    while arrival < sz.window_secs {
        let target = Duration::from_secs_f64(arrival);
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        // Heavy tail: ~1 arrival in 64 is a 32-query burst at one instant.
        let burst = if rng.random_bool(1.0 / 64.0) { 32 } else { 1 };
        for _ in 0..burst {
            match server.submit(ScoreRequest::new(features.clone()).with_deadline(sz.deadline)) {
                Ok(handle) => handles.push(handle),
                Err(SubmitError::Shed { .. } | SubmitError::QueueFull) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        // Poisson: exponential inter-arrival at the offered rate.
        let u: f64 = rng.random();
        arrival += -(1.0 - u).ln().max(f64::MIN_POSITIVE.ln()) / offered_qps;
    }
    let (_engine, stats) = server.shutdown();
    let wall_secs = start.elapsed().as_secs_f64();

    // Drain guarantee: every handle is answered; waiting cannot block.
    let mut delivered = 0u64;
    for handle in handles {
        match handle.wait().response {
            Response::Scored { .. } => delivered += 1,
            Response::Expired | Response::Failed => {}
        }
    }
    assert_eq!(
        delivered,
        stats.scored(),
        "per-handle and stats accounting disagree"
    );

    let lost = stats.refused() + stats.expired + stats.failed;
    let report = LevelReport {
        offered_qps,
        delivered_qps: delivered as f64 / wall_secs,
        loss_rate: lost as f64 / stats.submitted.max(1) as f64,
        shed_rate: (stats.shed + stats.rejected_full) as f64 / stats.submitted.max(1) as f64,
        degrade_rate: stats.scored_fallback as f64 / stats.scored().max(1) as f64,
        p50_us: stats.latency.p50_us().unwrap_or(0),
        p99_us: stats.latency.p99_us().unwrap_or(0),
        p999_us: stats.latency.p999_us().unwrap_or(0),
        wall_secs,
        stats,
    };
    (report, obs)
}

/// One lifecycle run's latency outcome.
struct LifecycleReport {
    swaps: usize,
    final_version: String,
    delivered: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

impl LifecycleReport {
    fn json(&self) -> String {
        format!(
            "{{\"swaps\":{},\"final_version\":\"{}\",\"delivered\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            self.swaps, self.final_version, self.delivered, self.p50_us, self.p99_us, self.p999_us
        )
    }
}

/// The swap-pause measurement: drive one open-loop window through a
/// [`ModelRegistry`] engine, optionally hot-swapping the active model
/// `swaps` times mid-run (load → shadow → promote, each settling through
/// a short hold), and report the end-to-end percentiles. Comparing the
/// `swaps == 0` and `swaps > 0` runs isolates what an atomic model swap
/// costs the tail: the state handoff lands *between* micro-batches, so
/// the pause a request can observe is bounded by one batch execution.
fn run_lifecycle(sz: &Sizes, offered_qps: f64, seed: u64, swaps: usize) -> LifecycleReport {
    // Watchdog parked (this run swaps identical models to measure the
    // mechanism, not the policy) and the promotion gate left permissive:
    // no labels flow, so the gate sees zero NDCG pairs.
    let config = RolloutConfig {
        min_samples: u64::MAX,
        hold_batches: 4,
        gate: GateConfig {
            min_queries: 0,
            ..GateConfig::default()
        },
        ..RolloutConfig::default()
    };
    let (registry, engine) = ModelRegistry::with_scorer(
        "v1",
        Box::new(DotScorer::new(sz.feats)),
        Vec::new(),
        config,
        Arc::new(MonotonicClock::default()),
    );
    let server = Server::start(
        engine,
        ServerConfig {
            batch: BatchConfig {
                max_batch_docs: 256,
                max_wait: Duration::from_micros(200),
            },
            queue_capacity: 512,
            ..ServerConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let features = vec![0.5f32; sz.docs * sz.feats];

    // Warm the freshly spawned dispatcher (thread scheduling, first-batch
    // allocations) before the measured window, so cold-start stragglers
    // don't masquerade as swap pause in whichever variant runs first.
    let mut warm_scored = 0u64;
    for _ in 0..32 {
        let handle = server
            .submit(ScoreRequest::new(features.clone()).with_deadline(sz.deadline))
            .expect("idle server admits the warmup");
        if matches!(handle.wait().response, Response::Scored { .. }) {
            warm_scored += 1;
        }
    }

    let mut handles = Vec::new();
    let mut swapped = 0usize;
    let start = Instant::now();
    let mut arrival = 0.0f64;
    while arrival < sz.window_secs {
        let target = Duration::from_secs_f64(arrival);
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        // Evenly spaced mid-run swaps: the (k+1)-th fires once the
        // arrival clock crosses window·(k+1)/(swaps+1).
        if swapped < swaps && arrival >= sz.window_secs * (swapped + 1) as f64 / (swaps + 1) as f64
        {
            let version = format!("v{}", swapped + 2);
            // The previous promotion may still be holding; give its
            // settle a brief window before skipping this swap point.
            for _ in 0..50 {
                if registry
                    .load_scorer(&version, Box::new(DotScorer::new(sz.feats)), Vec::new())
                    .is_ok()
                {
                    registry.begin_shadow().expect("Loaded -> Shadow");
                    registry.promote().expect("permissive gate");
                    swapped += 1;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        match server.submit(ScoreRequest::new(features.clone()).with_deadline(sz.deadline)) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::Shed { .. } | SubmitError::QueueFull) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        let u: f64 = rng.random();
        arrival += -(1.0 - u).ln().max(f64::MIN_POSITIVE.ln()) / offered_qps;
    }
    let (_engine, stats) = server.shutdown();

    // Exact (unbucketed) per-request latencies from the measured window
    // only — finer resolution than the histogram, which matters when the
    // swap pause under test is smaller than a power-of-two bucket.
    let mut latencies_us: Vec<u64> = Vec::with_capacity(handles.len());
    for handle in handles {
        let delivery = handle.wait();
        if matches!(delivery.response, Response::Scored { .. }) {
            latencies_us.push(delivery.latency_nanos / 1_000);
        }
    }
    latencies_us.sort_unstable();
    let delivered = latencies_us.len() as u64;
    let pct = |p: f64| -> u64 {
        latencies_us.last().map_or(0, |_| {
            let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
            latencies_us[idx.min(latencies_us.len() - 1)]
        })
    };
    // The hot-swap identities, revalidated under bench load: everything
    // admitted was answered, and the per-version rows sum to the totals.
    assert_eq!(
        delivered + warm_scored,
        stats.scored(),
        "accounting disagrees"
    );
    assert_eq!(
        stats.answered(),
        stats.admitted,
        "drain answered everything"
    );
    let per_version: u64 = stats
        .per_version
        .iter()
        .map(|v| v.scored_primary + v.scored_fallback)
        .sum();
    assert_eq!(
        per_version,
        stats.scored(),
        "per-version rows sum to totals"
    );
    assert_eq!(swapped, swaps, "every scheduled swap must have landed");

    LifecycleReport {
        swaps: swapped,
        final_version: registry.active_version(),
        delivered,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
    }
}

fn main() {
    let sz = Sizes::from_args();
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "=== bench-serving ({} mode, host parallelism {}) ===",
        sz.mode, host
    );
    let model = LinearModel::calibrate(sz.feats);
    println!(
        "calibrated service model: {:.2}us + {:.4}us/doc | {} docs/query, {} features, deadline {:?}\n",
        model.base_secs * 1e6,
        model.per_doc_secs * 1e6,
        sz.docs,
        sz.feats,
        sz.deadline,
    );

    let deadline_us = sz.deadline.as_micros() as u64;
    let mut reports = Vec::new();
    let mut max_sustainable = 0.0f64;
    for (i, &qps) in sz.levels.iter().enumerate() {
        let (report, _) = run_level(&sz, model, qps, 0xD15711ED + i as u64, false);
        report.print();
        // Sustainable: < 1% of submissions lost and p99 within deadline.
        if report.loss_rate < 0.01 && report.p99_us <= deadline_us {
            max_sustainable = max_sustainable.max(qps);
        }
        reports.push(report);
    }
    println!("\nmax sustainable qps (loss < 1%, p99 <= deadline): {max_sustainable:.0}");

    // Swap-pause measurement: the same offered load with and without
    // mid-run hot swaps; the p999 delta is what a model rollout costs
    // the latency tail.
    let lifecycle_qps = sz.levels[sz.levels.len() / 2];
    let baseline = run_lifecycle(&sz, lifecycle_qps, 0x11FEC, 0);
    let swapped = run_lifecycle(&sz, lifecycle_qps, 0x11FEC, 3);
    println!(
        "\nlifecycle @ {:.0} qps: no swap p999 {}us | {} mid-run hot swaps p999 {}us (final {})",
        lifecycle_qps, baseline.p999_us, swapped.swaps, swapped.p999_us, swapped.final_version,
    );

    // Observability overhead: the same seeded offered load with the
    // tracing plane off and on. The documented budget (README/DESIGN
    // "Observability"): tracing-on p99 must stay within 5× the
    // tracing-off p99 plus a 5 ms allowance — generous because both
    // arms are single short seeded windows on a shared host, where
    // scheduler noise dwarfs the hooks' relaxed-atomic cost.
    let obs_qps = sz.levels[sz.levels.len() / 2];
    let (obs_off, _) = run_level(&sz, model, obs_qps, 0x0B5_0FF, false);
    let (obs_on, plane) = run_level(&sz, model, obs_qps, 0x0B5_0FF, true);
    let plane = plane.expect("obs arm returns its plane");
    assert!(plane.books_balance(), "span accounting must balance");
    let drift_recorded = plane.drift().summary().recorded;
    let bound_p99_us = 5 * obs_off.p99_us + 5_000;
    let within_bound = obs_on.p99_us <= bound_p99_us;
    println!(
        "\nobs overhead @ {:.0} qps: off p50 {}us p99 {}us | on p50 {}us p99 {}us | {} spans, {} drift pairs | bound p99 <= {}us: {}",
        obs_qps,
        obs_off.p50_us,
        obs_off.p99_us,
        obs_on.p50_us,
        obs_on.p99_us,
        plane.sink().spans_opened(),
        drift_recorded,
        bound_p99_us,
        if within_bound { "ok" } else { "EXCEEDED" },
    );

    let levels: Vec<String> = reports.iter().map(LevelReport::json).collect();
    let json = format!(
        "{{\"bench\":\"serving\",\"mode\":\"{}\",\"host_parallelism\":{},\"docs_per_query\":{},\"features\":{},\"deadline_us\":{},\"max_batch_docs\":256,\"max_wait_us\":200,\"queue_capacity\":512,\"model_base_us\":{:.3},\"model_per_doc_us\":{:.5},\"max_sustainable_qps\":{:.1},\"lifecycle\":{{\"offered_qps\":{:.1},\"no_swap\":{},\"with_swap\":{}}},\"obs\":{{\"offered_qps\":{:.1},\"off\":{{\"p50_us\":{},\"p99_us\":{}}},\"on\":{{\"p50_us\":{},\"p99_us\":{},\"spans_opened\":{},\"spans_dropped\":{},\"drift_recorded\":{}}},\"bound\":\"p99_on <= 5*p99_off + 5000us\",\"bound_p99_us\":{},\"within_bound\":{}}},\"levels\":[{}]}}\n",
        sz.mode,
        host,
        sz.docs,
        sz.feats,
        deadline_us,
        model.base_secs * 1e6,
        model.per_doc_secs * 1e6,
        max_sustainable,
        lifecycle_qps,
        baseline.json(),
        swapped.json(),
        obs_qps,
        obs_off.p50_us,
        obs_off.p99_us,
        obs_on.p50_us,
        obs_on.p99_us,
        plane.sink().spans_opened(),
        plane.sink().spans_dropped(),
        drift_recorded,
        bound_p99_us,
        within_bound,
        levels.join(",")
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json ({} mode)", sz.mode);
}
