//! Table 11: predicted scoring times when pruning the first layer
//! (low-latency retrieval architectures, budget 0.5 µs/doc).

use dlr_bench::{f, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 11 — predicted pruned scoring time (low-latency)");

    let predictor = DensePredictor::paper_i9_9900k();
    let batch = 1000;
    let cases: [(&str, usize, &[usize]); 6] = [
        ("MSN30K", 136, &[100, 50, 50, 25]),
        ("MSN30K", 136, &[100, 25, 25, 10]),
        ("MSN30K", 136, &[50, 25, 25, 10]),
        ("Istella-S", 220, &[200, 75, 75, 25]),
        ("Istella-S", 220, &[100, 75, 75, 10]),
        ("Istella-S", 220, &[100, 50, 50, 10]),
    ];

    let mut table = Table::new(&[
        "Dataset",
        "Model",
        "Sc. Time (us/doc)",
        "1st layer impact (%)",
        "Predicted pruned (us/doc)",
    ]);
    for (ds, input_dim, arch) in cases {
        let dense = predictor.predict_forward_us_per_doc(input_dim, arch, batch);
        let impact = predictor.layer_impacts(input_dim, arch, batch)[0];
        let pruned = predictor.predict_pruned_us_per_doc(input_dim, arch, batch);
        table.row(&[
            ds.to_string(),
            arch.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            f(dense, 1),
            f(impact * 100.0, 0),
            f(pruned, 1),
        ]);
    }
    table.print();
    println!("\npaper: 0.6/56/0.3, 0.5/71/0.2, 0.3/65/0.1, 1.6/61/0.6, 0.9/55/0.4, 0.8/67/0.3");

    // The paper's low-latency admission rule: every pruned prediction must
    // clear the 0.5 µs budget on MSN30K.
    let ok = cases
        .iter()
        .filter(|(ds, _, _)| *ds == "MSN30K")
        .all(|(_, input_dim, arch)| {
            predictor.predict_pruned_us_per_doc(*input_dim, arch, batch) <= 0.5
        });
    println!("\nall MSN30K candidates fit the 0.5 us budget: {ok}");
}
