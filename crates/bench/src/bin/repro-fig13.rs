//! Figure 13: effectiveness-efficiency comparison in the *low-latency
//! retrieval* scenario (≤ 0.5 µs/doc in the paper).
//!
//! Small forests versus the small pruned nets of Table 11. Claim under
//! test: within the latency budget, the neural models reach equal or
//! better NDCG@10 than equal-latency forests, and the most effective
//! admissible model is neural.
//!
//! The absolute budget is machine-dependent; `DLR_BUDGET_US` (default
//! 0.5) sets it, and the report prints admission against that value.

use dlr_bench::{f, forest_exact, pipeline, teacher_forest, Corpus, Scale, Table};
use dlr_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let corpus = match std::env::var("DLR_DATASET").as_deref() {
        Ok("istella") => Corpus::IstellaS,
        _ => Corpus::Msn30k,
    };
    let budget_us: f64 = std::env::var("DLR_BUDGET_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    scale.banner(&format!(
        "Figure 13 — low-latency retrieval Pareto ({}, budget {budget_us} us/doc)",
        corpus.name()
    ));

    let split = corpus.split(scale);
    let ne = pipeline(corpus, scale);

    // Small forests: the latency-budget end of the tree family.
    let forest_specs = [(100usize, 32usize), (200, 32), (300, 32), (100, 64)];
    let mut tree_points = Vec::new();
    for (paper_trees, leaves) in forest_specs {
        let trees = scale.trees(paper_trees);
        eprintln!("training forest {paper_trees}x{leaves} (-> {trees} trees)...");
        let forest = forest_exact(&split.train, trees, leaves);
        let mut qs = QuickScorerScorer::compile(&forest, format!("QS {paper_trees}x{leaves}"));
        let (pt, _) = ne.evaluate(&mut qs, &split.test);
        tree_points.push(pt);
    }

    eprintln!("training 256-leaf teacher...");
    let teacher = teacher_forest(&split.train, &split.valid, scale.trees(600), 256);
    let archs: Vec<&[usize]> = match corpus {
        Corpus::Msn30k => vec![&[100, 50, 50, 25], &[100, 25, 25, 10], &[50, 25, 25, 10]],
        Corpus::IstellaS => vec![&[200, 75, 75, 25], &[100, 75, 75, 10], &[100, 50, 50, 10]],
    };
    let mut net_points = Vec::new();
    for arch in archs {
        let name = arch
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        eprintln!("distilling + pruning {name}...");
        let student = ne.distill_and_prune(&teacher, &split.train, arch);
        let mut scorer = HybridScorer::new(
            student.hybrid,
            student.dense.normalizer.clone(),
            format!("NN {name} (sparse L1)"),
        );
        let (pt, _) = ne.evaluate(&mut scorer, &split.test);
        net_points.push(pt);
    }

    let scenario = Scenario::LowLatency { max_us: budget_us };
    let all: Vec<ParetoPoint> = tree_points
        .iter()
        .chain(net_points.iter())
        .cloned()
        .collect();
    let frontier = pareto_frontier(&all);
    let mut table = Table::new(&["Model", "NDCG@10", "us/doc", "Admitted", "On frontier"]);
    for (i, p) in all.iter().enumerate() {
        table.row(&[
            p.name.clone(),
            f(p.ndcg10, 4),
            f(p.us_per_doc, 2),
            if scenario.admits(0.0, p) {
                "yes".into()
            } else {
                "no".into()
            },
            if frontier.contains(&i) {
                "yes".into()
            } else {
                "".into()
            },
        ]);
    }
    table.print();

    let best_admissible = all
        .iter()
        .filter(|p| scenario.admits(0.0, p))
        .max_by(|a, b| a.ndcg10.partial_cmp(&b.ndcg10).expect("finite"));
    match best_admissible {
        Some(p) => println!(
            "\nmost effective model within the budget: {} (NDCG@10 {:.4}, {:.2} us/doc)",
            p.name, p.ndcg10, p.us_per_doc
        ),
        None => {
            println!("\nno model fits the {budget_us} us budget on this host — raise DLR_BUDGET_US")
        }
    }
    println!("paper shape: the most effective admissible model is a neural network.");
}
