//! Table 7: per-layer breakdown of forward-pass execution time.
//!
//! The paper measures the relative cost of each layer for three
//! architectures and finds the first layer always dominant (35–60%), which
//! motivates pruning *only* the first layer. We reproduce the breakdown
//! two ways: measured per-layer GEMM times on this host, and the dense
//! predictor's analytic impacts.

use dlr_bench::{Scale, Table};
use dlr_core::prelude::*;
use dlr_dense::time_gemm;

fn main() {
    let scale = Scale::from_env();
    scale.banner("Table 7 — relative execution time per layer");

    let archs: [&[usize]; 3] = [
        &[400, 200, 200, 100],
        &[100, 50, 50, 10],
        &[200, 100, 100, 50],
    ];
    let input_dim = 136;
    let batch = 1000;
    let predictor = DensePredictor::paper_i9_9900k();
    let reps = scale.timing_reps.max(5);

    let mut table = Table::new(&["Model", "Source", "1st", "2nd", "3rd", "4th", "5th"]);
    for arch in archs {
        // Measured: time each layer's GEMM shape in isolation.
        let mut dims = vec![input_dim];
        dims.extend_from_slice(arch);
        dims.push(1);
        let times: Vec<f64> = dims
            .windows(2)
            .map(|w| time_gemm(w[1], w[0], batch, 1, reps))
            .collect();
        let total: f64 = times.iter().sum();
        let mut row = vec![name(arch), "measured".to_string()];
        row.extend(times.iter().map(|t| format!("{:.0}%", t / total * 100.0)));
        table.row(&row);

        let impacts = predictor.layer_impacts(input_dim, arch, batch);
        let mut row = vec![String::new(), "predicted".to_string()];
        row.extend(impacts.iter().map(|i| format!("{:.0}%", i * 100.0)));
        table.row(&row);
    }
    table.print();
    println!("\npaper (measured on i9-9900K):");
    println!("  400x200x200x100: 35/33/20/10/2   100x50x50x10: 60/21/14/3/2   200x100x100x50: 45/28/17/8/2");
}

fn name(arch: &[usize]) -> String {
    arch.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("x")
}
