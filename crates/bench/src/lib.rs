#![forbid(unsafe_code)]
//! Shared harness for the `repro-*` binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's per-experiment index).
//! This library holds what they share: scaled dataset construction,
//! standard model training, evaluation/timing glue and plain-text table
//! rendering.
//!
//! ## Scaling
//!
//! The paper trains on MSLR-WEB30K (~19k training queries) with forests up
//! to 878 trees and nets up to 1000×500×500×100 — hours of compute. The
//! binaries default to a laptop-scale slice that preserves every *relative*
//! comparison; the `DLR_QUERIES` and `DLR_EPOCH_DIV` environment variables
//! scale the experiments back up:
//!
//! ```text
//! DLR_QUERIES=2000 DLR_EPOCH_DIV=1 cargo run --release -p dlr-bench --bin repro-table8
//! ```

pub mod harness;
pub mod tablefmt;

pub use harness::*;
pub use tablefmt::Table;
