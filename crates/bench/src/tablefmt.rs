//! Minimal aligned-column table printer for the repro binaries.

/// A plain-text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are padded/truncated to the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(cell);
                if c + 1 < cells.len() {
                    line.push_str(&" ".repeat(widths[c].saturating_sub(cell.chars().count()) + 2));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Model", "NDCG@10"]);
        t.row_str(&["Large Forest", "0.5246"]);
        t.row_str(&["Net", "0.5198"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[2].contains("0.5246"));
        // The NDCG column starts at the same offset everywhere.
        let off = lines[0].find("NDCG@10").unwrap();
        assert_eq!(lines[2].find("0.5246").unwrap(), off);
        assert_eq!(lines[3].find("0.5198").unwrap(), off);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["x"]);
        assert!(t.render().contains('x'));
    }
}
