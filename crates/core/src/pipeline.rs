//! The §5–§6 methodology as one object.

use crate::pareto::ParetoPoint;
use crate::scoring::DocumentScorer;
use crate::timing::measure_us_per_doc;
use dlr_data::Dataset;
use dlr_distill::{DistillConfig, DistillSession, DistilledModel};
use dlr_gbdt::{Ensemble, GrowthParams, LambdaMartParams, LambdaMartTrainer};
use dlr_metrics::{evaluate_scores, EvalReport};
use dlr_nn::HybridMlp;
use dlr_predictor::{design_architectures, ArchCandidate, DensePredictor, SearchSpace};
use dlr_prune::{prune_first_layer, PruneConfig};

/// Everything the pipeline needs besides the data.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Distillation schedule and batch settings (Table 9).
    pub distill: DistillConfig,
    /// First-layer pruning method (§5.2).
    pub prune: PruneConfig,
    /// Dense time predictor (calibrated or paper values).
    pub predictor: DensePredictor,
    /// Architecture enumeration space.
    pub search: SearchSpace,
    /// Batch size used when measuring scoring times.
    pub timing_batch: usize,
    /// Timed passes per measurement (median taken).
    pub timing_reps: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            distill: DistillConfig::default(),
            prune: PruneConfig::first_layer_level(0.95),
            predictor: DensePredictor::paper_i9_9900k(),
            search: SearchSpace::default(),
            timing_batch: 1000,
            timing_reps: 5,
        }
    }
}

/// A distilled, pruned, frozen student ready for deployment.
#[derive(Debug, Clone)]
pub struct PrunedStudent {
    /// Hidden sizes of the architecture.
    pub hidden: Vec<usize>,
    /// The fine-tuned network (first layer contains exact zeros).
    pub dense: DistilledModel,
    /// The hybrid sparse/dense scorer frozen from `dense`.
    pub hybrid: HybridMlp,
    /// Achieved first-layer sparsity.
    pub first_layer_sparsity: f64,
}

/// The paper's methodology: design under a budget, distill, prune,
/// evaluate.
#[derive(Debug, Clone, Default)]
pub struct NeuralEngineering {
    /// Pipeline configuration.
    pub cfg: PipelineConfig,
}

impl NeuralEngineering {
    /// Create a pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> NeuralEngineering {
        NeuralEngineering { cfg }
    }

    /// Train a LambdaMART forest of `num_trees` trees × `max_leaves`
    /// leaves (early-stopped on `valid` when provided) — the competitor /
    /// teacher models of §6.1.
    pub fn train_forest(
        train: &Dataset,
        valid: Option<&Dataset>,
        num_trees: usize,
        max_leaves: usize,
        learning_rate: f32,
    ) -> Ensemble {
        let params = LambdaMartParams {
            num_trees,
            learning_rate,
            growth: GrowthParams {
                max_leaves,
                ..Default::default()
            },
            ..Default::default()
        };
        LambdaMartTrainer::new(params).fit(train, valid).0
    }

    /// §5.2 design step: architectures whose *predicted pruned* time fits
    /// `budget_us` µs/doc.
    pub fn design(&self, input_dim: usize, budget_us: f64) -> Vec<ArchCandidate> {
        design_architectures(&self.cfg.predictor, input_dim, budget_us, &self.cfg.search)
    }

    /// §5.1 distillation step: train a student of the given hidden sizes
    /// against `teacher` on `train`.
    pub fn distill(&self, teacher: &Ensemble, train: &Dataset, hidden: &[usize]) -> DistilledModel {
        DistillSession::new(teacher, train, self.cfg.distill.clone()).train_student(hidden)
    }

    /// Full student pipeline: distill, prune the first layer with
    /// fine-tuning, freeze into a hybrid scorer.
    pub fn distill_and_prune(
        &self,
        teacher: &Ensemble,
        train: &Dataset,
        hidden: &[usize],
    ) -> PrunedStudent {
        let session = DistillSession::new(teacher, train, self.cfg.distill.clone());
        let mut model = session.train_student(hidden);
        let outcome = prune_first_layer(&session, &mut model.mlp, &self.cfg.prune);
        let hybrid = HybridMlp::from_mlp(&model.mlp, 0.0);
        PrunedStudent {
            hidden: hidden.to_vec(),
            dense: model,
            hybrid,
            first_layer_sparsity: outcome.final_sparsity,
        }
    }

    /// Measure a scorer on `test`: ranking metrics plus median µs/doc.
    pub fn evaluate(
        &self,
        scorer: &mut dyn DocumentScorer,
        test: &Dataset,
    ) -> (ParetoPoint, EvalReport) {
        let mut scores = vec![0.0f32; test.num_docs()];
        scorer.score_batch(test.features(), &mut scores);
        let report = evaluate_scores(&scores, test);
        let us = measure_us_per_doc(
            scorer,
            test.features(),
            self.cfg.timing_batch,
            self.cfg.timing_reps,
        );
        (
            ParetoPoint {
                name: scorer.name(),
                us_per_doc: us,
                ndcg10: report.mean_ndcg10(),
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{HybridScorer, QuickScorerScorer};
    use dlr_data::{Split, SplitRatios, SyntheticConfig};
    use dlr_distill::DistillHyper;

    fn tiny_cfg() -> PipelineConfig {
        let mut hyper = DistillHyper::msn30k();
        hyper.train_epochs = 15;
        hyper.prune_epochs = 5;
        hyper.finetune_epochs = 3;
        hyper.gamma_steps = vec![10, 13];
        PipelineConfig {
            distill: DistillConfig {
                hyper,
                batch_size: 64,
                ..Default::default()
            },
            prune: PruneConfig::first_layer_level(0.9),
            timing_batch: 128,
            timing_reps: 2,
            ..Default::default()
        }
    }

    fn tiny_data() -> Split {
        let mut cfg = SyntheticConfig::msn30k_like(40);
        cfg.docs_per_query = 20;
        cfg.num_features = 12;
        cfg.num_informative = 5;
        let d = cfg.generate();
        Split::by_query(&d, SplitRatios::PAPER, 5).unwrap()
    }

    #[test]
    fn full_pipeline_produces_a_working_hybrid_model() {
        let split = tiny_data();
        let ne = NeuralEngineering::new(tiny_cfg());
        let teacher =
            NeuralEngineering::train_forest(&split.train, Some(&split.valid), 12, 16, 0.1);
        let student = ne.distill_and_prune(&teacher, &split.train, &[16, 8]);
        assert!(
            (student.first_layer_sparsity - 0.9).abs() < 0.03,
            "sparsity {}",
            student.first_layer_sparsity
        );
        // The hybrid scorer evaluates end to end.
        let mut scorer = HybridScorer::new(
            student.hybrid.clone(),
            student.dense.normalizer.clone(),
            "student",
        );
        let (point, report) = ne.evaluate(&mut scorer, &split.test);
        assert!(point.us_per_doc > 0.0);
        assert!((0.0..=1.0).contains(&point.ndcg10));
        assert_eq!(report.ndcg10.len(), split.test.num_queries());
        // Student quality should be meaningfully above a broken model
        // (random scoring on this data sits near the degenerate baseline).
        assert!(point.ndcg10 > 0.5, "student NDCG@10 {}", point.ndcg10);
    }

    #[test]
    fn design_respects_budget_and_orders_by_expressiveness() {
        let ne = NeuralEngineering::new(tiny_cfg());
        let candidates = ne.design(136, 1.0);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(c.pruned_us <= 1.0);
        }
        for w in candidates.windows(2) {
            assert!(w[0].dense_us >= w[1].dense_us);
        }
    }

    #[test]
    fn evaluate_quickscorer_wrapper() {
        let split = tiny_data();
        let ne = NeuralEngineering::new(tiny_cfg());
        let forest = NeuralEngineering::train_forest(&split.train, Some(&split.valid), 10, 8, 0.1);
        let mut qs = QuickScorerScorer::compile(&forest, "forest 10x8");
        let (point, _) = ne.evaluate(&mut qs, &split.test);
        assert_eq!(point.name, "forest 10x8");
        assert!(point.us_per_doc > 0.0);
        assert!(point.ndcg10 > 0.5, "forest NDCG@10 {}", point.ndcg10);
    }
}
