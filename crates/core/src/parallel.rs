//! Parallel batch-scoring drivers: the three hot kernels of the paper —
//! blocked GEMM (§4.1), LIBXSMM-style SpMM (§4.3) and BWQS (§2.2) —
//! dispatched over a [`WorkPool`](crate::pool::WorkPool).
//!
//! Each driver tiles the **output** into disjoint row/document ranges and
//! runs the corresponding serial range kernel on each chunk:
//!
//! * **GEMM** — chunks are whole `m_c`-row panels of A on the same grid
//!   the serial kernel blocks on; B̃ is packed once ([`PrepackedB`]) and
//!   shared read-only by every worker, each worker reuses its own Ã
//!   packing buffer.
//! * **SpMM** — chunks are CSR row ranges; every row's accumulators live
//!   on the worker's stack and store to its own C row exactly once.
//! * **BWQS** — chunks are document ranges; each block's condition lists
//!   and leaf tables are shared read-only, each worker reuses its own
//!   leaf-index scratch.
//!
//! Because chunks write disjoint output ranges and each output element's
//! floating-point accumulation order inside a chunk is exactly the serial
//! kernel's order, every driver is **bit-identical** to its serial
//! counterpart — `tests/parallel_equivalence.rs` asserts this over
//! proptest-generated shapes.

use crate::pool::{PoolError, WorkPool};
use dlr_dense::{gemm_rows_with, GotoParams, PrepackedB};
use dlr_quickscorer::blockwise::BlockwiseQuickScorer;
use dlr_sparse::{spmm_xsmm_rows, CsrMatrix, PackedB};

/// Rows (or documents) per chunk: aim for a few chunks per worker so a
/// straggler does not serialize the tail, without shattering the batch
/// into cache-hostile slivers.
fn rows_per_chunk(total_rows: usize, threads: usize) -> usize {
    total_rows.div_ceil(threads.max(1) * 4).max(1)
}

/// `C = A·B` over the pool with B packed ahead of time. `a` is the full
/// row-major `m×k` operand; `c` (`m×n`) is overwritten. Bit-identical to
/// [`dlr_dense::gemm_with`] under the packing's `GotoParams`.
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics when slice lengths disagree with `(m, pb.k(), pb.n())`.
pub fn par_gemm(
    pool: &WorkPool,
    m: usize,
    a: &[f32],
    pb: &PrepackedB,
    c: &mut [f32],
) -> Result<(), PoolError> {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        c.fill(0.0);
        return Ok(());
    }
    // Chunk on the serial kernel's own m_c grid: every chunk is one whole
    // A row-panel, so packing and accumulation match the serial walk.
    let mc = pb.effective_mc(m);
    let mut apacks: Vec<Vec<f32>> = Vec::new();
    pool.run_chunks_with(
        c,
        mc * n,
        &mut apacks,
        Vec::new,
        |_chunk, start, c_rows, apack| {
            gemm_rows_with(m, start / n, a, pb, c_rows, apack);
        },
    )
}

/// [`par_gemm`] packing `b` (`k×n`, row-major) on the fly — the one-shot
/// entry point; for repeated products against the same B, pack once with
/// [`PrepackedB::pack`] and call [`par_gemm`].
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics when slice lengths disagree with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm_into(
    pool: &WorkPool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    params: GotoParams,
) -> Result<(), PoolError> {
    let pb = PrepackedB::pack(b, k, n, params);
    par_gemm(pool, m, a, &pb, c)
}

/// `C = A·B` over the pool with sparse CSR `A` and pre-packed dense `B`.
/// `c` (`a.rows()×pb.n()`) is overwritten. Bit-identical to
/// [`dlr_sparse::spmm_xsmm_packed`].
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics when shapes disagree.
pub fn par_spmm(
    pool: &WorkPool,
    a: &CsrMatrix,
    pb: &PackedB,
    c: &mut [f32],
) -> Result<(), PoolError> {
    assert_eq!(a.cols(), pb.k(), "A.cols must equal B rows");
    let n = pb.n();
    assert_eq!(c.len(), a.rows() * n, "C must be m×n");
    if a.rows() == 0 {
        return Ok(());
    }
    if n == 0 {
        return Ok(());
    }
    let rows = rows_per_chunk(a.rows(), pool.threads());
    pool.run_chunks(c, rows * n, |_chunk, start, c_rows| {
        spmm_xsmm_rows(a, pb, start / n, c_rows);
    })
}

/// Score a row-major batch (`out.len() × num_features`) with BWQS over
/// the pool. Bit-identical to [`BlockwiseQuickScorer::score_batch`].
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics on shape mismatches.
pub fn par_bwqs(
    pool: &WorkPool,
    bw: &BlockwiseQuickScorer,
    features: &[f32],
    out: &mut [f32],
) -> Result<(), PoolError> {
    let nf = bw.num_features();
    assert_eq!(features.len(), out.len() * nf, "batch shape mismatch");
    if out.is_empty() {
        return Ok(());
    }
    let docs = rows_per_chunk(out.len(), pool.threads());
    let mut bufs: Vec<Vec<u64>> = Vec::new();
    pool.run_chunks_with(
        out,
        docs,
        &mut bufs,
        Vec::new,
        |_chunk, start, out_chunk, buf| {
            let rows = &features[start * nf..(start + out_chunk.len()) * nf];
            bw.score_chunk_with(rows, out_chunk, buf);
        },
    )
}

/// [`par_gemm`] recording a `kernel-gemm` span into `obs` (when given)
/// for the duration of the product. A `None` obs is a branch-free
/// passthrough, so callers can thread an optional plane unconditionally.
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics when slice lengths disagree with `(m, pb.k(), pb.n())`.
pub fn par_gemm_obs(
    pool: &WorkPool,
    m: usize,
    a: &[f32],
    pb: &PrepackedB,
    c: &mut [f32],
    obs: Option<&dlr_obs::Obs>,
) -> Result<(), PoolError> {
    let _scope = obs.map(|o| o.scope(dlr_obs::Stage::KernelGemm));
    par_gemm(pool, m, a, pb, c)
}

/// [`par_spmm`] recording a `kernel-sdmm` span into `obs` (when given).
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics when shapes disagree.
pub fn par_spmm_obs(
    pool: &WorkPool,
    a: &CsrMatrix,
    pb: &PackedB,
    c: &mut [f32],
    obs: Option<&dlr_obs::Obs>,
) -> Result<(), PoolError> {
    let _scope = obs.map(|o| o.scope(dlr_obs::Stage::KernelSdmm));
    par_spmm(pool, a, pb, c)
}

/// [`par_bwqs`] recording a `kernel-vqs` span into `obs` (when given).
///
/// # Errors
/// [`PoolError::WorkerPanicked`] if a worker panicked.
///
/// # Panics
/// Panics on shape mismatches.
pub fn par_bwqs_obs(
    pool: &WorkPool,
    bw: &BlockwiseQuickScorer,
    features: &[f32],
    out: &mut [f32],
    obs: Option<&dlr_obs::Obs>,
) -> Result<(), PoolError> {
    let _scope = obs.map(|o| o.scope(dlr_obs::Stage::KernelVqs));
    par_bwqs(pool, bw, features, out)
}

/// Median wall-clock seconds of `f` over `reps` runs (after one warm-up).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Measured serial-vs-parallel timing of one kernel at a thread count —
/// the raw material for fitting the Amdahl serial fraction
/// ([`dlr_predictor::calibrate::fit_serial_fraction`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSample {
    /// Workers used for the parallel run (including the caller).
    pub threads: usize,
    /// Median serial seconds per call.
    pub serial_secs: f64,
    /// Median parallel seconds per call.
    pub parallel_secs: f64,
}

impl SpeedupSample {
    /// Observed speedup (`serial / parallel`).
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }

    /// Amdahl serial fraction fitted from this sample, clamped to [0, 1].
    pub fn serial_fraction(&self) -> f64 {
        dlr_predictor::calibrate::fit_serial_fraction(
            self.serial_secs,
            self.parallel_secs,
            self.threads,
        )
    }
}

/// Time the blocked GEMM serially and through a `threads`-worker pool on
/// an `m×k · k×n` problem — the measurement half of the thread-aware
/// Eq. 3 calibration (the fitting half is
/// [`dlr_predictor::calibrate::fit_serial_fraction`]).
///
/// # Errors
/// [`PoolError`] when a pool worker panics during the parallel timing
/// passes (the serial measurement cannot fail).
pub fn measure_gemm_speedup(
    threads: usize,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
) -> Result<SpeedupSample, PoolError> {
    let a = dlr_dense::Matrix::random(m, k, 1.0, 17);
    let b = dlr_dense::Matrix::random(k, n, 1.0, 18);
    let mut c = vec![0.0f32; m * n];
    let params = GotoParams::default();

    let mut ws = dlr_dense::GemmWorkspace::default();
    let serial_secs = median_secs(reps, || {
        dlr_dense::gemm_with(m, k, n, a.as_slice(), b.as_slice(), &mut c, params, &mut ws);
    });

    let pool = WorkPool::new(threads);
    let pb = PrepackedB::pack(b.as_slice(), k, n, params);
    let mut worker_err = None;
    let parallel_secs = median_secs(reps, || {
        if let Err(e) = par_gemm(&pool, m, a.as_slice(), &pb, &mut c) {
            worker_err = Some(e);
        }
    });
    if let Some(e) = worker_err {
        return Err(e);
    }

    Ok(SpeedupSample {
        threads: pool.threads(),
        serial_secs,
        parallel_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_dense::{gemm_with, GemmWorkspace, Matrix};
    use dlr_gbdt::Ensemble;
    use dlr_sparse::{spmm_xsmm_packed, SpmmWorkspace};

    fn sparse_matrix(m: usize, k: usize, keep_every: usize, seed: u64) -> CsrMatrix {
        let mut d = Matrix::random(m, k, 1.0, seed);
        for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
            if idx % keep_every != 0 {
                *v = 0.0;
            }
        }
        CsrMatrix::from_dense(&d, 0.0)
    }

    fn tiny_ensemble(trees: usize, nf: usize, seed: u64) -> Ensemble {
        use dlr_gbdt::tree::leaf_ref;
        use dlr_gbdt::RegressionTree;
        let mut e = Ensemble::new(nf, 0.25);
        for t in 0..trees {
            let s = seed + t as u64;
            let f0 = (s % nf as u64) as u32;
            let f1 = ((s + 1) % nf as u64) as u32;
            // Three internal nodes, four leaves:
            //        0
            //       / \
            //      1   2
            //     /\   /\
            //    L0 L1 L2 L3
            let tree = RegressionTree::from_raw(
                vec![f0, f1, f1],
                vec![0.3 + (s % 5) as f32 * 0.1, 0.1, 0.7],
                vec![1, leaf_ref(0), leaf_ref(2)],
                vec![2, leaf_ref(1), leaf_ref(3)],
                vec![0.1 * s as f32, -0.2, 0.3, 0.05 * s as f32],
            );
            e.push(tree);
        }
        e
    }

    #[test]
    fn par_gemm_is_bit_identical_to_serial() {
        let pool = WorkPool::new(4);
        for &(m, k, n) in &[(1, 1, 1), (37, 29, 41), (300, 64, 77), (8, 220, 100)] {
            let a = Matrix::random(m, k, 1.0, 3);
            let b = Matrix::random(k, n, 1.0, 4);
            let mut expect = vec![0.0f32; m * n];
            let mut ws = GemmWorkspace::default();
            gemm_with(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                &mut expect,
                GotoParams::default(),
                &mut ws,
            );
            let mut got = vec![f32::NAN; m * n];
            par_gemm_into(
                &pool,
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                &mut got,
                GotoParams::default(),
            )
            .unwrap();
            assert_eq!(expect, got, "({m},{k},{n})");
        }
    }

    #[test]
    fn par_spmm_is_bit_identical_to_serial() {
        let pool = WorkPool::new(3);
        for &(m, k, n, keep) in &[(1, 4, 3, 2), (23, 17, 11, 3), (120, 64, 30, 10)] {
            let a = sparse_matrix(m, k, keep, 9);
            let b = Matrix::random(k, n, 1.0, 10);
            let pb = PackedB::pack(b.as_slice(), k, n);
            let mut expect = vec![0.0f32; m * n];
            spmm_xsmm_packed(&a, &pb, &mut expect, &mut SpmmWorkspace::default());
            let mut got = vec![f32::NAN; m * n];
            par_spmm(&pool, &a, &pb, &mut got).unwrap();
            assert_eq!(expect, got, "({m},{k},{n})");
        }
    }

    #[test]
    fn par_bwqs_is_bit_identical_to_serial() {
        let pool = WorkPool::new(4);
        let e = tiny_ensemble(23, 5, 77);
        let bw = BlockwiseQuickScorer::compile(&e, 7).unwrap();
        let docs: Vec<f32> = (0..61 * 5).map(|i| (i % 13) as f32 * 0.1).collect();
        let mut expect = vec![0.0f32; 61];
        bw.score_batch(&docs, &mut expect);
        let mut got = vec![f32::NAN; 61];
        par_bwqs(&pool, &bw, &docs, &mut got).unwrap();
        assert_eq!(expect, got);
    }

    #[test]
    fn empty_batches_are_noops() {
        let pool = WorkPool::new(2);
        par_gemm_into(
            &pool,
            0,
            3,
            4,
            &[],
            &[0.0; 12],
            &mut [],
            GotoParams::default(),
        )
        .unwrap();
        let a = sparse_matrix(3, 4, 2, 1);
        let b = Matrix::random(4, 0, 1.0, 2);
        let pb = PackedB::pack(b.as_slice(), 4, 0);
        par_spmm(&pool, &a, &pb, &mut []).unwrap();
        let e = tiny_ensemble(3, 2, 5);
        let bw = BlockwiseQuickScorer::compile(&e, 2).unwrap();
        par_bwqs(&pool, &bw, &[], &mut []).unwrap();
    }

    #[test]
    fn zero_k_gemm_zeroes_c() {
        let pool = WorkPool::new(2);
        let mut c = vec![5.0f32; 6];
        par_gemm_into(&pool, 2, 0, 3, &[], &[], &mut c, GotoParams::default()).unwrap();
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn speedup_sample_fits_sane_serial_fraction() {
        let s = SpeedupSample {
            threads: 4,
            serial_secs: 1.0,
            parallel_secs: 0.4, // 2.5× on 4 threads → s = 0.2
        };
        assert!((s.speedup() - 2.5).abs() < 1e-12);
        let frac = s.serial_fraction();
        assert!((frac - 0.2).abs() < 1e-9, "got {frac}");
    }

    #[test]
    fn measure_gemm_speedup_produces_positive_times() {
        let s = measure_gemm_speedup(2, 32, 16, 32, 2).expect("no worker panics");
        assert_eq!(s.threads, 2);
        assert!(s.serial_secs > 0.0);
        assert!(s.parallel_secs > 0.0);
        let frac = s.serial_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }
}
