//! Two-stage scoring cascades (§7 future work: "early exiting").
//!
//! The ranking-pipeline form of early exit: a cheap first-stage model
//! scores every candidate, and only the `rescore_top` most promising
//! documents per query pay for the expensive second-stage model. Documents
//! that exit at stage one keep their cheap scores, offset so every
//! rescored document ranks above every exited one (the standard telescoped
//! cascade). Quality approaches the expensive model's at a fraction of its
//! cost whenever the cheap model's top-k recall is good — exactly the
//! trade the paper's future work targets.

use crate::scoring::DocumentScorer;
use crate::serve::ScoreError;

/// A two-stage cascade over raw feature rows.
pub struct CascadeScorer<A, B> {
    /// Cheap stage-one scorer.
    pub stage1: A,
    /// Expensive stage-two scorer.
    pub stage2: B,
    /// Documents per batch promoted to stage two.
    pub rescore_top: usize,
    label: String,
    scratch_scores: Vec<f32>,
    scratch_rows: Vec<f32>,
    scratch_out: Vec<f32>,
}

impl<A: DocumentScorer, B: DocumentScorer> CascadeScorer<A, B> {
    /// Build a cascade promoting `rescore_top` documents per scored batch
    /// (callers score one query per batch for the paper's use case).
    /// `rescore_top` larger than a batch is clamped to the batch size.
    ///
    /// # Errors
    /// [`ScoreError::FeatureSpaceMismatch`] when the stages disagree on
    /// feature count.
    pub fn try_new(
        stage1: A,
        stage2: B,
        rescore_top: usize,
        label: impl Into<String>,
    ) -> Result<Self, ScoreError> {
        if stage1.num_features() != stage2.num_features() {
            return Err(ScoreError::FeatureSpaceMismatch {
                first: stage1.num_features(),
                second: stage2.num_features(),
            });
        }
        Ok(CascadeScorer {
            stage1,
            stage2,
            rescore_top,
            label: label.into(),
            scratch_scores: Vec::new(),
            scratch_rows: Vec::new(),
            scratch_out: Vec::new(),
        })
    }

    /// [`try_new`](Self::try_new), panicking on feature-space mismatch.
    ///
    /// # Panics
    /// Panics when the stages disagree on feature count.
    pub fn new(stage1: A, stage2: B, rescore_top: usize, label: impl Into<String>) -> Self {
        Self::try_new(stage1, stage2, rescore_top, label)
            .unwrap_or_else(|e| panic!("cascade stages must share a feature space: {e}"))
    }
}

impl<A: DocumentScorer, B: DocumentScorer> DocumentScorer for CascadeScorer<A, B> {
    fn num_features(&self) -> usize {
        self.stage1.num_features()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let f = self.num_features();
        let n = out.len();
        if n == 0 {
            // An empty batch has nothing to score at either stage.
            return;
        }
        // Stage 1: everyone.
        self.stage1.score_batch(rows, out);
        // Clamp the promotion depth to the batch.
        let k = self.rescore_top.min(n);
        if k == 0 {
            return;
        }
        // Select the top-k stage-1 documents.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            out[b]
                .partial_cmp(&out[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let promoted = &order[..k];
        // Stage 2 on the promoted rows only.
        self.scratch_rows.clear();
        for &d in promoted {
            self.scratch_rows
                .extend_from_slice(&rows[d * f..(d + 1) * f]);
        }
        self.scratch_out.resize(k, 0.0);
        self.stage2
            .score_batch(&self.scratch_rows, &mut self.scratch_out[..k]);
        // Telescope: every promoted doc outranks every exited doc, with
        // stage-2 order inside the promoted set and stage-1 order outside.
        self.scratch_scores.clear();
        self.scratch_scores.extend_from_slice(out);
        let exited_max = order[k..]
            .iter()
            .map(|&d| self.scratch_scores[d])
            .fold(f32::NEG_INFINITY, f32::max);
        let s2_min = self.scratch_out[..k]
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let offset = if exited_max.is_finite() {
            (exited_max - s2_min) + 1.0
        } else {
            0.0
        };
        for (rank, &d) in promoted.iter().enumerate() {
            out[d] = self.scratch_out[rank] + offset;
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scorer computing a fixed linear function, with a call counter.
    struct Counting {
        weights: Vec<f32>,
        calls: std::rc::Rc<std::cell::Cell<usize>>,
    }

    impl DocumentScorer for Counting {
        fn num_features(&self) -> usize {
            self.weights.len()
        }

        fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
            self.calls.set(self.calls.get() + out.len());
            for (row, o) in rows.chunks_exact(self.weights.len()).zip(out.iter_mut()) {
                *o = row.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
            }
        }

        fn name(&self) -> String {
            "counting".into()
        }
    }

    fn counters() -> (
        Counting,
        Counting,
        std::rc::Rc<std::cell::Cell<usize>>,
        std::rc::Rc<std::cell::Cell<usize>>,
    ) {
        let c1 = std::rc::Rc::new(std::cell::Cell::new(0));
        let c2 = std::rc::Rc::new(std::cell::Cell::new(0));
        // Stage 1 is a noisy proxy of stage 2 (same weights, coarser).
        let cheap = Counting {
            weights: vec![1.0, 0.0],
            calls: c1.clone(),
        };
        let expensive = Counting {
            weights: vec![1.0, 0.1],
            calls: c2.clone(),
        };
        (cheap, expensive, c1, c2)
    }

    #[test]
    fn stage2_only_sees_top_k() {
        let (cheap, expensive, c1, c2) = counters();
        let mut cascade = CascadeScorer::new(cheap, expensive, 3, "cascade");
        let rows: Vec<f32> = (0..10).flat_map(|i| [i as f32, (10 - i) as f32]).collect();
        let mut out = vec![0.0f32; 10];
        cascade.score_batch(&rows, &mut out);
        assert_eq!(c1.get(), 10);
        assert_eq!(c2.get(), 3);
    }

    #[test]
    fn promoted_docs_outrank_exited_docs() {
        let (cheap, expensive, _, _) = counters();
        let mut cascade = CascadeScorer::new(cheap, expensive, 2, "cascade");
        let rows: Vec<f32> = (0..6).flat_map(|i| [i as f32, 0.0]).collect();
        let mut out = vec![0.0f32; 6];
        cascade.score_batch(&rows, &mut out);
        // Stage-1 top-2 are docs 5 and 4; their final scores beat all others.
        let min_promoted = out[4].min(out[5]);
        for (d, &score) in out.iter().enumerate().take(4) {
            assert!(
                score < min_promoted,
                "doc {d} score {score} >= {min_promoted}"
            );
        }
    }

    #[test]
    fn within_promoted_order_follows_stage2() {
        // Stage 2 reverses stage 1's opinion inside the top set.
        let c = std::rc::Rc::new(std::cell::Cell::new(0));
        let cheap = Counting {
            weights: vec![1.0, 0.0],
            calls: c.clone(),
        };
        let expensive = Counting {
            weights: vec![-1.0, 0.0],
            calls: c.clone(),
        };
        let mut cascade = CascadeScorer::new(cheap, expensive, 2, "cascade");
        let rows = [3.0f32, 0.0, 2.0, 0.0, 1.0, 0.0]; // docs: 3, 2, 1
        let mut out = vec![0.0f32; 3];
        cascade.score_batch(&rows, &mut out);
        // Promoted: docs 0 and 1; stage 2 prefers the smaller value → doc 1.
        assert!(out[1] > out[0]);
        assert!(out[0] > out[2]);
    }

    #[test]
    fn k_of_zero_is_stage1_only() {
        let (cheap, expensive, _, c2) = counters();
        let mut cascade = CascadeScorer::new(cheap, expensive, 0, "cascade");
        let rows = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = vec![0.0f32; 2];
        cascade.score_batch(&rows, &mut out);
        assert_eq!(c2.get(), 0);
        assert_eq!(out, vec![1.0, 3.0]);
    }

    #[test]
    fn k_at_least_n_degenerates_to_stage2_ranking() {
        let (cheap, expensive, _, _) = counters();
        let mut cascade = CascadeScorer::new(cheap, expensive, 100, "cascade");
        let rows: Vec<f32> = (0..5).flat_map(|i| [i as f32, (5 - i) as f32]).collect();
        let mut out = vec![0.0f32; 5];
        cascade.score_batch(&rows, &mut out);
        // Ranking must equal the expensive model's ranking.
        let mut expected = vec![0.0f32; 5];
        let mut exp = Counting {
            weights: vec![1.0, 0.1],
            calls: std::rc::Rc::new(std::cell::Cell::new(0)),
        };
        exp.score_batch(&rows, &mut expected);
        let rank = |s: &[f32]| {
            let mut o: Vec<usize> = (0..s.len()).collect();
            o.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).unwrap());
            o
        };
        assert_eq!(rank(&out), rank(&expected));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (cheap, expensive, c1, c2) = counters();
        let mut cascade = CascadeScorer::new(cheap, expensive, 3, "cascade");
        let mut out: [f32; 0] = [];
        cascade.score_batch(&[], &mut out);
        assert_eq!(c1.get(), 0);
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn try_new_reports_typed_mismatch() {
        let c = std::rc::Rc::new(std::cell::Cell::new(0));
        let a = Counting {
            weights: vec![1.0],
            calls: c.clone(),
        };
        let b = Counting {
            weights: vec![1.0, 2.0],
            calls: c,
        };
        match CascadeScorer::try_new(a, b, 1, "bad") {
            Err(crate::serve::ScoreError::FeatureSpaceMismatch { first, second }) => {
                assert_eq!((first, second), (1, 2));
            }
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("mismatched stages must be rejected"),
        }
    }

    #[test]
    #[should_panic(expected = "share a feature space")]
    fn feature_mismatch_rejected() {
        let c = std::rc::Rc::new(std::cell::Cell::new(0));
        let a = Counting {
            weights: vec![1.0],
            calls: c.clone(),
        };
        let b = Counting {
            weights: vec![1.0, 2.0],
            calls: c,
        };
        CascadeScorer::new(a, b, 1, "bad");
    }
}
