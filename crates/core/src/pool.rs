//! A dependency-free chunked work-pool for batch scoring.
//!
//! The container this library targets has no registry access, so no rayon:
//! this is a minimal, purpose-built pool for the one parallel shape the
//! scoring engine needs — *run the same kernel over `chunks` disjoint
//! pieces of one batch, then return*. Design points:
//!
//! * **Persistent workers.** `threads - 1` OS threads are spawned once at
//!   construction and parked on a condvar between jobs; the calling thread
//!   is the remaining worker. Dispatching a job costs one mutex round-trip
//!   and a wake, not a `thread::spawn`.
//! * **Channel-free job slots.** A job is published by bumping a
//!   generation counter under a mutex; workers compare generations instead
//!   of draining a queue. There is exactly one job in flight at a time, so
//!   no queue, no channel, no allocation per dispatch.
//! * **Deterministic chunk → worker assignment.** Chunk `c` is always
//!   executed by worker `c % threads` (the caller is worker 0). Because
//!   chunks own disjoint output ranges and each chunk runs the identical
//!   serial kernel code, parallel output is **bit-identical** to a serial
//!   run of the same chunks in any order — the property the equivalence
//!   tests assert.
//! * **Panic containment.** A panicking worker marks the job and the error
//!   surfaces as [`PoolError::WorkerPanicked`] from [`WorkPool::run`]; the
//!   pool remains usable. A panic on the *calling* thread is resumed after
//!   all workers finish, so the borrowed closure never dangles.
//!
//! The `unsafe` here is confined to two places with the same
//! justification: the caller of [`WorkPool::run`] blocks until every
//! worker has finished the job, so the type-erased closure pointer handed
//! to the workers never outlives the closure itself; and
//! [`WorkPool::run_chunks`] hands each chunk index a disjoint sub-slice of
//! one output buffer, so no two workers alias.

use crate::sync::thread::JoinHandle;
use crate::sync::{thread, Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, PoisonError};

/// Typed failures of a pool dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// At least one worker panicked while executing its chunks. The
    /// panicking chunk's output range is unspecified; all other chunks
    /// completed normally and the pool remains usable.
    WorkerPanicked,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked => write!(f, "a work-pool worker panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One published job: a type-erased `Fn(usize)` plus the chunk count and
/// the stride of the round-robin assignment.
#[derive(Clone, Copy)]
struct Job {
    /// Monomorphized trampoline that downcasts `data` and calls it.
    call: unsafe fn(*const (), usize),
    /// Borrowed closure, valid until `remaining` hits zero.
    data: *const (),
    chunks: usize,
    stride: usize,
}

// SAFETY: `data` points at a closure that is `Sync` (enforced by the
// bound on `run`) and outlives the job (the publisher blocks until
// `remaining == 0` before returning).
unsafe impl Send for Job {}

/// Trampoline instantiated per closure type by [`WorkPool::run`].
///
/// # Safety
/// `data` must point at a live `F`.
unsafe fn call_chunk<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    (*(data as *const F))(chunk);
}

/// The mutex-guarded job slot workers park on.
struct Slot {
    /// Bumped once per dispatched job; workers run a job exactly once by
    /// comparing against the last generation they executed.
    generation: u64,
    job: Option<Job>,
    /// Spawned workers still executing the current job.
    remaining: usize,
    /// Set by any worker that panicked during the current job.
    panicked: bool,
    /// Tells workers to exit (set once, by `Drop`).
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers wait here for a new generation (or shutdown).
    work_cv: Condvar,
    /// The publisher waits here for `remaining == 0`.
    done_cv: Condvar,
}

/// Lock the job slot, recovering from poison. A poisoned slot is still
/// consistent: every write to it is a single field store, and a worker
/// panic is already reported through `Slot::panicked`, so recovering the
/// guard is strictly better than propagating a second panic out of the
/// scoring hot path.
fn lock_slot(shared: &Shared) -> MutexGuard<'_, Slot> {
    shared.slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A reusable pool of `threads` workers (including the calling thread).
/// See the module docs for the design.
pub struct WorkPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkPool {
    /// A pool of `threads` total workers. `threads <= 1` yields a pool
    /// that runs every job inline on the calling thread (still useful: the
    /// scoring engines take a `&WorkPool` unconditionally).
    pub fn new(threads: usize) -> WorkPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for index in 1..threads {
            let shared = Arc::clone(&shared);
            let spawned = thread::Builder::new()
                .name(format!("dlr-pool-{index}"))
                .spawn(move || worker_loop(&shared, index));
            match spawned {
                Ok(handle) => handles.push(handle),
                // Thread exhaustion degrades to a smaller (still correct)
                // pool instead of aborting construction mid-serve.
                Err(_) => break,
            }
        }
        let threads = handles.len() + 1;
        WorkPool {
            shared,
            handles,
            threads,
        }
    }

    /// A pool sized to the host (`std::thread::available_parallelism`).
    pub fn with_host_parallelism() -> WorkPool {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkPool::new(threads)
    }

    /// Total workers, including the calling thread.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(0..chunks)` across the pool. Chunk `c` runs on worker
    /// `c % threads()`; the call returns after **all** chunks finish.
    ///
    /// # Errors
    /// [`PoolError::WorkerPanicked`] when a spawned worker panicked; the
    /// pool stays usable. A panic on the calling thread's own chunks is
    /// resumed (after the workers drain) rather than converted.
    pub fn run<F: Fn(usize) + Sync>(&self, chunks: usize, f: F) -> Result<(), PoolError> {
        if chunks == 0 {
            return Ok(());
        }
        if self.handles.is_empty() || chunks == 1 {
            for c in 0..chunks {
                f(c);
            }
            return Ok(());
        }
        let stride = self.threads;
        let job = Job {
            call: call_chunk::<F>,
            data: &f as *const F as *const (),
            chunks,
            stride,
        };
        {
            let mut slot = lock_slot(&self.shared);
            debug_assert_eq!(slot.remaining, 0, "one job in flight at a time");
            slot.generation = slot.generation.wrapping_add(1);
            slot.job = Some(job);
            slot.remaining = self.handles.len();
            slot.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The caller is worker 0: chunks 0, stride, 2·stride, …
        let own = catch_unwind(AssertUnwindSafe(|| {
            let mut c = 0;
            while c < chunks {
                f(c);
                c += stride;
            }
        }));
        // Always drain the workers before returning/unwinding: they hold a
        // raw pointer into `f`, which dies with this frame.
        let worker_panicked = {
            let mut slot = lock_slot(&self.shared);
            while slot.remaining != 0 {
                slot = self
                    .shared
                    .done_cv
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            slot.job = None;
            slot.panicked
        };
        match own {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => Err(PoolError::WorkerPanicked),
            Ok(()) => Ok(()),
        }
    }

    /// Split `out` into `ceil(out.len() / chunk_len)` consecutive chunks
    /// and run `f(chunk_index, start_element, chunk_slice)` for each
    /// across the pool. The chunk slices are disjoint, so workers never
    /// alias; assignment and determinism follow [`WorkPool::run`].
    ///
    /// # Errors
    /// See [`WorkPool::run`].
    ///
    /// # Panics
    /// Panics when `chunk_len == 0` and `out` is non-empty.
    pub fn run_chunks<T, F>(&self, out: &mut [T], chunk_len: usize, f: F) -> Result<(), PoolError>
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        if out.is_empty() {
            return Ok(());
        }
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = out.len();
        let chunks = len.div_ceil(chunk_len);
        let base = SendPtr(out.as_mut_ptr());
        self.run(chunks, move |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `c` owns exactly `[start, end)`; ranges of
            // distinct chunks are disjoint and within `out`, and `out` is
            // mutably borrowed for the whole call.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(c, start, slice);
        })
    }

    /// [`run_chunks`](Self::run_chunks) with an additional per-worker
    /// scratch value: `scratch` is grown to `threads()` entries with
    /// `init`, and chunk `c` borrows entry `c % threads()` mutably —
    /// sound because that is precisely the worker executing it. Kernels
    /// use this to reuse packing buffers across chunks without allocating
    /// inside the hot loop.
    ///
    /// # Errors
    /// See [`WorkPool::run`].
    ///
    /// # Panics
    /// Panics when `chunk_len == 0` and `out` is non-empty.
    pub fn run_chunks_with<T, S, F>(
        &self,
        out: &mut [T],
        chunk_len: usize,
        scratch: &mut Vec<S>,
        init: impl FnMut() -> S,
        f: F,
    ) -> Result<(), PoolError>
    where
        T: Send,
        S: Send,
        F: Fn(usize, usize, &mut [T], &mut S) + Sync,
    {
        scratch.resize_with(self.threads, init);
        let sbase = SendPtr(scratch.as_mut_ptr());
        let stride = self.threads;
        self.run_chunks(out, chunk_len, move |c, start, slice| {
            // SAFETY: worker `c % stride` is the only executor of chunks
            // with this residue, so entry `c % stride` is never borrowed
            // by two workers at once; `scratch` outlives the dispatch.
            let s = unsafe { &mut *sbase.get().add(c % stride) };
            f(c, start, slice, s);
        })
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut slot = lock_slot(&self.shared);
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind would surface
            // here; join errors are ignored so Drop never panics.
            let _ = h.join();
        }
    }
}

/// Raw pointer wrapper the chunk closures capture; Send/Sync because every
/// access is to a provably disjoint region (see the call sites). Access
/// goes through [`SendPtr::get`] so 2021-edition closures capture the
/// `Sync` wrapper, not the raw pointer field.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: a SendPtr crosses threads only inside pool dispatches whose
// callers hand each worker a provably disjoint region (see the call
// sites), so moving the pointer to another thread cannot create aliasing.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to SendPtr only ever read the pointer value
// via `get`; dereferencing it is a separate `unsafe` audited at each call
// site against the same disjointness argument as `Send`.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = lock_slot(shared);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    if let Some(job) = slot.job {
                        seen = slot.generation;
                        break job;
                    }
                    // A generation bump always publishes a job; if the
                    // invariant ever broke, waiting again is safe (the
                    // publisher times nothing on this worker until it has
                    // taken a job).
                    debug_assert!(slot.job.is_some(), "generation advanced without a job");
                }
                slot = shared
                    .work_cv
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut c = index;
            while c < job.chunks {
                // SAFETY: the publisher keeps the closure alive until
                // `remaining == 0`, which this worker contributes to only
                // after finishing.
                unsafe { (job.call)(job.data, c) };
                c += job.stride;
            }
        }));
        let mut slot = lock_slot(shared);
        if outcome.is_err() {
            slot.panicked = true;
        }
        slot.remaining = slot.remaining.saturating_sub(1);
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = WorkPool::new(4);
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        pool.run(37, |c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        for (c, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c}");
        }
    }

    #[test]
    fn run_chunks_covers_the_buffer_disjointly() {
        let pool = WorkPool::new(3);
        let mut out = vec![0u32; 101];
        pool.run_chunks(&mut out, 7, |c, start, slice| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = (c * 1000 + start + i) as u32;
            }
        })
        .unwrap();
        for (i, &v) in out.iter().enumerate() {
            let c = i / 7;
            assert_eq!(v as usize, c * 1000 + i);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0u8; 10];
        pool.run_chunks(&mut out, 3, |_, _, s| s.fill(1)).unwrap();
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn empty_and_zero_chunk_jobs_are_noops() {
        let pool = WorkPool::new(2);
        pool.run(0, |_| panic!("must not run")).unwrap();
        let mut empty: [u8; 0] = [];
        pool.run_chunks(&mut empty, 4, |_, _, _| panic!("must not run"))
            .unwrap();
    }

    #[test]
    fn per_worker_scratch_is_reused_not_shared() {
        let pool = WorkPool::new(4);
        let mut out = vec![0usize; 64];
        let mut scratch: Vec<Vec<usize>> = Vec::new();
        pool.run_chunks_with(
            &mut out,
            1,
            &mut scratch,
            Vec::new,
            |c, _, slice, s: &mut Vec<usize>| {
                s.push(c);
                slice[0] = c;
            },
        )
        .unwrap();
        assert_eq!(scratch.len(), 4);
        // Every chunk landed in the scratch of its assigned worker.
        for (w, s) in scratch.iter().enumerate() {
            assert!(s.iter().all(|&c| c % 4 == w), "worker {w} got {s:?}");
        }
        let total: usize = scratch.iter().map(Vec::len).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn worker_panic_surfaces_as_error_and_pool_survives() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkPool::new(4);
        // Panic on a chunk assigned to a spawned worker (1 % 4 = worker 1).
        let got = pool.run(8, |c| {
            if c == 1 {
                panic!("injected worker panic");
            }
        });
        assert_eq!(got, Err(PoolError::WorkerPanicked));
        std::panic::set_hook(prev);
        // No deadlock, and the next job runs cleanly.
        let done = AtomicUsize::new(0);
        pool.run(16, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        assert_eq!(
            PoolError::WorkerPanicked.to_string(),
            "a work-pool worker panicked"
        );
    }

    #[test]
    fn caller_thread_panic_is_resumed_after_workers_drain() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkPool::new(2);
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.run(8, |c| {
                if c == 0 {
                    panic!("injected caller panic");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err(), "caller panic must propagate");
        // Worker 1's chunks (all odd ones) completed despite the caller
        // panicking: 1, 3, 5, 7.
        assert_eq!(finished.load(Ordering::Relaxed), 4);
        // Pool is still alive.
        pool.run(3, |_| {}).unwrap();
    }

    #[test]
    fn shutdown_joins_workers_without_deadlock() {
        let pool = WorkPool::new(8);
        pool.run(64, |_| {}).unwrap();
        drop(pool); // must not hang
    }

    #[test]
    fn deterministic_assignment_is_round_robin() {
        let pool = WorkPool::new(3);
        let owner: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.run(12, |c| {
            // Identify the executor by its round-robin residue: chunk c is
            // documented to run on worker c % threads.
            owner[c].store(c % 3, Ordering::Relaxed);
        })
        .unwrap();
        for (c, o) in owner.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), c % 3);
        }
    }
}
