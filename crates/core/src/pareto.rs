//! Effectiveness-efficiency Pareto frontiers (Figures 12–13).

/// A model's position in the trade-off plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Model label.
    pub name: String,
    /// Scoring time (µs/doc) — lower is better.
    pub us_per_doc: f64,
    /// Ranking quality (NDCG@10) — higher is better.
    pub ndcg10: f64,
}

/// Indices of the non-dominated points, sorted by scoring time ascending.
///
/// Point `a` dominates `b` when `a` is no slower *and* no less accurate,
/// and strictly better on at least one axis.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .us_per_doc
            .partial_cmp(&points[b].us_per_doc)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                points[b]
                    .ndcg10
                    .partial_cmp(&points[a].ndcg10)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut frontier = Vec::new();
    let mut best_quality = f64::NEG_INFINITY;
    for &i in &idx {
        if points[i].ndcg10 > best_quality {
            frontier.push(i);
            best_quality = points[i].ndcg10;
        }
    }
    frontier
}

/// Whether frontier `a` lies entirely on-or-below frontier `b` in the
/// (time, quality) plane: for every point of `b` there is a point of `a`
/// at least as good on both axes. This is the sense in which the paper
/// says "the neural Pareto-optimality lays below the tree-based one".
pub fn frontier_dominates(a: &[ParetoPoint], b: &[ParetoPoint]) -> bool {
    b.iter().all(|pb| {
        a.iter()
            .any(|pa| pa.us_per_doc <= pb.us_per_doc && pa.ndcg10 >= pb.ndcg10)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(name: &str, us: f64, ndcg: f64) -> ParetoPoint {
        ParetoPoint {
            name: name.into(),
            us_per_doc: us,
            ndcg10: ndcg,
        }
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![
            pt("fast-bad", 1.0, 0.50),
            pt("slow-good", 8.0, 0.53),
            pt("dominated", 9.0, 0.52), // slower and worse than slow-good
            pt("mid", 3.0, 0.52),
        ];
        let f = pareto_frontier(&pts);
        let names: Vec<&str> = f.iter().map(|&i| pts[i].name.as_str()).collect();
        assert_eq!(names, vec!["fast-bad", "mid", "slow-good"]);
    }

    #[test]
    fn equal_points_keep_one() {
        let pts = vec![pt("a", 1.0, 0.5), pt("b", 1.0, 0.5)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let pts = vec![pt("only", 2.0, 0.5)];
        assert_eq!(pareto_frontier(&pts), vec![0]);
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let pts = vec![
            pt("a", 5.0, 0.54),
            pt("b", 0.5, 0.48),
            pt("c", 2.0, 0.52),
            pt("d", 1.0, 0.50),
        ];
        let f = pareto_frontier(&pts);
        for w in f.windows(2) {
            assert!(pts[w[0]].us_per_doc <= pts[w[1]].us_per_doc);
            assert!(pts[w[0]].ndcg10 < pts[w[1]].ndcg10);
        }
    }

    #[test]
    fn domination_between_frontiers() {
        let trees = vec![
            pt("t1", 3.0, 0.523),
            pt("t2", 4.9, 0.524),
            pt("t3", 8.2, 0.5246),
        ];
        let nets = vec![pt("n1", 1.9, 0.5246), pt("n2", 0.8, 0.521)];
        assert!(frontier_dominates(&nets, &trees));
        assert!(!frontier_dominates(&trees, &nets));
    }
}
