//! One-stop imports for downstream users.
//!
//! ```
//! use dlr_core::prelude::*;
//!
//! let data = SyntheticConfig::msn30k_like(20).generate();
//! let split = Split::by_query(&data, SplitRatios::PAPER, 1).unwrap();
//! assert_eq!(split.train.num_features(), 136);
//! ```

pub use crate::cascade::CascadeScorer;
pub use crate::fault::{
    corrupt_artifact, ArtifactCorruption, Fault, FaultConfig, FaultCounters, FaultInjectingScorer,
    ServerFault, ServerFaultConfig, ServerFaultCounters, ServerFaultPlan,
};
pub use crate::parallel::{par_bwqs, par_gemm, par_gemm_into, par_spmm, SpeedupSample};
pub use crate::pareto::{frontier_dominates, pareto_frontier, ParetoPoint};
pub use crate::pipeline::{NeuralEngineering, PipelineConfig, PrunedStudent};
pub use crate::pool::{PoolError, WorkPool};
pub use crate::scenario::Scenario;
pub use crate::scoring::{
    DocumentScorer, EnsembleScorer, HybridScorer, MlpScorer, QuickScorerScorer,
};
pub use crate::serve::{
    DeadlinePolicy, LatencyForecaster, LatencyHistogram, RobustScorer, SanitizePolicy, ScoreError,
    ServeStats, ServedBy,
};
pub use crate::timing::measure_us_per_doc;
pub use dlr_data::{
    Dataset, DatasetBuilder, Normalizer, Split, SplitRatios, SyntheticConfig, SyntheticKind,
};
pub use dlr_distill::{DistillConfig, DistillHyper, DistillSession, DistilledModel, Teacher};
pub use dlr_gbdt::{Ensemble, GrowthParams, LambdaMartParams, LambdaMartTrainer};
pub use dlr_metrics::{evaluate_scores, fisher_randomization, EvalReport, FisherOutcome};
pub use dlr_nn::{HybridMlp, Mlp};
pub use dlr_predictor::{
    calibrate_dense, calibrate_sparse, design_architectures, ArchCandidate, BudgetForecast,
    CsrShapeStats, DensePredictor, HostCalibration, SearchSpace, SparsePredictor,
};
pub use dlr_prune::{
    dynamic_sensitivity, prune_first_layer, static_sensitivity, PruneConfig, PruneMethod,
};
pub use dlr_quickscorer::{
    BlockwiseQuickScorer, QuickScorer, VectorizedQuickScorer, WideQuickScorer,
};
