//! Synchronization primitive aliases for the pool.
//!
//! With the `mc` feature on, the work-pool's mutex/condvar/thread
//! primitives resolve to `dlr-mc`'s schedule-controlled shims so the
//! model checker can exhaustively explore the job-slot handoff; without
//! it (every release and bench build) they are plain `std` types and
//! this module compiles to nothing but re-exports.

#[cfg(feature = "mc")]
pub(crate) use dlr_mc::sync::{Condvar, Mutex, MutexGuard};
#[cfg(feature = "mc")]
pub(crate) use dlr_mc::thread;

#[cfg(not(feature = "mc"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "mc"))]
pub(crate) use std::thread;
