//! The paper's methodology end to end.
//!
//! `dlr-core` composes every substrate into the workflow of §5–§6:
//!
//! 1. **Train competitors and teachers** — LambdaMART forests at several
//!    sizes (64-leaf competitors, 256-leaf teachers) via `dlr-gbdt`.
//! 2. **Design** — enumerate neural architectures whose *predicted*
//!    pruned scoring time fits the latency budget implied by the
//!    tree-based Pareto frontier (`dlr-predictor`).
//! 3. **Distill** — train each candidate to approximate the best teacher's
//!    scores (`dlr-distill`).
//! 4. **Prune** — sparsify the first layer and fine-tune (`dlr-prune`),
//!    then freeze into a hybrid sparse/dense scorer (`dlr-nn`).
//! 5. **Compare** — measure NDCG@10 (with Fisher randomization
//!    significance) and single-thread µs/doc for every model, and compute
//!    effectiveness-efficiency Pareto frontiers under the paper's two
//!    scenarios (high-quality retrieval, low-latency retrieval).
//!
//! The [`prelude`] re-exports the workspace's main types so downstream
//! users need a single `use`.

pub mod cascade;
pub mod fault;
pub mod parallel;
pub mod pareto;
pub mod pipeline;
pub mod pool;
pub mod prelude;
pub mod scenario;
pub mod scoring;
pub mod serve;
mod sync;
pub mod timing;

pub use cascade::CascadeScorer;
pub use fault::{
    corrupt_artifact, ArtifactCorruption, Fault, FaultConfig, FaultCounters, FaultInjectingScorer,
    ServerFault, ServerFaultConfig, ServerFaultCounters, ServerFaultPlan,
};
pub use parallel::{
    measure_gemm_speedup, par_bwqs, par_gemm, par_gemm_into, par_spmm, SpeedupSample,
};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use pipeline::{NeuralEngineering, PipelineConfig, PrunedStudent};
pub use pool::{PoolError, WorkPool};
pub use scenario::Scenario;
pub use scoring::{DocumentScorer, EnsembleScorer, HybridScorer, MlpScorer, QuickScorerScorer};
pub use serve::{
    DeadlinePolicy, LatencyForecaster, LatencyHistogram, RobustScorer, SanitizePolicy, ScoreError,
    ServeStats, ServedBy,
};
pub use timing::measure_us_per_doc;
