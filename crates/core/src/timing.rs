//! Single-thread scoring-time measurement.
//!
//! The paper's efficiency numbers are per-document scoring times measured
//! single-threaded over large batches (batch size 1000 for the dense
//! tables). We replicate that: stream a document set through the scorer
//! in fixed-size batches, repeat the whole pass several times, and report
//! the median µs/doc.

use crate::scoring::DocumentScorer;
use std::time::Instant;

/// Median microseconds per document over `reps` full passes of `rows`
/// (row-major `n × num_features`), scored in batches of `batch`.
///
/// One warm-up pass runs first so one-time costs (workspace growth, cache
/// warming) are excluded, as in any serious scoring benchmark.
///
/// # Panics
/// Panics when `rows` is not a whole number of documents or is empty.
pub fn measure_us_per_doc<S: DocumentScorer + ?Sized>(
    scorer: &mut S,
    rows: &[f32],
    batch: usize,
    reps: usize,
) -> f64 {
    let f = scorer.num_features();
    assert!(
        f > 0 && rows.len().is_multiple_of(f),
        "rows must be n × num_features"
    );
    let n = rows.len() / f;
    assert!(n > 0, "need at least one document");
    let batch = batch.max(1);
    let mut out = vec![0.0f32; batch.min(n)];

    let mut pass = |scorer: &mut S| {
        let mut start = 0usize;
        while start < n {
            let b = batch.min(n - start);
            scorer.score_batch(&rows[start * f..(start + b) * f], &mut out[..b]);
            start += b;
        }
    };

    pass(scorer); // warm-up
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        pass(scorer);
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2] / n as f64 * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SpinScorer {
        features: usize,
        spins: usize,
    }

    impl DocumentScorer for SpinScorer {
        fn num_features(&self) -> usize {
            self.features
        }

        fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
            for (row, o) in rows.chunks_exact(self.features).zip(out.iter_mut()) {
                let mut acc = 0.0f32;
                for _ in 0..self.spins {
                    for &v in row {
                        acc += v * 1.0000001;
                    }
                }
                *o = acc;
            }
        }

        fn name(&self) -> String {
            "spin".into()
        }
    }

    #[test]
    fn measures_positive_time_and_orders_workloads() {
        let rows = vec![1.0f32; 4 * 512];
        let mut cheap = SpinScorer {
            features: 4,
            spins: 1,
        };
        let mut pricey = SpinScorer {
            features: 4,
            spins: 400,
        };
        let a = measure_us_per_doc(&mut cheap, &rows, 64, 3);
        let b = measure_us_per_doc(&mut pricey, &rows, 64, 3);
        assert!(a > 0.0);
        assert!(b > a, "400 spins {b} should beat 1 spin {a}");
    }

    #[test]
    fn batch_larger_than_corpus_is_fine() {
        let rows = vec![0.5f32; 4 * 10];
        let mut s = SpinScorer {
            features: 4,
            spins: 1,
        };
        let us = measure_us_per_doc(&mut s, &rows, 1000, 2);
        assert!(us.is_finite() && us > 0.0);
    }

    #[test]
    #[should_panic(expected = "n × num_features")]
    fn ragged_rows_rejected() {
        let mut s = SpinScorer {
            features: 4,
            spins: 1,
        };
        measure_us_per_doc(&mut s, &[0.0; 7], 8, 1);
    }
}
