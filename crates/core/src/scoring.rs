//! A uniform scorer interface over every model family in the comparison.
//!
//! Table 1 / Table 8 compare QuickScorer-traversed forests against dense
//! and hybrid neural networks. This module wraps each of them behind
//! [`DocumentScorer`] so the evaluation and timing harnesses treat them
//! identically. Scorers take `&mut self` so implementations can reuse
//! internal workspaces — keeping the hot path allocation-free, as the
//! paper's C++ implementations are.

use dlr_data::Normalizer;
use dlr_gbdt::Ensemble;
use dlr_nn::hybrid::HybridWorkspace;
use dlr_nn::{HybridMlp, Mlp, MlpWorkspace};
use dlr_quickscorer::{
    BlockwiseQuickScorer, QsError, QuickScorer, VectorizedQuickScorer, WideQuickScorer,
};
use std::sync::Arc;

/// A named document scorer over raw (unnormalized) feature rows.
pub trait DocumentScorer {
    /// Features per document.
    fn num_features(&self) -> usize;

    /// Score a row-major `n × num_features` block into `out`.
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]);

    /// Human-readable model label for report tables.
    fn name(&self) -> String;
}

/// Classic per-tree traversal of an ensemble (the naive baseline).
pub struct EnsembleScorer {
    /// The wrapped ensemble.
    pub ensemble: Ensemble,
    label: String,
}

impl EnsembleScorer {
    /// Wrap an ensemble with a label.
    pub fn new(ensemble: Ensemble, label: impl Into<String>) -> EnsembleScorer {
        EnsembleScorer {
            ensemble,
            label: label.into(),
        }
    }
}

impl DocumentScorer for EnsembleScorer {
    fn num_features(&self) -> usize {
        self.ensemble.num_features()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        self.ensemble.predict_batch(rows, out);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Which QuickScorer variant a [`QuickScorerScorer`] runs.
enum QsVariant {
    Plain(QuickScorer, Vec<u64>),
    Wide(WideQuickScorer, Vec<u64>),
    Blockwise(BlockwiseQuickScorer),
    Vectorized(VectorizedQuickScorer),
}

/// QuickScorer-traversed forest.
pub struct QuickScorerScorer {
    variant: QsVariant,
    num_features: usize,
    label: String,
    obs: Option<Arc<dlr_obs::Obs>>,
}

impl QuickScorerScorer {
    /// Single-word QuickScorer (trees ≤ 64 leaves), or the wide multi-word
    /// fallback when any tree is larger — mirroring how the paper treats
    /// 256-leaf models as traversable but slower.
    ///
    /// # Errors
    /// [`QsError`] when even the wide encoding rejects the ensemble
    /// (it is empty or has no features).
    pub fn try_compile(
        ensemble: &Ensemble,
        label: impl Into<String>,
    ) -> Result<QuickScorerScorer, QsError> {
        let nf = ensemble.num_features();
        let variant = match QuickScorer::compile(ensemble) {
            Ok(qs) => {
                let nt = qs.num_trees();
                QsVariant::Plain(qs, vec![0u64; nt])
            }
            Err(_) => {
                let qs = WideQuickScorer::compile(ensemble)?;
                let words = qs.num_trees() * qs.words();
                QsVariant::Wide(qs, vec![0u64; words])
            }
        };
        Ok(QuickScorerScorer {
            variant,
            num_features: nf,
            label: label.into(),
            obs: None,
        })
    }

    /// Block-wise variant (BWQS) with the given trees per block.
    ///
    /// # Errors
    /// [`QsError`] when the ensemble cannot be encoded (empty, > 64 leaves).
    pub fn try_compile_blockwise(
        ensemble: &Ensemble,
        trees_per_block: usize,
        label: impl Into<String>,
    ) -> Result<QuickScorerScorer, QsError> {
        let bw = BlockwiseQuickScorer::compile(ensemble, trees_per_block)?;
        Ok(QuickScorerScorer {
            variant: QsVariant::Blockwise(bw),
            num_features: ensemble.num_features(),
            label: label.into(),
            obs: None,
        })
    }

    /// Vectorized multi-document variant (vQS).
    ///
    /// # Errors
    /// [`QsError`] when the ensemble cannot be encoded (empty, > 64 leaves).
    pub fn try_compile_vectorized(
        ensemble: &Ensemble,
        label: impl Into<String>,
    ) -> Result<QuickScorerScorer, QsError> {
        let v = VectorizedQuickScorer::compile(ensemble)?;
        Ok(QuickScorerScorer {
            variant: QsVariant::Vectorized(v),
            num_features: ensemble.num_features(),
            label: label.into(),
            obs: None,
        })
    }

    /// Panicking convenience wrapper over [`Self::try_compile`] for model
    /// setup code and benchmarks, where an unencodable ensemble is a
    /// programming error.
    ///
    /// # Panics
    /// Panics when [`Self::try_compile`] errors.
    pub fn compile(ensemble: &Ensemble, label: impl Into<String>) -> QuickScorerScorer {
        Self::try_compile(ensemble, label).unwrap_or_else(|e| panic!("quickscorer compile: {e}"))
    }

    /// Panicking convenience wrapper over [`Self::try_compile_blockwise`].
    ///
    /// # Panics
    /// Panics when the ensemble cannot be encoded (empty, > 64 leaves).
    pub fn compile_blockwise(
        ensemble: &Ensemble,
        trees_per_block: usize,
        label: impl Into<String>,
    ) -> QuickScorerScorer {
        Self::try_compile_blockwise(ensemble, trees_per_block, label)
            .unwrap_or_else(|e| panic!("blockwise compile: {e}"))
    }

    /// Panicking convenience wrapper over [`Self::try_compile_vectorized`].
    ///
    /// # Panics
    /// Panics when the ensemble cannot be encoded (empty, > 64 leaves).
    pub fn compile_vectorized(ensemble: &Ensemble, label: impl Into<String>) -> QuickScorerScorer {
        Self::try_compile_vectorized(ensemble, label).unwrap_or_else(|e| panic!("vQS compile: {e}"))
    }

    /// Record a `kernel-vqs` span — attributed to the dispatcher's
    /// current trace — around every batch scored through this wrapper.
    pub fn with_obs(mut self, obs: Arc<dlr_obs::Obs>) -> QuickScorerScorer {
        self.obs = Some(obs);
        self
    }
}

impl DocumentScorer for QuickScorerScorer {
    fn num_features(&self) -> usize {
        self.num_features
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let _scope = self
            .obs
            .as_deref()
            .map(|o| o.scope(dlr_obs::Stage::KernelVqs));
        match &mut self.variant {
            QsVariant::Plain(qs, buf) => {
                for (row, o) in rows.chunks_exact(self.num_features).zip(out.iter_mut()) {
                    *o = qs.score_with(row, buf);
                }
            }
            QsVariant::Wide(qs, buf) => {
                for (row, o) in rows.chunks_exact(self.num_features).zip(out.iter_mut()) {
                    *o = qs.score_with(row, buf);
                }
            }
            QsVariant::Blockwise(qs) => qs.score_batch(rows, out),
            QsVariant::Vectorized(qs) => qs.score_batch(rows, out),
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Dense MLP over Z-normalized features.
pub struct MlpScorer {
    /// The network (expects normalized inputs).
    pub mlp: Mlp,
    normalizer: Normalizer,
    ws: MlpWorkspace,
    norm_buf: Vec<f32>,
    label: String,
    obs: Option<Arc<dlr_obs::Obs>>,
}

impl MlpScorer {
    /// Wrap a trained student and its normalizer. The model is frozen for
    /// serving, so its weight panels are pre-packed here once.
    pub fn new(mut mlp: Mlp, normalizer: Normalizer, label: impl Into<String>) -> MlpScorer {
        if !mlp.weights_packed() {
            mlp.pack_weights();
        }
        MlpScorer {
            mlp,
            normalizer,
            ws: MlpWorkspace::default(),
            norm_buf: Vec::new(),
            label: label.into(),
            obs: None,
        }
    }

    /// Record a `kernel-gemm` span — attributed to the dispatcher's
    /// current trace — around every batch scored through this wrapper.
    pub fn with_obs(mut self, obs: Arc<dlr_obs::Obs>) -> MlpScorer {
        self.obs = Some(obs);
        self
    }
}

impl DocumentScorer for MlpScorer {
    fn num_features(&self) -> usize {
        self.mlp.input_dim()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let _scope = self
            .obs
            .as_deref()
            .map(|o| o.scope(dlr_obs::Stage::KernelGemm));
        self.norm_buf.clear();
        self.norm_buf.extend_from_slice(rows);
        self.normalizer.apply_matrix(&mut self.norm_buf);
        self.mlp.score_batch_with(&self.norm_buf, out, &mut self.ws);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Hybrid (sparse first layer) MLP over Z-normalized features — the
/// paper's winning configuration.
pub struct HybridScorer {
    /// The frozen hybrid network.
    pub hybrid: HybridMlp,
    normalizer: Normalizer,
    ws: HybridWorkspace,
    norm_buf: Vec<f32>,
    label: String,
    obs: Option<Arc<dlr_obs::Obs>>,
}

impl HybridScorer {
    /// Wrap a hybrid model and its normalizer.
    pub fn new(
        hybrid: HybridMlp,
        normalizer: Normalizer,
        label: impl Into<String>,
    ) -> HybridScorer {
        HybridScorer {
            hybrid,
            normalizer,
            ws: HybridWorkspace::default(),
            norm_buf: Vec::new(),
            label: label.into(),
            obs: None,
        }
    }

    /// Record a `kernel-sdmm` span — attributed to the dispatcher's
    /// current trace — around every batch scored through this wrapper.
    pub fn with_obs(mut self, obs: Arc<dlr_obs::Obs>) -> HybridScorer {
        self.obs = Some(obs);
        self
    }
}

impl DocumentScorer for HybridScorer {
    fn num_features(&self) -> usize {
        self.hybrid.input_dim()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let _scope = self
            .obs
            .as_deref()
            .map(|o| o.scope(dlr_obs::Stage::KernelSdmm));
        self.norm_buf.clear();
        self.norm_buf.extend_from_slice(rows);
        self.normalizer.apply_matrix(&mut self.norm_buf);
        self.hybrid
            .score_batch_with(&self.norm_buf, out, &mut self.ws);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::{DatasetBuilder, SyntheticConfig};
    use dlr_gbdt::{GrowthParams, LambdaMartParams, LambdaMartTrainer};

    fn forest() -> (Ensemble, dlr_data::Dataset) {
        let mut cfg = SyntheticConfig::msn30k_like(15);
        cfg.docs_per_query = 15;
        cfg.num_features = 10;
        cfg.num_informative = 4;
        let data = cfg.generate();
        let params = LambdaMartParams {
            num_trees: 8,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 3,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (e, _) = LambdaMartTrainer::new(params).fit(&data, None);
        (e, data)
    }

    #[test]
    fn quickscorer_wrapper_matches_ensemble_wrapper() {
        let (e, data) = forest();
        let mut naive = EnsembleScorer::new(e.clone(), "forest");
        let mut qs = QuickScorerScorer::compile(&e, "qs");
        let mut vqs = QuickScorerScorer::compile_vectorized(&e, "vqs");
        let mut bw = QuickScorerScorer::compile_blockwise(&e, 3, "bwqs");
        let n = data.num_docs();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        let mut c = vec![0.0f32; n];
        let mut d = vec![0.0f32; n];
        naive.score_batch(data.features(), &mut a);
        qs.score_batch(data.features(), &mut b);
        vqs.score_batch(data.features(), &mut c);
        bw.score_batch(data.features(), &mut d);
        for i in 0..n {
            assert!((a[i] - b[i]).abs() < 1e-4);
            assert!((a[i] - c[i]).abs() < 1e-4);
            assert!((a[i] - d[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn wide_fallback_for_large_leaf_ensembles() {
        // A 256-leaf-style teacher still gets a QuickScorer wrapper.
        let mut cfg = SyntheticConfig::msn30k_like(15);
        cfg.docs_per_query = 40;
        cfg.num_features = 10;
        cfg.num_informative = 4;
        let data = cfg.generate();
        let params = LambdaMartParams {
            num_trees: 4,
            growth: GrowthParams {
                max_leaves: 100,
                min_data_in_leaf: 1,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (e, _) = LambdaMartTrainer::new(params).fit(&data, None);
        let mut qs = QuickScorerScorer::compile(&e, "teacher");
        let mut out = vec![0.0f32; data.num_docs()];
        qs.score_batch(data.features(), &mut out);
        for (row, &o) in data.features().chunks_exact(10).zip(&out) {
            assert!((e.predict(row) - o).abs() < 1e-4);
        }
    }

    #[test]
    fn mlp_scorer_normalizes_internally() {
        let mut b = DatasetBuilder::new(2);
        b.push_query(1, &[0.0, 100.0, 2.0, 300.0, 4.0, 500.0], &[0.0, 1.0, 2.0])
            .unwrap();
        let data = b.finish();
        let normalizer = Normalizer::fit(&data).unwrap();
        let mlp = Mlp::from_hidden(2, &[4], 3);
        let mut scorer = MlpScorer::new(mlp.clone(), normalizer.clone(), "net");
        let mut got = vec![0.0f32; 3];
        scorer.score_batch(data.features(), &mut got);
        // Reference: normalize manually, then dense forward.
        let normed = normalizer.normalized(&data);
        let mut expect = vec![0.0f32; 3];
        mlp.score_batch(normed.features(), &mut expect);
        assert_eq!(got, expect);
        assert_eq!(scorer.name(), "net");
    }

    #[test]
    fn hybrid_scorer_matches_dense_scorer_when_unpruned_weights_agree() {
        let (_, data) = forest();
        let normalizer = Normalizer::fit(&data).unwrap();
        let mlp = Mlp::from_hidden(10, &[8, 4], 5);
        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        let mut ds = MlpScorer::new(mlp, normalizer.clone(), "dense");
        let mut hs = HybridScorer::new(hybrid, normalizer, "hybrid");
        let n = data.num_docs();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        ds.score_batch(data.features(), &mut a);
        hs.score_batch(data.features(), &mut b);
        for i in 0..n {
            assert!(
                (a[i] - b[i]).abs() < 1e-3,
                "doc {i}: dense {} hybrid {}",
                a[i],
                b[i]
            );
        }
    }
}
