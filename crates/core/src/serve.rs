//! Fault-tolerant serving around any [`DocumentScorer`].
//!
//! The paper's architecture exists to keep neural rankers inside a strict
//! per-query latency budget; this module keeps the *service* inside it
//! when reality misbehaves. [`RobustScorer`] wraps an expensive primary
//! scorer and a cheap fallback (typically the stage-1 model of a
//! [`crate::CascadeScorer`], or a QuickScorer forest) and guarantees that
//! every batch returns a complete, finite score vector:
//!
//! * **Input sanitation** — rows are validated for width and scanned for
//!   NaN/Inf features. [`SanitizePolicy::Reject`] turns bad batches into a
//!   typed [`ScoreError`]; [`SanitizePolicy::Clamp`] repairs them in a
//!   scratch copy and keeps serving.
//! * **Deadline-aware degradation** — each primary batch is timed against
//!   a [`DeadlinePolicy`]. After `trip_after` consecutive misses the
//!   scorer degrades to the fallback, then periodically *probes* the
//!   primary and only restores it after `recover_after` consecutive
//!   on-time probes (hysteresis, so a flapping primary cannot thrash the
//!   service). A [`LatencyForecaster`] — e.g. the `dlr-predictor` budget
//!   forecast — can veto the primary *before* it runs.
//! * **Panic isolation** — the primary runs under
//!   [`std::panic::catch_unwind`]; a poisoned query costs one fallback
//!   rescore, not the process.
//! * **Output sanitation** — the output buffer is pre-filled with a NaN
//!   sentinel, so short writes and NaN scores are both detected and
//!   repaired by a fallback rescore.
//!
//! Every event increments a counter in [`ServeStats`], which the
//! `reranking_service` example prints and the fault-injection integration
//! suite asserts against exactly.

use crate::scoring::DocumentScorer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed failure modes of robust scoring.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// `rows.len()` is not `out.len() × num_features`.
    BatchShape {
        /// Features per document the scorer expects.
        num_features: usize,
        /// Length of the feature slice received.
        rows_len: usize,
        /// Length of the output slice received.
        out_len: usize,
    },
    /// The batch contains no documents.
    EmptyBatch,
    /// A non-finite feature under [`SanitizePolicy::Reject`].
    NonFinite {
        /// Document index within the batch.
        doc: usize,
        /// 0-based feature index within the document.
        feature: usize,
    },
    /// Two scorers that must share a feature space do not.
    FeatureSpaceMismatch {
        /// Feature count of the first (primary / stage-1) scorer.
        first: usize,
        /// Feature count of the second (fallback / stage-2) scorer.
        second: usize,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::BatchShape {
                num_features,
                rows_len,
                out_len,
            } => write!(
                f,
                "batch shape mismatch: {rows_len} feature values cannot be \
                 {out_len} documents x {num_features} features"
            ),
            ScoreError::EmptyBatch => write!(f, "batch contains no documents"),
            ScoreError::NonFinite { doc, feature } => {
                write!(f, "non-finite feature {feature} in document {doc}")
            }
            ScoreError::FeatureSpaceMismatch { first, second } => {
                write!(f, "scorers disagree on feature count: {first} vs {second}")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// Which scorer produced the batch's final output.
///
/// Returned by [`RobustScorer::try_score_batch_deadline`] so a serving
/// front-end can account degradation per batch: [`ServedBy::Fallback`]
/// covers every path where the fallback's scores were delivered —
/// deadline degradation, a forecaster veto, a primary panic, or an
/// output rescue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The primary scorer's output was delivered.
    Primary,
    /// The fallback scorer's output was delivered.
    Fallback,
}

/// What to do with NaN/Inf feature values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SanitizePolicy {
    /// Return [`ScoreError::NonFinite`] for the whole batch.
    Reject,
    /// Repair in a scratch copy: NaN becomes `0.0`, ±Inf becomes
    /// `±max_abs`, and finite values keep their sign but are clamped into
    /// `[-max_abs, max_abs]`.
    Clamp {
        /// Largest magnitude allowed through to the wrapped scorers.
        max_abs: f32,
    },
}

impl SanitizePolicy {
    /// Clamp policy with a magnitude cap generous enough for any real
    /// LETOR feature while still killing Inf.
    pub fn clamp() -> SanitizePolicy {
        SanitizePolicy::Clamp { max_abs: 1e30 }
    }
}

/// Per-batch deadline and the hysteresis around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Wall-clock budget for one primary batch.
    pub deadline: Duration,
    /// Consecutive primary misses before degrading to the fallback.
    pub trip_after: u32,
    /// Fallback batches served between probes of the primary.
    pub probe_after: u32,
    /// Consecutive on-time probes before the primary is restored.
    pub recover_after: u32,
}

impl DeadlinePolicy {
    /// A policy with the given budget and the default hysteresis
    /// (trip after 2 consecutive misses, probe every 8 fallback batches,
    /// recover after 2 consecutive on-time probes).
    pub fn with_deadline(deadline: Duration) -> DeadlinePolicy {
        DeadlinePolicy {
            deadline,
            trip_after: 2,
            probe_after: 8,
            recover_after: 2,
        }
    }
}

/// Pre-run latency estimate consulted before the primary scorer runs.
///
/// `dlr-predictor`'s `BudgetForecast` implements this from the paper's
/// Equation 3 dense-time model, closing the loop between the *design-time*
/// predictor and *serve-time* degradation.
pub trait LatencyForecaster {
    /// Expected wall-clock time to score `num_docs` documents, or `None`
    /// when no estimate is available.
    fn forecast(&self, num_docs: usize) -> Option<Duration>;
}

impl<F: Fn(usize) -> Option<Duration>> LatencyForecaster for F {
    fn forecast(&self, num_docs: usize) -> Option<Duration> {
        self(num_docs)
    }
}

/// Lossy histogram of batch latencies with power-of-two microsecond
/// buckets — constant memory no matter how many batches are served, yet
/// good enough resolution for tail percentiles (each bucket is at most
/// 2× wide, so a reported percentile is within 2× of the true value).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `counts[b]` holds latencies whose µs value has bit-length `b`
    /// (bucket 0 is exactly 0µs; the last bucket absorbs the open tail).
    counts: [u64; LatencyHistogram::BUCKETS],
    total: u64,
    /// Saturating sum of recorded µs, for mean reporting.
    sum_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; LatencyHistogram::BUCKETS],
            total: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    const BUCKETS: usize = 40;

    fn bucket(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(Self::BUCKETS - 1)
    }

    fn bucket_upper_bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one served batch. Counts saturate instead of wrapping, so
    /// a histogram that has absorbed `u64::MAX` samples stays a valid
    /// (if pinned) summary rather than corrupting its percentiles.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let b = Self::bucket(us);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Batches recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Saturating sum of recorded latencies in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Mean recorded latency in µs, or `None` when nothing was recorded.
    pub fn mean_us(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum_us as f64 / self.total as f64)
        }
    }

    /// Fold `other`'s samples into this histogram. Buckets align exactly
    /// (same power-of-two layout), so merging histograms recorded
    /// separately — e.g. one per model version — yields the same counts
    /// as recording every sample into one histogram, and percentile
    /// queries on the merge bound the combined population. Merging an
    /// empty histogram is a no-op; bucket counts saturate like
    /// [`record`](Self::record).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }

    /// Upper bound (µs) of the bucket holding the `p`-quantile sample
    /// (`0.0 < p <= 1.0`), or `None` when nothing was recorded. When
    /// saturation has pinned `total` above the per-bucket sum (so the
    /// requested rank walks off the end), the last non-empty bucket's
    /// bound is returned — a conservative tail estimate instead of a
    /// spurious `None` on a non-empty histogram.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut last_nonempty = None;
        for (b, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                last_nonempty = Some(b);
            }
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(Self::bucket_upper_bound(b));
            }
        }
        last_nonempty.map(Self::bucket_upper_bound)
    }

    /// Median batch latency in µs.
    pub fn p50_us(&self) -> Option<u64> {
        self.percentile_us(0.50)
    }

    /// 95th-percentile batch latency in µs.
    pub fn p95_us(&self) -> Option<u64> {
        self.percentile_us(0.95)
    }

    /// 99th-percentile batch latency in µs.
    pub fn p99_us(&self) -> Option<u64> {
        self.percentile_us(0.99)
    }

    /// 99.9th-percentile batch latency in µs — the tail a serving layer's
    /// SLO actually bounds. Like every quantile here it is a bucket upper
    /// bound, within 2× of the true sample.
    pub fn p999_us(&self) -> Option<u64> {
        self.percentile_us(0.999)
    }
}

/// Counters for everything the robust layer did.
///
/// Equality compares the event counters only — the [`latency`]
/// histogram is measurement noise by nature, so two stat blocks with the
/// same counters compare equal regardless of recorded timings (the
/// fault-injection suite relies on exact counter equality).
///
/// [`latency`]: ServeStats::latency
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Batches submitted (including rejected ones).
    pub batches: u64,
    /// Batches served by the primary scorer (incl. probes).
    pub primary_batches: u64,
    /// Batches served by the fallback scorer for any reason.
    pub fallback_batches: u64,
    /// Primary runs that exceeded the deadline.
    pub deadline_misses: u64,
    /// Batches routed to the fallback because the forecaster predicted a
    /// miss before the primary ran.
    pub forecast_degrades: u64,
    /// Primary → degraded transitions.
    pub fallback_activations: u64,
    /// Degraded → primary transitions.
    pub recoveries: u64,
    /// Primary probe runs while degraded.
    pub probes: u64,
    /// Documents whose features were repaired under the clamp policy.
    pub sanitized_rows: u64,
    /// Batches rejected with a [`ScoreError`].
    pub rejected_batches: u64,
    /// Panics caught from a wrapped scorer.
    pub panics_caught: u64,
    /// Batches whose primary output was incomplete or non-finite and was
    /// replaced by a fallback rescore (NaN scores, short writes).
    pub rescued_outputs: u64,
    /// Wall-clock latency of every served (non-rejected) batch.
    pub latency: LatencyHistogram,
}

impl PartialEq for ServeStats {
    fn eq(&self, other: &Self) -> bool {
        self.batches == other.batches
            && self.primary_batches == other.primary_batches
            && self.fallback_batches == other.fallback_batches
            && self.deadline_misses == other.deadline_misses
            && self.forecast_degrades == other.forecast_degrades
            && self.fallback_activations == other.fallback_activations
            && self.recoveries == other.recoveries
            && self.probes == other.probes
            && self.sanitized_rows == other.sanitized_rows
            && self.rejected_batches == other.rejected_batches
            && self.panics_caught == other.panics_caught
            && self.rescued_outputs == other.rescued_outputs
    }
}

impl Eq for ServeStats {}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batches {} (primary {}, fallback {})",
            self.batches, self.primary_batches, self.fallback_batches
        )?;
        writeln!(
            f,
            "deadline misses {} | forecast degrades {} | activations {} | recoveries {} | probes {}",
            self.deadline_misses,
            self.forecast_degrades,
            self.fallback_activations,
            self.recoveries,
            self.probes
        )?;
        write!(
            f,
            "sanitized rows {} | rejected batches {} | panics caught {} | rescued outputs {}",
            self.sanitized_rows, self.rejected_batches, self.panics_caught, self.rescued_outputs
        )?;
        if let (Some(p50), Some(p95), Some(p99), Some(p999)) = (
            self.latency.p50_us(),
            self.latency.p95_us(),
            self.latency.p99_us(),
            self.latency.p999_us(),
        ) {
            write!(
                f,
                "\nbatch latency us: p50 <= {p50} | p95 <= {p95} | p99 <= {p99} | p999 <= {p999} ({} batches)",
                self.latency.count()
            )?;
        }
        Ok(())
    }
}

/// Degradation state machine (see module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Serving the primary scorer.
    Primary {
        /// Deadline misses in a row so far.
        consecutive_misses: u32,
    },
    /// Serving the fallback, periodically probing the primary.
    Degraded {
        /// Fallback batches remaining before the next probe.
        batches_until_probe: u32,
        /// On-time probes in a row so far.
        probe_successes: u32,
    },
}

/// Pre-registered observability handles for the robust layer. Built once
/// in [`RobustScorer::with_obs`], so the hot path pays one `Option`
/// branch plus relaxed atomic increments — never a registry lookup.
struct RobustObsHooks {
    obs: Arc<dlr_obs::Obs>,
    deadline_misses: dlr_obs::Counter,
    forecast_degrades: dlr_obs::Counter,
    fallback_activations: dlr_obs::Counter,
    recoveries: dlr_obs::Counter,
    probes: dlr_obs::Counter,
    panics_caught: dlr_obs::Counter,
    rescued_outputs: dlr_obs::Counter,
}

impl RobustObsHooks {
    /// Record an instantaneous event span (`start == end == now`)
    /// attributed to the trace the dispatcher is currently executing.
    fn mark(&self, stage: dlr_obs::Stage) {
        let now = self.obs.now_nanos();
        self.obs
            .record_span(self.obs.current_trace(), stage, None, now, now);
    }
}

/// A serving wrapper that never panics, never blows the budget twice in a
/// row, and never returns a non-finite score. See the module docs.
pub struct RobustScorer<P, F> {
    /// The expensive scorer (e.g. the distilled network or a cascade).
    pub primary: P,
    /// The cheap always-available scorer (e.g. a QuickScorer forest).
    pub fallback: F,
    policy: SanitizePolicy,
    deadline: Option<DeadlinePolicy>,
    forecaster: Option<Box<dyn LatencyForecaster + Send>>,
    mode: Mode,
    stats: ServeStats,
    label: String,
    clean_rows: Vec<f32>,
    obs: Option<RobustObsHooks>,
}

impl<P: DocumentScorer, F: DocumentScorer> RobustScorer<P, F> {
    /// Wrap a primary and fallback scorer sharing a feature space.
    ///
    /// Defaults: clamp sanitation, no deadline, no forecaster. Configure
    /// with [`with_sanitize`](Self::with_sanitize),
    /// [`with_deadline`](Self::with_deadline) and
    /// [`with_forecaster`](Self::with_forecaster).
    ///
    /// # Errors
    /// [`ScoreError::FeatureSpaceMismatch`] when the scorers disagree on
    /// feature count.
    pub fn try_new(primary: P, fallback: F, label: impl Into<String>) -> Result<Self, ScoreError> {
        if primary.num_features() != fallback.num_features() {
            return Err(ScoreError::FeatureSpaceMismatch {
                first: primary.num_features(),
                second: fallback.num_features(),
            });
        }
        Ok(RobustScorer {
            primary,
            fallback,
            policy: SanitizePolicy::clamp(),
            deadline: None,
            forecaster: None,
            mode: Mode::Primary {
                consecutive_misses: 0,
            },
            stats: ServeStats::default(),
            label: label.into(),
            clean_rows: Vec::new(),
            obs: None,
        })
    }

    /// [`try_new`](Self::try_new), panicking on feature-space mismatch.
    ///
    /// # Panics
    /// Panics when the scorers disagree on feature count.
    pub fn new(primary: P, fallback: F, label: impl Into<String>) -> Self {
        Self::try_new(primary, fallback, label)
            .unwrap_or_else(|e| panic!("robust scorer stages must share a feature space: {e}"))
    }

    /// Set the NaN/Inf feature policy.
    pub fn with_sanitize(mut self, policy: SanitizePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable deadline-aware degradation.
    pub fn with_deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.deadline = Some(policy);
        self
    }

    /// Consult `forecaster` before each primary batch; a forecast above
    /// the deadline routes the batch to the fallback preemptively.
    /// (`Send` so a robust scorer can serve as a server batch engine.)
    pub fn with_forecaster(mut self, forecaster: impl LatencyForecaster + Send + 'static) -> Self {
        self.forecaster = Some(Box::new(forecaster));
        self
    }

    /// Publish degradation counters, `degrade`/`rescue` event spans, and
    /// forecast-vs-actual drift samples into `obs`. Handles are resolved
    /// once here; every hot-path hook is a branch plus a relaxed atomic.
    pub fn with_obs(mut self, obs: Arc<dlr_obs::Obs>) -> Self {
        self.obs = Some(RobustObsHooks {
            deadline_misses: obs.counter("robust_deadline_misses_total"),
            forecast_degrades: obs.counter("robust_forecast_degrades_total"),
            fallback_activations: obs.counter("robust_fallback_activations_total"),
            recoveries: obs.counter("robust_recoveries_total"),
            probes: obs.counter("robust_probes_total"),
            panics_caught: obs.counter("robust_panics_caught_total"),
            rescued_outputs: obs.counter("robust_rescued_outputs_total"),
            obs,
        });
        self
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Zero all counters (the degradation state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = ServeStats::default();
    }

    /// Whether the scorer is currently degraded to the fallback.
    pub fn is_degraded(&self) -> bool {
        matches!(self.mode, Mode::Degraded { .. })
    }

    /// Score a batch, returning a typed error instead of panicking on
    /// malformed input. On `Ok(())`, `out` holds one finite score per
    /// document.
    ///
    /// # Errors
    /// [`ScoreError::EmptyBatch`] and [`ScoreError::BatchShape`] on
    /// malformed batches; [`ScoreError::NonFinite`] for NaN/Inf features
    /// under [`SanitizePolicy::Reject`].
    pub fn try_score_batch(&mut self, rows: &[f32], out: &mut [f32]) -> Result<(), ScoreError> {
        self.try_score_batch_deadline(rows, out, None).map(|_| ())
    }

    /// [`try_score_batch`](Self::try_score_batch) with a per-batch
    /// deadline propagated from the caller (e.g. the tightest remaining
    /// request deadline in a coalesced micro-batch).
    ///
    /// The effective budget for this batch is the *minimum* of the
    /// configured [`DeadlinePolicy`] deadline and `deadline`; when no
    /// policy is configured, `deadline` alone drives the degradation
    /// state machine with the default hysteresis
    /// ([`DeadlinePolicy::with_deadline`]). Both the forecaster veto and
    /// miss accounting use the effective budget, so a serving layer's
    /// per-request deadlines flow into the same degrade/probe/recover
    /// path as the static policy.
    ///
    /// Returns which scorer's output was delivered.
    ///
    /// # Errors
    /// See [`try_score_batch`](Self::try_score_batch).
    pub fn try_score_batch_deadline(
        &mut self,
        rows: &[f32],
        out: &mut [f32],
        deadline: Option<Duration>,
    ) -> Result<ServedBy, ScoreError> {
        self.stats.batches += 1;
        let batch_started = Instant::now();
        let effective = match (self.deadline, deadline) {
            (Some(p), Some(d)) => Some(DeadlinePolicy {
                deadline: p.deadline.min(d),
                ..p
            }),
            (Some(p), None) => Some(p),
            (None, Some(d)) => Some(DeadlinePolicy::with_deadline(d)),
            (None, None) => None,
        };
        let rows = match self.validate_and_sanitize(rows, out.len()) {
            Ok(clean) => clean,
            Err(e) => {
                self.stats.rejected_batches += 1;
                return Err(e);
            }
        };
        // Borrow-splitting: the sanitized rows live in self.clean_rows, so
        // route through raw parts captured before the mutable calls below.
        let use_scratch = rows.is_scratch;
        let n = out.len();

        // A budget that is already exhausted at batch start is a
        // trivially-forecast miss: running the primary cannot finish in
        // zero time, so route straight to the fallback (counted as a
        // forecast degrade) without spending the primary's latency. This
        // also suppresses probes — probing with no budget proves nothing.
        let zero_budget = effective.is_some_and(|p| p.deadline.is_zero());
        let run_primary = match self.mode {
            Mode::Primary { .. } => {
                if zero_budget || self.forecast_exceeds_deadline(n, effective) {
                    self.stats.forecast_degrades += 1;
                    if let Some(h) = &self.obs {
                        h.forecast_degrades.inc();
                    }
                    false
                } else {
                    true
                }
            }
            Mode::Degraded {
                batches_until_probe,
                ..
            } => batches_until_probe == 0 && !zero_budget,
        };

        let served_by = if run_primary {
            if let Mode::Degraded { .. } = self.mode {
                self.stats.probes += 1;
                if let Some(h) = &self.obs {
                    h.probes.inc();
                }
            }
            self.stats.primary_batches += 1;
            let started = Instant::now();
            let outcome = {
                let rows: &[f32] = if use_scratch {
                    &self.clean_rows
                } else {
                    rows.original
                };
                out.fill(f32::NAN);
                let primary = &mut self.primary;
                catch_unwind(AssertUnwindSafe(|| primary.score_batch(rows, out)))
            };
            let elapsed = started.elapsed();
            if let (Some(h), Some(f)) = (&self.obs, &self.forecaster) {
                // Predicted (Eq. 3/5 cost model) vs. measured primary
                // latency for this batch size feeds the drift tracker.
                if let Some(predicted) = f.forecast(n) {
                    h.obs.record_drift(
                        predicted.as_nanos().min(u64::MAX as u128) as u64,
                        elapsed.as_nanos().min(u64::MAX as u128) as u64,
                    );
                }
            }
            let mut healthy = true;
            if outcome.is_err() {
                self.stats.panics_caught += 1;
                if let Some(h) = &self.obs {
                    h.panics_caught.inc();
                }
                healthy = false;
            } else if !out.iter().all(|s| s.is_finite()) {
                // NaN scores or a short write left sentinel values behind.
                self.stats.rescued_outputs += 1;
                if let Some(h) = &self.obs {
                    h.rescued_outputs.inc();
                }
                healthy = false;
            }
            if !healthy {
                if let Some(h) = &self.obs {
                    h.mark(dlr_obs::Stage::Rescue);
                }
                self.run_fallback(rows.original, use_scratch, out);
            }
            self.note_primary_result(healthy, elapsed, effective);
            if healthy {
                ServedBy::Primary
            } else {
                ServedBy::Fallback
            }
        } else {
            self.run_fallback(rows.original, use_scratch, out);
            if let Mode::Degraded {
                batches_until_probe,
                ..
            } = &mut self.mode
            {
                *batches_until_probe = batches_until_probe.saturating_sub(1);
            }
            ServedBy::Fallback
        };
        self.stats.latency.record(batch_started.elapsed());
        Ok(served_by)
    }

    /// Advance the degradation state machine after a primary run.
    /// `healthy` means no panic and finite output; a miss is an over-
    /// deadline run or an unhealthy one. `policy` is the effective policy
    /// for this batch (static config merged with the per-batch deadline).
    fn note_primary_result(
        &mut self,
        healthy: bool,
        elapsed: Duration,
        policy: Option<DeadlinePolicy>,
    ) {
        let Some(policy) = policy else {
            return;
        };
        let on_time = healthy && elapsed <= policy.deadline;
        // Count true overruns; panics also degrade but are already counted
        // under panics_caught.
        if elapsed > policy.deadline {
            self.stats.deadline_misses += 1;
            if let Some(h) = &self.obs {
                h.deadline_misses.inc();
            }
        }
        match &mut self.mode {
            Mode::Primary { consecutive_misses } => {
                if on_time {
                    *consecutive_misses = 0;
                } else {
                    *consecutive_misses += 1;
                    if *consecutive_misses >= policy.trip_after {
                        self.mode = Mode::Degraded {
                            batches_until_probe: policy.probe_after,
                            probe_successes: 0,
                        };
                        self.stats.fallback_activations += 1;
                        if let Some(h) = &self.obs {
                            h.fallback_activations.inc();
                            h.mark(dlr_obs::Stage::Degrade);
                        }
                    }
                }
            }
            Mode::Degraded {
                batches_until_probe,
                probe_successes,
            } => {
                if on_time {
                    *probe_successes += 1;
                    if *probe_successes >= policy.recover_after {
                        self.mode = Mode::Primary {
                            consecutive_misses: 0,
                        };
                        self.stats.recoveries += 1;
                        if let Some(h) = &self.obs {
                            h.recoveries.inc();
                        }
                    } else {
                        // Probe again on the next batch.
                        *batches_until_probe = 0;
                    }
                } else {
                    *batches_until_probe = policy.probe_after;
                    *probe_successes = 0;
                }
            }
        }
    }

    /// Serve one batch from the fallback, guaranteeing finite output even
    /// if the fallback itself panics or misbehaves.
    fn run_fallback(&mut self, original_rows: &[f32], use_scratch: bool, out: &mut [f32]) {
        self.stats.fallback_batches += 1;
        let rows: &[f32] = if use_scratch {
            &self.clean_rows
        } else {
            original_rows
        };
        out.fill(f32::NAN);
        let fallback = &mut self.fallback;
        let outcome = catch_unwind(AssertUnwindSafe(|| fallback.score_batch(rows, out)));
        if outcome.is_err() {
            self.stats.panics_caught += 1;
            if let Some(h) = &self.obs {
                h.panics_caught.inc();
            }
        }
        // Last line of defense: whatever happened, emit finite scores.
        for s in out.iter_mut() {
            if !s.is_finite() {
                *s = 0.0;
            }
        }
    }

    /// Shape-check the batch and apply the sanitize policy. Returns which
    /// buffer to score from (original slice or the scratch copy).
    fn validate_and_sanitize<'a>(
        &mut self,
        rows: &'a [f32],
        out_len: usize,
    ) -> Result<SanitizedRows<'a>, ScoreError> {
        let nf = self.primary.num_features();
        if out_len == 0 {
            return Err(ScoreError::EmptyBatch);
        }
        if rows.len() != out_len * nf {
            return Err(ScoreError::BatchShape {
                num_features: nf,
                rows_len: rows.len(),
                out_len,
            });
        }
        let first_bad = rows.iter().position(|v| !v.is_finite());
        match (first_bad, self.policy) {
            (None, SanitizePolicy::Reject) => Ok(SanitizedRows {
                original: rows,
                is_scratch: false,
            }),
            (None, SanitizePolicy::Clamp { max_abs }) => {
                if rows.iter().all(|v| v.abs() <= max_abs) {
                    Ok(SanitizedRows {
                        original: rows,
                        is_scratch: false,
                    })
                } else {
                    self.clamp_into_scratch(rows, nf, max_abs);
                    Ok(SanitizedRows {
                        original: rows,
                        is_scratch: true,
                    })
                }
            }
            (Some(pos), SanitizePolicy::Reject) => Err(ScoreError::NonFinite {
                doc: pos / nf,
                feature: pos % nf,
            }),
            (Some(_), SanitizePolicy::Clamp { max_abs }) => {
                self.clamp_into_scratch(rows, nf, max_abs);
                Ok(SanitizedRows {
                    original: rows,
                    is_scratch: true,
                })
            }
        }
    }

    /// Copy `rows` into the scratch buffer with NaN → 0, ±Inf and
    /// out-of-range values clamped to ±`max_abs`; count repaired docs.
    fn clamp_into_scratch(&mut self, rows: &[f32], nf: usize, max_abs: f32) {
        self.clean_rows.clear();
        self.clean_rows.extend_from_slice(rows);
        for doc in self.clean_rows.chunks_exact_mut(nf) {
            let mut repaired = false;
            for v in doc.iter_mut() {
                if v.is_nan() {
                    *v = 0.0;
                    repaired = true;
                } else if v.abs() > max_abs {
                    *v = v.signum() * max_abs;
                    repaired = true;
                }
            }
            if repaired {
                self.stats.sanitized_rows += 1;
            }
        }
    }

    /// Whether the forecaster predicts this batch to overrun the
    /// effective deadline for this batch.
    fn forecast_exceeds_deadline(&self, num_docs: usize, policy: Option<DeadlinePolicy>) -> bool {
        let (Some(policy), Some(fc)) = (policy, self.forecaster.as_ref()) else {
            return false;
        };
        matches!(fc.forecast(num_docs), Some(t) if t > policy.deadline)
    }
}

/// Which buffer a sanitized batch should be scored from.
struct SanitizedRows<'a> {
    original: &'a [f32],
    is_scratch: bool,
}

impl<P: DocumentScorer, F: DocumentScorer> DocumentScorer for RobustScorer<P, F> {
    fn num_features(&self) -> usize {
        self.primary.num_features()
    }

    /// Never panics: malformed batches are counted in
    /// [`ServeStats::rejected_batches`] and scored as all-zero.
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        if self.try_score_batch(rows, out).is_err() {
            out.fill(0.0);
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear scorer with optional scripted behaviors for these tests.
    struct Stub {
        nf: usize,
        offset: f32,
    }

    impl Stub {
        fn new(nf: usize, offset: f32) -> Stub {
            Stub { nf, offset }
        }
    }

    impl DocumentScorer for Stub {
        fn num_features(&self) -> usize {
            self.nf
        }

        fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
            for (row, o) in rows.chunks_exact(self.nf).zip(out.iter_mut()) {
                *o = row.iter().sum::<f32>() + self.offset;
            }
        }

        fn name(&self) -> String {
            "stub".into()
        }
    }

    /// Scorer that always panics.
    struct Panicky {
        nf: usize,
    }

    impl DocumentScorer for Panicky {
        fn num_features(&self) -> usize {
            self.nf
        }

        fn score_batch(&mut self, _rows: &[f32], _out: &mut [f32]) {
            panic!("poisoned query");
        }

        fn name(&self) -> String {
            "panicky".into()
        }
    }

    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn feature_space_mismatch_is_typed() {
        let err = match RobustScorer::try_new(Stub::new(3, 0.0), Stub::new(2, 0.0), "r") {
            Err(e) => e,
            Ok(_) => panic!("mismatched feature spaces must be rejected"),
        };
        assert_eq!(
            err,
            ScoreError::FeatureSpaceMismatch {
                first: 3,
                second: 2
            }
        );
    }

    #[test]
    fn clean_batches_pass_through_untouched() {
        let mut r = RobustScorer::new(Stub::new(2, 0.0), Stub::new(2, 100.0), "r");
        let mut out = [0.0f32; 2];
        r.try_score_batch(&[1.0, 2.0, 3.0, 4.0], &mut out).unwrap();
        assert_eq!(out, [3.0, 7.0]);
        assert_eq!(r.stats().primary_batches, 1);
        assert_eq!(r.stats().fallback_batches, 0);
        assert_eq!(r.stats().sanitized_rows, 0);
    }

    #[test]
    fn empty_and_misshapen_batches_are_typed_errors() {
        let mut r = RobustScorer::new(Stub::new(2, 0.0), Stub::new(2, 0.0), "r");
        let mut empty: [f32; 0] = [];
        assert_eq!(
            r.try_score_batch(&[], &mut empty),
            Err(ScoreError::EmptyBatch)
        );
        let mut out = [0.0f32; 2];
        assert_eq!(
            r.try_score_batch(&[1.0, 2.0, 3.0], &mut out),
            Err(ScoreError::BatchShape {
                num_features: 2,
                rows_len: 3,
                out_len: 2
            })
        );
        assert_eq!(r.stats().rejected_batches, 2);
    }

    #[test]
    fn trait_entry_point_fills_zeros_instead_of_panicking() {
        let mut r = RobustScorer::new(Stub::new(2, 0.0), Stub::new(2, 0.0), "r");
        let mut out = [9.0f32; 2];
        r.score_batch(&[1.0, 2.0, 3.0], &mut out); // wrong width
        assert_eq!(out, [0.0, 0.0]);
        let mut out = [9.0f32; 1];
        r.score_batch(&[f32::NAN, 1.0], &mut out); // clamped, still scores
        assert!(out[0].is_finite());
    }

    #[test]
    fn reject_policy_reports_doc_and_feature() {
        let mut r = RobustScorer::new(Stub::new(2, 0.0), Stub::new(2, 0.0), "r")
            .with_sanitize(SanitizePolicy::Reject);
        let mut out = [0.0f32; 2];
        let err = r
            .try_score_batch(&[1.0, 2.0, 3.0, f32::INFINITY], &mut out)
            .unwrap_err();
        assert_eq!(err, ScoreError::NonFinite { doc: 1, feature: 1 });
    }

    #[test]
    fn clamp_policy_repairs_and_counts() {
        let mut r = RobustScorer::new(Stub::new(2, 0.0), Stub::new(2, 0.0), "r")
            .with_sanitize(SanitizePolicy::Clamp { max_abs: 10.0 });
        let mut out = [0.0f32; 3];
        r.try_score_batch(
            &[f32::NAN, 1.0, 2.0, 3.0, f32::NEG_INFINITY, 50.0],
            &mut out,
        )
        .unwrap();
        // doc0: NaN→0 + 1 = 1; doc1 untouched = 5; doc2: -10 + 10 = 0.
        assert_eq!(out, [1.0, 5.0, 0.0]);
        assert_eq!(r.stats().sanitized_rows, 2);
    }

    #[test]
    fn panics_are_isolated_and_served_by_fallback() {
        quiet_panics(|| {
            let mut r = RobustScorer::new(Panicky { nf: 1 }, Stub::new(1, 100.0), "r");
            let mut out = [0.0f32; 2];
            r.try_score_batch(&[1.0, 2.0], &mut out).unwrap();
            assert_eq!(out, [101.0, 102.0]);
            assert_eq!(r.stats().panics_caught, 1);
            assert_eq!(r.stats().fallback_batches, 1);
        });
    }

    #[test]
    fn nan_outputs_are_rescued_by_fallback() {
        struct NanScorer;
        impl DocumentScorer for NanScorer {
            fn num_features(&self) -> usize {
                1
            }
            fn score_batch(&mut self, _rows: &[f32], out: &mut [f32]) {
                out.fill(f32::NAN);
            }
            fn name(&self) -> String {
                "nan".into()
            }
        }
        let mut r = RobustScorer::new(NanScorer, Stub::new(1, 0.5), "r");
        let mut out = [0.0f32; 2];
        r.try_score_batch(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(out, [1.5, 2.5]);
        assert_eq!(r.stats().rescued_outputs, 1);
    }

    #[test]
    fn forecast_veto_routes_to_fallback_preemptively() {
        let mut r = RobustScorer::new(Stub::new(1, 0.0), Stub::new(1, 100.0), "r")
            .with_deadline(DeadlinePolicy::with_deadline(Duration::from_micros(50)))
            .with_forecaster(|n: usize| Some(Duration::from_micros(n as u64)));
        let mut out = [0.0f32; 100];
        let rows = vec![1.0f32; 100];
        r.try_score_batch(&rows, &mut out).unwrap(); // forecast 100µs > 50µs
        assert_eq!(r.stats().forecast_degrades, 1);
        assert_eq!(r.stats().fallback_batches, 1);
        assert_eq!(out[0], 101.0);
        let mut small_out = [0.0f32; 10];
        r.try_score_batch(&rows[..10], &mut small_out).unwrap(); // 10µs fits
        assert_eq!(r.stats().primary_batches, 1);
        assert_eq!(small_out[0], 1.0);
    }

    #[test]
    fn hysteresis_degrades_and_recovers() {
        quiet_panics(|| {
            /// Panics for the first `faulty` calls, then behaves.
            struct Flaky {
                calls: usize,
                faulty: usize,
            }
            impl DocumentScorer for Flaky {
                fn num_features(&self) -> usize {
                    1
                }
                fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
                    self.calls += 1;
                    if self.calls <= self.faulty {
                        panic!("still broken");
                    }
                    out.copy_from_slice(rows);
                }
                fn name(&self) -> String {
                    "flaky".into()
                }
            }
            let policy = DeadlinePolicy {
                deadline: Duration::from_secs(1),
                trip_after: 2,
                probe_after: 3,
                recover_after: 2,
            };
            let mut r = RobustScorer::new(
                Flaky {
                    calls: 0,
                    faulty: 2,
                },
                Stub::new(1, 100.0),
                "r",
            )
            .with_deadline(policy);
            let mut out = [0.0f32];
            // Two panicking batches trip the breaker.
            r.try_score_batch(&[1.0], &mut out).unwrap();
            assert!(!r.is_degraded());
            r.try_score_batch(&[1.0], &mut out).unwrap();
            assert!(r.is_degraded());
            assert_eq!(r.stats().fallback_activations, 1);
            // Three fallback batches pass before the next probe.
            for _ in 0..3 {
                r.try_score_batch(&[1.0], &mut out).unwrap();
                assert_eq!(out, [101.0]);
            }
            // Probe 1 (healthy now) and probe 2 → recovery.
            r.try_score_batch(&[2.0], &mut out).unwrap();
            assert_eq!(out, [2.0]);
            assert!(r.is_degraded(), "one good probe is not enough");
            r.try_score_batch(&[3.0], &mut out).unwrap();
            assert_eq!(out, [3.0]);
            assert!(!r.is_degraded());
            assert_eq!(r.stats().recoveries, 1);
            assert_eq!(r.stats().probes, 2);
            assert_eq!(r.stats().panics_caught, 2);
        });
    }

    #[test]
    fn per_batch_deadline_drives_the_forecaster_veto_without_a_policy() {
        // No static DeadlinePolicy: the per-batch deadline alone must
        // arm the forecaster veto and report Fallback.
        let mut r = RobustScorer::new(Stub::new(1, 0.0), Stub::new(1, 100.0), "r")
            .with_forecaster(|n: usize| Some(Duration::from_micros(n as u64)));
        let rows = vec![1.0f32; 100];
        let mut out = [0.0f32; 100];
        let by = r
            .try_score_batch_deadline(&rows, &mut out, Some(Duration::from_micros(50)))
            .unwrap();
        assert_eq!(by, ServedBy::Fallback);
        assert_eq!(r.stats().forecast_degrades, 1);
        assert_eq!(out[0], 101.0);
        // A generous per-batch deadline lets the primary through.
        let by = r
            .try_score_batch_deadline(&rows, &mut out, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(by, ServedBy::Primary);
        assert_eq!(out[0], 1.0);
        // No deadline at all: plain primary serving.
        let by = r.try_score_batch_deadline(&rows, &mut out, None).unwrap();
        assert_eq!(by, ServedBy::Primary);
    }

    #[test]
    fn per_batch_deadline_tightens_but_never_loosens_the_policy() {
        let mut r = RobustScorer::new(Stub::new(1, 0.0), Stub::new(1, 100.0), "r")
            .with_deadline(DeadlinePolicy::with_deadline(Duration::from_micros(80)))
            .with_forecaster(|_n: usize| Some(Duration::from_micros(100)));
        let mut out = [0.0f32; 1];
        // Forecast 100µs > policy 80µs: vetoed even with a loose 1s
        // per-batch deadline (the policy still binds).
        let by = r
            .try_score_batch_deadline(&[1.0], &mut out, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(by, ServedBy::Fallback);
        assert_eq!(r.stats().forecast_degrades, 1);
    }

    #[test]
    fn per_batch_deadline_misses_trip_the_default_hysteresis() {
        quiet_panics(|| {
            // Primary panics; a per-batch deadline (no static policy) must
            // still drive the trip-after-2 default state machine.
            let mut r = RobustScorer::new(Panicky { nf: 1 }, Stub::new(1, 100.0), "r");
            let mut out = [0.0f32; 1];
            let d = Some(Duration::from_secs(1));
            assert_eq!(
                r.try_score_batch_deadline(&[1.0], &mut out, d).unwrap(),
                ServedBy::Fallback
            );
            assert!(!r.is_degraded());
            assert_eq!(
                r.try_score_batch_deadline(&[1.0], &mut out, d).unwrap(),
                ServedBy::Fallback
            );
            assert!(r.is_degraded(), "two unhealthy batches must trip");
            assert_eq!(r.stats().fallback_activations, 1);
        });
    }

    #[test]
    fn latency_histogram_percentiles_bound_the_samples() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.p50_us(), None);
        // 90 fast batches at ~10µs, 10 slow ones at ~1000µs.
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50_us().unwrap();
        let p95 = h.p95_us().unwrap();
        let p99 = h.p99_us().unwrap();
        // Bucket upper bounds: 10µs → 15, 1000µs → 1023.
        assert_eq!(p50, 15);
        assert_eq!(p95, 1023);
        assert_eq!(p99, 1023);
        let p999 = h.p999_us().unwrap();
        assert_eq!(p999, 1023);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        // Zero-duration batches land in the exact-zero bucket.
        let mut z = LatencyHistogram::default();
        z.record(Duration::ZERO);
        assert_eq!(z.p99_us(), Some(0));
    }

    #[test]
    fn zero_budget_takes_fallback_without_calling_primary() {
        /// Panics if ever called — proves the primary was skipped.
        struct MustNotRun;
        impl DocumentScorer for MustNotRun {
            fn num_features(&self) -> usize {
                1
            }
            fn score_batch(&mut self, _rows: &[f32], _out: &mut [f32]) {
                panic!("primary must not run with an already-expired budget");
            }
            fn name(&self) -> String {
                "must-not-run".into()
            }
        }
        let mut r = RobustScorer::new(MustNotRun, Stub::new(1, 100.0), "r");
        let mut out = [0.0f32; 2];
        let by = r
            .try_score_batch_deadline(&[1.0, 2.0], &mut out, Some(Duration::ZERO))
            .unwrap();
        assert_eq!(by, ServedBy::Fallback);
        assert_eq!(out, [101.0, 102.0]);
        // Counted as a (trivially predicted) forecast degrade; the primary
        // never ran, so no panic was caught and no miss was timed.
        let expected = ServeStats {
            batches: 1,
            fallback_batches: 1,
            forecast_degrades: 1,
            ..ServeStats::default()
        };
        assert_eq!(r.stats(), &expected);
    }

    #[test]
    fn zero_budget_also_skips_probes_while_degraded() {
        quiet_panics(|| {
            // Trip the breaker with two panicking batches, then reach the
            // probe point with a zero budget: the probe must be deferred,
            // not wasted on a guaranteed miss.
            let policy = DeadlinePolicy {
                deadline: Duration::from_secs(1),
                trip_after: 2,
                probe_after: 1,
                recover_after: 1,
            };
            let mut r = RobustScorer::new(Panicky { nf: 1 }, Stub::new(1, 100.0), "r")
                .with_deadline(policy);
            let mut out = [0.0f32; 1];
            r.try_score_batch(&[1.0], &mut out).unwrap();
            r.try_score_batch(&[1.0], &mut out).unwrap();
            assert!(r.is_degraded());
            // One fallback batch passes; the next would probe…
            r.try_score_batch(&[1.0], &mut out).unwrap();
            // …but a zero budget suppresses it.
            let by = r
                .try_score_batch_deadline(&[1.0], &mut out, Some(Duration::ZERO))
                .unwrap();
            assert_eq!(by, ServedBy::Fallback);
            assert_eq!(r.stats().probes, 0);
            assert_eq!(r.stats().panics_caught, 2);
        });
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut combined = LatencyHistogram::default();
        for us in [3u64, 10, 100, 1000] {
            a.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        for us in [5u64, 50, 5000] {
            b.record(Duration::from_micros(us));
            combined.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for p in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.percentile_us(p), combined.percentile_us(p));
        }
        // Merging an empty histogram is a no-op.
        let before = a.count();
        a.merge(&LatencyHistogram::default());
        assert_eq!(a.count(), before);
    }

    #[test]
    fn served_batches_record_latency_but_equality_ignores_it() {
        let mut r = RobustScorer::new(Stub::new(1, 0.0), Stub::new(1, 0.0), "r");
        let mut out = [0.0f32; 2];
        r.try_score_batch(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(r.stats().latency.count(), 1);
        // Rejected batches are not latency samples.
        let mut empty: [f32; 0] = [];
        let _ = r.try_score_batch(&[], &mut empty);
        assert_eq!(r.stats().latency.count(), 1);
        // Counter equality disregards the histogram.
        let expected = ServeStats {
            batches: 2,
            primary_batches: 1,
            rejected_batches: 1,
            ..ServeStats::default()
        };
        assert_eq!(r.stats(), &expected);
        let text = r.stats().to_string();
        assert!(text.contains("batch latency us"), "got: {text}");
    }

    #[test]
    fn stats_display_is_compact() {
        let r = RobustScorer::new(Stub::new(1, 0.0), Stub::new(1, 0.0), "r");
        let text = r.stats().to_string();
        assert!(text.contains("deadline misses"));
        assert!(text.contains("panics caught"));
    }
}
