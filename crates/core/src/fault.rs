//! Deterministic fault injection for serving-path tests.
//!
//! [`FaultInjectingScorer`] wraps any [`DocumentScorer`] and injects the
//! failure modes a production reranker actually sees — latency spikes,
//! NaN scores, panics, and short writes — on a deterministic schedule, so
//! the integration suite can prove that [`crate::serve::RobustScorer`]
//! survives each one and that its [`crate::serve::ServeStats`] counters
//! match the injected fault counts exactly.
//!
//! Faults come either from an explicit per-batch schedule
//! ([`FaultInjectingScorer::with_schedule`], cycled) or from a seeded
//! generator ([`FaultInjectingScorer::seeded`]) that draws one fault per
//! batch from configured probabilities. Both are reproducible: the same
//! schedule or seed yields the same fault sequence for the same batch
//! order. Injected counts are tracked in shared [`FaultCounters`] readable
//! after the scorer has been moved into a wrapper.

use crate::scoring::DocumentScorer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Score normally.
    None,
    /// Score normally, then stall for the given duration.
    LatencySpike(Duration),
    /// Score normally, then overwrite the first `count` outputs with NaN.
    NanOutputs {
        /// How many leading outputs to poison (clamped to the batch).
        count: usize,
    },
    /// Panic before writing any output.
    Panic,
    /// Score only the first `out.len() - missing` documents, leaving the
    /// tail of the output buffer untouched.
    ShortWrite {
        /// How many trailing outputs to leave unwritten.
        missing: usize,
    },
    /// Score normally, then shift every output by `offset` — a model
    /// whose scores are finite but systematically wrong. The lifecycle
    /// watchdog's score-divergence trigger exists for exactly this
    /// failure, which NaN/panic isolation cannot see.
    DivergentScores {
        /// Additive score shift applied to the whole batch.
        offset: f32,
    },
}

/// Shared tallies of injected faults (cloneable handle).
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Batches that ran without an injected fault.
    pub clean: AtomicU64,
    /// Injected latency spikes.
    pub latency_spikes: AtomicU64,
    /// Batches with poisoned NaN outputs.
    pub nan_batches: AtomicU64,
    /// Injected panics.
    pub panics: AtomicU64,
    /// Batches with an injected short write.
    pub short_writes: AtomicU64,
    /// Batches with an injected score divergence.
    pub divergent_batches: AtomicU64,
}

impl FaultCounters {
    /// Total batches that had any fault injected.
    pub fn total_faults(&self) -> u64 {
        self.latency_spikes.load(Ordering::Relaxed)
            + self.nan_batches.load(Ordering::Relaxed)
            + self.panics.load(Ordering::Relaxed)
            + self.short_writes.load(Ordering::Relaxed)
            + self.divergent_batches.load(Ordering::Relaxed)
    }
}

/// Probabilities for the seeded fault generator. Remaining mass scores
/// cleanly; the four probabilities must sum to at most 1.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of a latency spike.
    pub p_spike: f64,
    /// Stall duration of an injected spike.
    pub spike: Duration,
    /// Probability of NaN outputs.
    pub p_nan: f64,
    /// Probability of a panic.
    pub p_panic: f64,
    /// Probability of a short write.
    pub p_short: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            p_spike: 0.05,
            spike: Duration::from_millis(5),
            p_nan: 0.05,
            p_panic: 0.02,
            p_short: 0.03,
        }
    }
}

/// How the per-batch fault is chosen.
enum Plan {
    /// Explicit schedule, cycled by batch index.
    Schedule(Vec<Fault>),
    /// Seeded draw per batch.
    Random(Box<StdRng>, FaultConfig),
}

/// A [`DocumentScorer`] wrapper that misbehaves on purpose.
pub struct FaultInjectingScorer<S> {
    /// The well-behaved scorer underneath.
    pub inner: S,
    plan: Plan,
    batch_idx: usize,
    counters: Arc<FaultCounters>,
}

impl<S: DocumentScorer> FaultInjectingScorer<S> {
    /// Inject faults from an explicit schedule, cycled over batches.
    /// An empty schedule injects nothing.
    pub fn with_schedule(inner: S, schedule: Vec<Fault>) -> FaultInjectingScorer<S> {
        FaultInjectingScorer {
            inner,
            plan: Plan::Schedule(schedule),
            batch_idx: 0,
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// Inject faults drawn per batch from `config`'s probabilities using a
    /// seeded generator — deterministic for a fixed seed and batch order.
    pub fn seeded(inner: S, seed: u64, config: FaultConfig) -> FaultInjectingScorer<S> {
        let total = config.p_spike + config.p_nan + config.p_panic + config.p_short;
        assert!(
            (0.0..=1.0).contains(&total),
            "fault probabilities must sum to at most 1, got {total}"
        );
        FaultInjectingScorer {
            inner,
            plan: Plan::Random(Box::new(StdRng::seed_from_u64(seed)), config),
            batch_idx: 0,
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// Handle to the injected-fault tallies; stays readable after the
    /// scorer moves into a wrapper.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Which fault the next batch will get (advances the plan).
    fn next_fault(&mut self) -> Fault {
        let fault = match &mut self.plan {
            Plan::Schedule(s) => {
                if s.is_empty() {
                    Fault::None
                } else {
                    s[self.batch_idx % s.len()]
                }
            }
            Plan::Random(rng, cfg) => {
                let u: f64 = rng.random();
                if u < cfg.p_spike {
                    Fault::LatencySpike(cfg.spike)
                } else if u < cfg.p_spike + cfg.p_nan {
                    Fault::NanOutputs { count: 1 }
                } else if u < cfg.p_spike + cfg.p_nan + cfg.p_panic {
                    Fault::Panic
                } else if u < cfg.p_spike + cfg.p_nan + cfg.p_panic + cfg.p_short {
                    Fault::ShortWrite { missing: 1 }
                } else {
                    Fault::None
                }
            }
        };
        self.batch_idx += 1;
        fault
    }
}

impl<S: DocumentScorer> DocumentScorer for FaultInjectingScorer<S> {
    fn num_features(&self) -> usize {
        self.inner.num_features()
    }

    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let nf = self.inner.num_features();
        match self.next_fault() {
            Fault::None => {
                self.counters.clean.fetch_add(1, Ordering::Relaxed);
                self.inner.score_batch(rows, out);
            }
            Fault::LatencySpike(d) => {
                self.counters.latency_spikes.fetch_add(1, Ordering::Relaxed);
                self.inner.score_batch(rows, out);
                std::thread::sleep(d);
            }
            Fault::NanOutputs { count } => {
                self.counters.nan_batches.fetch_add(1, Ordering::Relaxed);
                self.inner.score_batch(rows, out);
                let k = count.max(1).min(out.len());
                out[..k].fill(f32::NAN);
            }
            Fault::Panic => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: panic at batch {}", self.batch_idx - 1);
            }
            Fault::ShortWrite { missing } => {
                self.counters.short_writes.fetch_add(1, Ordering::Relaxed);
                let n = out.len().saturating_sub(missing.max(1));
                self.inner.score_batch(&rows[..n * nf], &mut out[..n]);
            }
            Fault::DivergentScores { offset } => {
                self.counters
                    .divergent_batches
                    .fetch_add(1, Ordering::Relaxed);
                self.inner.score_batch(rows, out);
                for s in out.iter_mut() {
                    *s += offset;
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }
}

/// One injected *server-level* failure mode — the things that go wrong
/// around the scorer rather than inside it: a stalled dispatcher, a slow
/// response consumer, a poisoned batch, or a storm of requests whose
/// deadlines are already hopeless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// Dispatch normally.
    None,
    /// Stall the dispatcher for the given duration after the batch is
    /// taken from the queue — queued requests age (and may expire).
    QueueStall(Duration),
    /// Stall between scoring and response delivery — a slow consumer on
    /// the response path.
    SlowConsumer(Duration),
    /// Panic inside the batch execution scope. A well-built server fails
    /// only this batch's requests.
    BatchPanic,
    /// Collapse this batch's propagated deadline budget to zero, as if
    /// every request in it arrived already out of time.
    DeadlineStorm,
    /// Flood the observability trace sink with a burst of synthetic
    /// spans before this batch executes, forcing its rings to wrap. A
    /// well-built sink overwrites its oldest spans without ever blocking
    /// or reordering the dispatcher, so the batch's own requests are
    /// answered normally and the span accounting still balances.
    TracePressure {
        /// Synthetic spans to record before the batch executes.
        spans: u32,
    },
}

/// Shared tallies of injected server faults (cloneable handle).
#[derive(Debug, Default)]
pub struct ServerFaultCounters {
    /// Batches dispatched without an injected fault.
    pub clean: AtomicU64,
    /// Injected dispatcher stalls.
    pub queue_stalls: AtomicU64,
    /// Injected slow-consumer stalls.
    pub slow_consumers: AtomicU64,
    /// Injected batch panics.
    pub batch_panics: AtomicU64,
    /// Injected deadline storms.
    pub deadline_storms: AtomicU64,
    /// Injected trace-pressure span bursts.
    pub trace_pressure: AtomicU64,
}

impl ServerFaultCounters {
    /// Total batches that had any server fault injected.
    pub fn total_faults(&self) -> u64 {
        self.queue_stalls.load(Ordering::Relaxed)
            + self.slow_consumers.load(Ordering::Relaxed)
            + self.batch_panics.load(Ordering::Relaxed)
            + self.deadline_storms.load(Ordering::Relaxed)
            + self.trace_pressure.load(Ordering::Relaxed)
    }
}

/// Probabilities for the seeded server-fault generator. Remaining mass
/// dispatches cleanly; the four probabilities must sum to at most 1.
#[derive(Debug, Clone, Copy)]
pub struct ServerFaultConfig {
    /// Probability of a dispatcher stall.
    pub p_stall: f64,
    /// Stall duration of an injected dispatcher stall.
    pub stall: Duration,
    /// Probability of a slow consumer.
    pub p_slow: f64,
    /// Stall duration of an injected slow consumer.
    pub slow: Duration,
    /// Probability of a batch panic.
    pub p_panic: f64,
    /// Probability of a deadline storm.
    pub p_storm: f64,
}

impl Default for ServerFaultConfig {
    fn default() -> ServerFaultConfig {
        ServerFaultConfig {
            p_stall: 0.03,
            stall: Duration::from_millis(2),
            p_slow: 0.03,
            slow: Duration::from_millis(2),
            p_panic: 0.02,
            p_storm: 0.02,
        }
    }
}

/// How the per-batch server fault is chosen.
enum ServerPlan {
    /// Explicit schedule, indexed by batch (batches past the end of the
    /// schedule dispatch cleanly — a schedule is a finite script, not a
    /// cycle, so a test can poison exactly batch `k`).
    Schedule(Vec<ServerFault>),
    /// Seeded draw per batch.
    Random(Box<StdRng>, ServerFaultConfig),
}

/// A deterministic per-batch plan of [`ServerFault`]s that a serving
/// front-end consults at dispatch time — the server-level counterpart of
/// [`FaultInjectingScorer`]. The plan is advanced once per dispatched
/// batch; injected counts land in shared [`ServerFaultCounters`] readable
/// after the plan has been moved into the server.
pub struct ServerFaultPlan {
    plan: ServerPlan,
    batch_idx: usize,
    counters: Arc<ServerFaultCounters>,
}

impl ServerFaultPlan {
    /// Inject faults from an explicit per-batch schedule; batches beyond
    /// the schedule dispatch cleanly.
    pub fn from_schedule(schedule: Vec<ServerFault>) -> ServerFaultPlan {
        ServerFaultPlan {
            plan: ServerPlan::Schedule(schedule),
            batch_idx: 0,
            counters: Arc::new(ServerFaultCounters::default()),
        }
    }

    /// Inject faults drawn per batch from `config`'s probabilities using
    /// a seeded generator — deterministic for a fixed seed and batch
    /// order.
    ///
    /// # Panics
    /// Panics when the probabilities sum above 1.
    pub fn seeded(seed: u64, config: ServerFaultConfig) -> ServerFaultPlan {
        let total = config.p_stall + config.p_slow + config.p_panic + config.p_storm;
        assert!(
            (0.0..=1.0).contains(&total),
            "server fault probabilities must sum to at most 1, got {total}"
        );
        ServerFaultPlan {
            plan: ServerPlan::Random(Box::new(StdRng::seed_from_u64(seed)), config),
            batch_idx: 0,
            counters: Arc::new(ServerFaultCounters::default()),
        }
    }

    /// Handle to the injected-fault tallies; stays readable after the
    /// plan moves into a server.
    pub fn counters(&self) -> Arc<ServerFaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Which fault the next dispatched batch gets (advances the plan and
    /// counts the draw).
    pub fn next_fault(&mut self) -> ServerFault {
        let fault = match &mut self.plan {
            ServerPlan::Schedule(s) => s.get(self.batch_idx).copied().unwrap_or(ServerFault::None),
            ServerPlan::Random(rng, cfg) => {
                let u: f64 = rng.random();
                if u < cfg.p_stall {
                    ServerFault::QueueStall(cfg.stall)
                } else if u < cfg.p_stall + cfg.p_slow {
                    ServerFault::SlowConsumer(cfg.slow)
                } else if u < cfg.p_stall + cfg.p_slow + cfg.p_panic {
                    ServerFault::BatchPanic
                } else if u < cfg.p_stall + cfg.p_slow + cfg.p_panic + cfg.p_storm {
                    ServerFault::DeadlineStorm
                } else {
                    ServerFault::None
                }
            }
        };
        self.batch_idx += 1;
        let counter = match fault {
            ServerFault::None => &self.counters.clean,
            ServerFault::QueueStall(_) => &self.counters.queue_stalls,
            ServerFault::SlowConsumer(_) => &self.counters.slow_consumers,
            ServerFault::BatchPanic => &self.counters.batch_panics,
            ServerFault::DeadlineStorm => &self.counters.deadline_storms,
            ServerFault::TracePressure { .. } => &self.counters.trace_pressure,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        fault
    }
}

/// One way to damage a serialized model artifact before it is loaded —
/// the lifecycle counterpart of the scorer- and server-level faults
/// above: the registry's `load` validation must reject every one of
/// these while the incumbent keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactCorruption {
    /// Flip the low bit of the byte at `offset` (wrapped into the
    /// payload), breaking the checksum without changing the length.
    FlipByte {
        /// Byte offset to damage, taken modulo the artifact length.
        offset: usize,
    },
    /// Keep only the first `keep` bytes — a torn write.
    Truncate {
        /// Bytes to keep (clamped to the artifact length).
        keep: usize,
    },
    /// Replace the first line with a header no loader recognises.
    BadHeader,
}

/// Return a deterministically corrupted copy of `artifact`. The input is
/// never modified; the same corruption on the same bytes yields the same
/// damaged artifact, so load-rejection tests are exact.
pub fn corrupt_artifact(artifact: &[u8], corruption: ArtifactCorruption) -> Vec<u8> {
    match corruption {
        ArtifactCorruption::FlipByte { offset } => {
            let mut bytes = artifact.to_vec();
            if !bytes.is_empty() {
                let i = offset % bytes.len();
                bytes[i] ^= 0x01;
            }
            bytes
        }
        ArtifactCorruption::Truncate { keep } => artifact[..keep.min(artifact.len())].to_vec(),
        ArtifactCorruption::BadHeader => {
            let body_start = artifact
                .iter()
                .position(|&b| b == b'\n')
                .map_or(artifact.len(), |nl| nl + 1);
            let mut bytes = b"not-a-model v0\n".to_vec();
            bytes.extend_from_slice(&artifact[body_start..]);
            bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;

    impl DocumentScorer for Sum {
        fn num_features(&self) -> usize {
            1
        }
        fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
            out.copy_from_slice(rows);
        }
        fn name(&self) -> String {
            "sum".into()
        }
    }

    #[test]
    fn schedule_cycles_and_counts() {
        let mut f = FaultInjectingScorer::with_schedule(
            Sum,
            vec![Fault::None, Fault::NanOutputs { count: 1 }],
        );
        let counters = f.counters();
        let mut out = [0.0f32; 2];
        f.score_batch(&[1.0, 2.0], &mut out);
        assert_eq!(out, [1.0, 2.0]);
        f.score_batch(&[1.0, 2.0], &mut out);
        assert!(out[0].is_nan());
        assert_eq!(out[1], 2.0);
        f.score_batch(&[1.0, 2.0], &mut out); // schedule wraps to None
        assert_eq!(out, [1.0, 2.0]);
        assert_eq!(counters.clean.load(Ordering::Relaxed), 2);
        assert_eq!(counters.nan_batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.total_faults(), 1);
    }

    #[test]
    fn short_write_leaves_tail_untouched() {
        let mut f =
            FaultInjectingScorer::with_schedule(Sum, vec![Fault::ShortWrite { missing: 2 }]);
        let mut out = [7.0f32; 4];
        f.score_batch(&[1.0, 2.0, 3.0, 4.0], &mut out);
        assert_eq!(out, [1.0, 2.0, 7.0, 7.0]);
    }

    #[test]
    fn injected_panic_happens_after_counting() {
        let f = std::sync::Mutex::new(FaultInjectingScorer::with_schedule(Sum, vec![Fault::Panic]));
        let counters = f.lock().unwrap().counters();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(|| {
            let mut out = [0.0f32; 1];
            f.lock().unwrap().score_batch(&[1.0], &mut out);
        });
        std::panic::set_hook(prev);
        assert!(result.is_err());
        assert_eq!(counters.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn divergent_scores_shift_every_output_and_count() {
        let mut f = FaultInjectingScorer::with_schedule(
            Sum,
            vec![Fault::DivergentScores { offset: 10.0 }, Fault::None],
        );
        let counters = f.counters();
        let mut out = [0.0f32; 2];
        f.score_batch(&[1.0, 2.0], &mut out);
        assert_eq!(out, [11.0, 12.0]);
        f.score_batch(&[1.0, 2.0], &mut out);
        assert_eq!(out, [1.0, 2.0]);
        assert_eq!(counters.divergent_batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.total_faults(), 1);
    }

    #[test]
    fn corrupt_artifact_is_deterministic_and_nondestructive() {
        let artifact = b"dlr-mlp v2 crc32 deadbeef len 5\nhello".to_vec();
        let flipped = corrupt_artifact(&artifact, ArtifactCorruption::FlipByte { offset: 3 });
        assert_eq!(flipped.len(), artifact.len());
        assert_ne!(flipped, artifact);
        assert_eq!(
            flipped,
            corrupt_artifact(&artifact, ArtifactCorruption::FlipByte { offset: 3 }),
        );
        let torn = corrupt_artifact(&artifact, ArtifactCorruption::Truncate { keep: 10 });
        assert_eq!(torn, artifact[..10].to_vec());
        let bad = corrupt_artifact(&artifact, ArtifactCorruption::BadHeader);
        assert!(bad.starts_with(b"not-a-model v0\n"));
        assert!(bad.ends_with(b"hello"));
        // The input is untouched.
        assert!(artifact.starts_with(b"dlr-mlp"));
        // Degenerate inputs do not panic.
        assert!(corrupt_artifact(&[], ArtifactCorruption::FlipByte { offset: 7 }).is_empty());
        assert!(corrupt_artifact(&[], ArtifactCorruption::Truncate { keep: 9 }).is_empty());
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let seq = |seed: u64| -> Vec<Fault> {
            let mut f = FaultInjectingScorer::seeded(Sum, seed, FaultConfig::default());
            (0..50).map(|_| f.next_fault()).collect()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10), "different seeds should differ");
    }

    #[test]
    fn server_schedule_is_a_finite_script_with_exact_counts() {
        let mut p = ServerFaultPlan::from_schedule(vec![
            ServerFault::None,
            ServerFault::BatchPanic,
            ServerFault::DeadlineStorm,
            ServerFault::QueueStall(Duration::from_millis(1)),
            ServerFault::SlowConsumer(Duration::from_millis(1)),
        ]);
        let counters = p.counters();
        let drawn: Vec<ServerFault> = (0..8).map(|_| p.next_fault()).collect();
        assert_eq!(drawn[1], ServerFault::BatchPanic);
        assert_eq!(drawn[2], ServerFault::DeadlineStorm);
        // Past the end of the script the plan is clean, not cyclic.
        assert_eq!(drawn[5..], [ServerFault::None; 3]);
        assert_eq!(counters.batch_panics.load(Ordering::Relaxed), 1);
        assert_eq!(counters.deadline_storms.load(Ordering::Relaxed), 1);
        assert_eq!(counters.queue_stalls.load(Ordering::Relaxed), 1);
        assert_eq!(counters.slow_consumers.load(Ordering::Relaxed), 1);
        assert_eq!(counters.clean.load(Ordering::Relaxed), 4);
        assert_eq!(counters.total_faults(), 4);
    }

    #[test]
    fn trace_pressure_is_schedule_only_and_counted() {
        let mut p = ServerFaultPlan::from_schedule(vec![
            ServerFault::TracePressure { spans: 500 },
            ServerFault::None,
        ]);
        let counters = p.counters();
        assert_eq!(p.next_fault(), ServerFault::TracePressure { spans: 500 });
        assert_eq!(p.next_fault(), ServerFault::None);
        assert_eq!(counters.trace_pressure.load(Ordering::Relaxed), 1);
        assert_eq!(counters.total_faults(), 1);
        // The seeded generator never draws trace pressure — it exists to
        // script sink-wrap tests exactly.
        let mut seeded = ServerFaultPlan::seeded(11, ServerFaultConfig::default());
        assert!((0..200)
            .map(|_| seeded.next_fault())
            .all(|f| !matches!(f, ServerFault::TracePressure { .. })));
    }

    #[test]
    fn seeded_server_plan_is_deterministic() {
        let seq = |seed: u64| -> Vec<ServerFault> {
            let mut p = ServerFaultPlan::seeded(seed, ServerFaultConfig::default());
            (0..100).map(|_| p.next_fault()).collect()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4), "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_server_probabilities_rejected() {
        let cfg = ServerFaultConfig {
            p_stall: 0.6,
            p_panic: 0.6,
            ..Default::default()
        };
        ServerFaultPlan::seeded(1, cfg);
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_probabilities_rejected() {
        let cfg = FaultConfig {
            p_spike: 0.5,
            p_nan: 0.5,
            p_panic: 0.5,
            ..Default::default()
        };
        FaultInjectingScorer::seeded(Sum, 1, cfg);
    }
}
