//! The two experimental scenarios of §6.1.

use crate::pareto::ParetoPoint;

/// A model-admission rule for the effectiveness-efficiency comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// *High-quality retrieval*: only models whose NDCG@10 reaches
    /// `quality_frac` (the paper: 0.99) of the best tree-based
    /// competitor's are considered.
    HighQuality {
        /// Fraction of the top competitor's quality required.
        quality_frac: f64,
    },
    /// *Low-latency retrieval*: only models scoring within `max_us`
    /// µs/doc (the paper: 0.5 µs) are considered.
    LowLatency {
        /// Maximum admissible scoring time, µs/doc.
        max_us: f64,
    },
}

impl Scenario {
    /// The paper's high-quality setting (99% of the best competitor).
    pub fn paper_high_quality() -> Scenario {
        Scenario::HighQuality { quality_frac: 0.99 }
    }

    /// The paper's low-latency setting (0.5 µs/doc).
    pub fn paper_low_latency() -> Scenario {
        Scenario::LowLatency { max_us: 0.5 }
    }

    /// Whether `point` is admissible. `best_quality` is the NDCG@10 of
    /// the best tree-based competitor (used by the high-quality rule).
    pub fn admits(&self, best_quality: f64, point: &ParetoPoint) -> bool {
        match *self {
            Scenario::HighQuality { quality_frac } => point.ndcg10 >= quality_frac * best_quality,
            Scenario::LowLatency { max_us } => point.us_per_doc <= max_us,
        }
    }

    /// Filter a model set down to the admissible ones.
    pub fn filter<'a>(&self, best_quality: f64, points: &'a [ParetoPoint]) -> Vec<&'a ParetoPoint> {
        points
            .iter()
            .filter(|p| self.admits(best_quality, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(us: f64, ndcg: f64) -> ParetoPoint {
        ParetoPoint {
            name: String::new(),
            us_per_doc: us,
            ndcg10: ndcg,
        }
    }

    #[test]
    fn high_quality_rule() {
        let s = Scenario::paper_high_quality();
        let best = 0.5246;
        assert!(s.admits(best, &pt(100.0, 0.5246)));
        assert!(s.admits(best, &pt(100.0, 0.52))); // ≥ 99% of 0.5246
        assert!(!s.admits(best, &pt(0.1, 0.51))); // below the floor
    }

    #[test]
    fn low_latency_rule() {
        let s = Scenario::paper_low_latency();
        assert!(s.admits(0.0, &pt(0.4, 0.1)));
        assert!(s.admits(0.0, &pt(0.5, 0.1)));
        assert!(!s.admits(0.0, &pt(0.6, 0.99)));
    }

    #[test]
    fn filter_keeps_admissible() {
        let pts = vec![pt(0.3, 0.5), pt(0.7, 0.6), pt(0.45, 0.4)];
        let s = Scenario::paper_low_latency();
        let kept = s.filter(0.0, &pts);
        assert_eq!(kept.len(), 2);
    }
}
