#![forbid(unsafe_code)]
//! Audited numeric conversions for kernel code.
//!
//! `dlr-lint`'s `FLOAT_CAST` pass bans bare `as` float casts in kernel
//! modules, because `as` hides three decisions that matter in numeric
//! code: rounding (int → float above the mantissa), truncation toward
//! zero (float → int), and saturation/NaN handling. Each helper here
//! makes exactly one of those decisions and documents it, so a reviewer
//! reading a kernel sees *which* behaviour was chosen rather than
//! whatever `as` happens to do.
//!
//! All helpers are `#[inline]`, total (no panics for any input), and
//! deterministic.

/// `usize` → `f32`, rounding to nearest even above 2^24.
///
/// Use for sizes that feed ratios or time models where ±1 ulp is
/// irrelevant (loop trip counts, element totals). Not for exact
/// accounting — `f32` holds integers exactly only up to 16 777 216.
#[inline]
#[must_use]
pub fn approx_f32(x: usize) -> f32 {
    x as f32
}

/// `usize` → `f64`, exact for every value below 2^53.
///
/// On 64-bit hosts a `usize` above 2^53 (9e15) rounds to nearest even;
/// no realistic element count in this workspace gets there.
#[inline]
#[must_use]
pub fn approx_f64(x: usize) -> f64 {
    x as f64
}

/// `num / den` as `f64`, defined as `0.0` when `den == 0`.
///
/// The division-by-zero policy is the audited part: sparsity/density
/// ratios of empty matrices read as zero instead of NaN, which keeps
/// downstream predictors finite.
#[inline]
#[must_use]
pub fn ratio_f64(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        approx_f64(num) / approx_f64(den)
    }
}

/// `f64` → `usize`, truncating toward zero; NaN and negatives map to 0,
/// values beyond `usize::MAX` saturate.
///
/// This is the behaviour of `as` since Rust 1.45 (saturating casts) with
/// the NaN → 0 case made explicit in the name.
#[inline]
#[must_use]
pub fn trunc_usize(x: f64) -> usize {
    if x.is_nan() {
        0
    } else {
        x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_f32_is_exact_below_2_pow_24() {
        assert_eq!(approx_f32(0), 0.0);
        assert_eq!(approx_f32(16_777_216), 16_777_216.0);
        assert_eq!(approx_f32(12345), 12345.0);
    }

    #[test]
    fn approx_f64_is_exact_for_workspace_scales() {
        assert_eq!(approx_f64(0), 0.0);
        assert_eq!(approx_f64(1 << 40), (1u64 << 40) as f64);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio_f64(3, 4), 0.75);
        assert_eq!(ratio_f64(5, 0), 0.0);
        assert_eq!(ratio_f64(0, 7), 0.0);
    }

    #[test]
    fn trunc_usize_is_total() {
        assert_eq!(trunc_usize(3.9), 3);
        assert_eq!(trunc_usize(-1.5), 0);
        assert_eq!(trunc_usize(f64::NAN), 0);
        assert_eq!(trunc_usize(f64::INFINITY), usize::MAX);
    }
}
