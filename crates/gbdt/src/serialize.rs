//! Plain-text (de)serialization of ensembles.
//!
//! A small line-oriented format in the spirit of LightGBM's model dumps,
//! so trained forests can be stored, shipped, and reloaded without any
//! non-approved dependency. `f32` values are written with Rust's
//! shortest-exact formatting, so round-trips are bit-identical.
//!
//! ```text
//! dlr-ensemble v1
//! features <n>
//! base <f32>
//! trees <count>
//! tree <internal_nodes> <leaves>
//! node <feature> <threshold> <left> <right>     (× internal_nodes)
//! leaf <value>                                  (× leaves)
//! ```

use crate::ensemble::Ensemble;
use crate::tree::RegressionTree;
use std::io::{BufRead, Write};

/// Errors loading a serialized ensemble.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelParseError {
    /// The header line is missing or names an unknown format/version.
    BadHeader,
    /// A structural line was malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelParseError::BadHeader => write!(f, "not a dlr-ensemble v1 file"),
            ModelParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ModelParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ModelParseError {}

impl From<std::io::Error> for ModelParseError {
    fn from(e: std::io::Error) -> Self {
        ModelParseError::Io(e.to_string())
    }
}

/// A load failure annotated with the artifact's source path and the
/// format/version string its header claimed — the ensemble counterpart
/// of `dlr-nn`'s `MlpLoadError`, so registry rejection logs always name
/// the offending file.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleLoadError {
    /// Where the artifact was read from.
    pub path: String,
    /// Format/version string from the header line (`dlr-ensemble v1`),
    /// or `unknown` when no recognisable header was present.
    pub version: String,
    /// The underlying parse failure.
    pub error: ModelParseError,
}

impl std::fmt::Display for EnsembleLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model artifact {} (format {}): {}",
            self.path, self.version, self.error
        )
    }
}

impl std::error::Error for EnsembleLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// [`read_ensemble`] from a filesystem path, with failures annotated
/// with the path and claimed format version (see [`EnsembleLoadError`]).
///
/// # Errors
/// [`EnsembleLoadError`] wrapping the underlying [`ModelParseError`]
/// (including I/O failures reading the file).
pub fn read_ensemble_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<Ensemble, EnsembleLoadError> {
    let shown = path.as_ref().display().to_string();
    let bytes = std::fs::read(path.as_ref()).map_err(|e| EnsembleLoadError {
        path: shown.clone(),
        version: "unknown".into(),
        error: ModelParseError::Io(e.to_string()),
    })?;
    let version = if bytes.starts_with(b"dlr-ensemble v1") {
        "dlr-ensemble v1"
    } else {
        "unknown"
    };
    read_ensemble(std::io::Cursor::new(&bytes)).map_err(|error| EnsembleLoadError {
        path: shown,
        version: version.into(),
        error,
    })
}

/// Write `ensemble` in the text format.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_ensemble<W: Write>(ensemble: &Ensemble, mut w: W) -> Result<(), ModelParseError> {
    writeln!(w, "dlr-ensemble v1")?;
    writeln!(w, "features {}", ensemble.num_features())?;
    writeln!(w, "base {}", ensemble.base_score())?;
    writeln!(w, "trees {}", ensemble.num_trees())?;
    for tree in ensemble.trees() {
        writeln!(w, "tree {} {}", tree.num_internal(), tree.num_leaves())?;
        for n in 0..tree.num_internal() {
            writeln!(
                w,
                "node {} {} {} {}",
                tree.feature[n], tree.threshold[n], tree.left[n], tree.right[n]
            )?;
        }
        for &v in tree.leaf_values() {
            writeln!(w, "leaf {v}")?;
        }
    }
    Ok(())
}

/// Line cursor with error positions.
struct Lines<R: BufRead> {
    inner: std::io::Lines<R>,
    line: usize,
}

impl<R: BufRead> Lines<R> {
    fn next_line(&mut self) -> Result<String, ModelParseError> {
        self.line += 1;
        match self.inner.next() {
            Some(Ok(l)) => Ok(l),
            Some(Err(e)) => Err(e.into()),
            None => Err(ModelParseError::Malformed {
                line: self.line,
                message: "unexpected end of file".into(),
            }),
        }
    }

    fn expect_kv<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, ModelParseError> {
        let line = self.next_line()?;
        let rest = line
            .strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| ModelParseError::Malformed {
                line: self.line,
                message: format!("expected `{key} <value>`, got {line:?}"),
            })?;
        rest.trim().parse().map_err(|_| ModelParseError::Malformed {
            line: self.line,
            message: format!("bad value for {key}: {rest:?}"),
        })
    }
}

/// Read an ensemble written by [`write_ensemble`].
///
/// # Errors
/// [`ModelParseError`] on any structural problem.
pub fn read_ensemble<R: BufRead>(r: R) -> Result<Ensemble, ModelParseError> {
    let mut lines = Lines {
        inner: r.lines(),
        line: 0,
    };
    if lines.next_line()? != "dlr-ensemble v1" {
        return Err(ModelParseError::BadHeader);
    }
    let features: usize = lines.expect_kv("features")?;
    let base: f32 = lines.expect_kv("base")?;
    let trees: usize = lines.expect_kv("trees")?;
    let mut ensemble = Ensemble::new(features, base);
    for _ in 0..trees {
        let header = lines.next_line()?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        let bad = |lines: &Lines<R>, msg: &str| ModelParseError::Malformed {
            line: lines.line,
            message: msg.to_string(),
        };
        if parts.len() != 3 || parts[0] != "tree" {
            return Err(bad(&lines, "expected `tree <internal> <leaves>`"));
        }
        let internal: usize = parts[1]
            .parse()
            .map_err(|_| bad(&lines, "bad internal count"))?;
        let leaves: usize = parts[2]
            .parse()
            .map_err(|_| bad(&lines, "bad leaf count"))?;
        if leaves != internal + 1 {
            return Err(bad(&lines, "a binary tree needs leaves = internal + 1"));
        }
        let mut feature = Vec::with_capacity(internal);
        let mut threshold = Vec::with_capacity(internal);
        let mut left = Vec::with_capacity(internal);
        let mut right = Vec::with_capacity(internal);
        for _ in 0..internal {
            let l = lines.next_line()?;
            let p: Vec<&str> = l.split_whitespace().collect();
            if p.len() != 5 || p[0] != "node" {
                return Err(bad(
                    &lines,
                    "expected `node <feature> <threshold> <left> <right>`",
                ));
            }
            feature.push(p[1].parse().map_err(|_| bad(&lines, "bad feature"))?);
            threshold.push(p[2].parse().map_err(|_| bad(&lines, "bad threshold"))?);
            left.push(p[3].parse().map_err(|_| bad(&lines, "bad left ref"))?);
            right.push(p[4].parse().map_err(|_| bad(&lines, "bad right ref"))?);
        }
        let mut leaf_values = Vec::with_capacity(leaves);
        for _ in 0..leaves {
            let l = lines.next_line()?;
            let v = l
                .strip_prefix("leaf ")
                .ok_or_else(|| bad(&lines, "expected `leaf <value>`"))?;
            leaf_values.push(
                v.trim()
                    .parse()
                    .map_err(|_| bad(&lines, "bad leaf value"))?,
            );
        }
        ensemble.push(RegressionTree::from_raw(
            feature,
            threshold,
            left,
            right,
            leaf_values,
        ));
    }
    Ok(ensemble)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::leaf_ref;
    use std::io::Cursor;

    fn sample() -> Ensemble {
        let mut e = Ensemble::new(3, 0.125);
        e.push(RegressionTree::from_raw(
            vec![0, 2],
            vec![0.5, -1.25],
            vec![1, leaf_ref(0)],
            vec![leaf_ref(2), leaf_ref(1)],
            vec![0.1, -0.2, 0.3],
        ));
        e.push(RegressionTree::constant(7.5));
        e
    }

    #[test]
    fn roundtrip_is_exact() {
        let e = sample();
        let mut buf = Vec::new();
        write_ensemble(&e, &mut buf).unwrap();
        let back = read_ensemble(Cursor::new(&buf)).unwrap();
        assert_eq!(e, back);
        // Predictions identical.
        for row in [[0.0f32, 0.0, 0.0], [1.0, 2.0, -3.0], [0.5, 0.0, -1.25]] {
            assert_eq!(e.predict(&row), back.predict(&row));
        }
    }

    #[test]
    fn roundtrip_preserves_awkward_floats() {
        let mut e = Ensemble::new(1, f32::MIN_POSITIVE);
        e.push(RegressionTree::from_raw(
            vec![0],
            vec![1.000_000_1],
            vec![leaf_ref(0)],
            vec![leaf_ref(1)],
            vec![-0.000_012_3, 1e30],
        ));
        let mut buf = Vec::new();
        write_ensemble(&e, &mut buf).unwrap();
        let back = read_ensemble(Cursor::new(&buf)).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_ensemble(Cursor::new("lightgbm v3\n")).unwrap_err();
        assert_eq!(err, ModelParseError::BadHeader);
    }

    #[test]
    fn truncated_file_reports_line() {
        let e = sample();
        let mut buf = Vec::new();
        write_ensemble(&e, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(6).collect::<Vec<_>>().join("\n");
        let err = read_ensemble(Cursor::new(truncated)).unwrap_err();
        assert!(matches!(err, ModelParseError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn path_load_error_names_file_and_version() {
        let dir = std::env::temp_dir().join(format!("dlr-ensemble-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Good file round-trips.
        let e = sample();
        let mut buf = Vec::new();
        write_ensemble(&e, &mut buf).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, &buf).unwrap();
        assert_eq!(read_ensemble_from_path(&good).unwrap(), e);

        // Corrupt body: error names the file and the claimed version.
        let text = String::from_utf8(buf.clone())
            .unwrap()
            .replace("node 0", "node x");
        let bad = dir.join("corrupt.txt");
        std::fs::write(&bad, text).unwrap();
        let err = read_ensemble_from_path(&bad).unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("corrupt.txt"), "{shown}");
        assert!(shown.contains("dlr-ensemble v1"), "{shown}");
        assert!(matches!(err.error, ModelParseError::Malformed { .. }));

        // Foreign header: version reported as unknown.
        let alien = dir.join("alien.txt");
        std::fs::write(&alien, "lightgbm v3\n").unwrap();
        let err = read_ensemble_from_path(&alien).unwrap_err();
        assert_eq!(err.version, "unknown");
        assert_eq!(err.error, ModelParseError::BadHeader);

        // Missing file: I/O failure still names the path.
        let gone = dir.join("missing.txt");
        let err = read_ensemble_from_path(&gone).unwrap_err();
        assert!(err.to_string().contains("missing.txt"), "{err}");
        assert!(matches!(err.error, ModelParseError::Io(_)));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_node_line_rejected() {
        let e = sample();
        let mut buf = Vec::new();
        write_ensemble(&e, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("node 0", "node x");
        let err = read_ensemble(Cursor::new(text)).unwrap_err();
        match err {
            ModelParseError::Malformed { message, .. } => {
                assert!(message.contains("feature"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
