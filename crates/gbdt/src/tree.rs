//! Single regression trees.
//!
//! Flat arrays, no boxed nodes: internal node `i` stores a feature, a
//! threshold and two child references. A child reference ≥ 0 indexes
//! another internal node; a negative reference `r` denotes leaf
//! `-(r + 1)`. The test is `x[feature] <= threshold` → left (LightGBM
//! convention). Leaves are numbered in left-to-right (in-order) position,
//! which is what QuickScorer's bitvector masks index.

/// Child reference: `>= 0` internal node index, `< 0` leaf `-(r+1)`.
pub type NodeRef = i32;

/// Encode a leaf index as a [`NodeRef`].
#[inline]
pub fn leaf_ref(leaf: usize) -> NodeRef {
    -(leaf as i32) - 1
}

/// Decode a [`NodeRef`] into `Ok(internal)` or `Err(leaf)`.
#[inline]
pub fn decode_ref(r: NodeRef) -> Result<usize, usize> {
    if r >= 0 {
        Ok(r as usize)
    } else {
        Err((-r - 1) as usize)
    }
}

/// A binary regression tree over dense feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    /// Split feature per internal node.
    pub(crate) feature: Vec<u32>,
    /// Split threshold per internal node (`x <= t` goes left).
    pub(crate) threshold: Vec<f32>,
    /// Left child per internal node.
    pub(crate) left: Vec<NodeRef>,
    /// Right child per internal node.
    pub(crate) right: Vec<NodeRef>,
    /// Output value per leaf, indexed by left-to-right leaf position.
    pub(crate) leaf_values: Vec<f32>,
}

impl RegressionTree {
    /// A tree with a single leaf (a constant).
    pub fn constant(value: f32) -> RegressionTree {
        RegressionTree {
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_values: vec![value],
        }
    }

    /// Build from raw arrays.
    ///
    /// # Panics
    /// Panics when array lengths are inconsistent (an internal-node count
    /// of `n` requires exactly `n + 1` leaves in a binary tree) — these
    /// are constructor misuse, not data errors.
    pub fn from_raw(
        feature: Vec<u32>,
        threshold: Vec<f32>,
        left: Vec<NodeRef>,
        right: Vec<NodeRef>,
        leaf_values: Vec<f32>,
    ) -> RegressionTree {
        assert_eq!(feature.len(), threshold.len());
        assert_eq!(feature.len(), left.len());
        assert_eq!(feature.len(), right.len());
        assert_eq!(
            leaf_values.len(),
            feature.len() + 1,
            "a binary tree with {} internal nodes needs {} leaves",
            feature.len(),
            feature.len() + 1
        );
        RegressionTree {
            feature,
            threshold,
            left,
            right,
            leaf_values,
        }
    }

    /// Number of leaves.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.leaf_values.len()
    }

    /// Number of internal (decision) nodes.
    #[inline]
    pub fn num_internal(&self) -> usize {
        self.feature.len()
    }

    /// Leaf output values, indexed by leaf position.
    #[inline]
    pub fn leaf_values(&self) -> &[f32] {
        &self.leaf_values
    }

    /// Mutable leaf values (used to fold the learning rate in).
    #[inline]
    pub fn leaf_values_mut(&mut self) -> &mut [f32] {
        &mut self.leaf_values
    }

    /// Root reference (leaf 0 for constant trees, internal 0 otherwise).
    #[inline]
    fn root(&self) -> NodeRef {
        if self.feature.is_empty() {
            leaf_ref(0)
        } else {
            0
        }
    }

    /// Index of the exit leaf for a document.
    #[inline]
    pub fn exit_leaf(&self, x: &[f32]) -> usize {
        let mut r = self.root();
        loop {
            match decode_ref(r) {
                Ok(node) => {
                    r = if x[self.feature[node] as usize] <= self.threshold[node] {
                        self.left[node]
                    } else {
                        self.right[node]
                    };
                }
                Err(leaf) => return leaf,
            }
        }
    }

    /// Predicted value for a document (classic root-to-leaf traversal).
    #[inline]
    pub fn predict(&self, x: &[f32]) -> f32 {
        self.leaf_values[self.exit_leaf(x)]
    }

    /// Maximum root-to-leaf depth (a constant tree has depth 0).
    pub fn depth(&self) -> usize {
        fn go(t: &RegressionTree, r: NodeRef) -> usize {
            match decode_ref(r) {
                Ok(n) => 1 + go(t, t.left[n]).max(go(t, t.right[n])),
                Err(_) => 0,
            }
        }
        go(self, self.root())
    }

    /// `(feature, threshold)` of every internal node. The distillation
    /// augmentation (§3) collects these split points per feature.
    pub fn splits(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.feature
            .iter()
            .zip(&self.threshold)
            .map(|(&f, &t)| (f, t))
    }

    /// Structural layout used by QuickScorer: for every internal node, the
    /// contiguous range of leaf positions in its **left** subtree — the
    /// leaves that become unreachable when the node's test is *false*.
    pub fn layout(&self) -> TreeLayout {
        let mut left_leaf_range = vec![(0usize, 0usize); self.num_internal()];
        // In-order DFS assigning leaf positions; for each internal node the
        // left subtree occupies positions [enter_count, after_left_count).
        fn go(
            t: &RegressionTree,
            r: NodeRef,
            next_leaf: &mut usize,
            ranges: &mut [(usize, usize)],
        ) {
            match decode_ref(r) {
                Ok(n) => {
                    let start = *next_leaf;
                    go(t, t.left[n], next_leaf, ranges);
                    ranges[n] = (start, *next_leaf);
                    go(t, t.right[n], next_leaf, ranges);
                }
                Err(_) => {
                    *next_leaf += 1;
                }
            }
        }
        let mut next = 0usize;
        go(self, self.root(), &mut next, &mut left_leaf_range);
        debug_assert_eq!(next, self.num_leaves());
        TreeLayout { left_leaf_range }
    }
}

/// Per-internal-node leaf ranges (see [`RegressionTree::layout`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLayout {
    /// For internal node `n`, the half-open range of leaf positions under
    /// its left child.
    pub left_leaf_range: Vec<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example tree:
    ///
    /// ```text
    ///            n0: f0 <= 0.5
    ///           /            \
    ///     n1: f1 <= 2.0     leaf2 (30)
    ///       /        \
    ///   leaf0 (10) leaf1 (20)
    /// ```
    fn sample() -> RegressionTree {
        RegressionTree::from_raw(
            vec![0, 1],
            vec![0.5, 2.0],
            vec![1, leaf_ref(0)],
            vec![leaf_ref(2), leaf_ref(1)],
            vec![10.0, 20.0, 30.0],
        )
    }

    #[test]
    fn prediction_follows_tests() {
        let t = sample();
        assert_eq!(t.predict(&[0.0, 1.0]), 10.0); // left, left
        assert_eq!(t.predict(&[0.0, 3.0]), 20.0); // left, right
        assert_eq!(t.predict(&[1.0, 0.0]), 30.0); // right
    }

    #[test]
    fn boundary_goes_left() {
        let t = sample();
        assert_eq!(t.predict(&[0.5, 2.0]), 10.0); // `<=` on both nodes
    }

    #[test]
    fn constant_tree() {
        let t = RegressionTree::constant(7.5);
        assert_eq!(t.predict(&[1.0, 2.0, 3.0]), 7.5);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn depth_and_counts() {
        let t = sample();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.num_internal(), 2);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn layout_left_ranges() {
        let t = sample();
        let l = t.layout();
        // n0's left subtree holds leaves {0, 1}; n1's holds {0}.
        assert_eq!(l.left_leaf_range, vec![(0, 2), (0, 1)]);
    }

    #[test]
    fn splits_listed() {
        let t = sample();
        let s: Vec<(u32, f32)> = t.splits().collect();
        assert_eq!(s, vec![(0, 0.5), (1, 2.0)]);
    }

    #[test]
    fn leaf_ref_roundtrip() {
        for leaf in 0..100 {
            assert_eq!(decode_ref(leaf_ref(leaf)), Err(leaf));
        }
        assert_eq!(decode_ref(5), Ok(5));
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn leaf_count_validated() {
        RegressionTree::from_raw(
            vec![0],
            vec![0.0],
            vec![leaf_ref(0)],
            vec![leaf_ref(1)],
            vec![1.0],
        );
    }
}
