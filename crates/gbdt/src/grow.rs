//! Leaf-wise (best-first) histogram tree growing.
//!
//! The learner LightGBM popularized and the paper trains with: at every
//! step, split the leaf with the largest gain anywhere in the tree, until
//! `max_leaves` is reached or no split clears the regularization
//! constraints. Gains and leaf values use the second-order (gradient +
//! hessian) formulation, so the same grower serves both MART (MSE) and
//! LambdaMART (λ-gradients).
//!
//! Histograms are accumulated once per leaf and children reuse the
//! classic subtraction trick — build the smaller child from its documents,
//! derive the sibling as `parent − child` — keeping growth near
//! `O(docs × features × log leaves)` per tree.

use crate::binning::{BinnedDataset, FeatureBinner};
use crate::tree::{leaf_ref, NodeRef, RegressionTree};

/// Regularization and size constraints for tree growth.
///
/// Field names follow LightGBM, which the paper tunes
/// (`min_sum_hessian_in_leaf`, `min_data_in_leaf`, `max_depth`, §6.1).
#[derive(Debug, Clone, Copy)]
pub struct GrowthParams {
    /// Maximum number of leaves (64 for competitor models, 256 for
    /// teachers in the paper).
    pub max_leaves: usize,
    /// Maximum depth; `0` means unlimited.
    pub max_depth: usize,
    /// Minimum documents per leaf.
    pub min_data_in_leaf: usize,
    /// Minimum summed hessian per leaf.
    pub min_sum_hessian_in_leaf: f64,
    /// L2 regularization added to the hessian in gains and leaf values.
    pub lambda_l2: f64,
}

impl Default for GrowthParams {
    fn default() -> Self {
        GrowthParams {
            max_leaves: 64,
            max_depth: 0,
            min_data_in_leaf: 20,
            min_sum_hessian_in_leaf: 1e-3,
            lambda_l2: 0.0,
        }
    }
}

/// Histogram over all features' bins for one leaf.
#[derive(Debug, Clone)]
struct Histogram {
    /// Per bin: summed gradient.
    grad: Vec<f64>,
    /// Per bin: summed hessian.
    hess: Vec<f64>,
    /// Per bin: document count.
    count: Vec<u32>,
}

impl Histogram {
    fn zeros(total_bins: usize) -> Histogram {
        Histogram {
            grad: vec![0.0; total_bins],
            hess: vec![0.0; total_bins],
            count: vec![0; total_bins],
        }
    }

    /// `self = parent - sibling` (the subtraction trick).
    fn subtract_from(&mut self, parent: &Histogram, sibling: &Histogram) {
        for i in 0..self.grad.len() {
            self.grad[i] = parent.grad[i] - sibling.grad[i];
            self.hess[i] = parent.hess[i] - sibling.hess[i];
            self.count[i] = parent.count[i] - sibling.count[i];
        }
    }
}

/// Candidate split of a leaf.
#[derive(Debug, Clone, Copy)]
struct SplitInfo {
    gain: f64,
    feature: usize,
    /// Last bin going left; the real-valued threshold is its upper bound.
    bin: usize,
}

/// A leaf under construction.
#[derive(Debug)]
struct Leaf {
    docs: Vec<u32>,
    hist: Histogram,
    sum_grad: f64,
    sum_hess: f64,
    depth: usize,
    best: Option<SplitInfo>,
}

/// Node arena entry while the tree is being built.
enum BuildNode {
    Internal {
        feature: u32,
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// Grows one regression tree from per-document gradients and hessians.
pub struct TreeGrower<'a> {
    binned: &'a BinnedDataset,
    binner: &'a FeatureBinner,
    params: GrowthParams,
    /// Start offset of each feature's bins in the flat histogram.
    offsets: Vec<usize>,
    total_bins: usize,
}

impl<'a> TreeGrower<'a> {
    /// Create a grower over a binned dataset.
    pub fn new(binned: &'a BinnedDataset, binner: &'a FeatureBinner, params: GrowthParams) -> Self {
        let nf = binner.num_features();
        let mut offsets = Vec::with_capacity(nf);
        let mut total = 0usize;
        for f in 0..nf {
            offsets.push(total);
            total += binner.num_bins(f);
        }
        TreeGrower {
            binned,
            binner,
            params,
            offsets,
            total_bins: total,
        }
    }

    /// Grow a tree fitting `-grad/hess` on the documents in `doc_ids`.
    ///
    /// `grad`/`hess` are indexed by *global* document id. The returned
    /// tree's leaf values are the raw Newton steps `-G/(H+λ)`; the booster
    /// folds the learning rate in afterwards.
    ///
    /// # Panics
    /// Panics when `doc_ids` is empty or gradients are shorter than the
    /// largest document id.
    pub fn grow(&self, grad: &[f64], hess: &[f64], doc_ids: &[u32]) -> RegressionTree {
        assert!(!doc_ids.is_empty(), "cannot grow a tree on zero documents");
        let root_leaf = self.make_leaf(doc_ids.to_vec(), grad, hess, 0);
        let mut leaves: Vec<Option<Leaf>> = vec![Some(root_leaf)];
        // Arena with a placeholder root; leaf slot i in `arena_of_leaf`
        // tracks where each live leaf will sit in the final tree.
        let mut arena: Vec<BuildNode> = vec![BuildNode::Leaf { value: 0.0 }];
        let mut arena_of_leaf: Vec<usize> = vec![0];
        let mut num_live = 1usize;

        while num_live < self.params.max_leaves {
            // Pick the splittable leaf with the best gain.
            let mut best_leaf = None;
            let mut best_gain = 0.0f64;
            for (li, leaf) in leaves.iter().enumerate() {
                if let Some(l) = leaf {
                    if let Some(s) = l.best {
                        if s.gain > best_gain {
                            best_gain = s.gain;
                            best_leaf = Some(li);
                        }
                    }
                }
            }
            let Some(li) = best_leaf else { break };
            let leaf = leaves[li].take().expect("selected leaf is live");
            let split = leaf.best.expect("selected leaf has a split");

            // Partition documents by the split.
            let mut left_docs = Vec::new();
            let mut right_docs = Vec::new();
            for &d in &leaf.docs {
                if self.binned.doc(d as usize)[split.feature] as usize <= split.bin {
                    left_docs.push(d);
                } else {
                    right_docs.push(d);
                }
            }
            debug_assert!(!left_docs.is_empty() && !right_docs.is_empty());

            // Histogram subtraction: build the smaller child from its
            // documents, derive the other from the parent.
            let depth = leaf.depth + 1;
            let small_is_left = left_docs.len() <= right_docs.len();
            let (small_docs, big_docs) = if small_is_left {
                (left_docs, right_docs)
            } else {
                (right_docs, left_docs)
            };
            let small = self.make_leaf(small_docs, grad, hess, depth);
            let mut big = Leaf {
                docs: big_docs,
                hist: Histogram::zeros(self.total_bins),
                sum_grad: leaf.sum_grad - small.sum_grad,
                sum_hess: leaf.sum_hess - small.sum_hess,
                depth,
                best: None,
            };
            big.hist.subtract_from(&leaf.hist, &small.hist);
            big.best = self.find_best_split(&big);

            let (left, right) = if small_is_left {
                (small, big)
            } else {
                (big, small)
            };

            // Wire the arena: replace the leaf's slot with an internal node.
            let slot = arena_of_leaf[li];
            let left_slot = arena.len();
            arena.push(BuildNode::Leaf { value: 0.0 });
            let right_slot = arena.len();
            arena.push(BuildNode::Leaf { value: 0.0 });
            arena[slot] = BuildNode::Internal {
                feature: split.feature as u32,
                threshold: self.binner.bin_upper(split.feature, split.bin),
                left: left_slot,
                right: right_slot,
            };
            leaves[li] = Some(left);
            arena_of_leaf[li] = left_slot;
            leaves.push(Some(right));
            arena_of_leaf.push(right_slot);
            num_live += 1;
        }

        // Write final leaf values into the arena.
        for (li, leaf) in leaves.iter().enumerate() {
            if let Some(l) = leaf {
                let v = self.leaf_value(l.sum_grad, l.sum_hess);
                arena[arena_of_leaf[li]] = BuildNode::Leaf { value: v };
            }
        }
        flatten(&arena)
    }

    fn make_leaf(&self, docs: Vec<u32>, grad: &[f64], hess: &[f64], depth: usize) -> Leaf {
        let mut hist = Histogram::zeros(self.total_bins);
        let mut sum_grad = 0.0;
        let mut sum_hess = 0.0;
        for &d in &docs {
            let di = d as usize;
            let (g, h) = (grad[di], hess[di]);
            sum_grad += g;
            sum_hess += h;
            let bins = self.binned.doc(di);
            for (f, &b) in bins.iter().enumerate() {
                let idx = self.offsets[f] + b as usize;
                hist.grad[idx] += g;
                hist.hess[idx] += h;
                hist.count[idx] += 1;
            }
        }
        let mut leaf = Leaf {
            docs,
            hist,
            sum_grad,
            sum_hess,
            depth,
            best: None,
        };
        leaf.best = self.find_best_split(&leaf);
        leaf
    }

    #[inline]
    fn score(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.lambda_l2)
    }

    fn leaf_value(&self, g: f64, h: f64) -> f32 {
        let denom = h + self.params.lambda_l2;
        if denom <= 0.0 {
            0.0
        } else {
            (-g / denom) as f32
        }
    }

    fn find_best_split(&self, leaf: &Leaf) -> Option<SplitInfo> {
        if self.params.max_depth > 0 && leaf.depth >= self.params.max_depth {
            return None;
        }
        if leaf.docs.len() < 2 * self.params.min_data_in_leaf.max(1) {
            return None;
        }
        let parent_score = self.score(leaf.sum_grad, leaf.sum_hess);
        let total_count = leaf.docs.len() as u32;
        let mut best: Option<SplitInfo> = None;
        for f in 0..self.binner.num_features() {
            let nb = self.binner.num_bins(f);
            if nb < 2 {
                continue;
            }
            let base = self.offsets[f];
            let mut gl = 0.0f64;
            let mut hl = 0.0f64;
            let mut cl = 0u32;
            // Split after bin b: bins <= b go left.
            for b in 0..nb - 1 {
                gl += leaf.hist.grad[base + b];
                hl += leaf.hist.hess[base + b];
                cl += leaf.hist.count[base + b];
                let cr = total_count - cl;
                if (cl as usize) < self.params.min_data_in_leaf {
                    continue;
                }
                if (cr as usize) < self.params.min_data_in_leaf {
                    break;
                }
                let gr = leaf.sum_grad - gl;
                let hr = leaf.sum_hess - hl;
                if hl < self.params.min_sum_hessian_in_leaf
                    || hr < self.params.min_sum_hessian_in_leaf
                {
                    continue;
                }
                let gain = self.score(gl, hl) + self.score(gr, hr) - parent_score;
                if gain > best.map_or(1e-10, |s| s.gain) {
                    best = Some(SplitInfo {
                        gain,
                        feature: f,
                        bin: b,
                    });
                }
            }
        }
        best
    }
}

/// Flatten the build arena into a [`RegressionTree`], assigning leaf
/// positions in left-to-right (in-order) order.
fn flatten(arena: &[BuildNode]) -> RegressionTree {
    let mut feature = Vec::new();
    let mut threshold = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut leaf_values = Vec::new();

    fn go(
        arena: &[BuildNode],
        slot: usize,
        feature: &mut Vec<u32>,
        threshold: &mut Vec<f32>,
        left: &mut Vec<NodeRef>,
        right: &mut Vec<NodeRef>,
        leaf_values: &mut Vec<f32>,
    ) -> NodeRef {
        match &arena[slot] {
            BuildNode::Leaf { value } => {
                leaf_values.push(*value);
                leaf_ref(leaf_values.len() - 1)
            }
            BuildNode::Internal {
                feature: f,
                threshold: t,
                left: l,
                right: r,
            } => {
                let me = feature.len();
                feature.push(*f);
                threshold.push(*t);
                left.push(0);
                right.push(0);
                let lref = go(arena, *l, feature, threshold, left, right, leaf_values);
                left[me] = lref;
                let rref = go(arena, *r, feature, threshold, left, right, leaf_values);
                right[me] = rref;
                me as NodeRef
            }
        }
    }
    let root_is_leaf = matches!(arena[0], BuildNode::Leaf { .. });
    if root_is_leaf {
        if let BuildNode::Leaf { value } = arena[0] {
            return RegressionTree::constant(value);
        }
    }
    go(
        arena,
        0,
        &mut feature,
        &mut threshold,
        &mut left,
        &mut right,
        &mut leaf_values,
    );
    RegressionTree::from_raw(feature, threshold, left, right, leaf_values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::DatasetBuilder;

    /// One feature, labels form a step function at x = 5.
    fn step_dataset() -> dlr_data::Dataset {
        let mut b = DatasetBuilder::new(1);
        let xs: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|&x| if x <= 5.0 { 0.0 } else { 1.0 })
            .collect();
        b.push_query(1, &xs, &ys).unwrap();
        b.finish()
    }

    fn mse_grad_hess(d: &dlr_data::Dataset, preds: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let grad: Vec<f64> = d
            .labels()
            .iter()
            .zip(preds)
            .map(|(&y, &p)| p - y as f64)
            .collect();
        let hess = vec![1.0f64; d.num_docs()];
        (grad, hess)
    }

    #[test]
    fn learns_a_step_function() {
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 64);
        let binned = binner.bin_dataset(&d);
        let (grad, hess) = mse_grad_hess(&d, &vec![0.0; d.num_docs()]);
        let params = GrowthParams {
            max_leaves: 2,
            min_data_in_leaf: 1,
            ..Default::default()
        };
        let grower = TreeGrower::new(&binned, &binner, params);
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        let tree = grower.grow(&grad, &hess, &docs);
        assert_eq!(tree.num_leaves(), 2);
        // The single split should separate the step.
        assert!(
            tree.predict(&[1.0]) < 0.2,
            "left leaf ~0, got {}",
            tree.predict(&[1.0])
        );
        assert!(
            tree.predict(&[9.0]) > 0.8,
            "right leaf ~1, got {}",
            tree.predict(&[9.0])
        );
        let (f, t) = tree.splits().next().unwrap();
        assert_eq!(f, 0);
        assert!((4.0..6.5).contains(&t), "threshold near the step, got {t}");
    }

    #[test]
    fn respects_max_leaves() {
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 64);
        let binned = binner.bin_dataset(&d);
        let (grad, hess) = mse_grad_hess(&d, &vec![0.0; d.num_docs()]);
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        for max_leaves in [2usize, 4, 8, 16] {
            let params = GrowthParams {
                max_leaves,
                min_data_in_leaf: 1,
                ..Default::default()
            };
            let tree = TreeGrower::new(&binned, &binner, params).grow(&grad, &hess, &docs);
            assert!(tree.num_leaves() <= max_leaves);
        }
    }

    #[test]
    fn respects_max_depth() {
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 64);
        let binned = binner.bin_dataset(&d);
        let (grad, hess) = mse_grad_hess(&d, &vec![0.0; d.num_docs()]);
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        let params = GrowthParams {
            max_leaves: 64,
            max_depth: 2,
            min_data_in_leaf: 1,
            ..Default::default()
        };
        let tree = TreeGrower::new(&binned, &binner, params).grow(&grad, &hess, &docs);
        assert!(tree.depth() <= 2, "depth {} > 2", tree.depth());
    }

    #[test]
    fn min_data_blocks_tiny_splits() {
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 64);
        let binned = binner.bin_dataset(&d);
        let (grad, hess) = mse_grad_hess(&d, &vec![0.0; d.num_docs()]);
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        let params = GrowthParams {
            max_leaves: 64,
            min_data_in_leaf: 60, // each side would need 60 of 100 docs
            ..Default::default()
        };
        let tree = TreeGrower::new(&binned, &binner, params).grow(&grad, &hess, &docs);
        assert_eq!(tree.num_leaves(), 1, "no split should satisfy min_data");
    }

    #[test]
    fn pure_leaf_values_are_newton_steps() {
        // With MSE gradients from zero predictions, the Newton step equals
        // the mean label within the leaf.
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 64);
        let binned = binner.bin_dataset(&d);
        let (grad, hess) = mse_grad_hess(&d, &vec![0.0; d.num_docs()]);
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        let params = GrowthParams {
            max_leaves: 2,
            min_data_in_leaf: 1,
            ..Default::default()
        };
        let tree = TreeGrower::new(&binned, &binner, params).grow(&grad, &hess, &docs);
        let left = tree.predict(&[0.0]);
        let right = tree.predict(&[10.0]);
        assert!((left - 0.0).abs() < 0.15);
        assert!((right - 1.0).abs() < 0.15);
    }

    #[test]
    fn two_feature_interaction_gets_two_levels() {
        // Label = XOR-ish: y = 1 iff (x0 > 0.5) != (x1 > 0.5).
        let mut b = DatasetBuilder::new(2);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x0 = i as f32 / 20.0;
                let x1 = j as f32 / 20.0;
                feats.extend_from_slice(&[x0, x1]);
                labels.push(f32::from((x0 > 0.5) != (x1 > 0.5)));
            }
        }
        b.push_query(1, &feats, &labels).unwrap();
        let d = b.finish();
        let binner = FeatureBinner::fit(&d, 32);
        let binned = binner.bin_dataset(&d);
        let grad: Vec<f64> = d.labels().iter().map(|&y| -(y as f64)).collect();
        let hess = vec![1.0f64; d.num_docs()];
        let docs: Vec<u32> = (0..d.num_docs() as u32).collect();
        let params = GrowthParams {
            max_leaves: 4,
            min_data_in_leaf: 5,
            ..Default::default()
        };
        let tree = TreeGrower::new(&binned, &binner, params).grow(&grad, &hess, &docs);
        assert_eq!(tree.num_leaves(), 4);
        // All four quadrants predicted correctly (leaf value = mean label).
        assert!(tree.predict(&[0.2, 0.2]) < 0.3);
        assert!(tree.predict(&[0.8, 0.8]) < 0.3);
        assert!(tree.predict(&[0.2, 0.8]) > 0.7);
        assert!(tree.predict(&[0.8, 0.2]) > 0.7);
    }

    #[test]
    #[should_panic(expected = "zero documents")]
    fn empty_docs_panics() {
        let d = step_dataset();
        let binner = FeatureBinner::fit(&d, 8);
        let binned = binner.bin_dataset(&d);
        TreeGrower::new(&binned, &binner, GrowthParams::default()).grow(&[], &[], &[]);
    }
}
