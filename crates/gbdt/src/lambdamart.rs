//! LambdaMART: listwise learning to rank with boosted trees (§2.1).
//!
//! Combines λ-gradients (Burges' LambdaRank heuristic: RankNet's pairwise
//! cross-entropy gradient scaled by the |ΔNDCG| of swapping the pair) with
//! the histogram tree grower. This is the algorithm LightGBM implements
//! and the paper uses to train all tree-based competitors and teachers.
//!
//! For each query and each document pair `(i, j)` with `label_i >
//! label_j`:
//!
//! ```text
//! ρ    = 1 / (1 + exp(σ·(s_i − s_j)))
//! λ_ij = σ · |ΔNDCG_ij| · ρ            (gradient magnitude)
//! h_ij = σ² · |ΔNDCG_ij| · ρ·(1 − ρ)   (hessian)
//! ```
//!
//! `grad_i −= λ_ij`, `grad_j += λ_ij`, and both docs accumulate `h_ij`.
//! Trees then fit the Newton step `−G/(H+λ₂)` per leaf. Pairs are counted
//! only when at least one document ranks above the truncation level
//! (LightGBM's `lambdarank_truncation_level`).

use crate::binning::FeatureBinner;
use crate::ensemble::Ensemble;
use crate::grow::{GrowthParams, TreeGrower};
use dlr_data::Dataset;
use dlr_metrics::{evaluate_scores, EvalReport};

/// LambdaMART training configuration.
#[derive(Debug, Clone, Copy)]
pub struct LambdaMartParams {
    /// Maximum boosting rounds.
    pub num_trees: usize,
    /// Shrinkage.
    pub learning_rate: f32,
    /// Histogram resolution.
    pub max_bins: usize,
    /// Tree constraints (64 or 256 leaves in the paper).
    pub growth: GrowthParams,
    /// RankNet sigmoid steepness σ.
    pub sigma: f64,
    /// Pairs are skipped when both documents rank at or below this
    /// position (LightGBM default 30).
    pub truncation: usize,
    /// Stop when validation NDCG@10 has not improved for this many
    /// evaluations; `0` disables early stopping. The paper applies "an
    /// early stopping criterion on the validation loss every 100 trees".
    pub early_stopping_rounds: usize,
    /// Evaluate on validation every this many trees.
    pub eval_every: usize,
}

impl Default for LambdaMartParams {
    fn default() -> Self {
        LambdaMartParams {
            num_trees: 300,
            learning_rate: 0.1,
            max_bins: 255,
            growth: GrowthParams::default(),
            sigma: 1.0,
            truncation: 30,
            early_stopping_rounds: 3,
            eval_every: 100,
        }
    }
}

/// What happened during training: validation curve and the chosen
/// iteration.
#[derive(Debug, Clone, Default)]
pub struct TrainingLog {
    /// `(num_trees, validation NDCG@10)` at each evaluation point.
    pub valid_ndcg10: Vec<(usize, f64)>,
    /// Number of trees kept in the returned ensemble.
    pub best_trees: usize,
}

/// Trains LambdaMART ensembles.
#[derive(Debug, Clone, Copy, Default)]
pub struct LambdaMartTrainer {
    /// Training configuration.
    pub params: LambdaMartParams,
}

impl LambdaMartTrainer {
    /// Create a trainer.
    pub fn new(params: LambdaMartParams) -> LambdaMartTrainer {
        LambdaMartTrainer { params }
    }

    /// Train on `train`; if `valid` is given, track NDCG@10 and truncate
    /// the ensemble to the best evaluation point (early stopping).
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit(&self, train: &Dataset, valid: Option<&Dataset>) -> (Ensemble, TrainingLog) {
        assert!(train.num_docs() > 0, "cannot train on an empty dataset");
        let p = &self.params;
        let binner = FeatureBinner::fit(train, p.max_bins);
        let binned = binner.bin_dataset(train);
        let grower = TreeGrower::new(&binned, &binner, p.growth);

        let n = train.num_docs();
        let mut scores = vec![0.0f32; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        let doc_ids: Vec<u32> = (0..n as u32).collect();
        let idcg = per_query_idcg(train, p.truncation);

        let mut ensemble = Ensemble::new(train.num_features(), 0.0);
        let mut log = TrainingLog::default();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best_trees = 0usize;
        let mut evals_since_best = 0usize;

        for round in 0..p.num_trees {
            self.lambda_gradients(train, &scores, &idcg, &mut grad, &mut hess);
            let tree = grower.grow(&grad, &hess, &doc_ids);
            for (i, s) in scores.iter_mut().enumerate() {
                *s += tree.predict(train.doc(i)) * p.learning_rate;
            }
            ensemble.push_scaled(tree, p.learning_rate);

            let trees_so_far = round + 1;
            let is_eval_point =
                trees_so_far % p.eval_every.max(1) == 0 || trees_so_far == p.num_trees;
            if let (Some(v), true) = (valid, is_eval_point) {
                let report = eval_valid(&ensemble, v);
                let ndcg = report.mean_ndcg10();
                log.valid_ndcg10.push((trees_so_far, ndcg));
                if ndcg > best_ndcg {
                    best_ndcg = ndcg;
                    best_trees = trees_so_far;
                    evals_since_best = 0;
                } else {
                    evals_since_best += 1;
                    if p.early_stopping_rounds > 0 && evals_since_best >= p.early_stopping_rounds {
                        break;
                    }
                }
            }
        }

        if valid.is_some() && best_trees > 0 {
            ensemble.truncate(best_trees);
            log.best_trees = best_trees;
        } else {
            log.best_trees = ensemble.num_trees();
        }
        (ensemble, log)
    }

    /// Accumulate λ-gradients and hessians for every document.
    fn lambda_gradients(
        &self,
        train: &Dataset,
        scores: &[f32],
        idcg: &[f64],
        grad: &mut [f64],
        hess: &mut [f64],
    ) {
        let p = &self.params;
        grad.fill(0.0);
        hess.fill(0.0);
        let mut order: Vec<usize> = Vec::new();
        let mut pos_of: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for q in 0..train.num_queries() {
            if idcg[q] <= 0.0 {
                continue; // no relevant docs: every ranking is ideal
            }
            let r = train.query_range(q);
            let labels = &train.labels()[r.clone()];
            let q_scores = &scores[r.clone()];
            let nd = labels.len();
            // Current positions within the query.
            order.clear();
            order.extend(0..nd);
            order.sort_by(|&a, &b| {
                q_scores[b]
                    .partial_cmp(&q_scores[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            pos_of.clear();
            pos_of.resize(nd, 0);
            for (pos, &doc) in order.iter().enumerate() {
                pos_of[doc] = pos;
            }
            let inv_idcg = 1.0 / idcg[q];
            for i in 0..nd {
                for j in 0..nd {
                    if labels[i] <= labels[j] {
                        continue; // count each ordered pair once, i better
                    }
                    let (pi, pj) = (pos_of[i], pos_of[j]);
                    if pi >= p.truncation && pj >= p.truncation {
                        continue;
                    }
                    let delta = (gain(labels[i]) - gain(labels[j])).abs()
                        * (discount(pi, p.truncation) - discount(pj, p.truncation)).abs()
                        * inv_idcg;
                    let s_diff = (q_scores[i] - q_scores[j]) as f64;
                    let rho = 1.0 / (1.0 + (p.sigma * s_diff).exp());
                    let lambda = p.sigma * delta * rho;
                    let h = p.sigma * p.sigma * delta * rho * (1.0 - rho);
                    let (gi, gj) = (r.start + i, r.start + j);
                    grad[gi] -= lambda;
                    grad[gj] += lambda;
                    hess[gi] += h;
                    hess[gj] += h;
                }
            }
        }
        // Hessians of exactly zero (docs in degenerate queries) keep leaf
        // values finite through the grower's min-hessian constraint.
    }
}

#[inline]
fn gain(label: f32) -> f64 {
    (2.0f64).powf(label as f64) - 1.0
}

#[inline]
fn discount(pos: usize, truncation: usize) -> f64 {
    if pos < truncation {
        1.0 / ((pos + 2) as f64).log2()
    } else {
        0.0
    }
}

fn per_query_idcg(train: &Dataset, truncation: usize) -> Vec<f64> {
    (0..train.num_queries())
        .map(|q| {
            let r = train.query_range(q);
            let mut labels: Vec<f32> = train.labels()[r].to_vec();
            labels.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            labels
                .iter()
                .take(truncation)
                .enumerate()
                .map(|(i, &l)| gain(l) * discount(i, truncation))
                .sum()
        })
        .collect()
}

fn eval_valid(ensemble: &Ensemble, valid: &Dataset) -> EvalReport {
    let mut scores = vec![0.0f32; valid.num_docs()];
    ensemble.predict_batch(valid.features(), &mut scores);
    evaluate_scores(&scores, valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::{Split, SplitRatios, SyntheticConfig};
    use dlr_metrics::evaluate_scores;

    fn tiny_ltr() -> Split {
        let mut cfg = SyntheticConfig::msn30k_like(60);
        cfg.docs_per_query = 30;
        cfg.num_features = 20;
        cfg.num_informative = 8;
        let d = cfg.generate();
        Split::by_query(&d, SplitRatios::PAPER, 1).unwrap()
    }

    fn ndcg10(e: &Ensemble, d: &Dataset) -> f64 {
        let mut scores = vec![0.0f32; d.num_docs()];
        e.predict_batch(d.features(), &mut scores);
        evaluate_scores(&scores, d).mean_ndcg10()
    }

    #[test]
    fn beats_random_ranking_on_held_out_queries() {
        let split = tiny_ltr();
        let params = LambdaMartParams {
            num_trees: 30,
            growth: GrowthParams {
                max_leaves: 16,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            eval_every: 10,
            ..Default::default()
        };
        let (model, _) = LambdaMartTrainer::new(params).fit(&split.train, Some(&split.valid));
        let trained = ndcg10(&model, &split.test);
        // Random scores baseline.
        let random = {
            let scores: Vec<f32> = (0..split.test.num_docs())
                .map(|i| ((i * 2654435761) % 1000) as f32)
                .collect();
            evaluate_scores(&scores, &split.test).mean_ndcg10()
        };
        assert!(
            trained > random + 0.05,
            "trained {trained:.4} should clearly beat random {random:.4}"
        );
    }

    #[test]
    fn more_trees_do_not_hurt_training_ndcg() {
        let split = tiny_ltr();
        let growth = GrowthParams {
            max_leaves: 8,
            min_data_in_leaf: 5,
            ..Default::default()
        };
        let short = LambdaMartTrainer::new(LambdaMartParams {
            num_trees: 3,
            growth,
            early_stopping_rounds: 0,
            ..Default::default()
        })
        .fit(&split.train, None)
        .0;
        let long = LambdaMartTrainer::new(LambdaMartParams {
            num_trees: 40,
            growth,
            early_stopping_rounds: 0,
            ..Default::default()
        })
        .fit(&split.train, None)
        .0;
        assert!(ndcg10(&long, &split.train) >= ndcg10(&short, &split.train) - 1e-9);
    }

    #[test]
    fn early_stopping_truncates() {
        let split = tiny_ltr();
        let params = LambdaMartParams {
            num_trees: 60,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            eval_every: 5,
            early_stopping_rounds: 2,
            ..Default::default()
        };
        let (model, log) = LambdaMartTrainer::new(params).fit(&split.train, Some(&split.valid));
        assert_eq!(model.num_trees(), log.best_trees);
        assert!(!log.valid_ndcg10.is_empty());
        // The kept iteration is the argmax of the validation curve.
        let best = log
            .valid_ndcg10
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, log.best_trees);
    }

    #[test]
    fn respects_leaf_budget() {
        let split = tiny_ltr();
        let params = LambdaMartParams {
            num_trees: 5,
            growth: GrowthParams {
                max_leaves: 4,
                min_data_in_leaf: 2,
                ..Default::default()
            },
            early_stopping_rounds: 0,
            ..Default::default()
        };
        let (model, _) = LambdaMartTrainer::new(params).fit(&split.train, None);
        assert!(model.max_leaves() <= 4);
        assert_eq!(model.num_trees(), 5);
    }

    #[test]
    fn gradients_push_relevant_docs_up() {
        // One query, two docs, rel 1 vs 0, equal starting scores: the
        // relevant doc must get a negative gradient (loss decreases as its
        // score rises, since trees fit -grad).
        let mut b = dlr_data::DatasetBuilder::new(1);
        b.push_query(1, &[0.3, 0.7], &[1.0, 0.0]).unwrap();
        let d = b.finish();
        let trainer = LambdaMartTrainer::default();
        let idcg = per_query_idcg(&d, 30);
        let mut grad = vec![0.0; 2];
        let mut hess = vec![0.0; 2];
        trainer.lambda_gradients(&d, &[0.0, 0.0], &idcg, &mut grad, &mut hess);
        assert!(grad[0] < 0.0, "relevant doc gradient {}", grad[0]);
        assert!(grad[1] > 0.0, "irrelevant doc gradient {}", grad[1]);
        assert!(
            (grad[0] + grad[1]).abs() < 1e-12,
            "pairwise gradients balance"
        );
        assert!(hess[0] > 0.0 && hess[1] > 0.0);
    }
}
