//! Histogram binning of features.
//!
//! LightGBM's efficiency comes from replacing raw feature values with
//! small integer bin indices: split search then scans at most `max_bins`
//! histogram buckets per feature instead of sorting documents. We bin by
//! (approximate) quantiles over the training set, with each bin's *upper
//! bound* stored so bin boundaries translate back into real-valued split
//! thresholds for the final trees.

use dlr_data::Dataset;

/// Per-feature quantile binner.
#[derive(Debug, Clone)]
pub struct FeatureBinner {
    /// `upper[f][b]` = inclusive upper bound of bin `b` for feature `f`.
    /// The last bin of each feature is unbounded (stored as `f32::MAX`).
    upper: Vec<Vec<f32>>,
}

impl FeatureBinner {
    /// Learn bin boundaries from `dataset`, with at most `max_bins` bins
    /// per feature (LightGBM default 255).
    ///
    /// # Panics
    /// Panics when `max_bins < 2` or the dataset is empty — harness misuse.
    pub fn fit(dataset: &Dataset, max_bins: usize) -> FeatureBinner {
        assert!(max_bins >= 2, "need at least 2 bins");
        assert!(dataset.num_docs() > 0, "cannot bin an empty dataset");
        let nf = dataset.num_features();
        let nd = dataset.num_docs();
        let mut upper = Vec::with_capacity(nf);
        let mut column = vec![0.0f32; nd];
        for f in 0..nf {
            for (d, slot) in column.iter_mut().enumerate() {
                *slot = dataset.doc(d)[f];
            }
            column.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            upper.push(Self::boundaries(&column, max_bins));
        }
        FeatureBinner { upper }
    }

    /// Quantile boundaries over one sorted column. Duplicate boundaries
    /// (from heavy ties, e.g. zero-inflated features) are merged, so a
    /// feature may end up with fewer bins than `max_bins`.
    fn boundaries(sorted: &[f32], max_bins: usize) -> Vec<f32> {
        let n = sorted.len();
        let mut bounds: Vec<f32> = Vec::with_capacity(max_bins);
        for b in 1..max_bins {
            let idx = (n * b) / max_bins;
            let v = sorted[idx.min(n - 1)];
            if bounds.last().is_none_or(|&last| v > last) {
                bounds.push(v);
            }
        }
        // Final catch-all bin; if the last quantile bound already covers
        // the column maximum (e.g. a constant feature), widen it instead
        // of creating an empty top bin.
        let max_value = sorted[n - 1];
        match bounds.last_mut() {
            Some(last) if *last >= max_value => *last = f32::MAX,
            _ => bounds.push(f32::MAX),
        }
        bounds
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.upper.len()
    }

    /// Number of bins for feature `f`.
    pub fn num_bins(&self, f: usize) -> usize {
        self.upper[f].len()
    }

    /// Inclusive upper bound of bin `b` of feature `f` — the split
    /// threshold a tree stores when splitting after this bin.
    pub fn bin_upper(&self, f: usize, b: usize) -> f32 {
        self.upper[f][b]
    }

    /// Bin index of a raw value (binary search over upper bounds).
    #[inline]
    pub fn bin_of(&self, f: usize, v: f32) -> u16 {
        let ub = &self.upper[f];
        // First bin whose upper bound is >= v.
        let mut lo = 0usize;
        let mut hi = ub.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if v <= ub[mid] {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u16
    }

    /// Bin an entire dataset into a row-major `num_docs × num_features`
    /// `u16` matrix.
    pub fn bin_dataset(&self, dataset: &Dataset) -> BinnedDataset {
        let nf = self.num_features();
        let nd = dataset.num_docs();
        let mut bins = Vec::with_capacity(nd * nf);
        for d in 0..nd {
            let row = dataset.doc(d);
            for (f, &v) in row.iter().enumerate() {
                bins.push(self.bin_of(f, v));
            }
        }
        BinnedDataset {
            num_features: nf,
            bins,
        }
    }
}

/// A dataset's features replaced by bin indices.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    num_features: usize,
    /// Row-major `num_docs × num_features` bin indices.
    bins: Vec<u16>,
}

impl BinnedDataset {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.bins.len().checked_div(self.num_features).unwrap_or(0)
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Bin row of document `d`.
    #[inline]
    pub fn doc(&self, d: usize) -> &[u16] {
        &self.bins[d * self.num_features..(d + 1) * self.num_features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::DatasetBuilder;

    fn dataset(values: &[f32]) -> Dataset {
        let mut b = DatasetBuilder::new(1);
        let labels = vec![0.0; values.len()];
        b.push_query(1, values, &labels).unwrap();
        b.finish()
    }

    #[test]
    fn bins_are_monotone_in_value() {
        let d = dataset(&[1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0, 7.0, 6.0, 0.0]);
        let binner = FeatureBinner::fit(&d, 4);
        let mut last = 0u16;
        for v in [0.0, 1.5, 3.3, 6.6, 9.5] {
            let b = binner.bin_of(0, v);
            assert!(b >= last, "bin({v}) = {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn bin_upper_is_a_valid_threshold() {
        let d = dataset(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let binner = FeatureBinner::fit(&d, 4);
        // Every value <= bin_upper(its bin).
        for v in [1.0f32, 2.5, 5.0, 8.0] {
            let b = binner.bin_of(0, v) as usize;
            assert!(v <= binner.bin_upper(0, b));
            if b > 0 {
                assert!(v > binner.bin_upper(0, b - 1));
            }
        }
    }

    #[test]
    fn constant_feature_collapses_to_one_bin() {
        let d = dataset(&[3.0; 20]);
        let binner = FeatureBinner::fit(&d, 8);
        assert_eq!(binner.num_bins(0), 1);
        assert_eq!(binner.bin_of(0, 3.0), 0);
        assert_eq!(binner.bin_of(0, -100.0), 0);
    }

    #[test]
    fn extreme_values_land_in_edge_bins() {
        let d = dataset(&[1.0, 2.0, 3.0, 4.0]);
        let binner = FeatureBinner::fit(&d, 4);
        assert_eq!(binner.bin_of(0, f32::MIN), 0);
        let top = binner.bin_of(0, 1e30) as usize;
        assert_eq!(top, binner.num_bins(0) - 1);
    }

    #[test]
    fn binned_dataset_shape_and_content() {
        let mut b = DatasetBuilder::new(2);
        b.push_query(1, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[0.0, 1.0, 2.0])
            .unwrap();
        let d = b.finish();
        let binner = FeatureBinner::fit(&d, 3);
        let binned = binner.bin_dataset(&d);
        assert_eq!(binned.num_docs(), 3);
        assert_eq!(binned.num_features(), 2);
        // Larger raw values never get smaller bins.
        assert!(binned.doc(0)[0] <= binned.doc(1)[0]);
        assert!(binned.doc(1)[1] <= binned.doc(2)[1]);
    }

    #[test]
    fn max_bins_respected() {
        let vals: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let d = dataset(&vals);
        let binner = FeatureBinner::fit(&d, 16);
        assert!(binner.num_bins(0) <= 16);
        assert!(
            binner.num_bins(0) >= 8,
            "distinct values should yield many bins"
        );
    }
}
