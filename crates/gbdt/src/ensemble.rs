//! Additive ensembles of regression trees.
//!
//! The model object produced by MART/LambdaMART training and consumed by
//! QuickScorer and the distillation pipeline. The learning rate is folded
//! into leaf values at append time, so prediction is a plain sum over
//! trees and the QuickScorer encoding needs no extra scaling.

use crate::tree::RegressionTree;

/// An additive ensemble: `score(x) = base + Σ_t tree_t(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    base_score: f32,
    trees: Vec<RegressionTree>,
    num_features: usize,
}

impl Ensemble {
    /// Empty ensemble expecting `num_features` input features.
    pub fn new(num_features: usize, base_score: f32) -> Ensemble {
        Ensemble {
            base_score,
            trees: Vec::new(),
            num_features,
        }
    }

    /// Append a tree with its leaf values scaled by `learning_rate`.
    pub fn push_scaled(&mut self, mut tree: RegressionTree, learning_rate: f32) {
        for v in tree.leaf_values_mut() {
            *v *= learning_rate;
        }
        self.trees.push(tree);
    }

    /// Append a tree as-is.
    pub fn push(&mut self, tree: RegressionTree) {
        self.trees.push(tree);
    }

    /// Drop all trees after the first `n` (for early stopping: keep the
    /// best validation iteration).
    pub fn truncate(&mut self, n: usize) {
        self.trees.truncate(n);
    }

    /// Trees in the ensemble.
    #[inline]
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of trees.
    #[inline]
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Expected input feature count.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Base (prior) score added to every prediction.
    #[inline]
    pub fn base_score(&self) -> f32 {
        self.base_score
    }

    /// Maximum leaf count over all trees — decides whether QuickScorer
    /// can use single-word (≤ 64 leaves) bitvectors.
    pub fn max_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.num_leaves()).max().unwrap_or(0)
    }

    /// Score a single document by classic per-tree traversal.
    pub fn predict(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.num_features);
        self.base_score + self.trees.iter().map(|t| t.predict(x)).sum::<f32>()
    }

    /// Score a row-major batch (`n × num_features`) into `out`.
    ///
    /// # Panics
    /// Panics when the buffer shapes disagree.
    pub fn predict_batch(&self, features: &[f32], out: &mut [f32]) {
        assert_eq!(
            features.len(),
            out.len() * self.num_features,
            "batch shape mismatch"
        );
        for (row, o) in features.chunks_exact(self.num_features).zip(out.iter_mut()) {
            *o = self.predict(row);
        }
    }

    /// All split points of a feature across the ensemble, sorted and
    /// deduplicated — the lists the distillation augmentation builds (§3).
    pub fn split_points(&self, feature: usize) -> Vec<f32> {
        let mut pts: Vec<f32> = self
            .trees
            .iter()
            .flat_map(|t| t.splits())
            .filter(|&(f, _)| f as usize == feature)
            .map(|(_, t)| t)
            .filter(|t| t.is_finite())
            .collect();
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
        pts.dedup();
        pts
    }

    /// Total number of leaves across all trees.
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.num_leaves()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::leaf_ref;

    fn stump(feature: u32, threshold: f32, left: f32, right: f32) -> RegressionTree {
        RegressionTree::from_raw(
            vec![feature],
            vec![threshold],
            vec![leaf_ref(0)],
            vec![leaf_ref(1)],
            vec![left, right],
        )
    }

    #[test]
    fn additive_prediction() {
        let mut e = Ensemble::new(2, 0.5);
        e.push(stump(0, 1.0, 1.0, 2.0));
        e.push(stump(1, 0.0, 10.0, 20.0));
        assert_eq!(e.predict(&[0.5, -1.0]), 0.5 + 1.0 + 10.0);
        assert_eq!(e.predict(&[2.0, 1.0]), 0.5 + 2.0 + 20.0);
    }

    #[test]
    fn learning_rate_folded_into_leaves() {
        let mut e = Ensemble::new(1, 0.0);
        e.push_scaled(stump(0, 0.0, -4.0, 4.0), 0.25);
        assert_eq!(e.predict(&[-1.0]), -1.0);
        assert_eq!(e.predict(&[1.0]), 1.0);
    }

    #[test]
    fn batch_matches_single() {
        let mut e = Ensemble::new(2, 0.0);
        e.push(stump(0, 0.5, 1.0, 2.0));
        let batch = [0.0f32, 0.0, 1.0, 0.0];
        let mut out = [0.0f32; 2];
        e.predict_batch(&batch, &mut out);
        assert_eq!(out[0], e.predict(&[0.0, 0.0]));
        assert_eq!(out[1], e.predict(&[1.0, 0.0]));
    }

    #[test]
    fn split_points_sorted_dedup() {
        let mut e = Ensemble::new(1, 0.0);
        e.push(stump(0, 2.0, 0.0, 0.0));
        e.push(stump(0, 1.0, 0.0, 0.0));
        e.push(stump(0, 2.0, 0.0, 0.0));
        assert_eq!(e.split_points(0), vec![1.0, 2.0]);
        assert!(e.split_points(5).is_empty());
    }

    #[test]
    fn truncate_for_early_stopping() {
        let mut e = Ensemble::new(1, 0.0);
        for i in 0..5 {
            e.push(stump(0, 0.0, i as f32, i as f32));
        }
        e.truncate(2);
        assert_eq!(e.num_trees(), 2);
        assert_eq!(e.predict(&[0.0]), 0.0 + 1.0);
    }

    #[test]
    fn stats() {
        let mut e = Ensemble::new(1, 0.0);
        e.push(stump(0, 0.0, 0.0, 0.0));
        e.push(RegressionTree::constant(1.0));
        assert_eq!(e.max_leaves(), 2);
        assert_eq!(e.total_leaves(), 3);
    }
}
