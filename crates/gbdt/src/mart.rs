//! MART: gradient boosting with the MSE objective.
//!
//! Multiple Additive Regression Trees fitting plain regression targets.
//! For MSE, the gradient is `pred − target` and the hessian is 1, so each
//! tree fits residuals. Used in tests and as the regression engine behind
//! experiments that need a generic boosted regressor; the ranking models
//! of the paper are trained with [`crate::lambdamart`].

use crate::binning::FeatureBinner;
use crate::ensemble::Ensemble;
use crate::grow::{GrowthParams, TreeGrower};
use dlr_data::Dataset;

/// MART training configuration.
#[derive(Debug, Clone, Copy)]
pub struct MartParams {
    /// Number of boosting rounds.
    pub num_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// Histogram resolution.
    pub max_bins: usize,
    /// Tree growth constraints.
    pub growth: GrowthParams,
}

impl Default for MartParams {
    fn default() -> Self {
        MartParams {
            num_trees: 100,
            learning_rate: 0.1,
            max_bins: 255,
            growth: GrowthParams::default(),
        }
    }
}

/// Trains MART ensembles on arbitrary real-valued targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct MartTrainer {
    /// Training configuration.
    pub params: MartParams,
}

impl MartTrainer {
    /// Create a trainer with the given parameters.
    pub fn new(params: MartParams) -> MartTrainer {
        MartTrainer { params }
    }

    /// Fit `targets` (one per document of `data`) with boosted trees.
    ///
    /// The base score is the target mean, as is standard for MSE boosting.
    ///
    /// # Panics
    /// Panics when `targets.len() != data.num_docs()` or the dataset is
    /// empty.
    pub fn fit(&self, data: &Dataset, targets: &[f32]) -> Ensemble {
        assert_eq!(targets.len(), data.num_docs(), "one target per document");
        assert!(data.num_docs() > 0, "cannot train on an empty dataset");
        let binner = FeatureBinner::fit(data, self.params.max_bins);
        let binned = binner.bin_dataset(&data.clone());
        let base = targets.iter().sum::<f32>() / targets.len() as f32;
        let mut ensemble = Ensemble::new(data.num_features(), base);
        let n = data.num_docs();
        let mut preds = vec![base as f64; n];
        let doc_ids: Vec<u32> = (0..n as u32).collect();
        let hess = vec![1.0f64; n];
        let mut grad = vec![0.0f64; n];
        let grower = TreeGrower::new(&binned, &binner, self.params.growth);
        for _ in 0..self.params.num_trees {
            for ((g, &p), &t) in grad.iter_mut().zip(&preds).zip(targets) {
                *g = p - t as f64;
            }
            let tree = grower.grow(&grad, &hess, &doc_ids);
            // Update predictions with the *scaled* tree contribution.
            for (i, p) in preds.iter_mut().enumerate() {
                *p += (tree.predict(data.doc(i)) * self.params.learning_rate) as f64;
            }
            ensemble.push_scaled(tree, self.params.learning_rate);
        }
        ensemble
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_data::DatasetBuilder;

    fn wavy_dataset(n: usize) -> (Dataset, Vec<f32>) {
        let mut b = DatasetBuilder::new(2);
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let x0 = (i as f32) / n as f32 * 6.0;
            let x1 = ((i * 7) % n) as f32 / n as f32;
            feats.extend_from_slice(&[x0, x1]);
            targets.push(x0.sin() + 0.5 * x1);
        }
        let labels = vec![0.0; n];
        b.push_query(1, &feats, &labels).unwrap();
        (b.finish(), targets)
    }

    fn mse(e: &Ensemble, d: &Dataset, t: &[f32]) -> f64 {
        let mut s = 0.0;
        for (i, &ti) in t.iter().enumerate() {
            let err = (e.predict(d.doc(i)) - ti) as f64;
            s += err * err;
        }
        s / d.num_docs() as f64
    }

    #[test]
    fn boosting_reduces_training_error() {
        let (d, t) = wavy_dataset(400);
        let short = MartTrainer::new(MartParams {
            num_trees: 2,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            ..Default::default()
        })
        .fit(&d, &t);
        let long = MartTrainer::new(MartParams {
            num_trees: 60,
            growth: GrowthParams {
                max_leaves: 8,
                min_data_in_leaf: 5,
                ..Default::default()
            },
            ..Default::default()
        })
        .fit(&d, &t);
        let e_short = mse(&short, &d, &t);
        let e_long = mse(&long, &d, &t);
        assert!(e_long < e_short * 0.5, "short {e_short} long {e_long}");
        assert!(e_long < 0.02, "final training MSE too high: {e_long}");
    }

    #[test]
    fn base_score_is_target_mean() {
        let (d, t) = wavy_dataset(50);
        let e = MartTrainer::new(MartParams {
            num_trees: 0,
            ..Default::default()
        })
        .fit(&d, &t);
        let mean = t.iter().sum::<f32>() / t.len() as f32;
        assert!((e.base_score() - mean).abs() < 1e-5);
        assert_eq!(e.num_trees(), 0);
        assert_eq!(e.predict(d.doc(0)), e.base_score());
    }

    #[test]
    fn constant_targets_need_no_trees_to_fit() {
        let (d, _) = wavy_dataset(60);
        let t = vec![3.25f32; 60];
        let e = MartTrainer::new(MartParams {
            num_trees: 3,
            growth: GrowthParams {
                max_leaves: 4,
                min_data_in_leaf: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .fit(&d, &t);
        assert!(mse(&e, &d, &t) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "one target per document")]
    fn target_length_checked() {
        let (d, _) = wavy_dataset(10);
        MartTrainer::default().fit(&d, &[0.0; 3]);
    }
}
