#![forbid(unsafe_code)]
//! Gradient-boosted regression tree ensembles for learning to rank.
//!
//! This crate is the workspace's stand-in for LightGBM (§6.1 of the
//! paper): it trains ensembles of regression trees with the LambdaMART
//! algorithm — λ-gradients derived from NDCG swaps (Burges) driving a
//! histogram-based, leaf-wise tree learner — and also offers plain MART
//! regression (MSE objective), which the distillation pipeline uses in
//! tests.
//!
//! The produced [`Ensemble`] is the object every other part of the paper
//! consumes:
//!
//! * `dlr-quickscorer` re-encodes it into bitvector form for fast
//!   traversal (§2.2);
//! * `dlr-distill` uses it as the *teacher* whose scores the neural
//!   student approximates (§3, §5.1);
//! * the experiment harness trains forests of the paper's sizes
//!   (e.g. 878 trees × 64 leaves, 600 × 256) as competitors and teachers.
//!
//! Trees test `x[feature] <= threshold` to go left, matching LightGBM, and
//! leaves are numbered left-to-right — the ordering QuickScorer's masks
//! rely on.

pub mod binning;
pub mod ensemble;
pub mod grow;
pub mod lambdamart;
pub mod mart;
pub mod serialize;
pub mod tree;

pub use binning::{BinnedDataset, FeatureBinner};
pub use ensemble::Ensemble;
pub use grow::{GrowthParams, TreeGrower};
pub use lambdamart::{LambdaMartParams, LambdaMartTrainer, TrainingLog};
pub use mart::{MartParams, MartTrainer};
pub use serialize::{
    read_ensemble, read_ensemble_from_path, write_ensemble, EnsembleLoadError, ModelParseError,
};
pub use tree::{RegressionTree, TreeLayout};
