//! The Goto GEMM micro-kernel: an 8×8 register tile of C accumulated as
//! `kcb` rank-1 updates over packed panel strips (§4.1).
//!
//! The packed layout is the one `dlr-dense` produces: `astrip` holds 8
//! rows of A column-major per reduction step (zero-padded past the edge),
//! `bstrip` holds 8 columns of B row-major per step. Each reduction step
//! broadcasts one A element against one B vector — on AVX2 that is a
//! single `vfmadd231ps` per tile row, exactly the oneDNN inner loop.
//!
//! Numeric contract: the scalar and SSE2 paths perform the same
//! multiply-then-add per lane in the same order and are **bit-identical**.
//! The AVX2 path fuses the multiply-add (single rounding per step), so its
//! output differs from scalar by at most `kcb` half-ULP steps per element
//! — the documented ULP policy (see the crate docs).

use crate::dispatch::{supported, Isa};
use crate::LANES;

/// Micro-tile height (rows of A per tile).
pub const MR: usize = 8;
/// Micro-tile width (columns of B per tile).
pub const NR: usize = 8;

/// Accumulate `kcb` rank-1 updates of an `MR×NR` tile into
/// `C[row0.., col0..]` with edge clipping (`rows ≤ MR`, `cols ≤ NR`).
///
/// `astrip`/`bstrip` are one packed strip each (`kcb·MR` / `kcb·NR`
/// elements); `c` is the row-major output with leading dimension `ldc`.
/// An unsupported `isa` silently falls back to scalar, so the call is
/// total on every host.
///
/// # Panics
/// Panics when the strips are shorter than `kcb` steps, the tile exceeds
/// `MR×NR`, or the clipped tile does not fit inside `c`.
#[allow(clippy::too_many_arguments)]
pub fn micro_kernel_8x8(
    isa: Isa,
    astrip: &[f32],
    bstrip: &[f32],
    kcb: usize,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
) {
    assert!(astrip.len() >= kcb * MR, "A strip shorter than kcb steps");
    assert!(bstrip.len() >= kcb * NR, "B strip shorter than kcb steps");
    assert!(rows <= MR && cols <= NR, "tile exceeds MR x NR");
    if rows == 0 || cols == 0 {
        return;
    }
    assert!(cols <= ldc, "tile wider than the C leading dimension");
    assert!(
        (row0 + rows - 1) * ldc + col0 + cols <= c.len(),
        "tile out of C bounds"
    );
    let isa = if supported(isa) { isa } else { Isa::Scalar };
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: AVX2+FMA availability was checked by `supported`
            // above; the slice-length and tile-bounds asserts above
            // guarantee every pointer the kernel dereferences (strips up
            // to `kcb` steps, C rows `row0..row0+rows` clipped to `cols`)
            // stays inside the borrowed slices.
            unsafe {
                x86::micro_8x8_avx2(
                    astrip.as_ptr(),
                    bstrip.as_ptr(),
                    kcb,
                    c.as_mut_ptr().add(row0 * ldc + col0),
                    ldc,
                    rows,
                    cols,
                );
            }
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => {
            // SAFETY: SSE2 is the x86-64 baseline (checked by `supported`);
            // pointer validity follows from the same asserts as the AVX2
            // arm — the kernel touches at most `kcb*8` strip elements and
            // the clipped `rows x cols` window of C.
            unsafe {
                x86::micro_8x8_sse2(
                    astrip.as_ptr(),
                    bstrip.as_ptr(),
                    kcb,
                    c.as_mut_ptr().add(row0 * ldc + col0),
                    ldc,
                    rows,
                    cols,
                );
            }
        }
        _ => micro_8x8_scalar(astrip, bstrip, kcb, c, ldc, row0, col0, rows, cols),
    }
}

/// Portable fallback: the fixed-size accumulator-array loop the compiler
/// auto-vectorizes (the pre-dispatch kernel, kept as the semantic
/// reference all SIMD paths are tested against).
#[allow(clippy::too_many_arguments)]
fn micro_8x8_scalar(
    astrip: &[f32],
    bstrip: &[f32],
    kcb: usize,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kcb {
        let avec: &[f32] = &astrip[p * MR..p * MR + MR];
        let bvec: &[f32] = &bstrip[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = avec[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] += ai * bvec[j];
            }
        }
    }
    for i in 0..rows {
        let crow = &mut c[(row0 + i) * ldc + col0..(row0 + i) * ldc + col0 + cols];
        for (cv, &av) in crow.iter_mut().zip(&acc[i][..cols]) {
            *cv += av;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The hand-written kernels. Private: callable only through the
    //! dispatch wrapper above (enforced by dlr-lint's
    //! `SIMD_TARGET_FEATURE` rule).

    use core::arch::x86_64::*;

    /// AVX2+FMA 8×8 tile: 8 ymm accumulators, one broadcast+FMA per tile
    /// row per reduction step.
    ///
    /// # Safety
    /// Caller must ensure AVX2 and FMA are available, `astrip`/`bstrip`
    /// are readable for `kcb*8` floats, and `c` is writable for `rows`
    /// rows of `ldc` stride with `cols` valid lanes each.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn micro_8x8_avx2_impl(
        astrip: *const f32,
        bstrip: *const f32,
        kcb: usize,
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); 8];
        for p in 0..kcb {
            let b = _mm256_loadu_ps(bstrip.add(p * 8));
            let ap = astrip.add(p * 8);
            for (i, lane) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.add(i));
                *lane = _mm256_fmadd_ps(a, b, *lane);
            }
        }
        if cols == 8 {
            for (i, &lane) in acc.iter().enumerate().take(rows) {
                let cp = c.add(i * ldc);
                _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), lane));
            }
        } else {
            let mut spill = [0.0f32; 8];
            for (i, &lane) in acc.iter().enumerate().take(rows) {
                _mm256_storeu_ps(spill.as_mut_ptr(), lane);
                let cp = c.add(i * ldc);
                for (j, &s) in spill.iter().enumerate().take(cols) {
                    *cp.add(j) += s;
                }
            }
        }
    }

    /// Dispatch-table entry for the AVX2 tile.
    ///
    /// # Safety
    /// Same contract as [`micro_8x8_avx2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn micro_8x8_avx2(
        astrip: *const f32,
        bstrip: *const f32,
        kcb: usize,
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
    ) {
        // SAFETY: forwarded verbatim; the caller upholds the target
        // feature and pointer-validity contract.
        unsafe { micro_8x8_avx2_impl(astrip, bstrip, kcb, c, ldc, rows, cols) }
    }

    /// SSE2 8×8 tile as two 8×4 half-tiles (8 xmm accumulators each, so
    /// the tile stays in registers). Multiply-then-add per lane in scalar
    /// order: bit-identical to the scalar kernel.
    ///
    /// # Safety
    /// Caller must ensure `astrip`/`bstrip` are readable for `kcb*8`
    /// floats and `c` is writable for `rows` rows of `ldc` stride with
    /// `cols` valid lanes each (SSE2 itself is the x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn micro_8x8_sse2_impl(
        astrip: *const f32,
        bstrip: *const f32,
        kcb: usize,
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
    ) {
        for half in 0..2 {
            let base_row = half * 4;
            if base_row >= rows {
                break;
            }
            let mut acc = [[_mm_setzero_ps(); 2]; 4];
            for p in 0..kcb {
                let blo = _mm_loadu_ps(bstrip.add(p * 8));
                let bhi = _mm_loadu_ps(bstrip.add(p * 8 + 4));
                let ap = astrip.add(p * 8 + base_row);
                for (i, pair) in acc.iter_mut().enumerate() {
                    let a = _mm_set1_ps(*ap.add(i));
                    pair[0] = _mm_add_ps(pair[0], _mm_mul_ps(a, blo));
                    pair[1] = _mm_add_ps(pair[1], _mm_mul_ps(a, bhi));
                }
            }
            let half_rows = rows - base_row;
            let mut spill = [0.0f32; 8];
            for (i, pair) in acc.iter().enumerate().take(half_rows.min(4)) {
                _mm_storeu_ps(spill.as_mut_ptr(), pair[0]);
                _mm_storeu_ps(spill.as_mut_ptr().add(4), pair[1]);
                let cp = c.add((base_row + i) * ldc);
                for (j, &s) in spill.iter().enumerate().take(cols) {
                    *cp.add(j) += s;
                }
            }
        }
    }

    /// Dispatch-table entry for the SSE2 tile.
    ///
    /// # Safety
    /// Same contract as [`micro_8x8_sse2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn micro_8x8_sse2(
        astrip: *const f32,
        bstrip: *const f32,
        kcb: usize,
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
    ) {
        // SAFETY: forwarded verbatim; the caller upholds the pointer
        // contract and SSE2 is the x86-64 baseline.
        unsafe { micro_8x8_sse2_impl(astrip, bstrip, kcb, c, ldc, rows, cols) }
    }
}

// Keep the public LANES constant honest with the tile width.
const _: () = assert!(NR == LANES && MR == LANES);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    /// Build one packed strip pair + dirty C, run the kernel, and return C.
    fn run(isa: Isa, kcb: usize, rows: usize, cols: usize) -> Vec<f32> {
        let astrip: Vec<f32> = (0..kcb * MR)
            .map(|i| ((i * 7) % 13) as f32 * 0.25 - 1.0)
            .collect();
        let bstrip: Vec<f32> = (0..kcb * NR)
            .map(|i| ((i * 5) % 11) as f32 * 0.5 - 2.0)
            .collect();
        let ldc = 10;
        let mut c = vec![1.0f32; 9 * ldc];
        micro_kernel_8x8(isa, &astrip, &bstrip, kcb, &mut c, ldc, 1, 1, rows, cols);
        c
    }

    #[test]
    fn sse2_is_bit_identical_to_scalar() {
        if !dispatch::supported(Isa::Sse2) {
            return;
        }
        for kcb in [0usize, 1, 3, 8, 57] {
            for (rows, cols) in [(8, 8), (1, 8), (8, 1), (3, 5), (5, 3), (8, 7)] {
                assert_eq!(
                    run(Isa::Scalar, kcb, rows, cols),
                    run(Isa::Sse2, kcb, rows, cols),
                    "kcb={kcb} rows={rows} cols={cols}"
                );
            }
        }
    }

    #[test]
    fn avx2_matches_scalar_within_ulp_policy() {
        if !dispatch::supported(Isa::Avx2) {
            return;
        }
        for kcb in [1usize, 4, 33, 128] {
            for (rows, cols) in [(8, 8), (2, 8), (8, 3), (7, 7)] {
                let s = run(Isa::Scalar, kcb, rows, cols);
                let v = run(Isa::Avx2, kcb, rows, cols);
                for (a, b) in s.iter().zip(&v) {
                    let tol = kcb as f32 * f32::EPSILON * 16.0 * a.abs().max(1.0);
                    assert!((a - b).abs() <= tol, "kcb={kcb}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn untouched_c_region_stays_dirty() {
        let c = run(Isa::Scalar, 4, 2, 3);
        // Row 0 and column 0 are outside the (row0=1, col0=1) tile.
        assert!(c[..10].iter().all(|&v| v == 1.0));
        assert_eq!(c[10], 1.0);
        // Beyond the 2x3 tile too.
        assert_eq!(c[10 + 4], 1.0);
        assert_eq!(c[3 * 10 + 1], 1.0);
    }

    #[test]
    fn zero_sized_tiles_are_noops() {
        let before = vec![5.0f32; 40];
        let mut c = before.clone();
        micro_kernel_8x8(Isa::Scalar, &[0.0; 8], &[0.0; 8], 1, &mut c, 8, 0, 0, 0, 5);
        micro_kernel_8x8(Isa::Scalar, &[0.0; 8], &[0.0; 8], 1, &mut c, 8, 0, 0, 5, 0);
        assert_eq!(before, c);
    }

    #[test]
    #[should_panic(expected = "tile out of C bounds")]
    fn oversized_tile_is_rejected() {
        let mut c = vec![0.0f32; 16];
        micro_kernel_8x8(Isa::Scalar, &[0.0; 8], &[0.0; 8], 1, &mut c, 8, 1, 0, 2, 8);
    }
}
