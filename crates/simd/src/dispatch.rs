//! One-time runtime ISA detection and the process-wide dispatch choice.
//!
//! The active [`Isa`] is resolved once — `is_x86_feature_detected!` capped
//! by the `DLR_SIMD` environment variable — and cached in an atomic
//! (`OnceLock`-style: one CAS on first use, a relaxed load afterwards).
//! Kernels take an explicit [`Isa`] argument, so the cached value is a
//! *default*, not a hidden global: tests pin paths by passing the ISA
//! directly, and [`force`] exists for whole-program experiments
//! (benchmarks, `DLR_SIMD=scalar` CI runs, debugging a suspect path).

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set levels the kernels are specialized for, in ascending
/// preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Isa {
    /// Portable safe-Rust kernels; always available on every target.
    Scalar = 0,
    /// 128-bit SSE2 (the x86-64 baseline): mul-then-add, bit-identical to
    /// scalar on all three kernels.
    Sse2 = 1,
    /// 256-bit AVX2 with FMA: the oneDNN/LIBXSMM/vQS configuration the
    /// paper benchmarks. GEMM uses fused multiply-add (ULP-bounded vs.
    /// scalar); SDMM and QuickScorer stay bit-identical.
    Avx2 = 2,
}

impl Isa {
    /// All levels, ascending.
    pub const ALL: [Isa; 3] = [Isa::Scalar, Isa::Sse2, Isa::Avx2];

    /// Stable lowercase name (matches the `DLR_SIMD` spellings).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }

    /// Parse a `DLR_SIMD` spelling. `auto`/empty means "no cap".
    pub fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "sse2" => Some(Isa::Sse2),
            "avx2" | "avx2+fma" | "avx2fma" => Some(Isa::Avx2),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Isa {
        match v {
            1 => Isa::Sse2,
            2 => Isa::Avx2,
            _ => Isa::Scalar,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Is `isa` usable on this host? [`Isa::Scalar`] always is; SSE2 is the
/// x86-64 baseline; AVX2 additionally requires FMA (the kernels assume
/// both, exactly as oneDNN's AVX2 JIT does).
pub fn supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Best ISA this host supports, ignoring the environment cap.
pub fn detect_best() -> Isa {
    for isa in Isa::ALL.iter().rev() {
        if supported(*isa) {
            return *isa;
        }
    }
    Isa::Scalar
}

/// Best supported ISA capped by `DLR_SIMD` (unset/`auto`/unrecognized
/// spellings leave detection unrestricted; a cap *above* host support is
/// clamped down, never up).
fn resolve() -> Isa {
    let best = detect_best();
    match std::env::var("DLR_SIMD") {
        Ok(v) => match Isa::parse(&v) {
            Some(cap) => cap.min(best),
            None => best,
        },
        Err(_) => best,
    }
}

/// Cached dispatch choice: 0 = unresolved, otherwise `isa as u8 + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The process-wide active ISA: resolved on first call (detection ∧
/// `DLR_SIMD` cap), cached afterwards. This is what the scoring crates
/// pass to the kernels when the caller has no opinion.
pub fn active() -> Isa {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != 0 {
        return Isa::from_u8(v - 1);
    }
    let resolved = resolve();
    // Benign race: concurrent first calls resolve to the same value.
    ACTIVE.store(resolved as u8 + 1, Ordering::Relaxed);
    resolved
}

/// Force the process-wide dispatch choice (benchmarks sweeping each path,
/// or pinning a path while debugging). Returns the previous choice, or
/// `Err` with the host's best level when `isa` is not supported here.
/// Calls made *while a kernel is running on another thread* affect only
/// subsequent kernel invocations — every kernel reads the ISA exactly
/// once per call.
pub fn force(isa: Isa) -> Result<Isa, Isa> {
    if !supported(isa) {
        return Err(detect_best());
    }
    let prev = active();
    ACTIVE.store(isa as u8 + 1, Ordering::Relaxed);
    Ok(prev)
}

/// Host feature summary for benchmark reports: `(feature, detected)`.
pub fn feature_summary() -> [(&'static str, bool); 3] {
    #[cfg(target_arch = "x86_64")]
    {
        [
            ("sse2", true),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        [("sse2", false), ("avx2", false), ("fma", false)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        assert!(supported(Isa::Scalar));
        assert!(supported(detect_best()));
    }

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(Isa::parse("scalar"), Some(Isa::Scalar));
        assert_eq!(Isa::parse("SSE2"), Some(Isa::Sse2));
        assert_eq!(Isa::parse(" avx2 "), Some(Isa::Avx2));
        assert_eq!(Isa::parse("avx2+fma"), Some(Isa::Avx2));
        assert_eq!(Isa::parse("auto"), None);
        assert_eq!(Isa::parse(""), None);
        assert_eq!(Isa::parse("neon"), None);
    }

    #[test]
    fn ordering_matches_preference() {
        assert!(Isa::Scalar < Isa::Sse2);
        assert!(Isa::Sse2 < Isa::Avx2);
        for isa in Isa::ALL {
            assert_eq!(Isa::from_u8(isa as u8), isa);
        }
    }

    #[test]
    fn force_round_trips_and_rejects_unsupported() {
        let initial = active();
        let prev = force(Isa::Scalar).expect("scalar always forceable");
        assert_eq!(prev, initial);
        assert_eq!(active(), Isa::Scalar);
        // Restore whatever the host had.
        force(initial).expect("restoring a previously-active ISA");
        assert_eq!(active(), initial);
        if !supported(Isa::Avx2) {
            assert_eq!(force(Isa::Avx2), Err(detect_best()));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Sse2.to_string(), "sse2");
        assert_eq!(Isa::Avx2.name(), "avx2");
        let features = feature_summary();
        assert_eq!(features[0].0, "sse2");
    }
}
