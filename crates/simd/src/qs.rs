//! The vQS lane update (§2.2): compare 8 document-lane feature values
//! against one node threshold and AND the node's bitvector mask into the
//! lanes whose test is *false* (branch-free lane select).
//!
//! The update is a float compare followed by pure bitwise arithmetic.
//! The vector paths use *ordered* greater-than compares (`_CMP_GT_OQ` /
//! `cmpgtps`), which evaluate to false on NaN — exactly the semantics of
//! the scalar `>` — so **every path is bit-identical** and the equivalence
//! suite asserts exact equality on the resulting scores.

use crate::dispatch::{supported, Isa};
use crate::LANES;

/// Apply one QuickScorer condition to the 8 traversal bitvectors:
/// `dst[lane] &= if xf[lane] > threshold { mask } else { !0 }`.
///
/// An unsupported `isa` falls back to scalar.
pub fn mask_step(isa: Isa, xf: &[f32; LANES], threshold: f32, mask: u64, dst: &mut [u64; LANES]) {
    let isa = if supported(isa) { isa } else { Isa::Scalar };
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: AVX2 availability was checked by `supported` above;
            // the kernel only touches the two fixed-size arrays passed by
            // reference (8 f32 loads, 8 u64 load/stores), all in bounds by
            // construction.
            unsafe {
                x86::mask_step_avx2(xf, threshold, mask, dst);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => {
            // SAFETY: SSE2 is the x86-64 baseline (checked by `supported`);
            // accesses are confined to the fixed-size arrays as above.
            unsafe {
                x86::mask_step_sse2(xf, threshold, mask, dst);
            }
        }
        _ => mask_step_scalar(xf, threshold, mask, dst),
    }
}

/// Portable fallback: the auto-vectorizable lane loop, kept as the
/// semantic reference.
fn mask_step_scalar(xf: &[f32; LANES], threshold: f32, mask: u64, dst: &mut [u64; LANES]) {
    for lane in 0..LANES {
        let keep = if xf[lane] > threshold { mask } else { u64::MAX };
        dst[lane] &= keep;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written mask-step kernels. Private: callable only through the
    //! dispatch wrapper above (enforced by dlr-lint's
    //! `SIMD_TARGET_FEATURE` rule).

    use super::LANES;
    use core::arch::x86_64::*;

    /// AVX2 mask step: one 8-lane ordered compare, widened to two 4×64-bit
    /// keep-masks, ANDed into the bitvectors.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available; the arrays are fixed-size
    /// references so all loads/stores are in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn mask_step_avx2_impl(
        xf: &[f32; LANES],
        threshold: f32,
        mask: u64,
        dst: &mut [u64; LANES],
    ) {
        let x = _mm256_loadu_ps(xf.as_ptr());
        let t = _mm256_set1_ps(threshold);
        // Ordered quiet compare: false on NaN, matching the scalar `>`.
        let gt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GT_OQ>(x, t));
        let maskv = _mm256_set1_epi64x(mask as i64);
        let ones = _mm256_set1_epi64x(-1);
        let dp = dst.as_mut_ptr() as *mut __m256i;
        // Sign-extend each 32-bit lane mask (all-ones or all-zeros) to 64
        // bits, then select: (gt & mask) | (!gt & !0).
        let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(gt));
        let keep_lo = _mm256_or_si256(_mm256_and_si256(lo, maskv), _mm256_andnot_si256(lo, ones));
        _mm256_storeu_si256(dp, _mm256_and_si256(_mm256_loadu_si256(dp), keep_lo));
        let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(gt));
        let keep_hi = _mm256_or_si256(_mm256_and_si256(hi, maskv), _mm256_andnot_si256(hi, ones));
        let dp1 = dp.add(1);
        _mm256_storeu_si256(dp1, _mm256_and_si256(_mm256_loadu_si256(dp1), keep_hi));
    }

    /// Dispatch-table entry for the AVX2 mask step.
    ///
    /// # Safety
    /// Same contract as [`mask_step_avx2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn mask_step_avx2(
        xf: &[f32; LANES],
        threshold: f32,
        mask: u64,
        dst: &mut [u64; LANES],
    ) {
        // SAFETY: forwarded verbatim; the caller upholds the target
        // feature contract.
        unsafe { mask_step_avx2_impl(xf, threshold, mask, dst) }
    }

    /// SSE2 mask step: two 4-lane ordered compares, widened to 64-bit
    /// keep-masks with `unpacklo/hi`, ANDed into the bitvectors.
    ///
    /// # Safety
    /// The arrays are fixed-size references so all loads/stores are in
    /// bounds (SSE2 itself is the x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn mask_step_sse2_impl(
        xf: &[f32; LANES],
        threshold: f32,
        mask: u64,
        dst: &mut [u64; LANES],
    ) {
        let t = _mm_set1_ps(threshold);
        let maskv = _mm_set1_epi64x(mask as i64);
        let ones = _mm_set1_epi64x(-1);
        let dp = dst.as_mut_ptr() as *mut __m128i;
        for half in 0..2 {
            let x = _mm_loadu_ps(xf.as_ptr().add(half * 4));
            // Ordered compare: false on NaN, matching the scalar `>`.
            let gt = _mm_castps_si128(_mm_cmpgt_ps(x, t));
            // Duplicate each 32-bit lane mask into a 64-bit mask.
            let w = [_mm_unpacklo_epi32(gt, gt), _mm_unpackhi_epi32(gt, gt)];
            for (pair, g) in w.into_iter().enumerate() {
                let keep = _mm_or_si128(_mm_and_si128(g, maskv), _mm_andnot_si128(g, ones));
                let p = dp.add(half * 2 + pair);
                _mm_storeu_si128(p, _mm_and_si128(_mm_loadu_si128(p), keep));
            }
        }
    }

    /// Dispatch-table entry for the SSE2 mask step.
    ///
    /// # Safety
    /// Same contract as [`mask_step_sse2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn mask_step_sse2(
        xf: &[f32; LANES],
        threshold: f32,
        mask: u64,
        dst: &mut [u64; LANES],
    ) {
        // SAFETY: forwarded verbatim; SSE2 is the x86-64 baseline.
        unsafe { mask_step_sse2_impl(xf, threshold, mask, dst) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn run(isa: Isa, xf: [f32; LANES], threshold: f32, mask: u64, init: [u64; LANES]) -> [u64; 8] {
        let mut dst = init;
        mask_step(isa, &xf, threshold, mask, &mut dst);
        dst
    }

    #[test]
    fn all_supported_paths_are_bit_identical() {
        let cases: &[([f32; 8], f32, u64)] = &[
            (
                [0.5, -1.0, 2.0, 0.0, 3.5, -0.1, 0.1, 9.0],
                0.0,
                0xDEAD_BEEF_F00D_u64,
            ),
            ([1.0; 8], 1.0, 0b1010),
            ([-1.0; 8], -2.0, u64::MAX - 1),
            (
                [
                    f32::NAN,
                    1.0,
                    f32::NAN,
                    -1.0,
                    0.0,
                    2.0,
                    f32::INFINITY,
                    f32::NEG_INFINITY,
                ],
                0.5,
                0x0F0F,
            ),
            (
                [f32::MIN, f32::MAX, 0.0, -0.0, 1e-38, -1e-38, 7.0, -7.0],
                -0.0,
                1,
            ),
        ];
        let init = [
            u64::MAX,
            0xAAAA_5555_AAAA_5555,
            0,
            1,
            u64::MAX >> 1,
            0xFF00_FF00_FF00_FF00,
            42,
            u64::MAX,
        ];
        for &(xf, th, mask) in cases {
            let want = run(Isa::Scalar, xf, th, mask, init);
            for isa in [Isa::Sse2, Isa::Avx2] {
                if !dispatch::supported(isa) {
                    continue;
                }
                assert_eq!(
                    want,
                    run(isa, xf, th, mask, init),
                    "{isa} xf={xf:?} th={th}"
                );
            }
        }
    }

    #[test]
    fn scalar_semantics_match_the_definition() {
        let xf = [1.0, 0.0, 2.0, -3.0, 0.5, 0.5, 10.0, -10.0];
        let got = run(Isa::Scalar, xf, 0.5, 0b0110, [u64::MAX; 8]);
        for (lane, &g) in got.iter().enumerate() {
            let expect = if xf[lane] > 0.5 { 0b0110 } else { u64::MAX };
            assert_eq!(g, expect, "lane {lane}");
        }
    }

    #[test]
    fn nan_lanes_test_false_on_every_path() {
        let xf = [f32::NAN; 8];
        for isa in Isa::ALL {
            if !dispatch::supported(isa) {
                continue;
            }
            // NaN > t is false: every lane keeps its bits.
            let got = run(isa, xf, f32::NEG_INFINITY, 0, [0xABCD; 8]);
            assert_eq!(got, [0xABCD; 8], "{isa}");
        }
    }
}
