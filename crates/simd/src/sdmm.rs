//! The LIBXSMM-style SDMM row kernel (§4.3): one CSR row of `A` against a
//! packed, zero-padded `B`, accumulators held in registers and stored to
//! `C_i` exactly once.
//!
//! Per output element `C[i][j]` every path — scalar, SSE2, AVX2 — performs
//! the identical chain of `acc += x * b` steps in non-zero order, using a
//! *separate* multiply and add (never FMA). IEEE-754 arithmetic is
//! performed per lane, so how the `j` axis is blocked into vectors cannot
//! change any element's value: **all paths are bit-identical**, and the
//! equivalence suite asserts exact equality. (Fusing the multiply-add
//! would buy little here — the kernel is load-bound on `B` — and would
//! forfeit the bit-exactness oracle.)

use crate::dispatch::{supported, Isa};
use crate::LANES;

/// Compute one dense output row `C_i = Σ x_j · B[j, :]` over the non-zeros
/// `(cols, vals)` of a CSR row, against `B` packed row-major with stride
/// `width` (a multiple of [`LANES`], zero-padded past column `n`).
///
/// `c_row` (`len == n`) is overwritten, not accumulated into; an empty
/// non-zero list zeroes it. An unsupported `isa` falls back to scalar.
///
/// # Panics
/// Panics when `cols`/`vals` lengths differ, `c_row.len() != n`, the
/// stride is not a padded multiple of [`LANES`] covering `n`, or a column
/// index addresses a row outside `bdata`.
pub fn row_kernel(
    isa: Isa,
    cols: &[u32],
    vals: &[f32],
    bdata: &[f32],
    width: usize,
    n: usize,
    c_row: &mut [f32],
) {
    assert_eq!(cols.len(), vals.len(), "CSR row arrays must pair up");
    assert_eq!(c_row.len(), n, "C row must have n columns");
    assert!(
        width >= n && width.is_multiple_of(LANES),
        "B stride must be n padded to the SIMD width"
    );
    if cols.is_empty() {
        c_row.fill(0.0);
        return;
    }
    let max_ci = cols.iter().copied().max().unwrap_or(0) as usize;
    assert!(
        (max_ci + 1) * width <= bdata.len(),
        "column index out of packed-B bounds"
    );
    if n == 0 {
        return;
    }
    let isa = if supported(isa) { isa } else { Isa::Scalar };
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: AVX2 availability was checked by `supported` above.
            // The asserts above guarantee every packed-B row the kernel
            // reads (`(ci+1)*width <= bdata.len()` for all ci) and the
            // `n`-element output row are in bounds; the kernel's own loop
            // bounds keep each vector load within `t + lanes <= n <= width`.
            unsafe {
                x86::row_avx2(cols, vals, bdata.as_ptr(), width, n, c_row.as_mut_ptr());
            }
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => {
            // SAFETY: SSE2 is the x86-64 baseline (checked by `supported`);
            // in-bounds access follows from the same asserts as the AVX2
            // arm.
            unsafe {
                x86::row_sse2(cols, vals, bdata.as_ptr(), width, n, c_row.as_mut_ptr());
            }
        }
        _ => row_scalar(cols, vals, bdata, width, n, c_row),
    }
}

/// Portable fallback: the auto-vectorizable pass structure of
/// `dlr-sparse`'s original kernel (4-block / 2-block / 1-block / tail),
/// kept as the semantic reference.
fn row_scalar(
    cols: &[u32],
    vals: &[f32],
    bdata: &[f32],
    width: usize,
    n: usize,
    c_row: &mut [f32],
) {
    const UNROLL: usize = 4;
    const PASS: usize = UNROLL * LANES;
    let mut t = 0usize;
    while t + PASS <= n {
        let mut acc = [[0.0f32; LANES]; UNROLL];
        for (&ci, &x) in cols.iter().zip(vals) {
            let base = ci as usize * width + t;
            let bb = &bdata[base..base + PASS];
            for (u, a) in acc.iter_mut().enumerate() {
                let block = &bb[u * LANES..(u + 1) * LANES];
                for l in 0..LANES {
                    a[l] += x * block[l];
                }
            }
        }
        for (u, a) in acc.iter().enumerate() {
            c_row[t + u * LANES..t + (u + 1) * LANES].copy_from_slice(a);
        }
        t += PASS;
    }
    while t + 2 * LANES <= n {
        let mut acc = [[0.0f32; LANES]; 2];
        for (&ci, &x) in cols.iter().zip(vals) {
            let base = ci as usize * width + t;
            let bb = &bdata[base..base + 2 * LANES];
            for (u, a) in acc.iter_mut().enumerate() {
                let block = &bb[u * LANES..(u + 1) * LANES];
                for l in 0..LANES {
                    a[l] += x * block[l];
                }
            }
        }
        for (u, a) in acc.iter().enumerate() {
            c_row[t + u * LANES..t + (u + 1) * LANES].copy_from_slice(a);
        }
        t += 2 * LANES;
    }
    while t + LANES <= n {
        let mut acc = [0.0f32; LANES];
        for (&ci, &x) in cols.iter().zip(vals) {
            let bb = &bdata[ci as usize * width + t..ci as usize * width + t + LANES];
            for l in 0..LANES {
                acc[l] += x * bb[l];
            }
        }
        c_row[t..t + LANES].copy_from_slice(&acc);
        t += LANES;
    }
    if t < n {
        let tail = n - t;
        let mut acc = [0.0f32; LANES];
        for (&ci, &x) in cols.iter().zip(vals) {
            let bb = &bdata[ci as usize * width + t..ci as usize * width + t + tail];
            for (a, &bv) in acc.iter_mut().zip(bb) {
                *a += x * bv;
            }
        }
        c_row[t..n].copy_from_slice(&acc[..tail]);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written row kernels. Private: callable only through the
    //! dispatch wrapper above (enforced by dlr-lint's
    //! `SIMD_TARGET_FEATURE` rule).

    use core::arch::x86_64::*;

    /// AVX2 row kernel: 64-lane (8×ymm) main pass, then 32-lane, 8-lane,
    /// and scalar-tail passes. Separate `mul`/`add` — bit-identical to
    /// scalar.
    ///
    /// The main pass keeps eight accumulator chains in flight: each lane's
    /// `acc += x·b` chain is serialized on `add` latency (~4 cycles), so
    /// with sparse rows of only a handful of non-zeros, four chains leave
    /// the two FP ports half idle and the kernel runs no faster than the
    /// auto-vectorized scalar path. Eight chains saturate both ports.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `bdata` is readable for
    /// `(ci+1)*width` floats for every `ci` in `cols` with `n <= width`,
    /// and `c_row` is writable for `n` floats.
    #[target_feature(enable = "avx2")]
    unsafe fn row_avx2_impl(
        cols: &[u32],
        vals: &[f32],
        bdata: *const f32,
        width: usize,
        n: usize,
        c_row: *mut f32,
    ) {
        let mut t = 0usize;
        while t + 64 <= n {
            let mut acc = [_mm256_setzero_ps(); 8];
            for (&ci, &x) in cols.iter().zip(vals) {
                let base = bdata.add(ci as usize * width + t);
                let xv = _mm256_set1_ps(x);
                for (u, a) in acc.iter_mut().enumerate() {
                    let b = _mm256_loadu_ps(base.add(u * 8));
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(xv, b));
                }
            }
            for (u, &a) in acc.iter().enumerate() {
                _mm256_storeu_ps(c_row.add(t + u * 8), a);
            }
            t += 64;
        }
        while t + 32 <= n {
            let mut acc = [_mm256_setzero_ps(); 4];
            for (&ci, &x) in cols.iter().zip(vals) {
                let base = bdata.add(ci as usize * width + t);
                let xv = _mm256_set1_ps(x);
                for (u, a) in acc.iter_mut().enumerate() {
                    let b = _mm256_loadu_ps(base.add(u * 8));
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(xv, b));
                }
            }
            for (u, &a) in acc.iter().enumerate() {
                _mm256_storeu_ps(c_row.add(t + u * 8), a);
            }
            t += 32;
        }
        while t + 8 <= n {
            let mut acc = _mm256_setzero_ps();
            for (&ci, &x) in cols.iter().zip(vals) {
                let b = _mm256_loadu_ps(bdata.add(ci as usize * width + t));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x), b));
            }
            _mm256_storeu_ps(c_row.add(t), acc);
            t += 8;
        }
        tail_scalar(cols, vals, bdata, width, t, n, c_row);
    }

    /// Dispatch-table entry for the AVX2 row kernel.
    ///
    /// # Safety
    /// Same contract as [`row_avx2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn row_avx2(
        cols: &[u32],
        vals: &[f32],
        bdata: *const f32,
        width: usize,
        n: usize,
        c_row: *mut f32,
    ) {
        // SAFETY: forwarded verbatim; the caller upholds the target
        // feature and bounds contract.
        unsafe { row_avx2_impl(cols, vals, bdata, width, n, c_row) }
    }

    /// SSE2 row kernel: 16-lane (4×xmm) main pass, 4-lane pass, scalar
    /// tail. Separate `mul`/`add` — bit-identical to scalar.
    ///
    /// # Safety
    /// Caller must ensure `bdata` is readable for `(ci+1)*width` floats
    /// for every `ci` in `cols` with `n <= width`, and `c_row` is writable
    /// for `n` floats (SSE2 itself is the x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn row_sse2_impl(
        cols: &[u32],
        vals: &[f32],
        bdata: *const f32,
        width: usize,
        n: usize,
        c_row: *mut f32,
    ) {
        let mut t = 0usize;
        while t + 16 <= n {
            let mut acc = [_mm_setzero_ps(); 4];
            for (&ci, &x) in cols.iter().zip(vals) {
                let base = bdata.add(ci as usize * width + t);
                let xv = _mm_set1_ps(x);
                for (u, a) in acc.iter_mut().enumerate() {
                    let b = _mm_loadu_ps(base.add(u * 4));
                    *a = _mm_add_ps(*a, _mm_mul_ps(xv, b));
                }
            }
            for (u, &a) in acc.iter().enumerate() {
                _mm_storeu_ps(c_row.add(t + u * 4), a);
            }
            t += 16;
        }
        while t + 4 <= n {
            let mut acc = _mm_setzero_ps();
            for (&ci, &x) in cols.iter().zip(vals) {
                let b = _mm_loadu_ps(bdata.add(ci as usize * width + t));
                acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x), b));
            }
            _mm_storeu_ps(c_row.add(t), acc);
            t += 4;
        }
        tail_scalar(cols, vals, bdata, width, t, n, c_row);
    }

    /// Dispatch-table entry for the SSE2 row kernel.
    ///
    /// # Safety
    /// Same contract as [`row_sse2_impl`].
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn row_sse2(
        cols: &[u32],
        vals: &[f32],
        bdata: *const f32,
        width: usize,
        n: usize,
        c_row: *mut f32,
    ) {
        // SAFETY: forwarded verbatim; the caller upholds the bounds
        // contract and SSE2 is the x86-64 baseline.
        unsafe { row_sse2_impl(cols, vals, bdata, width, n, c_row) }
    }

    /// Scalar ragged tail shared by both vector paths (lanes `t..n`).
    ///
    /// # Safety
    /// Caller must ensure `bdata` is readable for `ci*width + n` floats
    /// for every `ci` in `cols` and `c_row` is writable for `n` floats.
    unsafe fn tail_scalar(
        cols: &[u32],
        vals: &[f32],
        bdata: *const f32,
        width: usize,
        t: usize,
        n: usize,
        c_row: *mut f32,
    ) {
        if t >= n {
            return;
        }
        let tail = n - t;
        let mut acc = [0.0f32; 8];
        for (&ci, &x) in cols.iter().zip(vals) {
            let base = ci as usize * width + t;
            for (l, a) in acc.iter_mut().enumerate().take(tail) {
                // SAFETY: `base + l < ci*width + n <= (ci+1)*width`, in
                // bounds per the caller's contract.
                *a += x * unsafe { *bdata.add(base + l) };
            }
        }
        for (l, &a) in acc.iter().enumerate().take(tail) {
            // SAFETY: `t + l < n`; `c_row` is valid for `n` floats.
            unsafe { *c_row.add(t + l) = a };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    /// Deterministic pseudo-random CSR row + packed B.
    fn fixture(nnz: usize, k: usize, n: usize) -> (Vec<u32>, Vec<f32>, Vec<f32>, usize) {
        let width = n.div_ceil(LANES).max(1) * LANES;
        let cols: Vec<u32> = (0..nnz).map(|i| ((i * 37 + 5) % k) as u32).collect();
        let vals: Vec<f32> = (0..nnz)
            .map(|i| ((i * 13) % 19) as f32 * 0.3 - 2.0)
            .collect();
        let mut bdata = vec![0.0f32; k * width];
        for j in 0..k {
            for t in 0..n {
                bdata[j * width + t] = ((j * 31 + t * 7) % 23) as f32 * 0.25 - 2.5;
            }
        }
        (cols, vals, bdata, width)
    }

    fn run(isa: Isa, nnz: usize, k: usize, n: usize) -> Vec<f32> {
        let (cols, vals, bdata, width) = fixture(nnz, k, n);
        let mut c = vec![f32::NAN; n];
        row_kernel(isa, &cols, &vals, &bdata, width, n, &mut c);
        c
    }

    #[test]
    fn all_supported_paths_are_bit_identical() {
        for &(nnz, k, n) in &[
            (1usize, 4usize, 1usize),
            (3, 8, 7),
            (5, 16, 8),
            (7, 16, 9),
            (11, 32, 16),
            (13, 32, 33),
            (17, 64, 40),
            (23, 64, 100),
            (9, 16, 31),
        ] {
            let want = run(Isa::Scalar, nnz, k, n);
            for isa in [Isa::Sse2, Isa::Avx2] {
                if !dispatch::supported(isa) {
                    continue;
                }
                assert_eq!(want, run(isa, nnz, k, n), "{isa} nnz={nnz} k={k} n={n}");
            }
        }
    }

    #[test]
    fn empty_row_zeroes_dirty_output() {
        for isa in Isa::ALL {
            let mut c = vec![7.0f32; 5];
            row_kernel(isa, &[], &[], &[0.0; 8], 8, 5, &mut c);
            assert!(c.iter().all(|&v| v == 0.0), "{isa}");
        }
    }

    #[test]
    fn matches_dense_reference() {
        let (cols, vals, bdata, width) = fixture(6, 16, 21);
        let mut want = [0.0f32; 21];
        for (&ci, &x) in cols.iter().zip(&vals) {
            for t in 0..21 {
                want[t] += x * bdata[ci as usize * width + t];
            }
        }
        let got = run(Isa::Scalar, 6, 16, 21);
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() <= 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "column index out of packed-B bounds")]
    fn out_of_bounds_column_is_rejected() {
        let mut c = vec![0.0f32; 4];
        row_kernel(Isa::Scalar, &[3], &[1.0], &[0.0; 16], 8, 4, &mut c);
    }

    #[test]
    fn zero_width_row_is_a_noop() {
        row_kernel(Isa::Scalar, &[0], &[1.0], &[0.0; 8], 8, 0, &mut []);
    }
}
