//! Explicit x86-64 SIMD micro-kernels behind safe, runtime-dispatched
//! wrappers.
//!
//! The paper's efficiency story rests on vectorized kernels: oneDNN-style
//! blocked GEMM for dense layers (§4.1–4.2), LIBXSMM-style SDMM for the
//! pruned sparse layer (§4.3), and AVX2 vectorized QuickScorer for tree
//! ensembles (§2.2). The rest of the workspace expresses those kernels as
//! auto-vectorizable safe Rust; this crate supplies the hand-written
//! `std::arch` versions and is the **only** crate in the workspace allowed
//! to contain `unsafe` SIMD code (every other crate keeps
//! `#![forbid(unsafe_code)]`; the `dlr-lint` `SIMD_TARGET_FEATURE` rule
//! fences intrinsics to this crate).
//!
//! Three kernels, one dispatch discipline:
//!
//! * [`gemm::micro_kernel_8x8`] — the Goto micro-kernel: an 8×8 `f32`
//!   register tile accumulated as `kcb` rank-1 updates over packed A/B
//!   strips. The AVX2 path uses FMA, so its results differ from scalar by
//!   bounded rounding (see the ULP policy below); the SSE2 path is
//!   mul-then-add and bit-identical to scalar.
//! * [`sdmm::row_kernel`] — the LIBXSMM sparse-row kernel: broadcast one
//!   non-zero, multiply-add against packed B rows. All paths use separate
//!   multiply and add (never FMA) in the same per-lane order, so **every
//!   path is bit-identical** to scalar.
//! * [`qs::mask_step`] — the vQS lane update: compare 8 document lanes
//!   against a threshold and AND the tree's bitvector mask into the lanes
//!   that test false. Pure integer/compare ops: bit-identical everywhere.
//!
//! # Dispatch
//!
//! [`dispatch::active`] detects the best supported [`Isa`] once (cached in
//! an atomic, `OnceLock`-style), capped by the `DLR_SIMD` environment
//! variable (`auto`/`scalar`/`sse2`/`avx2`). Every kernel also takes an
//! explicit [`Isa`] so tests and benchmarks can pin a path without global
//! state; [`dispatch::force`] overrides the cached choice process-wide for
//! debugging (`DLR_SIMD=scalar cargo test` keeps the fallback arm green in
//! CI).
//!
//! # ULP policy for GEMM-FMA
//!
//! An FMA fuses `a*b + c` with a single rounding, so each of the `kcb`
//! accumulation steps of the AVX2 GEMM path can differ from the scalar
//! mul-then-add result by at most half an ULP of the intermediate. Errors
//! compound linearly: over a length-`k` reduction the scalar and FMA
//! results differ by at most `k` ULP-scale steps. The equivalence suite
//! (`tests/simd_equivalence.rs`) therefore accepts
//! `|scalar − fma| ≤ k · ε · Σᵢ|aᵢ·bᵢ|` per output element — the standard
//! forward-error envelope — instead of bit-equality, and this is the only
//! kernel/path pair allowed any deviation at all.
//!
//! # Non-x86 fallback
//!
//! On non-x86-64 targets the intrinsic modules compile to nothing,
//! [`dispatch::detect_best`] reports [`Isa::Scalar`], and every wrapper
//! routes to the portable scalar kernel, keeping such builds green without
//! `cfg` leakage into caller crates.

pub mod dispatch;
pub mod gemm;
pub mod qs;
pub mod sdmm;

pub use dispatch::{active, detect_best, force, supported, Isa};

/// Register width the kernels block on: 8 × f32 = 256 bits (AVX2), the
/// configuration the paper analyzes. Callers pack panels to this width.
pub const LANES: usize = 8;
