//! Adam optimizer (Kingma & Ba), the paper's optimizer for both training
//! and pruning fine-tuning (§6.1: learning rate 0.001, no weight decay).

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// First-moment estimate.
    m: Vec<f32>,
    /// Second-moment estimate.
    v: Vec<f32>,
    /// Step counter for bias correction.
    t: u64,
}

impl Adam {
    /// Standard hyperparameters β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(num_params: usize) -> Adam {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// Apply one update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    /// Panics when `params`/`grads` lengths differ from the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g, 0.01);
        }
        assert!((x[0] - 3.0).abs() < 0.01, "x = {}", x[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Bias correction makes the first step ≈ lr regardless of gradient
        // magnitude — Adam's signature behaviour.
        for g0 in [0.001f32, 1.0, 1000.0] {
            let mut x = vec![0.0f32];
            let mut opt = Adam::new(1);
            opt.step(&mut x, &[g0], 0.1);
            assert!((x[0] + 0.1).abs() < 1e-3, "g0 {g0} -> x {}", x[0]);
        }
    }

    #[test]
    fn multi_dim_independent() {
        let mut x = vec![0.0f32, 10.0];
        let mut opt = Adam::new(2);
        for _ in 0..3000 {
            let g = vec![2.0 * (x[0] + 1.0), 2.0 * (x[1] - 5.0)];
            opt.step(&mut x, &g, 0.02);
        }
        assert!((x[0] + 1.0).abs() < 0.05);
        assert!((x[1] - 5.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "gradient count")]
    fn length_checked() {
        let mut opt = Adam::new(2);
        opt.step(&mut [0.0, 0.0], &[1.0], 0.1);
    }
}
