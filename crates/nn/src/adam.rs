//! Adam optimizer (Kingma & Ba), the paper's optimizer for both training
//! and pruning fine-tuning (§6.1: learning rate 0.001, no weight decay).

/// Serializable snapshot of one tensor's Adam state — what a training
/// checkpoint persists so a resumed run continues bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First-moment estimate.
    pub m: Vec<f32>,
    /// Second-moment estimate.
    pub v: Vec<f32>,
    /// Step counter for bias correction.
    pub t: u64,
}

impl AdamState {
    /// Number of parameters covered.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the state covers zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// First-moment estimate.
    m: Vec<f32>,
    /// Second-moment estimate.
    v: Vec<f32>,
    /// Step counter for bias correction.
    t: u64,
}

impl Adam {
    /// Standard hyperparameters β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(num_params: usize) -> Adam {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// Apply one update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    /// Panics when `params`/`grads` lengths differ from the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer state for checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState {
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Restore a snapshot taken by [`Adam::state`].
    ///
    /// # Errors
    /// Rejects a snapshot whose parameter count differs from this
    /// optimizer's.
    pub fn restore(&mut self, state: &AdamState) -> Result<(), String> {
        if state.m.len() != self.m.len() || state.v.len() != self.v.len() {
            return Err(format!(
                "Adam state covers {} params, optimizer has {}",
                state.m.len(),
                self.m.len()
            ));
        }
        self.m.copy_from_slice(&state.m);
        self.v.copy_from_slice(&state.v);
        self.t = state.t;
        Ok(())
    }

    /// Zero the first/second moments of every parameter whose `mask`
    /// entry is `0.0`. Applying a pruning mask without this leaves stale
    /// momentum that keeps pushing pruned weights off zero on subsequent
    /// steps — the Distiller behaviour is to forget the moments along
    /// with the weight.
    ///
    /// # Panics
    /// Panics when `mask` length differs from the parameter count.
    pub fn zero_moments_where(&mut self, mask: &[f32]) {
        assert_eq!(mask.len(), self.m.len(), "mask/parameter count mismatch");
        for (i, &keep) in mask.iter().enumerate() {
            if keep == 0.0 {
                self.m[i] = 0.0;
                self.v[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g, 0.01);
        }
        assert!((x[0] - 3.0).abs() < 0.01, "x = {}", x[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Bias correction makes the first step ≈ lr regardless of gradient
        // magnitude — Adam's signature behaviour.
        for g0 in [0.001f32, 1.0, 1000.0] {
            let mut x = vec![0.0f32];
            let mut opt = Adam::new(1);
            opt.step(&mut x, &[g0], 0.1);
            assert!((x[0] + 0.1).abs() < 1e-3, "g0 {g0} -> x {}", x[0]);
        }
    }

    #[test]
    fn multi_dim_independent() {
        let mut x = vec![0.0f32, 10.0];
        let mut opt = Adam::new(2);
        for _ in 0..3000 {
            let g = vec![2.0 * (x[0] + 1.0), 2.0 * (x[1] - 5.0)];
            opt.step(&mut x, &g, 0.02);
        }
        assert!((x[0] + 1.0).abs() < 0.05);
        assert!((x[1] - 5.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "gradient count")]
    fn length_checked() {
        let mut opt = Adam::new(2);
        opt.step(&mut [0.0, 0.0], &[1.0], 0.1);
    }

    #[test]
    fn state_roundtrip_continues_bit_exactly() {
        let mut a = Adam::new(3);
        let mut xa = vec![1.0f32, -2.0, 0.5];
        for i in 0..7 {
            let g = vec![0.3 * i as f32, -0.1, 0.7];
            a.step(&mut xa, &g, 0.01);
        }
        // Snapshot, keep stepping the original, replay on a restored copy.
        let snap = a.state();
        let park = xa.clone();
        let mut b = Adam::new(3);
        b.restore(&snap).unwrap();
        let mut xb = park.clone();
        for _ in 0..5 {
            let g = vec![0.2, 0.4, -0.6];
            a.step(&mut xa, &g, 0.01);
            b.step(&mut xb, &g, 0.01);
        }
        assert_eq!(xa, xb);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let snap = Adam::new(2).state();
        assert!(Adam::new(3).restore(&snap).is_err());
    }

    #[test]
    fn zeroed_moments_keep_pruned_params_parked() {
        // Build up momentum on every parameter, then mask one out and
        // verify zero-gradient steps no longer move it.
        let mut opt = Adam::new(2);
        let mut x = vec![1.0f32, 1.0];
        for _ in 0..10 {
            opt.step(&mut x, &[0.5, 0.5], 0.05);
        }
        x[0] = 0.0; // "pruned"
        opt.zero_moments_where(&[0.0, 1.0]);
        let parked = x[0];
        for _ in 0..20 {
            opt.step(&mut x, &[0.0, 0.0], 0.05);
        }
        assert_eq!(x[0], parked, "stale momentum moved a pruned weight");
        assert_eq!(opt.state().m[0], 0.0);
        assert_eq!(opt.state().v[0], 0.0);
    }
}
