//! Multi-layer perceptrons with dense (blocked-GEMM) inference.

use crate::activation::Activation;
use crate::layer::Linear;
use dlr_dense::gemm::blocked::{
    gemm_with, gemm_with_prepacked_a, GemmWorkspace, GotoParams, PrepackedA,
};

/// A feed-forward network mapping `input_dim` features to one score.
///
/// The paper writes architectures as hidden-layer sizes, e.g.
/// `400×200×200×100` over 136 input features means
/// `136 → 400 → 200 → 200 → 100 → 1`; [`Mlp::from_hidden`] follows that
/// notation. Hidden layers use ReLU6, the output layer is linear (§6.1).
///
/// Weight matrices sit in the GEMM's A slot and never change between
/// batches, so constructors pack them once ([`PrepackedA`]) and the
/// forward pass skips per-call re-packing; mutating weights through
/// [`Mlp::layers_mut`] drops the cache (rebuild with
/// [`Mlp::pack_weights`]). Packed and unpacked forwards are bit-identical.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activations: Vec<Activation>,
    /// One [`PrepackedA`] per layer when the cache is valid; empty after
    /// `layers_mut` (training, pruning) until `pack_weights` runs.
    packs: Vec<PrepackedA>,
}

/// Equality is semantic — layers and activations only. The weight-pack
/// cache is a layout detail: a just-trained (unpacked) model and its
/// packed serialization round-trip must compare equal.
impl PartialEq for Mlp {
    fn eq(&self, other: &Self) -> bool {
        self.layers == other.layers && self.activations == other.activations
    }
}

impl Mlp {
    /// Build `input_dim → hidden[0] → … → hidden[last] → 1` with ReLU6 on
    /// hidden layers, seeded He initialization.
    ///
    /// # Panics
    /// Panics when `input_dim == 0` or any hidden size is zero.
    pub fn from_hidden(input_dim: usize, hidden: &[usize], seed: u64) -> Mlp {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden sizes must be positive"
        );
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut activations = Vec::with_capacity(dims.len() - 1);
        for (i, w) in dims.windows(2).enumerate() {
            layers.push(Linear::new(
                w[0],
                w[1],
                seed.wrapping_add(i as u64 * 0x9e37_79b9),
            ));
            activations.push(if i + 2 == dims.len() {
                Activation::Identity
            } else {
                Activation::Relu6
            });
        }
        Mlp::from_parts(layers, activations)
    }

    /// Build from explicit layers and activations.
    ///
    /// # Panics
    /// Panics when counts differ or consecutive shapes do not chain.
    pub fn from_parts(layers: Vec<Linear>, activations: Vec<Activation>) -> Mlp {
        assert_eq!(layers.len(), activations.len(), "one activation per layer");
        assert!(!layers.is_empty(), "need at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_features(),
                w[1].in_features(),
                "layer shapes must chain"
            );
        }
        let mut mlp = Mlp {
            layers,
            activations,
            packs: Vec::new(),
        };
        mlp.pack_weights();
        mlp
    }

    /// (Re)build the per-layer weight-pack cache. Called by the
    /// constructors; call it again after mutating weights through
    /// [`Self::layers_mut`] to restore the packed fast path.
    pub fn pack_weights(&mut self) {
        self.packs = self
            .layers
            .iter()
            .map(|l| {
                PrepackedA::pack(
                    l.weights.as_slice(),
                    l.out_features(),
                    l.in_features(),
                    GotoParams::default(),
                )
            })
            .collect();
    }

    /// Whether the weight-pack cache is valid (false after `layers_mut`).
    pub fn weights_packed(&self) -> bool {
        self.packs.len() == self.layers.len()
    }

    /// Expected input features.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output width of the last layer (1 for rankers).
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .out_features()
    }

    /// The layers.
    #[inline]
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable layer access (pruning, fine-tuning). Invalidates the
    /// weight-pack cache — the forward pass falls back to per-call
    /// packing until [`Self::pack_weights`] is called again.
    #[inline]
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        self.packs.clear();
        &mut self.layers
    }

    /// Per-layer activations.
    #[inline]
    pub fn activations(&self) -> &[Activation] {
        &self.activations
    }

    /// Hidden-layer sizes in the paper's `a×b×c` notation.
    pub fn hidden_sizes(&self) -> Vec<usize> {
        self.layers[..self.layers.len() - 1]
            .iter()
            .map(Linear::out_features)
            .collect()
    }

    /// Total trainable parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.num_weights() + l.bias.len())
            .sum()
    }

    /// Forward a feature-major `input_dim × n` activation block; returns
    /// the final feature-major `output_dim × n` buffer inside `ws`.
    ///
    /// # Panics
    /// Panics when `input_fm.len() != input_dim() * n`.
    pub fn forward_feature_major<'w>(
        &self,
        input_fm: &[f32],
        n: usize,
        ws: &'w mut MlpWorkspace,
    ) -> &'w [f32] {
        assert_eq!(
            input_fm.len(),
            self.input_dim() * n,
            "input must be input_dim × n"
        );
        ws.bufs.resize(self.layers.len(), Vec::new());
        let mut src: &[f32] = input_fm;
        for (i, (layer, act)) in self.layers.iter().zip(&self.activations).enumerate() {
            let (m, k) = (layer.out_features(), layer.in_features());
            // Split borrow: the destination buffer vs. the previous one.
            let (before, rest) = ws.bufs.split_at_mut(i);
            let dst = &mut rest[0];
            dst.resize(m * n, 0.0);
            let a = if i == 0 {
                src
            } else {
                before[i - 1].as_slice()
            };
            match self.packs.get(i) {
                // Fast path: weights were packed at model-load.
                Some(pack) => gemm_with_prepacked_a(n, pack, a, dst, &mut ws.gemm),
                // Fallback after `layers_mut` (mid-training forwards).
                None => gemm_with(
                    m,
                    k,
                    n,
                    layer.weights.as_slice(),
                    a,
                    dst,
                    GotoParams::default(),
                    &mut ws.gemm,
                ),
            }
            layer.add_bias(dst, n);
            act.apply_slice(dst);
            src = &[]; // src only used for i == 0
        }
        ws.bufs.last().expect("at least one layer").as_slice()
    }

    /// Score a row-major `n × input_dim` document block into `out`
    /// (one score per document), reusing `ws` buffers.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `output_dim() != 1`.
    pub fn score_batch_with(&self, rows: &[f32], out: &mut [f32], ws: &mut MlpWorkspace) {
        assert_eq!(self.output_dim(), 1, "scoring requires a single output");
        let f = self.input_dim();
        let n = out.len();
        assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
        transpose_into(rows, n, f, &mut ws.input_fm);
        // Work around the borrow: move input out of ws during forward.
        let input = std::mem::take(&mut ws.input_fm);
        let scores = self.forward_feature_major(&input, n, ws);
        out.copy_from_slice(scores);
        ws.input_fm = input;
    }

    /// Allocating convenience wrapper over [`Self::score_batch_with`].
    pub fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        let mut ws = MlpWorkspace::default();
        self.score_batch_with(rows, out, &mut ws);
    }

    /// Score one document.
    pub fn score(&self, row: &[f32]) -> f32 {
        let mut out = [0.0f32];
        self.score_batch(row, &mut out);
        out[0]
    }
}

/// Transpose a row-major `n × f` block into feature-major `f × n`.
pub(crate) fn transpose_into(rows: &[f32], n: usize, f: usize, dst: &mut Vec<f32>) {
    dst.resize(f * n, 0.0);
    for (d, row) in rows.chunks_exact(f).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * n + d] = v;
        }
    }
}

/// Reusable buffers for MLP inference: per-layer activations plus the
/// GEMM packing workspace. After warm-up, scoring allocates nothing.
#[derive(Debug, Default)]
pub struct MlpWorkspace {
    pub(crate) input_fm: Vec<f32>,
    pub(crate) bufs: Vec<Vec<f32>>,
    pub(crate) gemm: GemmWorkspace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_dense::Matrix;

    #[test]
    fn architecture_notation() {
        let m = Mlp::from_hidden(136, &[400, 200, 200, 100], 1);
        assert_eq!(m.input_dim(), 136);
        assert_eq!(m.output_dim(), 1);
        assert_eq!(m.hidden_sizes(), vec![400, 200, 200, 100]);
        assert_eq!(m.layers().len(), 5);
        assert_eq!(m.activations().last(), Some(&Activation::Identity));
        assert!(m.activations()[..4].iter().all(|&a| a == Activation::Relu6));
        let params: usize =
            136 * 400 + 400 + 400 * 200 + 200 + 200 * 200 + 200 + 200 * 100 + 100 + 100 + 1;
        assert_eq!(m.num_params(), params);
    }

    /// Hand-built 2→2→1 net with known weights for exact forward checks.
    fn tiny() -> Mlp {
        let l1 = Linear {
            weights: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, -1.0]),
            bias: vec![0.0, 1.0],
        };
        let l2 = Linear {
            weights: Matrix::from_vec(1, 2, vec![1.0, 2.0]),
            bias: vec![0.5],
        };
        Mlp::from_parts(vec![l1, l2], vec![Activation::Relu6, Activation::Identity])
    }

    #[test]
    fn forward_matches_hand_computation() {
        let m = tiny();
        // x = [2, 3]: z1 = [2, -3+1=-2] → relu6 → [2, 0]; out = 1*2 + 2*0 + 0.5
        assert!((m.score(&[2.0, 3.0]) - 2.5).abs() < 1e-6);
        // x = [-1, -4]: z1 = [-1, 5] → [0, 5]; out = 0 + 10 + 0.5
        assert!((m.score(&[-1.0, -4.0]) - 10.5).abs() < 1e-6);
        // ReLU6 saturation: x = [10, 0]: z1 = [10, 1] → [6, 1]; out = 6 + 2 + 0.5
        assert!((m.score(&[10.0, 0.0]) - 8.5).abs() < 1e-6);
    }

    #[test]
    fn batch_matches_single() {
        let m = Mlp::from_hidden(7, &[13, 5], 3);
        let rows: Vec<f32> = (0..7 * 9)
            .map(|i| ((i * 37) % 11) as f32 / 5.0 - 1.0)
            .collect();
        let mut out = vec![0.0f32; 9];
        m.score_batch(&rows, &mut out);
        for (d, row) in rows.chunks_exact(7).enumerate() {
            assert!((m.score(row) - out[d]).abs() < 1e-5);
        }
    }

    #[test]
    fn workspace_reuse_is_stable() {
        let m = Mlp::from_hidden(4, &[6], 5);
        let rows: Vec<f32> = (0..4 * 3).map(|i| i as f32 * 0.1).collect();
        let mut ws = MlpWorkspace::default();
        let mut out1 = vec![0.0f32; 3];
        let mut out2 = vec![0.0f32; 3];
        m.score_batch_with(&rows, &mut out1, &mut ws);
        m.score_batch_with(&rows, &mut out2, &mut ws);
        assert_eq!(out1, out2);
    }

    #[test]
    fn transpose_layout() {
        let rows = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2 docs × 3 features
        let mut fm = Vec::new();
        transpose_into(&rows, 2, 3, &mut fm);
        assert_eq!(fm, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn packed_and_unpacked_forwards_are_bit_identical() {
        let mut m = Mlp::from_hidden(7, &[13, 5], 3);
        assert!(m.weights_packed());
        let rows: Vec<f32> = (0..7 * 9)
            .map(|i| ((i * 37) % 11) as f32 / 5.0 - 1.0)
            .collect();
        let mut packed = vec![0.0f32; 9];
        m.score_batch(&rows, &mut packed);
        // Invalidate the cache (a no-op mutation) and rescore.
        let _ = m.layers_mut();
        assert!(!m.weights_packed());
        let mut unpacked = vec![0.0f32; 9];
        m.score_batch(&rows, &mut unpacked);
        assert_eq!(packed, unpacked);
        // Repacking restores the fast path with the same output.
        m.pack_weights();
        assert!(m.weights_packed());
        let mut repacked = vec![0.0f32; 9];
        m.score_batch(&rows, &mut repacked);
        assert_eq!(packed, repacked);
    }

    #[test]
    fn equality_ignores_the_pack_cache() {
        let a = Mlp::from_hidden(5, &[4], 1);
        let mut b = Mlp::from_hidden(5, &[4], 1);
        let _ = b.layers_mut(); // drops b's cache without changing weights
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = Mlp::from_hidden(5, &[4], 1);
        let b = Mlp::from_hidden(5, &[4], 2);
        assert_ne!(a, b);
        assert_eq!(a, Mlp::from_hidden(5, &[4], 1));
    }

    #[test]
    #[should_panic(expected = "layer shapes must chain")]
    fn from_parts_validates_chain() {
        let l1 = Linear::new(3, 4, 1);
        let l2 = Linear::new(5, 1, 2);
        Mlp::from_parts(vec![l1, l2], vec![Activation::Relu6, Activation::Identity]);
    }
}
