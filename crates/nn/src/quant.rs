//! Post-training weight quantization (§7 future work).
//!
//! The paper's conclusions name quantization as the next compression step
//! after pruning. This module implements the standard post-training
//! scheme: symmetric per-output-channel int8 weights
//! (`w ≈ scale_r · q`, `q ∈ [−127, 127]`), biases and activations kept in
//! f32. Weight storage shrinks 4×; the forward pass dequantizes row by
//! row during the multiply, so accuracy can be evaluated against the f32
//! model on the real ranking metrics.

use crate::activation::Activation;
use crate::mlp::{transpose_into, Mlp};

/// One linear layer with int8 weights and per-row scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    in_features: usize,
    out_features: usize,
    /// Row-major `out × in` quantized weights.
    qweights: Vec<i8>,
    /// Per-output-row dequantization scale.
    scales: Vec<f32>,
    /// f32 bias.
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantize a float layer (symmetric, per output channel).
    pub fn quantize(layer: &crate::layer::Linear) -> QuantizedLinear {
        let (out_f, in_f) = (layer.out_features(), layer.in_features());
        let mut qweights = Vec::with_capacity(out_f * in_f);
        let mut scales = Vec::with_capacity(out_f);
        for r in 0..out_f {
            let row = layer.weights.row(r);
            let max = row.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
            let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
            scales.push(scale);
            qweights.extend(
                row.iter()
                    .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8),
            );
        }
        QuantizedLinear {
            in_features: in_f,
            out_features: out_f,
            qweights,
            scales,
            bias: layer.bias.clone(),
        }
    }

    /// Bytes used by the weight storage (scales + int8 matrix).
    pub fn weight_bytes(&self) -> usize {
        self.qweights.len() + self.scales.len() * 4
    }

    /// Worst-case absolute weight reconstruction error
    /// (`max_r scale_r / 2`).
    pub fn max_quantization_error(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s)) * 0.5
    }

    /// `z = W̃·a + b` over a feature-major `in × n` activation block.
    fn forward(&self, a: &[f32], n: usize, z: &mut Vec<f32>) {
        debug_assert_eq!(a.len(), self.in_features * n);
        z.resize(self.out_features * n, 0.0);
        z.fill(0.0);
        for r in 0..self.out_features {
            let qrow = &self.qweights[r * self.in_features..(r + 1) * self.in_features];
            let zrow = &mut z[r * n..(r + 1) * n];
            for (i, &q) in qrow.iter().enumerate() {
                if q == 0 {
                    continue;
                }
                let w = q as f32; // scale applied once per row below
                let arow = &a[i * n..(i + 1) * n];
                for (zv, &av) in zrow.iter_mut().zip(arow) {
                    *zv += w * av;
                }
            }
            let s = self.scales[r];
            let b = self.bias[r];
            for zv in zrow.iter_mut() {
                *zv = *zv * s + b;
            }
        }
    }
}

/// A fully quantized-weight MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLinear>,
    activations: Vec<Activation>,
}

impl QuantizedMlp {
    /// Quantize every layer of a trained float network.
    pub fn from_mlp(mlp: &Mlp) -> QuantizedMlp {
        QuantizedMlp {
            layers: mlp.layers().iter().map(QuantizedLinear::quantize).collect(),
            activations: mlp.activations().to_vec(),
        }
    }

    /// Expected input features.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_features
    }

    /// Total weight-storage bytes (cf. `4 × num_weights` for f32).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedLinear::weight_bytes).sum()
    }

    /// Score a row-major `n × input_dim` batch into `out`.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        let f = self.input_dim();
        let n = out.len();
        assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
        let mut a = Vec::new();
        transpose_into(rows, n, f, &mut a);
        let mut z = Vec::new();
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            layer.forward(&a, n, &mut z);
            act.apply_slice(&mut z);
            std::mem::swap(&mut a, &mut z);
        }
        out.copy_from_slice(&a[..n]);
    }

    /// Score one document.
    pub fn score(&self, row: &[f32]) -> f32 {
        let mut out = [0.0f32];
        self.score_batch(row, &mut out);
        out[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_scores_track_float_scores() {
        let mlp = Mlp::from_hidden(10, &[16, 8], 3);
        let q = QuantizedMlp::from_mlp(&mlp);
        let rows: Vec<f32> = (0..10 * 32)
            .map(|i| ((i * 37) % 19) as f32 / 9.0 - 1.0)
            .collect();
        let mut float_out = vec![0.0f32; 32];
        let mut quant_out = vec![0.0f32; 32];
        mlp.score_batch(&rows, &mut float_out);
        q.score_batch(&rows, &mut quant_out);
        let spread = float_out.iter().fold(f32::MIN, |m, &v| m.max(v))
            - float_out.iter().fold(f32::MAX, |m, &v| m.min(v));
        for (a, b) in float_out.iter().zip(&quant_out) {
            assert!(
                (a - b).abs() < 0.05 * spread.max(1.0),
                "float {a} vs quantized {b}"
            );
        }
    }

    #[test]
    fn weights_shrink_about_4x() {
        let mlp = Mlp::from_hidden(100, &[200, 100], 1);
        let q = QuantizedMlp::from_mlp(&mlp);
        let float_bytes: usize = mlp.layers().iter().map(|l| l.num_weights() * 4).sum();
        let ratio = float_bytes as f64 / q.weight_bytes() as f64;
        assert!(ratio > 3.5 && ratio <= 4.0, "compression ratio {ratio}");
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        let mlp = Mlp::from_hidden(6, &[4], 9);
        let layer = &mlp.layers()[0];
        let q = QuantizedLinear::quantize(layer);
        for r in 0..layer.out_features() {
            for (i, &w) in layer.weights.row(r).iter().enumerate() {
                let deq = q.qweights[r * 6 + i] as f32 * q.scales[r];
                assert!(
                    (w - deq).abs() <= q.scales[r] * 0.5 + 1e-7,
                    "row {r} weight {w} dequantized {deq}"
                );
            }
        }
        assert!(q.max_quantization_error() > 0.0);
    }

    #[test]
    fn zero_layer_quantizes_safely() {
        let mut mlp = Mlp::from_hidden(3, &[2], 1);
        mlp.layers_mut()[0].weights.fill_zero();
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.score(&[1.0, 2.0, 3.0]), q.score(&[4.0, 5.0, 6.0]));
    }

    #[test]
    fn single_doc_matches_batch() {
        let mlp = Mlp::from_hidden(5, &[7, 3], 11);
        let q = QuantizedMlp::from_mlp(&mlp);
        let rows: Vec<f32> = (0..5 * 4).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut out = vec![0.0f32; 4];
        q.score_batch(&rows, &mut out);
        for (d, row) in rows.chunks_exact(5).enumerate() {
            assert_eq!(q.score(row), out[d]);
        }
    }
}
