//! Hybrid inference: sparse first layer, dense remainder (§5.2, Table 8).
//!
//! After the efficiency-oriented pruning step the first layer's weight
//! matrix is ~95–99% sparse while the other layers stay dense. The paper's
//! winning configuration therefore multiplies layer 1 with the
//! LIBXSMM-style SDMM kernel and the remaining layers with the blocked
//! dense GEMM. This module freezes a trained [`Mlp`] into that shape.

use crate::activation::Activation;
use crate::layer::Linear;
use crate::mlp::{transpose_into, Mlp, MlpWorkspace};
use dlr_sparse::{spmm_xsmm_packed, CsrMatrix, PackedB, SpmmWorkspace};

/// An MLP whose first layer is stored in CSR and scored with SDMM.
#[derive(Debug, Clone)]
pub struct HybridMlp {
    first_weights: CsrMatrix,
    first_bias: Vec<f32>,
    first_activation: Activation,
    /// The dense tail as a standalone MLP over the first layer's outputs.
    rest: Mlp,
}

impl HybridMlp {
    /// Freeze `mlp` into hybrid form. Weights of the first layer with
    /// magnitude ≤ `tol` are treated as pruned (use `0.0` after masked
    /// fine-tuning, where pruned weights are exactly zero).
    ///
    /// # Panics
    /// Panics when `mlp` has fewer than two layers — a single-layer
    /// network has no "dense remainder" and gains nothing from this path.
    pub fn from_mlp(mlp: &Mlp, tol: f32) -> HybridMlp {
        assert!(
            mlp.layers().len() >= 2,
            "hybrid form needs at least two layers"
        );
        let first = &mlp.layers()[0];
        let first_weights = CsrMatrix::from_dense(&first.weights, tol);
        let rest_layers: Vec<Linear> = mlp.layers()[1..].to_vec();
        let rest_acts = mlp.activations()[1..].to_vec();
        HybridMlp {
            first_weights,
            first_bias: first.bias.clone(),
            first_activation: mlp.activations()[0],
            rest: Mlp::from_parts(rest_layers, rest_acts),
        }
    }

    /// Sparsity of the first layer.
    pub fn first_layer_sparsity(&self) -> f64 {
        self.first_weights.sparsity()
    }

    /// The CSR first layer.
    pub fn first_weights(&self) -> &CsrMatrix {
        &self.first_weights
    }

    /// Expected input features.
    pub fn input_dim(&self) -> usize {
        self.first_weights.cols()
    }

    /// Score a row-major `n × input_dim` batch into `out`, reusing
    /// workspaces.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn score_batch_with(&self, rows: &[f32], out: &mut [f32], ws: &mut HybridWorkspace) {
        let f = self.input_dim();
        let n = out.len();
        assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
        // Layer 1: SDMM on the packed batch. The packing buffer lives in
        // the workspace and is re-filled in place — no allocation per
        // batch after warm-up.
        transpose_into(rows, n, f, &mut ws.input_fm);
        ws.packed_b.pack_into(&ws.input_fm, f, n);
        let m = self.first_weights.rows();
        ws.first_out.resize(m * n, 0.0);
        spmm_xsmm_packed(
            &self.first_weights,
            &ws.packed_b,
            &mut ws.first_out,
            &mut ws.spmm,
        );
        // Bias + activation.
        for (row, &b) in ws.first_out.chunks_exact_mut(n).zip(&self.first_bias) {
            for v in row.iter_mut() {
                *v = self.first_activation.apply(*v + b);
            }
        }
        // Dense tail (already feature-major).
        let scores = self
            .rest
            .forward_feature_major(&ws.first_out, n, &mut ws.mlp);
        out.copy_from_slice(scores);
    }

    /// Allocating convenience wrapper.
    pub fn score_batch(&self, rows: &[f32], out: &mut [f32]) {
        let mut ws = HybridWorkspace::default();
        self.score_batch_with(rows, out, &mut ws);
    }

    /// Score one document.
    pub fn score(&self, row: &[f32]) -> f32 {
        let mut out = [0.0f32];
        self.score_batch(row, &mut out);
        out[0]
    }
}

/// Reusable buffers for hybrid scoring.
#[derive(Debug, Default)]
pub struct HybridWorkspace {
    input_fm: Vec<f32>,
    first_out: Vec<f32>,
    /// In-place re-packed batch for the SDMM first layer.
    packed_b: PackedB,
    spmm: SpmmWorkspace,
    mlp: MlpWorkspace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::LayerMasks;

    fn pruned_net(seed: u64, keep_every: usize) -> Mlp {
        let mut mlp = Mlp::from_hidden(10, &[12, 6], seed);
        let nw = mlp.layers()[0].num_weights();
        let mask: Vec<f32> = (0..nw)
            .map(|i| if i % keep_every == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut masks = LayerMasks::none(3);
        masks.set(0, mask);
        masks.apply(&mut mlp);
        mlp
    }

    #[test]
    fn hybrid_matches_dense_forward() {
        let mlp = pruned_net(3, 4);
        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        assert!(hybrid.first_layer_sparsity() > 0.7);
        let rows: Vec<f32> = (0..10 * 17)
            .map(|i| ((i * 31) % 13) as f32 / 6.0 - 1.0)
            .collect();
        let mut dense_out = vec![0.0f32; 17];
        let mut hybrid_out = vec![0.0f32; 17];
        mlp.score_batch(&rows, &mut dense_out);
        hybrid.score_batch(&rows, &mut hybrid_out);
        for (d, h) in dense_out.iter().zip(&hybrid_out) {
            assert!((d - h).abs() < 1e-4, "dense {d} hybrid {h}");
        }
    }

    #[test]
    fn single_doc_matches_batch() {
        let mlp = pruned_net(5, 3);
        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        let rows: Vec<f32> = (0..10 * 4).map(|i| (i as f32 * 0.21).sin()).collect();
        let mut out = vec![0.0f32; 4];
        hybrid.score_batch(&rows, &mut out);
        for (d, row) in rows.chunks_exact(10).enumerate() {
            assert!((hybrid.score(row) - out[d]).abs() < 1e-6);
        }
    }

    #[test]
    fn tolerance_prunes_small_weights() {
        let mlp = Mlp::from_hidden(6, &[8, 4], 9);
        let all = HybridMlp::from_mlp(&mlp, 0.0);
        let pruned = HybridMlp::from_mlp(&mlp, 0.5);
        assert!(pruned.first_weights().nnz() < all.first_weights().nnz());
    }

    #[test]
    fn workspace_reuse_stable() {
        let mlp = pruned_net(7, 5);
        let hybrid = HybridMlp::from_mlp(&mlp, 0.0);
        let rows: Vec<f32> = (0..10 * 9).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut ws = HybridWorkspace::default();
        let mut a = vec![0.0f32; 9];
        let mut b = vec![0.0f32; 9];
        hybrid.score_batch_with(&rows, &mut a, &mut ws);
        hybrid.score_batch_with(&rows, &mut b, &mut ws);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn single_layer_rejected() {
        let l = Linear::new(3, 1, 1);
        let mlp = Mlp::from_parts(vec![l], vec![Activation::Identity]);
        HybridMlp::from_mlp(&mlp, 0.0);
    }
}
