//! Deterministic training-fault injection.
//!
//! The training-side sibling of `dlr-core::fault`'s serving injector: a
//! scripted plan of faults — NaN losses at chosen batch steps, a simulated
//! crash after a chosen epoch, on-disk corruption of a just-written
//! checkpoint — that the self-healing training drivers consult at
//! well-defined points. Every fault is counted when it fires, so the
//! integration suite can assert that detection and recovery statistics
//! match the injected plan *exactly*.
//!
//! Faults are scheduled, not sampled: a plan either lists explicit batch
//! steps or derives them from a seed via [`FaultPlan::seeded_nan`], and
//! two runs with the same plan inject identically.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// How an injected checkpoint corruption mangles the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptMode {
    /// Truncate the file to half its length (a torn write).
    Truncate,
    /// XOR one byte in the middle of the payload (bit rot).
    FlipByte,
}

/// A scripted set of training faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Global batch steps (0-based, monotone across the run, *including*
    /// replayed batches after a rollback) whose loss is poisoned to NaN.
    pub nan_loss_steps: BTreeSet<u64>,
    /// Simulate a crash after this epoch completes and its checkpoint is
    /// written: the driver stops with `TrainError::InjectedCrash`.
    pub crash_after_epoch: Option<usize>,
    /// Corrupt the checkpoint written at the end of this epoch.
    pub corrupt_after_epoch: Option<(usize, CorruptMode)>,
}

impl FaultPlan {
    /// Poison NaN losses at exactly these global batch steps.
    pub fn nan_at(steps: &[u64]) -> FaultPlan {
        FaultPlan {
            nan_loss_steps: steps.iter().copied().collect(),
            ..FaultPlan::default()
        }
    }

    /// Derive `count` distinct NaN-loss steps in `[0, span)` from `seed`.
    /// Deterministic: the same seed always yields the same schedule.
    pub fn seeded_nan(seed: u64, count: usize, span: u64) -> FaultPlan {
        assert!(span > 0, "span must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = BTreeSet::new();
        while steps.len() < count.min(span as usize) {
            steps.insert(rng.random_range(0..span));
        }
        FaultPlan {
            nan_loss_steps: steps,
            ..FaultPlan::default()
        }
    }

    /// Add a crash after `epoch`.
    pub fn with_crash_after(mut self, epoch: usize) -> FaultPlan {
        self.crash_after_epoch = Some(epoch);
        self
    }

    /// Add a checkpoint corruption after `epoch`.
    pub fn with_corrupt_after(mut self, epoch: usize, mode: CorruptMode) -> FaultPlan {
        self.corrupt_after_epoch = Some((epoch, mode));
        self
    }
}

/// Exact counts of faults that actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// NaN losses injected.
    pub nan_injected: u64,
    /// Simulated crashes fired.
    pub crashes: u64,
    /// Checkpoint files corrupted on disk.
    pub corruptions: u64,
}

/// Consumes a [`FaultPlan`] during a training run, counting every fault
/// that fires. Each scheduled fault fires at most once.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// What has fired so far.
    pub counters: FaultCounters,
}

impl FaultInjector {
    /// Arm an injector with `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            counters: FaultCounters::default(),
        }
    }

    /// Whether the batch at `global_step` should have its loss poisoned.
    /// A step is consumed when it fires, so replayed step indices (which
    /// keep counting up after a rollback) cannot re-trigger it.
    pub fn poison_step(&mut self, global_step: u64) -> bool {
        if self.plan.nan_loss_steps.remove(&global_step) {
            self.counters.nan_injected += 1;
            true
        } else {
            false
        }
    }

    /// Whether the run should simulate a crash after `epoch`. Fires once.
    pub fn should_crash_after(&mut self, epoch: usize) -> bool {
        if self.plan.crash_after_epoch == Some(epoch) {
            self.plan.crash_after_epoch = None;
            self.counters.crashes += 1;
            true
        } else {
            false
        }
    }

    /// Corrupt `path` in place if the plan schedules a corruption after
    /// `epoch`. Returns whether a corruption was applied.
    ///
    /// # Errors
    /// Propagates I/O failures while mangling the file.
    pub fn corrupt_checkpoint(&mut self, epoch: usize, path: &Path) -> std::io::Result<bool> {
        match self.plan.corrupt_after_epoch {
            Some((e, mode)) if e == epoch => {
                self.plan.corrupt_after_epoch = None;
                corrupt_file(path, mode)?;
                self.counters.corruptions += 1;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Apply `mode` to the file at `path`.
fn corrupt_file(path: &Path, mode: CorruptMode) -> std::io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    match mode {
        CorruptMode::Truncate => {
            file.set_len(bytes.len() as u64 / 2)?;
        }
        CorruptMode::FlipByte => {
            if !bytes.is_empty() {
                let at = bytes.len() / 2;
                file.seek(SeekFrom::Start(at as u64))?;
                file.write_all(&[bytes[at] ^ 0x40])?;
            }
        }
    }
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_fire_once_and_are_counted() {
        let mut inj = FaultInjector::new(FaultPlan::nan_at(&[3, 7]));
        let fired: Vec<u64> = (0..10).filter(|&s| inj.poison_step(s)).collect();
        assert_eq!(fired, vec![3, 7]);
        assert_eq!(inj.counters.nan_injected, 2);
        // Replayed steps (monotone counter keeps going) cannot re-fire.
        assert!(!inj.poison_step(3));
        assert_eq!(inj.counters.nan_injected, 2);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded_nan(9, 5, 100);
        let b = FaultPlan::seeded_nan(9, 5, 100);
        assert_eq!(a.nan_loss_steps, b.nan_loss_steps);
        assert_eq!(a.nan_loss_steps.len(), 5);
        assert!(a.nan_loss_steps.iter().all(|&s| s < 100));
    }

    #[test]
    fn crash_fires_once() {
        let mut inj = FaultInjector::new(FaultPlan::default().with_crash_after(2));
        assert!(!inj.should_crash_after(1));
        assert!(inj.should_crash_after(2));
        assert!(!inj.should_crash_after(2));
        assert_eq!(inj.counters.crashes, 1);
    }

    #[test]
    fn corruption_mangles_the_file() {
        let dir = std::env::temp_dir().join(format!("dlr-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, vec![0xAAu8; 64]).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::default().with_corrupt_after(0, CorruptMode::Truncate));
        assert!(inj.corrupt_checkpoint(0, &path).unwrap());
        assert_eq!(std::fs::read(&path).unwrap().len(), 32);
        assert_eq!(inj.counters.corruptions, 1);
        // Consumed: does not fire again.
        assert!(!inj.corrupt_checkpoint(0, &path).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
