#![forbid(unsafe_code)]
//! Feed-forward networks for document scoring.
//!
//! The workspace's PyTorch stand-in: multi-layer perceptrons with ReLU6
//! activations (§6.1), trained with Adam on the MSE score-approximation
//! loss of the distillation recipe, with optional dropout after the first
//! layer and step learning-rate schedules — the exact training toolkit of
//! Table 9.
//!
//! Two inference paths mirror the paper's §5:
//!
//! * [`Mlp::score_batch_with`] — all layers dense, each layer one blocked
//!   GEMM (`dlr-dense`), the configuration of Tables 2 and 6;
//! * [`HybridMlp`] — first layer pruned to CSR and multiplied with the
//!   LIBXSMM-style sparse kernel (`dlr-sparse`), the rest dense: the
//!   paper's winning "hybrid model — first layer sparse, other layers
//!   dense" (Table 8).
//!
//! Batch convention: the public API takes documents as row-major
//! `n × features` blocks (the way datasets store them); internally
//! activations live feature-major (`features × n`) so every layer is the
//! paper's `W·x` GEMM with `A = W (m×k)`, `B = activations (k×n)`.

pub mod activation;
pub mod adam;
pub mod checkpoint;
pub mod checksum;
pub mod fault;
pub mod hybrid;
pub mod init;
pub mod layer;
pub mod mlp;
pub mod quant;
pub mod scheduler;
pub mod serialize;
pub mod train;

pub use activation::Activation;
pub use adam::{Adam, AdamState};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointManager, SkippedCheckpoint};
pub use checksum::crc32;
pub use fault::{CorruptMode, FaultCounters, FaultInjector, FaultPlan};
pub use hybrid::HybridMlp;
pub use layer::Linear;
pub use mlp::{Mlp, MlpWorkspace};
pub use quant::{QuantizedLinear, QuantizedMlp};
pub use scheduler::StepLr;
pub use serialize::{
    mlp_format_version, read_mlp, read_mlp_bytes, read_mlp_from_path, write_mlp, MlpLoadError,
    MlpParseError,
};
pub use train::{
    train_mse, train_mse_resilient, BatchAnomaly, GuardConfig, GuardStats, LayerMasks, TrainConfig,
    TrainError, TrainReport, TrainerState,
};
