//! Plain-text (de)serialization of MLPs.
//!
//! Line-oriented, dependency-free, exact `f32` round-trips (shortest-exact
//! formatting). Format:
//!
//! ```text
//! dlr-mlp v1
//! layers <n>
//! layer <in> <out> <relu|relu6|identity>
//! w <in floats>        (× out rows)
//! b <out floats>
//! ```

use crate::activation::Activation;
use crate::layer::Linear;
use crate::mlp::Mlp;
use dlr_dense::Matrix;
use std::io::{BufRead, Write};

/// Errors loading a serialized MLP.
#[derive(Debug, Clone, PartialEq)]
pub enum MlpParseError {
    /// Missing or unknown header.
    BadHeader,
    /// A structural line was malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for MlpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlpParseError::BadHeader => write!(f, "not a dlr-mlp v1 file"),
            MlpParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            MlpParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for MlpParseError {}

impl From<std::io::Error> for MlpParseError {
    fn from(e: std::io::Error) -> Self {
        MlpParseError::Io(e.to_string())
    }
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Relu6 => "relu6",
        Activation::Identity => "identity",
    }
}

fn act_parse(s: &str) -> Option<Activation> {
    match s {
        "relu" => Some(Activation::Relu),
        "relu6" => Some(Activation::Relu6),
        "identity" => Some(Activation::Identity),
        _ => None,
    }
}

/// Write `mlp` in the text format.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_mlp<W: Write>(mlp: &Mlp, mut w: W) -> Result<(), MlpParseError> {
    writeln!(w, "dlr-mlp v1")?;
    writeln!(w, "layers {}", mlp.layers().len())?;
    for (layer, act) in mlp.layers().iter().zip(mlp.activations()) {
        writeln!(
            w,
            "layer {} {} {}",
            layer.in_features(),
            layer.out_features(),
            act_name(*act)
        )?;
        for r in 0..layer.out_features() {
            write!(w, "w")?;
            for &v in layer.weights.row(r) {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        write!(w, "b")?;
        for &v in &layer.bias {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read an MLP written by [`write_mlp`].
///
/// # Errors
/// [`MlpParseError`] on any structural problem.
pub fn read_mlp<R: BufRead>(r: R) -> Result<Mlp, MlpParseError> {
    let mut lines = r.lines();
    let mut lineno = 0usize;
    let mut next = |lineno: &mut usize| -> Result<String, MlpParseError> {
        *lineno += 1;
        match lines.next() {
            Some(Ok(l)) => Ok(l),
            Some(Err(e)) => Err(e.into()),
            None => Err(MlpParseError::Malformed {
                line: *lineno,
                message: "unexpected end of file".into(),
            }),
        }
    };
    let bad = |line: usize, message: &str| MlpParseError::Malformed {
        line,
        message: message.to_string(),
    };

    if next(&mut lineno)? != "dlr-mlp v1" {
        return Err(MlpParseError::BadHeader);
    }
    let count_line = next(&mut lineno)?;
    let num_layers: usize = count_line
        .strip_prefix("layers ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(lineno, "expected `layers <n>`"))?;
    if num_layers == 0 {
        return Err(bad(lineno, "network needs at least one layer"));
    }

    let parse_floats = |line: &str, prefix: &str, expected: usize, lineno: usize| {
        let rest = line
            .strip_prefix(prefix)
            .ok_or_else(|| bad(lineno, &format!("expected `{prefix}...`")))?;
        let vals: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse::<f32>).collect();
        let vals = vals.map_err(|_| bad(lineno, "bad float"))?;
        if vals.len() != expected {
            return Err(bad(
                lineno,
                &format!("expected {expected} values, got {}", vals.len()),
            ));
        }
        Ok(vals)
    };

    let mut layers = Vec::with_capacity(num_layers);
    let mut activations = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let header = next(&mut lineno)?;
        let p: Vec<&str> = header.split_whitespace().collect();
        if p.len() != 4 || p[0] != "layer" {
            return Err(bad(lineno, "expected `layer <in> <out> <activation>`"));
        }
        let in_f: usize = p[1].parse().map_err(|_| bad(lineno, "bad in_features"))?;
        let out_f: usize = p[2].parse().map_err(|_| bad(lineno, "bad out_features"))?;
        let act = act_parse(p[3]).ok_or_else(|| bad(lineno, "unknown activation"))?;
        let mut weights = Vec::with_capacity(in_f * out_f);
        for _ in 0..out_f {
            let l = next(&mut lineno)?;
            weights.extend(parse_floats(&l, "w", in_f, lineno)?);
        }
        let l = next(&mut lineno)?;
        let bias = parse_floats(&l, "b", out_f, lineno)?;
        layers.push(Linear {
            weights: Matrix::from_vec(out_f, in_f, weights),
            bias,
        });
        activations.push(act);
    }
    Ok(Mlp::from_parts(layers, activations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_is_exact() {
        let mlp = Mlp::from_hidden(7, &[5, 3], 42);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let back = read_mlp(Cursor::new(&buf)).unwrap();
        assert_eq!(mlp, back);
        // Same predictions, bit for bit.
        let row = [0.3f32, -0.7, 1.5, 0.0, -2.0, 0.25, 4.0];
        assert_eq!(mlp.score(&row), back.score(&row));
    }

    #[test]
    fn roundtrip_preserves_pruned_zeros_and_activations() {
        let mut mlp = Mlp::from_hidden(4, &[6], 3);
        // Prune some weights to exact zeros.
        for (i, w) in mlp.layers_mut()[0]
            .weights
            .as_mut_slice()
            .iter_mut()
            .enumerate()
        {
            if i % 3 == 0 {
                *w = 0.0;
            }
        }
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let back = read_mlp(Cursor::new(&buf)).unwrap();
        assert_eq!(mlp, back);
        assert_eq!(back.layers()[0].sparsity(), mlp.layers()[0].sparsity());
        assert_eq!(back.activations(), mlp.activations());
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            read_mlp(Cursor::new("pytorch\n")).unwrap_err(),
            MlpParseError::BadHeader
        );
    }

    #[test]
    fn wrong_row_width_rejected() {
        let mlp = Mlp::from_hidden(2, &[2], 1);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Drop one value from the first weight row.
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("w ") {
                    l.rsplit_once(' ')
                        .map(|(a, _)| a.to_string())
                        .unwrap_or_else(|| l.into())
                } else {
                    l.to_string()
                }
            })
            .collect();
        let err = read_mlp(Cursor::new(corrupted.join("\n"))).unwrap_err();
        assert!(matches!(err, MlpParseError::Malformed { .. }));
    }

    #[test]
    fn truncated_rejected() {
        let mlp = Mlp::from_hidden(3, &[4, 2], 9);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let half: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(read_mlp(Cursor::new(half)).is_err());
    }
}
