//! Plain-text (de)serialization of MLPs.
//!
//! Line-oriented, dependency-free, exact `f32` round-trips (shortest-exact
//! formatting). Current format (v2) adds a payload checksum so torn writes
//! and bit rot are rejected at load time with a typed error:
//!
//! ```text
//! dlr-mlp v2 crc32 <8-hex> len <payload bytes>
//! layers <n>
//! layer <in> <out> <relu|relu6|identity>
//! w <in floats>        (× out rows)
//! b <out floats>
//! ```
//!
//! The checksum covers every byte after the header line. Legacy v1 files
//! (no checksum line) are still accepted by [`read_mlp`]; [`write_mlp`]
//! always emits v2.
//!
//! Loading also *validates* the model: non-finite weights or biases and
//! layer shapes that do not chain are rejected with line/field context —
//! the same policy as the LETOR parser's non-finite rejection, so a
//! corrupted model cannot quietly poison every score it produces.

use crate::activation::Activation;
use crate::checksum::crc32;
use crate::layer::Linear;
use crate::mlp::Mlp;
use dlr_dense::Matrix;
use std::io::{BufRead, Write};

/// Errors loading a serialized MLP.
#[derive(Debug, Clone, PartialEq)]
pub enum MlpParseError {
    /// Missing or unknown header.
    BadHeader,
    /// The payload checksum did not match the header's.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the payload actually read.
        found: u32,
    },
    /// The payload byte count did not match the header's (torn write).
    Truncated {
        /// Payload length recorded in the header.
        expected_bytes: usize,
        /// Bytes actually present after the header.
        actual_bytes: usize,
    },
    /// A weight or bias value was NaN or infinite.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// 1-based value index within the line.
        index: usize,
    },
    /// A structural line was malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for MlpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlpParseError::BadHeader => write!(f, "not a dlr-mlp file"),
            MlpParseError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum {found:08x} does not match header {expected:08x}"
            ),
            MlpParseError::Truncated {
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "payload is {actual_bytes} bytes, header promised {expected_bytes} (torn write?)"
            ),
            MlpParseError::NonFinite { line, index } => {
                write!(f, "line {line}: value {index} is not finite")
            }
            MlpParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            MlpParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for MlpParseError {}

impl From<std::io::Error> for MlpParseError {
    fn from(e: std::io::Error) -> Self {
        MlpParseError::Io(e.to_string())
    }
}

/// A load failure annotated with the artifact's source path and the
/// format/version string its header claimed, so a registry's
/// load-rejection log says *which file* in *which format* failed — a
/// bare [`MlpParseError`] only says what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpLoadError {
    /// Where the artifact was read from.
    pub path: String,
    /// Format/version string from the header line (e.g. `dlr-mlp v2`),
    /// or `unknown` when no recognisable header was present.
    pub version: String,
    /// The underlying parse failure.
    pub error: MlpParseError,
}

impl std::fmt::Display for MlpLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model artifact {} (format {}): {}",
            self.path, self.version, self.error
        )
    }
}

impl std::error::Error for MlpLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The format/version string an artifact's header line claims
/// (`dlr-mlp v1` or `dlr-mlp v2`), or `None` when the first line is not
/// a dlr-mlp header at all.
pub fn mlp_format_version(bytes: &[u8]) -> Option<&'static str> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or(bytes.len());
    let header = std::str::from_utf8(bytes.get(..nl)?).ok()?;
    if header == "dlr-mlp v1" {
        Some("dlr-mlp v1")
    } else if header.starts_with("dlr-mlp v2 ") {
        Some("dlr-mlp v2")
    } else {
        None
    }
}

/// [`read_mlp`] from a filesystem path, with failures annotated with the
/// path and claimed format version (see [`MlpLoadError`]).
///
/// # Errors
/// [`MlpLoadError`] wrapping the underlying [`MlpParseError`] (including
/// I/O failures reading the file).
pub fn read_mlp_from_path(path: impl AsRef<std::path::Path>) -> Result<Mlp, MlpLoadError> {
    let shown = path.as_ref().display().to_string();
    let bytes = std::fs::read(path.as_ref()).map_err(|e| MlpLoadError {
        path: shown.clone(),
        version: "unknown".into(),
        error: MlpParseError::Io(e.to_string()),
    })?;
    read_mlp_bytes(&bytes).map_err(|error| MlpLoadError {
        path: shown,
        version: mlp_format_version(&bytes).unwrap_or("unknown").into(),
        error,
    })
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Relu6 => "relu6",
        Activation::Identity => "identity",
    }
}

fn act_parse(s: &str) -> Option<Activation> {
    match s {
        "relu" => Some(Activation::Relu),
        "relu6" => Some(Activation::Relu6),
        "identity" => Some(Activation::Identity),
        _ => None,
    }
}

/// Write `mlp` in the v2 text format (checksummed payload).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_mlp<W: Write>(mlp: &Mlp, mut w: W) -> Result<(), MlpParseError> {
    let mut payload = Vec::new();
    writeln!(payload, "layers {}", mlp.layers().len())?;
    for (layer, act) in mlp.layers().iter().zip(mlp.activations()) {
        writeln!(
            payload,
            "layer {} {} {}",
            layer.in_features(),
            layer.out_features(),
            act_name(*act)
        )?;
        for r in 0..layer.out_features() {
            write!(payload, "w")?;
            for &v in layer.weights.row(r) {
                write!(payload, " {v}")?;
            }
            writeln!(payload)?;
        }
        write!(payload, "b")?;
        for &v in &layer.bias {
            write!(payload, " {v}")?;
        }
        writeln!(payload)?;
    }
    writeln!(
        w,
        "dlr-mlp v2 crc32 {:08x} len {}",
        crc32(&payload),
        payload.len()
    )?;
    w.write_all(&payload)?;
    Ok(())
}

/// Read an MLP written by [`write_mlp`] (v2, checksummed) or by the
/// legacy v1 writer (no checksum).
///
/// # Errors
/// [`MlpParseError`] on any structural problem, checksum or length
/// mismatch, non-finite value, or unchained layer shapes.
pub fn read_mlp<R: BufRead>(mut r: R) -> Result<Mlp, MlpParseError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    read_mlp_bytes(&bytes)
}

/// [`read_mlp`] over an in-memory byte slice.
///
/// # Errors
/// Same as [`read_mlp`].
pub fn read_mlp_bytes(bytes: &[u8]) -> Result<Mlp, MlpParseError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(MlpParseError::BadHeader)?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| MlpParseError::BadHeader)?;
    let payload = &bytes[nl + 1..];
    if header == "dlr-mlp v1" {
        // Legacy: no checksum to verify.
    } else if let Some(rest) = header.strip_prefix("dlr-mlp v2 crc32 ") {
        let (crc_hex, len_part) = rest.split_once(" len ").ok_or(MlpParseError::BadHeader)?;
        let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| MlpParseError::BadHeader)?;
        let expected_bytes: usize = len_part.parse().map_err(|_| MlpParseError::BadHeader)?;
        if payload.len() != expected_bytes {
            return Err(MlpParseError::Truncated {
                expected_bytes,
                actual_bytes: payload.len(),
            });
        }
        let found = crc32(payload);
        if found != expected {
            return Err(MlpParseError::ChecksumMismatch { expected, found });
        }
    } else {
        return Err(MlpParseError::BadHeader);
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| MlpParseError::Io(format!("payload is not valid UTF-8: {e}")))?;
    parse_mlp_body(text)
}

/// Parse the line-oriented body shared by v1 and v2 (everything after the
/// header line). Line numbers in errors count from the start of the file,
/// i.e. the first body line is line 2.
fn parse_mlp_body(text: &str) -> Result<Mlp, MlpParseError> {
    let mut lines = text.lines();
    let mut lineno = 1usize; // the header was line 1
    let mut next = |lineno: &mut usize| -> Result<&str, MlpParseError> {
        *lineno += 1;
        lines.next().ok_or(MlpParseError::Malformed {
            line: *lineno,
            message: "unexpected end of file".into(),
        })
    };
    let bad = |line: usize, message: &str| MlpParseError::Malformed {
        line,
        message: message.to_string(),
    };

    let count_line = next(&mut lineno)?;
    let num_layers: usize = count_line
        .strip_prefix("layers ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(lineno, "expected `layers <n>`"))?;
    if num_layers == 0 {
        return Err(bad(lineno, "network needs at least one layer"));
    }

    let parse_floats = |line: &str, prefix: &str, expected: usize, lineno: usize| {
        let rest = line
            .strip_prefix(prefix)
            .ok_or_else(|| bad(lineno, &format!("expected `{prefix}...`")))?;
        let vals: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse::<f32>).collect();
        let vals = vals.map_err(|_| bad(lineno, "bad float"))?;
        if vals.len() != expected {
            return Err(bad(
                lineno,
                &format!("expected {expected} values, got {}", vals.len()),
            ));
        }
        if let Some(i) = vals.iter().position(|v| !v.is_finite()) {
            return Err(MlpParseError::NonFinite {
                line: lineno,
                index: i + 1,
            });
        }
        Ok(vals)
    };

    let mut layers: Vec<Linear> = Vec::with_capacity(num_layers);
    let mut activations = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let header = next(&mut lineno)?;
        let p: Vec<&str> = header.split_whitespace().collect();
        if p.len() != 4 || p[0] != "layer" {
            return Err(bad(lineno, "expected `layer <in> <out> <activation>`"));
        }
        let in_f: usize = p[1].parse().map_err(|_| bad(lineno, "bad in_features"))?;
        let out_f: usize = p[2].parse().map_err(|_| bad(lineno, "bad out_features"))?;
        if in_f == 0 || out_f == 0 {
            return Err(bad(lineno, "layer dimensions must be positive"));
        }
        if let Some(prev) = layers.last() {
            if prev.out_features() != in_f {
                return Err(bad(
                    lineno,
                    &format!(
                        "layer input width {in_f} does not chain with previous output width {}",
                        prev.out_features()
                    ),
                ));
            }
        }
        let act = act_parse(p[3]).ok_or_else(|| bad(lineno, "unknown activation"))?;
        let mut weights = Vec::with_capacity(in_f * out_f);
        for _ in 0..out_f {
            let l = next(&mut lineno)?;
            weights.extend(parse_floats(l, "w", in_f, lineno)?);
        }
        let l = next(&mut lineno)?;
        let bias = parse_floats(l, "b", out_f, lineno)?;
        layers.push(Linear {
            weights: Matrix::from_vec(out_f, in_f, weights),
            bias,
        });
        activations.push(act);
    }
    Ok(Mlp::from_parts(layers, activations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_is_exact() {
        let mlp = Mlp::from_hidden(7, &[5, 3], 42);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let back = read_mlp(Cursor::new(&buf)).unwrap();
        assert_eq!(mlp, back);
        // Same predictions, bit for bit.
        let row = [0.3f32, -0.7, 1.5, 0.0, -2.0, 0.25, 4.0];
        assert_eq!(mlp.score(&row), back.score(&row));
    }

    #[test]
    fn roundtrip_preserves_pruned_zeros_and_activations() {
        let mut mlp = Mlp::from_hidden(4, &[6], 3);
        // Prune some weights to exact zeros.
        for (i, w) in mlp.layers_mut()[0]
            .weights
            .as_mut_slice()
            .iter_mut()
            .enumerate()
        {
            if i % 3 == 0 {
                *w = 0.0;
            }
        }
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let back = read_mlp(Cursor::new(&buf)).unwrap();
        assert_eq!(mlp, back);
        assert_eq!(back.layers()[0].sparsity(), mlp.layers()[0].sparsity());
        assert_eq!(back.activations(), mlp.activations());
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let mlp = Mlp::from_hidden(3, &[4], 9);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        // Rebuild the file as a v1 writer would have: plain header, no
        // checksum, identical body.
        let text = String::from_utf8(buf).unwrap();
        let body = text.split_once('\n').unwrap().1;
        let v1 = format!("dlr-mlp v1\n{body}");
        let back = read_mlp(Cursor::new(v1.as_bytes())).unwrap();
        assert_eq!(mlp, back);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            read_mlp(Cursor::new("pytorch\n")).unwrap_err(),
            MlpParseError::BadHeader
        );
    }

    #[test]
    fn payload_byte_flip_rejected_by_checksum() {
        let mlp = Mlp::from_hidden(4, &[3], 7);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let header_end = buf.iter().position(|&b| b == b'\n').unwrap();
        let mid = header_end + 1 + (buf.len() - header_end - 1) / 2;
        buf[mid] ^= 0x01;
        let err = read_mlp(Cursor::new(&buf)).unwrap_err();
        assert!(
            matches!(err, MlpParseError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn torn_write_rejected_by_length() {
        let mlp = Mlp::from_hidden(4, &[3], 7);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_mlp(Cursor::new(&buf)).unwrap_err();
        assert!(
            matches!(err, MlpParseError::Truncated { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn non_finite_weights_rejected_with_context() {
        let mlp = Mlp::from_hidden(2, &[2], 1);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body = text.split_once('\n').unwrap().1;
        // Poison the second value of the first weight row, keeping the
        // header legacy so the checksum does not trip first.
        let poisoned: Vec<String> = body
            .lines()
            .map(|l| {
                if l.starts_with("w ") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    parts[2] = "NaN";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let v1 = format!("dlr-mlp v1\n{}\n", poisoned.join("\n"));
        let err = read_mlp(Cursor::new(v1.as_bytes())).unwrap_err();
        // Line 4 is the first weight row: header, `layers`, `layer`, `w`.
        assert_eq!(err, MlpParseError::NonFinite { line: 4, index: 2 });
    }

    #[test]
    fn unchained_layer_dims_rejected() {
        // layer 0 is 2→3 but layer 1 claims 4 inputs.
        let text = "dlr-mlp v1\nlayers 2\nlayer 2 3 relu6\nw 1 2\nw 3 4\nw 5 6\nb 0 0 0\nlayer 4 1 identity\nw 1 2 3 4\nb 0\n";
        let err = read_mlp(Cursor::new(text.as_bytes())).unwrap_err();
        match err {
            MlpParseError::Malformed { line, message } => {
                assert_eq!(line, 8);
                assert!(message.contains("chain"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn wrong_row_width_rejected() {
        let mlp = Mlp::from_hidden(2, &[2], 1);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body = text.split_once('\n').unwrap().1;
        // Drop one value from the first weight row (as a v1 file, so the
        // structural error is reached rather than the checksum).
        let corrupted: Vec<String> = body
            .lines()
            .map(|l| {
                if l.starts_with("w ") {
                    l.rsplit_once(' ')
                        .map(|(a, _)| a.to_string())
                        .unwrap_or_else(|| l.into())
                } else {
                    l.to_string()
                }
            })
            .collect();
        let v1 = format!("dlr-mlp v1\n{}", corrupted.join("\n"));
        let err = read_mlp(Cursor::new(v1.as_bytes())).unwrap_err();
        assert!(matches!(err, MlpParseError::Malformed { .. }));
    }

    #[test]
    fn path_load_error_names_file_and_version() {
        let mlp = Mlp::from_hidden(3, &[2], 5);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let dir = std::env::temp_dir().join(format!("dlr-mlp-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Clean round trip through the path API.
        let good = dir.join("good.dlr");
        std::fs::write(&good, &buf).unwrap();
        assert_eq!(read_mlp_from_path(&good).unwrap(), mlp);

        // Checksum failure: Display carries path, format version, and the
        // underlying cause.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        let bad = dir.join("corrupt.dlr");
        std::fs::write(&bad, &corrupt).unwrap();
        let err = read_mlp_from_path(&bad).unwrap_err();
        assert_eq!(err.version, "dlr-mlp v2");
        assert!(matches!(err.error, MlpParseError::ChecksumMismatch { .. }));
        let text = err.to_string();
        assert!(text.contains("corrupt.dlr"), "{text}");
        assert!(text.contains("dlr-mlp v2"), "{text}");
        assert!(text.contains("checksum"), "{text}");

        // Missing file: version unknown, path still named.
        let missing = dir.join("nope.dlr");
        let err = read_mlp_from_path(&missing).unwrap_err();
        assert_eq!(err.version, "unknown");
        assert!(matches!(err.error, MlpParseError::Io(_)));
        assert!(err.to_string().contains("nope.dlr"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_version_probes_the_header_only() {
        assert_eq!(
            mlp_format_version(b"dlr-mlp v2 crc32 00000000 len 0\n"),
            Some("dlr-mlp v2")
        );
        assert_eq!(
            mlp_format_version(b"dlr-mlp v1\nlayers 1\n"),
            Some("dlr-mlp v1")
        );
        assert_eq!(mlp_format_version(b"pytorch\n"), None);
        assert_eq!(mlp_format_version(b""), None);
    }

    #[test]
    fn truncated_rejected() {
        let mlp = Mlp::from_hidden(3, &[4, 2], 9);
        let mut buf = Vec::new();
        write_mlp(&mlp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let half: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(read_mlp(Cursor::new(half)).is_err());
    }
}
