//! Weight initialization.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// He (Kaiming) uniform initialization for a `fan_in`-input layer:
/// uniform in `±sqrt(6 / fan_in)` — the standard choice for ReLU-family
/// activations.
pub fn he_uniform(fan_in: usize, count: usize, seed: u64) -> Vec<f32> {
    let bound = (6.0f32 / fan_in.max(1) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.random_range(-bound..=bound))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_seeded() {
        let w = he_uniform(100, 1000, 7);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= bound));
        assert_eq!(w, he_uniform(100, 1000, 7));
        assert_ne!(w, he_uniform(100, 1000, 8));
    }

    #[test]
    fn spread_covers_the_range() {
        let w = he_uniform(10, 1000, 1);
        let bound = (6.0f32 / 10.0).sqrt();
        let max = w.iter().cloned().fold(f32::MIN, f32::max);
        let min = w.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max > 0.8 * bound);
        assert!(min < -0.8 * bound);
    }
}
