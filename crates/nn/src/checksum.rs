//! CRC-32 (IEEE 802.3) over byte payloads.
//!
//! The model and checkpoint files guard their payloads with this checksum
//! so a torn write (power loss mid-`write`) or bit rot surfaces as a typed
//! load error instead of silently corrupted weights. CRC-32 detects all
//! single-byte errors and all burst errors up to 32 bits, which covers the
//! failure modes of a partially flushed text file.

/// Reflected CRC-32 with the IEEE polynomial, init `0xFFFF_FFFF`, final
/// XOR `0xFFFF_FFFF` — the same function as zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // zlib's reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_any_single_byte_flip() {
        let base = b"dlr checkpoint payload 0123456789".to_vec();
        let good = crc32(&base);
        for i in 0..base.len() {
            let mut bad = base.clone();
            bad[i] ^= 0x40;
            assert_ne!(crc32(&bad), good, "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn detects_truncation() {
        let base = b"layers 3\nw 1 2 3\n".to_vec();
        let good = crc32(&base);
        for cut in 0..base.len() {
            assert_ne!(crc32(&base[..cut]), good, "truncation at {cut} undetected");
        }
    }
}
