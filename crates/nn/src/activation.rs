//! Activation functions.
//!
//! The paper uses ReLU6 — `min(max(x, 0), 6)` — after every linear layer
//! except the last (§6.1). Plain ReLU and the identity are provided for
//! ablations and for the output layer.

/// Element-wise activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)` — the paper's choice.
    Relu6,
    /// Pass-through (output layer).
    Identity,
}

impl Activation {
    /// Apply to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the *pre-activation* value.
    ///
    /// At the kinks (0 and 6) we use the right/left derivative 0, matching
    /// the subgradient choice of mainstream frameworks.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Relu6 => {
                if x > 0.0 && x < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Apply in place over a buffer.
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu6_clamps_both_sides() {
        assert_eq!(Activation::Relu6.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu6.apply(3.0), 3.0);
        assert_eq!(Activation::Relu6.apply(9.0), 6.0);
    }

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.apply(100.0), 100.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Relu, Activation::Relu6, Activation::Identity] {
            for x in [-2.0f32, -0.5, 0.5, 3.0, 5.5, 7.0] {
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (act.derivative(x) - fd).abs() < 1e-3,
                    "{act:?} at {x}: analytic {} vs fd {fd}",
                    act.derivative(x)
                );
            }
        }
    }

    #[test]
    fn derivative_zero_outside_linear_region() {
        assert_eq!(Activation::Relu6.derivative(-0.1), 0.0);
        assert_eq!(Activation::Relu6.derivative(6.1), 0.0);
        assert_eq!(Activation::Relu.derivative(-0.1), 0.0);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut v = vec![-1.0, 0.5, 7.0];
        Activation::Relu6.apply_slice(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 6.0]);
    }
}
