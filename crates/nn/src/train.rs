//! MSE training with backpropagation and Adam.
//!
//! The training engine behind the distillation recipe (§3) and the
//! pruning fine-tuning loop (§5.2): minibatch MSE between the network's
//! score and a target score, Adam updates, optional dropout after the
//! first layer (Table 9), and optional per-layer binary *masks* that keep
//! pruned weights at exactly zero through fine-tuning (the Distiller
//! behaviour the paper relies on).

use crate::adam::{Adam, AdamState};
use crate::checkpoint::CheckpointError;
use crate::fault::FaultInjector;
use crate::mlp::{transpose_into, Mlp};
use crate::scheduler::StepLr;
use dlr_dense::gemm::blocked::{gemm_with, GemmWorkspace, GotoParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Binary keep-masks, one optional mask per layer's weight tensor
/// (`1.0` = trainable, `0.0` = pruned). Layers without a mask train
/// normally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerMasks {
    masks: Vec<Option<Vec<f32>>>,
}

impl LayerMasks {
    /// No masks for a network of `num_layers` layers.
    pub fn none(num_layers: usize) -> LayerMasks {
        LayerMasks {
            masks: vec![None; num_layers],
        }
    }

    /// Set the mask of layer `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn set(&mut self, i: usize, mask: Vec<f32>) {
        self.masks[i] = Some(mask);
    }

    /// Mask of layer `i`, if any.
    pub fn get(&self, i: usize) -> Option<&[f32]> {
        self.masks.get(i).and_then(|m| m.as_deref())
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no layer has a mask.
    pub fn is_empty(&self) -> bool {
        self.masks.iter().all(Option::is_none)
    }

    /// Force masked weights of `mlp` to zero (idempotent).
    ///
    /// When an optimizer is live, prefer [`SgdTrainer::apply_masks`],
    /// which also zeroes the Adam moments of pruned weights — this
    /// weight-only variant leaves stale momentum behind.
    pub fn apply(&self, mlp: &mut Mlp) {
        for (layer, mask) in mlp.layers_mut().iter_mut().zip(&self.masks) {
            if let Some(m) = mask {
                for (w, &keep) in layer.weights.as_mut_slice().iter_mut().zip(m) {
                    *w *= keep;
                }
            }
        }
    }
}

/// Divergence-guard configuration for the self-healing training loops.
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Per-layer gradient-norm clip over `[dW; db]` (`0` disables).
    pub max_grad_norm: f32,
    /// Learning-rate multiplier applied on each rollback (compounds
    /// across consecutive retries of the same epoch).
    pub lr_backoff: f32,
    /// Rollbacks allowed per epoch before the run fails with
    /// [`TrainError::Diverged`].
    pub max_rollbacks: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_grad_norm: 0.0,
            lr_backoff: 0.5,
            max_rollbacks: 3,
        }
    }
}

/// What the divergence guard caught and did, with exact counts — the
/// fault-injection suite asserts these match the injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Batches whose loss came back NaN or infinite.
    pub nonfinite_losses: u64,
    /// Batches with a NaN/infinite gradient (finite loss).
    pub nonfinite_gradients: u64,
    /// Batches where at least one layer's gradient was norm-clipped.
    pub clipped_batches: u64,
    /// Rollbacks to the last good state (each also backs off the LR).
    pub rollbacks: u64,
}

impl GuardStats {
    /// Count one detected anomaly.
    pub fn record(&mut self, anomaly: &BatchAnomaly) {
        match anomaly {
            BatchAnomaly::NonFiniteLoss => self.nonfinite_losses += 1,
            BatchAnomaly::NonFiniteGradient { .. } => self.nonfinite_gradients += 1,
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &GuardStats) {
        self.nonfinite_losses += other.nonfinite_losses;
        self.nonfinite_gradients += other.nonfinite_gradients;
        self.clipped_batches += other.clipped_batches;
        self.rollbacks += other.rollbacks;
    }
}

/// A numerical anomaly detected by the guard during one batch. After an
/// anomaly the model may be *partially updated* (layers later in the
/// backward pass stepped before the bad gradient surfaced) — the guarded
/// drivers always roll the whole state back to the last good snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAnomaly {
    /// The batch loss was NaN or infinite.
    NonFiniteLoss,
    /// A gradient tensor contained NaN or infinity.
    NonFiniteGradient {
        /// Layer whose gradients were non-finite (the output layer for a
        /// bad loss gradient).
        layer: usize,
    },
}

impl std::fmt::Display for BatchAnomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchAnomaly::NonFiniteLoss => write!(f, "non-finite loss"),
            BatchAnomaly::NonFiniteGradient { layer } => {
                write!(f, "non-finite gradient in layer {layer}")
            }
        }
    }
}

/// Terminal failures of the self-healing training loops.
#[derive(Debug)]
pub enum TrainError {
    /// The divergence guard exhausted its rollback budget for one epoch.
    Diverged {
        /// Epoch that kept diverging.
        epoch: usize,
        /// Rollbacks spent on it before giving up.
        rollbacks: u32,
        /// The final anomaly.
        anomaly: BatchAnomaly,
    },
    /// A [`FaultInjector`] crash fault fired (tests and drills only).
    InjectedCrash {
        /// Epoch after which the simulated crash hit.
        epoch: usize,
    },
    /// Reading or writing a checkpoint failed.
    Checkpoint(CheckpointError),
    /// A checkpoint does not match the current model/optimizer shapes.
    Incompatible(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                rollbacks,
                anomaly,
            } => write!(
                f,
                "epoch {epoch} kept diverging after {rollbacks} rollbacks: {anomaly}"
            ),
            TrainError::InjectedCrash { epoch } => {
                write!(f, "injected crash after epoch {epoch}")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Result of one guarded batch step.
#[derive(Debug, Clone, Copy)]
pub struct GuardedBatch {
    /// The batch's mean loss (pre-update).
    pub loss: f64,
    /// Whether any layer's gradient was norm-clipped.
    pub clipped: bool,
}

/// Serializable snapshot of an [`SgdTrainer`]: Adam moments for every
/// tensor plus the dropout RNG stream. Together with the model weights,
/// the scheduler epoch and the data-order RNG this is everything needed
/// to resume training bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Per-layer Adam state for the weight tensors.
    pub adam_w: Vec<AdamState>,
    /// Per-layer Adam state for the bias tensors.
    pub adam_b: Vec<AdamState>,
    /// Dropout probability the trainer was built with.
    pub dropout: f32,
    /// Raw dropout-RNG state.
    pub rng: [u64; 4],
}

/// Stateful minibatch trainer: Adam moments per tensor plus all scratch
/// buffers, reused across batches and epochs.
pub struct SgdTrainer {
    adam_w: Vec<Adam>,
    adam_b: Vec<Adam>,
    /// Dropout probability after the first layer (0 disables).
    dropout: f32,
    rng: StdRng,
    // Scratch, all feature-major.
    input_fm: Vec<f32>,
    zs: Vec<Vec<f32>>,
    acts: Vec<Vec<f32>>,
    da: Vec<f32>,
    da_prev: Vec<f32>,
    trans: Vec<f32>,
    dw: Vec<f32>,
    db: Vec<f32>,
    drop_mask: Vec<f32>,
    gemm: GemmWorkspace,
}

impl SgdTrainer {
    /// Create a trainer for `mlp`'s current architecture.
    pub fn new(mlp: &Mlp, dropout: f32, seed: u64) -> SgdTrainer {
        let adam_w = mlp
            .layers()
            .iter()
            .map(|l| Adam::new(l.num_weights()))
            .collect();
        let adam_b = mlp
            .layers()
            .iter()
            .map(|l| Adam::new(l.bias.len()))
            .collect();
        SgdTrainer {
            adam_w,
            adam_b,
            dropout,
            rng: StdRng::seed_from_u64(seed),
            input_fm: Vec::new(),
            zs: Vec::new(),
            acts: Vec::new(),
            da: Vec::new(),
            da_prev: Vec::new(),
            trans: Vec::new(),
            dw: Vec::new(),
            db: Vec::new(),
            drop_mask: Vec::new(),
            gemm: GemmWorkspace::default(),
        }
    }

    /// The dropout probability this trainer was built with.
    pub fn dropout(&self) -> f32 {
        self.dropout
    }

    /// Snapshot the optimizer + RNG state for checkpointing or in-memory
    /// rollback. Scratch buffers are not captured — they carry no
    /// information across batches.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            adam_w: self.adam_w.iter().map(Adam::state).collect(),
            adam_b: self.adam_b.iter().map(Adam::state).collect(),
            dropout: self.dropout,
            rng: self.rng.state(),
        }
    }

    /// Restore a snapshot taken by [`Self::export_state`].
    ///
    /// # Errors
    /// Rejects a snapshot whose tensor count or shapes differ from this
    /// trainer's.
    pub fn import_state(&mut self, state: &TrainerState) -> Result<(), String> {
        if state.adam_w.len() != self.adam_w.len() || state.adam_b.len() != self.adam_b.len() {
            return Err(format!(
                "state covers {} layers, trainer has {}",
                state.adam_w.len(),
                self.adam_w.len()
            ));
        }
        for (i, (opt, st)) in self.adam_w.iter_mut().zip(&state.adam_w).enumerate() {
            opt.restore(st)
                .map_err(|e| format!("layer {i} weights: {e}"))?;
        }
        for (i, (opt, st)) in self.adam_b.iter_mut().zip(&state.adam_b).enumerate() {
            opt.restore(st)
                .map_err(|e| format!("layer {i} bias: {e}"))?;
        }
        self.dropout = state.dropout;
        self.rng = StdRng::from_state(state.rng);
        Ok(())
    }

    /// Build a trainer for `mlp` and immediately restore `state` into it.
    ///
    /// # Errors
    /// Rejects a state whose shapes do not match `mlp`.
    pub fn from_state(mlp: &Mlp, state: &TrainerState) -> Result<SgdTrainer, String> {
        let mut trainer = SgdTrainer::new(mlp, state.dropout, 0);
        trainer.import_state(state)?;
        Ok(trainer)
    }

    /// Apply pruning masks to both the weights *and* this trainer's Adam
    /// moments: masked weights go to zero and their first/second moments
    /// are forgotten, so fine-tuning cannot resurrect pruned connections
    /// via stale momentum.
    ///
    /// # Panics
    /// Panics when a mask's length differs from its layer's weight count.
    pub fn apply_masks(&mut self, mlp: &mut Mlp, masks: &LayerMasks) {
        masks.apply(mlp);
        for (i, opt) in self.adam_w.iter_mut().enumerate() {
            if let Some(mask) = masks.get(i) {
                opt.zero_moments_where(mask);
            }
        }
    }

    /// One minibatch step: forward, MSE backward, Adam update. Returns
    /// the batch's mean squared error (pre-update).
    ///
    /// `rows` is row-major `n × input_dim`; `targets` has `n` entries.
    /// When `masks` is given, masked weights receive no gradient and are
    /// re-zeroed after the update.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn train_batch(
        &mut self,
        mlp: &mut Mlp,
        rows: &[f32],
        targets: &[f32],
        lr: f32,
        masks: Option<&LayerMasks>,
    ) -> f64 {
        let n = targets.len();
        self.train_batch_custom(mlp, rows, n, lr, masks, |preds, grad| {
            let mut loss = 0.0f64;
            for ((&p, &t), g) in preds.iter().zip(targets).zip(grad.iter_mut()) {
                let err = p - t;
                loss += (err as f64) * (err as f64);
                *g = 2.0 * err / n as f32;
            }
            loss / n as f64
        })
    }

    /// [`Self::train_batch`] under a divergence guard: the loss and every
    /// gradient tensor are checked for NaN/infinity before each layer's
    /// update, and per-layer gradients are norm-clipped when
    /// `guard.max_grad_norm > 0`. `poison` forces a NaN loss (the
    /// training fault injector's hook — deterministic stand-in for a
    /// numerical blow-up).
    ///
    /// # Errors
    /// [`BatchAnomaly`] when a non-finite value is detected; the model
    /// may be partially updated — roll back to a snapshot.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn train_batch_guarded(
        &mut self,
        mlp: &mut Mlp,
        rows: &[f32],
        targets: &[f32],
        lr: f32,
        masks: Option<&LayerMasks>,
        guard: &GuardConfig,
        poison: bool,
    ) -> Result<GuardedBatch, BatchAnomaly> {
        let n = targets.len();
        self.train_batch_impl(
            mlp,
            rows,
            n,
            lr,
            masks,
            Some(guard),
            poison,
            |preds, grad| {
                let mut loss = 0.0f64;
                for ((&p, &t), g) in preds.iter().zip(targets).zip(grad.iter_mut()) {
                    let err = p - t;
                    loss += (err as f64) * (err as f64);
                    *g = 2.0 * err / n as f32;
                }
                loss / n as f64
            },
        )
    }

    /// One minibatch step under a *custom* scalar loss: forward, then
    /// `loss_grad(predictions, out_gradient)` fills
    /// `out_gradient[i] = ∂L/∂pred_i` and returns the loss value, then the
    /// usual backward pass and Adam update run. This is how pairwise
    /// objectives (RankNet, §2.1) reuse the same engine as the MSE
    /// distillation loss.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn train_batch_custom<F>(
        &mut self,
        mlp: &mut Mlp,
        rows: &[f32],
        n: usize,
        lr: f32,
        masks: Option<&LayerMasks>,
        loss_grad: F,
    ) -> f64
    where
        F: FnOnce(&[f32], &mut [f32]) -> f64,
    {
        match self.train_batch_impl(mlp, rows, n, lr, masks, None, false, loss_grad) {
            Ok(b) => b.loss,
            Err(_) => unreachable!("anomaly detection is disabled without a guard"),
        }
    }

    /// Shared batch engine behind [`Self::train_batch_custom`] and
    /// [`Self::train_batch_guarded`]. With `guard: None` and
    /// `poison: false` it is bit-identical to the historical unguarded
    /// path and never returns `Err`.
    #[allow(clippy::too_many_arguments)]
    fn train_batch_impl<F>(
        &mut self,
        mlp: &mut Mlp,
        rows: &[f32],
        n: usize,
        lr: f32,
        masks: Option<&LayerMasks>,
        guard: Option<&GuardConfig>,
        poison: bool,
        loss_grad: F,
    ) -> Result<GuardedBatch, BatchAnomaly>
    where
        F: FnOnce(&[f32], &mut [f32]) -> f64,
    {
        let f = mlp.input_dim();
        assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
        assert_eq!(mlp.output_dim(), 1, "training expects one output");
        let num_layers = mlp.layers().len();
        self.zs.resize(num_layers, Vec::new());
        self.acts.resize(num_layers, Vec::new());
        transpose_into(rows, n, f, &mut self.input_fm);

        // ---- Forward, caching pre-activations and activations. ----
        let params = GotoParams::default();
        for i in 0..num_layers {
            let layer = &mlp.layers()[i];
            let (m, k) = (layer.out_features(), layer.in_features());
            let a_prev: &[f32] = if i == 0 {
                &self.input_fm
            } else {
                &self.acts[i - 1]
            };
            // Work around simultaneous borrows with a take/put dance.
            let mut z = std::mem::take(&mut self.zs[i]);
            z.resize(m * n, 0.0);
            gemm_with(
                m,
                k,
                n,
                layer.weights.as_slice(),
                a_prev,
                &mut z,
                params,
                &mut self.gemm,
            );
            layer.add_bias(&mut z, n);
            let mut a = std::mem::take(&mut self.acts[i]);
            a.clear();
            a.extend_from_slice(&z);
            mlp.activations()[i].apply_slice(&mut a);
            // Inverted dropout after the first layer only (Table 9).
            if i == 0 && self.dropout > 0.0 && num_layers > 1 {
                let keep = 1.0 - self.dropout;
                self.drop_mask.resize(a.len(), 0.0);
                for (mask, v) in self.drop_mask.iter_mut().zip(a.iter_mut()) {
                    if self.rng.random::<f32>() < self.dropout {
                        *mask = 0.0;
                        *v = 0.0;
                    } else {
                        *mask = 1.0 / keep;
                        *v *= *mask;
                    }
                }
            }
            self.zs[i] = z;
            self.acts[i] = a;
        }

        // ---- Loss and output gradient (caller-supplied). ----
        let preds = &self.acts[num_layers - 1];
        debug_assert_eq!(preds.len(), n);
        self.da.resize(n, 0.0);
        let mut loss = loss_grad(preds, &mut self.da);
        if poison {
            // Injected fault: the batch "blew up". The dropout RNG has
            // already advanced exactly as in a clean batch, so rollback +
            // replay stays on the uninterrupted trajectory.
            loss = f64::NAN;
            self.da.iter_mut().for_each(|g| *g = f32::NAN);
        }
        let mut clipped = false;
        if guard.is_some() {
            if !loss.is_finite() {
                return Err(BatchAnomaly::NonFiniteLoss);
            }
            if self.da.iter().any(|g| !g.is_finite()) {
                return Err(BatchAnomaly::NonFiniteGradient {
                    layer: num_layers - 1,
                });
            }
        }

        // ---- Backward. ----
        for i in (0..num_layers).rev() {
            let layer = &mlp.layers()[i];
            let (m, k) = (layer.out_features(), layer.in_features());
            // dZ = dA ⊙ σ'(Z) (+ dropout backward on the first layer).
            let act = mlp.activations()[i];
            {
                let z = &self.zs[i];
                for (g, &zv) in self.da.iter_mut().zip(z) {
                    *g *= act.derivative(zv);
                }
                if i == 0 && self.dropout > 0.0 && num_layers > 1 {
                    for (g, &dm) in self.da.iter_mut().zip(&self.drop_mask) {
                        *g *= dm;
                    }
                }
            }
            // db = row sums of dZ.
            self.db.resize(m, 0.0);
            for (r, db) in self.da.chunks_exact(n).zip(self.db.iter_mut()) {
                *db = r.iter().sum();
            }
            // dW = dZ (m×n) · A_prevᵀ (n×k).
            let a_prev: &[f32] = if i == 0 {
                &self.input_fm
            } else {
                &self.acts[i - 1]
            };
            transpose_into(a_prev, k, n, &mut self.trans); // (k×n) -> (n×k)
            self.dw.resize(m * k, 0.0);
            gemm_with(
                m,
                n,
                k,
                &self.da,
                &self.trans,
                &mut self.dw,
                params,
                &mut self.gemm,
            );
            // dA_prev = Wᵀ (k×m) · dZ (m×n) — before updating W.
            if i > 0 {
                transpose_into(layer.weights.as_slice(), m, k, &mut self.trans);
                self.da_prev.resize(k * n, 0.0);
                gemm_with(
                    k,
                    m,
                    n,
                    &self.trans,
                    &self.da,
                    &mut self.da_prev,
                    params,
                    &mut self.gemm,
                );
            }
            // Masked gradients + update.
            if let Some(mask) = masks.and_then(|ms| ms.get(i)) {
                for (g, &keep) in self.dw.iter_mut().zip(mask) {
                    *g *= keep;
                }
            }
            if let Some(gc) = guard {
                if self.dw.iter().chain(self.db.iter()).any(|g| !g.is_finite()) {
                    return Err(BatchAnomaly::NonFiniteGradient { layer: i });
                }
                if gc.max_grad_norm > 0.0 {
                    let norm = self
                        .dw
                        .iter()
                        .chain(self.db.iter())
                        .map(|&g| (g as f64) * (g as f64))
                        .sum::<f64>()
                        .sqrt();
                    if norm > gc.max_grad_norm as f64 {
                        let scale = (gc.max_grad_norm as f64 / norm) as f32;
                        self.dw.iter_mut().for_each(|g| *g *= scale);
                        self.db.iter_mut().for_each(|g| *g *= scale);
                        clipped = true;
                    }
                }
            }
            let layer = &mut mlp.layers_mut()[i];
            self.adam_w[i].step(layer.weights.as_mut_slice(), &self.dw, lr);
            self.adam_b[i].step(&mut layer.bias, &self.db, lr);
            if let Some(mask) = masks.and_then(|ms| ms.get(i)) {
                for (w, &keep) in layer.weights.as_mut_slice().iter_mut().zip(mask) {
                    *w *= keep;
                }
            }
            if i > 0 {
                std::mem::swap(&mut self.da, &mut self.da_prev);
            }
        }
        Ok(GuardedBatch { loss, clipped })
    }
}

/// Epoch-level training configuration for [`train_mse`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning-rate schedule (per epoch).
    pub schedule: StepLr,
    /// Dropout after the first layer (0 disables).
    pub dropout: f32,
    /// Shuffle seed; batches reshuffle every epoch.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 256,
            schedule: StepLr::constant(1e-3),
            dropout: 0.0,
            seed: 7,
        }
    }
}

/// Per-epoch training losses.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean minibatch MSE per epoch.
    pub epoch_loss: Vec<f64>,
}

/// Train `mlp` to regress `targets` from row-major `rows`
/// (`n × input_dim`) with minibatch Adam.
///
/// # Panics
/// Panics on shape mismatches or an empty dataset.
pub fn train_mse(
    mlp: &mut Mlp,
    rows: &[f32],
    targets: &[f32],
    cfg: &TrainConfig,
    masks: Option<&LayerMasks>,
) -> TrainReport {
    let f = mlp.input_dim();
    let n = targets.len();
    assert!(n > 0, "empty training set");
    assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
    let mut trainer = SgdTrainer::new(mlp, cfg.dropout, cfg.seed ^ 0x5eed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut batch_rows = Vec::new();
    let mut batch_targets = Vec::new();
    let mut report = TrainReport::default();
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let lr = cfg.schedule.lr(epoch);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            batch_rows.clear();
            batch_targets.clear();
            for &d in chunk {
                batch_rows.extend_from_slice(&rows[d * f..(d + 1) * f]);
                batch_targets.push(targets[d]);
            }
            epoch_loss += trainer.train_batch(mlp, &batch_rows, &batch_targets, lr, masks);
            batches += 1;
        }
        report.epoch_loss.push(epoch_loss / batches.max(1) as f64);
    }
    report
}

/// Self-healing variant of [`train_mse`]: every batch runs under the
/// divergence guard, and an epoch that produces a non-finite loss or
/// gradient is rolled back to its starting state (weights, Adam moments,
/// shuffle order, RNG streams) and retried with the learning rate scaled
/// by `guard.lr_backoff` — compounding across consecutive retries and
/// persisting for the rest of the run. After `guard.max_rollbacks`
/// rollbacks on a single epoch the run fails with
/// [`TrainError::Diverged`].
///
/// `injector`, when given, deterministically poisons the scheduled
/// batches with NaN losses (see [`FaultInjector`]) so the guard paths can
/// be exercised and counted exactly.
///
/// # Errors
/// [`TrainError::Diverged`] when an epoch keeps diverging through the
/// whole rollback budget.
///
/// # Panics
/// Panics on shape mismatches or an empty dataset.
pub fn train_mse_resilient(
    mlp: &mut Mlp,
    rows: &[f32],
    targets: &[f32],
    cfg: &TrainConfig,
    masks: Option<&LayerMasks>,
    guard: &GuardConfig,
    mut injector: Option<&mut FaultInjector>,
) -> Result<(TrainReport, GuardStats), TrainError> {
    let f = mlp.input_dim();
    let n = targets.len();
    assert!(n > 0, "empty training set");
    assert_eq!(rows.len(), n * f, "rows must be n × input_dim");
    let mut trainer = SgdTrainer::new(mlp, cfg.dropout, cfg.seed ^ 0x5eed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut batch_rows = Vec::new();
    let mut batch_targets = Vec::new();
    let mut report = TrainReport::default();
    let mut stats = GuardStats::default();
    let mut lr_scale = 1.0f32;
    let mut global_step = 0u64;
    for epoch in 0..cfg.epochs {
        // Last-good snapshot for rollback: everything an epoch mutates.
        let snap_mlp = mlp.clone();
        let snap_trainer = trainer.export_state();
        let snap_rng = rng.state();
        let snap_order = order.clone();
        let base_scale = lr_scale;
        let mut attempts = 0u32;
        let epoch_mean = loop {
            order.shuffle(&mut rng);
            let lr = cfg.schedule.lr(epoch) * lr_scale;
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            let mut anomaly = None;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                batch_rows.clear();
                batch_targets.clear();
                for &d in chunk {
                    batch_rows.extend_from_slice(&rows[d * f..(d + 1) * f]);
                    batch_targets.push(targets[d]);
                }
                let poison = injector
                    .as_mut()
                    .is_some_and(|inj| inj.poison_step(global_step));
                global_step += 1;
                match trainer.train_batch_guarded(
                    mlp,
                    &batch_rows,
                    &batch_targets,
                    lr,
                    masks,
                    guard,
                    poison,
                ) {
                    Ok(b) => {
                        epoch_loss += b.loss;
                        if b.clipped {
                            stats.clipped_batches += 1;
                        }
                        batches += 1;
                    }
                    Err(a) => {
                        anomaly = Some(a);
                        break;
                    }
                }
            }
            match anomaly {
                None => break epoch_loss / batches.max(1) as f64,
                Some(a) => {
                    stats.record(&a);
                    if attempts == guard.max_rollbacks {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks: attempts,
                            anomaly: a,
                        });
                    }
                    attempts += 1;
                    stats.rollbacks += 1;
                    *mlp = snap_mlp.clone();
                    trainer
                        .import_state(&snap_trainer)
                        .expect("snapshot matches trainer");
                    rng = StdRng::from_state(snap_rng);
                    order.copy_from_slice(&snap_order);
                    lr_scale = base_scale * guard.lr_backoff.powi(attempts as i32);
                }
            }
        };
        report.epoch_loss.push(epoch_mean);
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::fault::FaultPlan;
    use crate::layer::Linear;
    use dlr_dense::Matrix;

    /// Finite-difference gradient check on a tiny network: the definitive
    /// correctness test for the backward pass.
    #[test]
    fn gradients_match_finite_differences() {
        let rows = vec![0.3f32, -0.2, 0.8, 0.5, -0.7, 0.1]; // 2 docs × 3 features
        let targets = vec![0.7f32, -0.4];
        let build = || Mlp::from_hidden(3, &[4, 3], 42);

        // Analytic gradient via a single huge-batch step with plain SGD
        // semantics is awkward to extract from Adam, so instead verify the
        // *loss decrease direction*: perturbing any single weight by ±ε
        // must bracket the analytic derivative implied by two training
        // runs. We compute the analytic gradient by re-implementing the
        // chain through a single train_batch with lr so small the update
        // barely moves, then compare d(loss)/d(w) numerically.
        let eps = 1e-3f32;
        let loss_of = |mlp: &Mlp| -> f64 {
            let mut out = vec![0.0f32; 2];
            mlp.score_batch(&rows, &mut out);
            out.iter()
                .zip(&targets)
                .map(|(p, t)| ((p - t) as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };

        // Extract analytic gradients by hijacking train_batch with Adam:
        // the first Adam step moves each parameter by -lr·sign(g) (bias
        // correction makes magnitude ≈ lr), so signs are testable; for
        // magnitudes, use finite differences as ground truth against a
        // manual backward below.
        let mut mlp = build();
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 1);
        let before = mlp.clone();
        let _ = trainer.train_batch(&mut mlp, &rows, &targets, 1e-4, None);
        // For each weight in layer 0, check the sign of the step equals
        // the negative sign of the numeric derivative (Adam step 1 moves
        // by ±lr in the gradient's direction).
        for idx in 0..before.layers()[0].num_weights() {
            let numeric = {
                let mut plus = before.clone();
                plus.layers_mut()[0].weights.as_mut_slice()[idx] += eps;
                let mut minus = before.clone();
                minus.layers_mut()[0].weights.as_mut_slice()[idx] -= eps;
                (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64)
            };
            if numeric.abs() < 1e-5 {
                continue; // dead ReLU region; step direction undefined
            }
            let moved = mlp.layers()[0].weights.as_slice()[idx]
                - before.layers()[0].weights.as_slice()[idx];
            // moved == 0 can only happen when the analytic gradient was
            // exactly zero (a kink crossed by the finite difference).
            assert!(
                (moved as f64) * numeric <= 0.0,
                "weight {idx}: moved {moved} but numeric gradient {numeric}"
            );
        }
    }

    #[test]
    fn fits_a_linear_function() {
        // y = 2·x0 − x1 + 0.5 is exactly representable; training should
        // drive MSE near zero.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut v = 0.13f32;
        for _ in 0..256 {
            let x0 = (v * 17.0).sin();
            let x1 = (v * 29.0).cos();
            rows.extend_from_slice(&[x0, x1]);
            targets.push(2.0 * x0 - x1 + 0.5);
            v += 0.31;
        }
        let mut mlp = Mlp::from_hidden(2, &[16], 3);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 64,
            schedule: StepLr::constant(5e-3),
            ..Default::default()
        };
        let report = train_mse(&mut mlp, &rows, &targets, &cfg, None);
        let first = report.epoch_loss[0];
        let last = *report.epoch_loss.last().unwrap();
        assert!(last < first * 0.05, "loss {first} -> {last}");
        assert!(last < 0.01, "final loss {last}");
    }

    #[test]
    fn masks_keep_pruned_weights_at_zero() {
        let mut mlp = Mlp::from_hidden(3, &[5, 4], 9);
        // Prune half of layer 0 deterministically.
        let nw = mlp.layers()[0].num_weights();
        let mask: Vec<f32> = (0..nw)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut masks = LayerMasks::none(3);
        masks.set(0, mask.clone());
        masks.apply(&mut mlp);
        let rows: Vec<f32> = (0..3 * 64)
            .map(|i| ((i * 13) % 7) as f32 / 3.0 - 1.0)
            .collect();
        let targets: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).sin()).collect();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 16,
            ..Default::default()
        };
        train_mse(&mut mlp, &rows, &targets, &cfg, Some(&masks));
        for (i, &w) in mlp.layers()[0].weights.as_slice().iter().enumerate() {
            if mask[i] == 0.0 {
                assert_eq!(w, 0.0, "pruned weight {i} drifted to {w}");
            }
        }
        // Unmasked layers trained freely.
        assert!(mlp.layers()[1].weights.as_slice().iter().any(|&w| w != 0.0));
    }

    #[test]
    fn dropout_changes_training_but_not_inference() {
        let rows: Vec<f32> = (0..2 * 32).map(|i| (i as f32 * 0.37).sin()).collect();
        let targets: Vec<f32> = (0..32).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut with = Mlp::from_hidden(2, &[8, 4], 5);
        let mut without = with.clone();
        let mk = |dropout| TrainConfig {
            epochs: 3,
            batch_size: 8,
            dropout,
            ..Default::default()
        };
        train_mse(&mut with, &rows, &targets, &mk(0.5), None);
        train_mse(&mut without, &rows, &targets, &mk(0.0), None);
        assert_ne!(with, without, "dropout must perturb training");
        // Inference is deterministic for a fixed model.
        let mut a = vec![0.0f32; 32];
        let mut b = vec![0.0f32; 32];
        with.score_batch(&rows, &mut a);
        with.score_batch(&rows, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn handcrafted_single_layer_gradient_is_exact() {
        // One linear layer, one sample: loss = (w·x + b − y)²;
        // dL/dw = 2(w·x + b − y)·x. The first Adam step must move w
        // opposite to that gradient's sign.
        let l = Linear {
            weights: Matrix::from_vec(1, 1, vec![1.0]),
            bias: vec![0.0],
        };
        let mut mlp = Mlp::from_parts(vec![l], vec![Activation::Identity]);
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 2);
        // x = 2, y = 10: pred 2, err −8, dL/dw = 2·(−8)·2 = −32 < 0 → w increases.
        let loss = trainer.train_batch(&mut mlp, &[2.0], &[10.0], 0.01, None);
        assert!((loss - 64.0) < 1e-4);
        assert!(mlp.layers()[0].weights.as_slice()[0] > 1.0);
        assert!(mlp.layers()[0].bias[0] > 0.0);
    }

    #[test]
    fn schedule_is_consumed_per_epoch() {
        // With gamma = 0 after epoch 0, later epochs must not change the
        // model.
        let rows: Vec<f32> = (0..2 * 16).map(|i| (i as f32).sin()).collect();
        let targets: Vec<f32> = (0..16).map(|i| (i as f32).cos()).collect();
        let mut mlp = Mlp::from_hidden(2, &[4], 11);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            schedule: StepLr::new(1e-3, 0.0, &[1]),
            seed: 3,
            ..Default::default()
        };
        train_mse(&mut mlp, &rows, &targets, &cfg, None);
        let after_one = mlp.clone();
        // Continue for epochs 1..5 at lr 0 (fresh call replays epoch 0 at
        // full lr; so instead check lr(≥1) = 0 directly through StepLr).
        assert_eq!(cfg.schedule.lr(1), 0.0);
        assert_eq!(cfg.schedule.lr(4), 0.0);
        drop(after_one);
    }

    fn toy_data(n: usize, f: usize) -> (Vec<f32>, Vec<f32>) {
        let rows: Vec<f32> = (0..n * f).map(|i| (i as f32 * 0.37).sin()).collect();
        let targets: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        (rows, targets)
    }

    #[test]
    fn guarded_batch_matches_unguarded_bit_exactly() {
        let (rows, targets) = toy_data(16, 3);
        let mut a = Mlp::from_hidden(3, &[6, 4], 7);
        let mut b = a.clone();
        let mut ta = SgdTrainer::new(&a, 0.25, 5);
        let mut tb = SgdTrainer::new(&b, 0.25, 5);
        let guard = GuardConfig::default(); // clipping off
        for _ in 0..4 {
            let la = ta.train_batch(&mut a, &rows, &targets, 1e-3, None);
            let gb = tb
                .train_batch_guarded(&mut b, &rows, &targets, 1e-3, None, &guard, false)
                .unwrap();
            assert_eq!(la, gb.loss);
            assert!(!gb.clipped);
        }
        assert_eq!(a, b);
        assert_eq!(ta.export_state(), tb.export_state());
    }

    #[test]
    fn poisoned_batch_reports_nonfinite_loss() {
        let (rows, targets) = toy_data(8, 2);
        let mut mlp = Mlp::from_hidden(2, &[4], 3);
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 1);
        let err = trainer
            .train_batch_guarded(
                &mut mlp,
                &rows,
                &targets,
                1e-3,
                None,
                &GuardConfig::default(),
                true,
            )
            .unwrap_err();
        assert_eq!(err, BatchAnomaly::NonFiniteLoss);
    }

    #[test]
    fn nonfinite_weights_surface_as_gradient_anomaly() {
        // A NaN planted in the weights propagates to the loss/gradients;
        // the guard flags it instead of silently training on garbage.
        let (rows, targets) = toy_data(8, 2);
        let mut mlp = Mlp::from_hidden(2, &[4], 3);
        mlp.layers_mut()[0].weights.as_mut_slice()[0] = f32::NAN;
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 1);
        let err = trainer
            .train_batch_guarded(
                &mut mlp,
                &rows,
                &targets,
                1e-3,
                None,
                &GuardConfig::default(),
                false,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                BatchAnomaly::NonFiniteLoss | BatchAnomaly::NonFiniteGradient { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn tight_norm_budget_clips_gradients() {
        let (rows, targets) = toy_data(16, 3);
        let mut mlp = Mlp::from_hidden(3, &[6], 9);
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 2);
        let guard = GuardConfig {
            max_grad_norm: 1e-4,
            ..Default::default()
        };
        let b = trainer
            .train_batch_guarded(&mut mlp, &rows, &targets, 1e-3, None, &guard, false)
            .unwrap();
        assert!(b.clipped, "a 1e-4 norm budget must clip a real gradient");
        assert!(mlp.layers()[0]
            .weights
            .as_slice()
            .iter()
            .all(|w| w.is_finite()));
    }

    #[test]
    fn trainer_state_roundtrip_continues_bit_exactly() {
        let (rows, targets) = toy_data(16, 3);
        let mut a = Mlp::from_hidden(3, &[5, 4], 13);
        let mut ta = SgdTrainer::new(&a, 0.3, 21);
        for _ in 0..3 {
            ta.train_batch(&mut a, &rows, &targets, 1e-3, None);
        }
        let state = ta.export_state();
        let mut b = a.clone();
        let mut tb = SgdTrainer::from_state(&b, &state).unwrap();
        for _ in 0..3 {
            ta.train_batch(&mut a, &rows, &targets, 1e-3, None);
            tb.train_batch(&mut b, &rows, &targets, 1e-3, None);
        }
        assert_eq!(a, b, "restored trainer must continue the same trajectory");
        assert_eq!(ta.export_state(), tb.export_state());
    }

    #[test]
    fn apply_masks_zeroes_adam_moments() {
        let (rows, targets) = toy_data(16, 3);
        let mut mlp = Mlp::from_hidden(3, &[5], 4);
        let mut trainer = SgdTrainer::new(&mlp, 0.0, 8);
        for _ in 0..4 {
            trainer.train_batch(&mut mlp, &rows, &targets, 1e-2, None);
        }
        let nw = mlp.layers()[0].num_weights();
        let mask: Vec<f32> = (0..nw).map(|i| f32::from(i % 2 == 0)).collect();
        let mut masks = LayerMasks::none(2);
        masks.set(0, mask.clone());
        trainer.apply_masks(&mut mlp, &masks);
        let st = trainer.export_state();
        for (i, &m) in mask.iter().enumerate() {
            if m == 0.0 {
                assert_eq!(st.adam_w[0].m[i], 0.0, "stale first moment at {i}");
                assert_eq!(st.adam_w[0].v[i], 0.0, "stale second moment at {i}");
                assert_eq!(mlp.layers()[0].weights.as_slice()[i], 0.0);
            } else {
                // Surviving weights keep their momentum.
                assert_ne!(st.adam_w[0].m[i], 0.0);
            }
        }
    }

    #[test]
    fn resilient_run_without_faults_matches_unscaled_trajectory() {
        let (rows, targets) = toy_data(32, 2);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            dropout: 0.2,
            seed: 77,
            ..Default::default()
        };
        let mut plain = Mlp::from_hidden(2, &[6], 1);
        let mut resilient = plain.clone();
        // The resilient driver consumes RNG identically when nothing
        // fires, so the two public entry points agree bit-for-bit.
        let rep_a = train_mse(&mut plain, &rows, &targets, &cfg, None);
        let (rep_b, stats) = train_mse_resilient(
            &mut resilient,
            &rows,
            &targets,
            &cfg,
            None,
            &GuardConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(plain, resilient);
        assert_eq!(rep_a.epoch_loss, rep_b.epoch_loss);
        assert_eq!(stats, GuardStats::default());
    }

    #[test]
    fn injected_nan_rolls_back_and_recovers_bit_exactly() {
        let (rows, targets) = toy_data(32, 2);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            dropout: 0.2,
            seed: 41,
            ..Default::default()
        };
        // lr_backoff = 1.0: the retry replays at the same lr, so after the
        // rollback the trajectory must rejoin the clean run exactly.
        let guard = GuardConfig {
            lr_backoff: 1.0,
            ..Default::default()
        };
        let mut clean = Mlp::from_hidden(2, &[6], 2);
        let mut faulted = clean.clone();
        let (rep_clean, _) =
            train_mse_resilient(&mut clean, &rows, &targets, &cfg, None, &guard, None).unwrap();
        let mut inj = FaultInjector::new(FaultPlan::nan_at(&[5]));
        let (rep_faulted, stats) = train_mse_resilient(
            &mut faulted,
            &rows,
            &targets,
            &cfg,
            None,
            &guard,
            Some(&mut inj),
        )
        .unwrap();
        assert_eq!(inj.counters.nan_injected, 1);
        assert_eq!(stats.nonfinite_losses, 1);
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(clean, faulted, "post-rollback trajectory must rejoin");
        assert_eq!(rep_clean.epoch_loss, rep_faulted.epoch_loss);
    }

    #[test]
    fn lr_backoff_compounds_and_persists() {
        let (rows, targets) = toy_data(32, 2);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            seed: 9,
            ..Default::default()
        };
        let guard = GuardConfig {
            lr_backoff: 0.5,
            max_rollbacks: 3,
            ..Default::default()
        };
        // Two NaNs on consecutive attempts of epoch 0 (step 1, then the
        // first replayed batch which lands at global step 2).
        let mut inj = FaultInjector::new(FaultPlan::nan_at(&[1, 2]));
        let mut mlp = Mlp::from_hidden(2, &[4], 6);
        let (_, stats) = train_mse_resilient(
            &mut mlp,
            &rows,
            &targets,
            &cfg,
            None,
            &guard,
            Some(&mut inj),
        )
        .unwrap();
        assert_eq!(stats.rollbacks, 2);
        assert_eq!(stats.nonfinite_losses, 2);
        assert_eq!(inj.counters.nan_injected, 2);
    }

    #[test]
    fn rollback_budget_exhaustion_is_a_typed_error() {
        let (rows, targets) = toy_data(16, 2);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            seed: 4,
            ..Default::default()
        };
        let guard = GuardConfig {
            max_rollbacks: 2,
            ..Default::default()
        };
        // Poison a dense run of steps so every retry of epoch 0 hits one:
        // attempt 0 dies at step 0, attempt 1 at step 1, attempt 2 at
        // step 2 — budget (2 rollbacks) exhausted.
        let mut inj = FaultInjector::new(FaultPlan::nan_at(&[0, 1, 2]));
        let mut mlp = Mlp::from_hidden(2, &[4], 6);
        let err = train_mse_resilient(
            &mut mlp,
            &rows,
            &targets,
            &cfg,
            None,
            &guard,
            Some(&mut inj),
        )
        .unwrap_err();
        match err {
            TrainError::Diverged {
                epoch,
                rollbacks,
                anomaly,
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(rollbacks, 2);
                assert_eq!(anomaly, BatchAnomaly::NonFiniteLoss);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        assert_eq!(inj.counters.nan_injected, 3);
    }
}
