//! Fully connected layers.

use crate::init::he_uniform;
use dlr_dense::Matrix;

/// A fully connected layer: `z = W·x + b` with `W` of shape
/// `out_features × in_features` (so a batch forward is one GEMM with the
/// batch as columns, the convention of §4.2's Equation 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix, `out × in`, row-major.
    pub weights: Matrix,
    /// Bias, one per output feature.
    pub bias: Vec<f32>,
}

impl Linear {
    /// He-uniform initialized layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Linear {
        Linear {
            weights: Matrix::from_vec(
                out_features,
                in_features,
                he_uniform(in_features, out_features * in_features, seed),
            ),
            bias: vec![0.0; out_features],
        }
    }

    /// Input width.
    #[inline]
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[inline]
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// Number of weight parameters (bias excluded).
    #[inline]
    pub fn num_weights(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Add the bias to a feature-major `out × n` pre-activation buffer.
    pub fn add_bias(&self, z: &mut [f32], n: usize) {
        debug_assert_eq!(z.len(), self.out_features() * n);
        for (row, &b) in z.chunks_exact_mut(n).zip(&self.bias) {
            if b != 0.0 {
                for v in row {
                    *v += b;
                }
            }
        }
    }

    /// Fraction of exactly-zero weights.
    pub fn sparsity(&self) -> f64 {
        self.weights.sparsity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let l = Linear::new(136, 400, 1);
        assert_eq!(l.in_features(), 136);
        assert_eq!(l.out_features(), 400);
        assert_eq!(l.num_weights(), 400 * 136);
        assert_eq!(l.bias.len(), 400);
    }

    #[test]
    fn bias_broadcast_over_batch() {
        let mut l = Linear::new(2, 3, 2);
        l.bias = vec![1.0, 2.0, 3.0];
        let mut z = vec![0.0f32; 3 * 4]; // out=3, n=4, feature-major
        l.add_bias(&mut z, 4);
        assert_eq!(&z[0..4], &[1.0; 4]);
        assert_eq!(&z[4..8], &[2.0; 4]);
        assert_eq!(&z[8..12], &[3.0; 4]);
    }

    #[test]
    fn fresh_layer_has_zero_bias_and_dense_weights() {
        let l = Linear::new(10, 5, 3);
        assert!(l.bias.iter().all(|&b| b == 0.0));
        assert!(l.sparsity() < 0.01);
    }
}
