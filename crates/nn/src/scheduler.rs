//! Step learning-rate schedules.
//!
//! Table 9: "both for training and pruning, we scale the learning rate by
//! multiplying it by γ at the epochs specified by γ_step" — e.g. γ = 0.1
//! at epochs {50, 80} on MSN30K, γ = 0.5 at {90, 130, 180} on Istella-S.

/// Multiplicative step schedule: `lr(e) = base · γ^(milestones ≤ e)`.
#[derive(Debug, Clone)]
pub struct StepLr {
    base: f32,
    gamma: f32,
    milestones: Vec<usize>,
}

impl StepLr {
    /// Build a schedule. Milestones are epoch indices (0-based) at which
    /// the rate is scaled; they need not be sorted.
    pub fn new(base: f32, gamma: f32, milestones: &[usize]) -> StepLr {
        let mut m = milestones.to_vec();
        m.sort_unstable();
        StepLr {
            base,
            gamma,
            milestones: m,
        }
    }

    /// Constant schedule.
    pub fn constant(base: f32) -> StepLr {
        StepLr {
            base,
            gamma: 1.0,
            milestones: Vec::new(),
        }
    }

    /// Learning rate for epoch `epoch` (0-based).
    pub fn lr(&self, epoch: usize) -> f32 {
        let hits = self.milestones.iter().filter(|&&m| m <= epoch).count();
        self.base * self.gamma.powi(hits as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msn30k_schedule() {
        // Table 9: lr 0.001, γ 0.1 at {50, 80}.
        let s = StepLr::new(0.001, 0.1, &[50, 80]);
        assert_eq!(s.lr(0), 0.001);
        assert_eq!(s.lr(49), 0.001);
        assert!((s.lr(50) - 1e-4).abs() < 1e-10);
        assert!((s.lr(79) - 1e-4).abs() < 1e-10);
        assert!((s.lr(80) - 1e-5).abs() < 1e-11);
        assert!((s.lr(99) - 1e-5).abs() < 1e-11);
    }

    #[test]
    fn unsorted_milestones_ok() {
        let s = StepLr::new(1.0, 0.5, &[20, 10]);
        assert_eq!(s.lr(15), 0.5);
        assert_eq!(s.lr(25), 0.25);
    }

    #[test]
    fn constant_never_decays() {
        let s = StepLr::constant(0.01);
        assert_eq!(s.lr(0), 0.01);
        assert_eq!(s.lr(10_000), 0.01);
    }
}
