//! Crash-safe training checkpoints.
//!
//! A [`Checkpoint`] captures *everything* the training loops mutate, so a
//! run resumed from one is bit-identical to a run that was never
//! interrupted: the student weights, per-tensor Adam moments with their
//! step counters, the scheduler position (next epoch), the data-order and
//! dropout RNG streams, the pruning masks, the divergence-guard LR scale,
//! and the frozen Distiller threshold of an in-flight prune schedule.
//!
//! Format (text, versioned, checksummed):
//!
//! ```text
//! dlr-ckpt v1 crc32 <8-hex> len <payload bytes>
//! epoch <next epoch>
//! lr-scale <f32>
//! synth-seed <u64>
//! shuffle-rng <u64> <u64> <u64> <u64>
//! threshold <f32|none>
//! masks <num layers>
//! mask <i> none              (or: mask <i> <len> <0/1 string>)
//! trainer dropout <f32> rng <u64> <u64> <u64> <u64>
//! adam-w <i> <t>   |  m <floats>  |  v <floats>     (× layers)
//! adam-b <i> <t>   |  m <floats>  |  v <floats>     (× layers)
//! mlp
//! <embedded dlr-mlp v2 file>
//! ```
//!
//! Durability: [`Checkpoint::save`] writes to a temporary sibling, fsyncs,
//! then renames over the target — a crash mid-write leaves either the old
//! checkpoint or a stray `.tmp`, never a half-written file under the real
//! name. A torn write that somehow survives (e.g. the tmp file itself
//! after a crash, or bit rot) is caught at load time by the payload
//! length and CRC-32 checks and surfaces as a typed error, which lets
//! [`CheckpointManager::load_latest_valid`] fall back to the previous
//! intact checkpoint.

use crate::checksum::crc32;
use crate::mlp::Mlp;
use crate::serialize::{read_mlp_bytes, write_mlp, MlpParseError};
use crate::train::{LayerMasks, TrainerState};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors loading or storing a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Missing or unknown header.
    BadHeader,
    /// Payload byte count did not match the header's (torn write).
    Truncated {
        /// Payload length recorded in the header.
        expected_bytes: usize,
        /// Bytes actually present.
        actual_bytes: usize,
    },
    /// Payload checksum did not match the header's.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the payload actually read.
        found: u32,
    },
    /// A structural payload line was malformed or inconsistent.
    Malformed {
        /// 1-based line number within the checkpoint file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The embedded model failed to parse or validate.
    Mlp(MlpParseError),
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "not a dlr-ckpt file"),
            CheckpointError::Truncated {
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "payload is {actual_bytes} bytes, header promised {expected_bytes} (torn write?)"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum {found:08x} does not match header {expected:08x}"
            ),
            CheckpointError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            CheckpointError::Mlp(e) => write!(f, "embedded model: {e}"),
            CheckpointError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

impl From<MlpParseError> for CheckpointError {
    fn from(e: MlpParseError) -> Self {
        CheckpointError::Mlp(e)
    }
}

/// A complete, resumable snapshot of a training run at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Next epoch to execute (epochs `0..epoch` are already applied).
    pub epoch: usize,
    /// Divergence-guard learning-rate scale carried across epochs.
    pub lr_scale: f32,
    /// Synthetic-batch sampling seed at the boundary.
    pub synth_seed: u64,
    /// Data-order (shuffle) RNG state at the boundary.
    pub shuffle_rng: [u64; 4],
    /// Frozen Distiller prune threshold, when a prune schedule is live.
    pub threshold: Option<f32>,
    /// Pruning masks in force (all-`none` outside a prune schedule).
    pub masks: LayerMasks,
    /// Optimizer + dropout-RNG state.
    pub trainer: TrainerState,
    /// The student network.
    pub mlp: Mlp,
}

impl Checkpoint {
    /// Serialize into `w` (header + checksummed payload).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), CheckpointError> {
        let mut p = Vec::new();
        writeln!(p, "epoch {}", self.epoch)?;
        writeln!(p, "lr-scale {}", self.lr_scale)?;
        writeln!(p, "synth-seed {}", self.synth_seed)?;
        let s = self.shuffle_rng;
        writeln!(p, "shuffle-rng {} {} {} {}", s[0], s[1], s[2], s[3])?;
        match self.threshold {
            Some(t) => writeln!(p, "threshold {t}")?,
            None => writeln!(p, "threshold none")?,
        }
        writeln!(p, "masks {}", self.masks.len())?;
        for i in 0..self.masks.len() {
            match self.masks.get(i) {
                None => writeln!(p, "mask {i} none")?,
                Some(m) => {
                    let bits: String = m
                        .iter()
                        .map(|&v| if v == 0.0 { '0' } else { '1' })
                        .collect();
                    writeln!(p, "mask {i} {} {bits}", m.len())?;
                }
            }
        }
        let t = &self.trainer;
        let r = t.rng;
        writeln!(
            p,
            "trainer dropout {} rng {} {} {} {}",
            t.dropout, r[0], r[1], r[2], r[3]
        )?;
        for (tag, states) in [("adam-w", &t.adam_w), ("adam-b", &t.adam_b)] {
            for (i, st) in states.iter().enumerate() {
                writeln!(p, "{tag} {i} {}", st.t)?;
                write!(p, "m")?;
                for &v in &st.m {
                    write!(p, " {v}")?;
                }
                writeln!(p)?;
                write!(p, "v")?;
                for &v in &st.v {
                    write!(p, " {v}")?;
                }
                writeln!(p)?;
            }
        }
        writeln!(p, "mlp")?;
        write_mlp(&self.mlp, &mut p)?;
        writeln!(w, "dlr-ckpt v1 crc32 {:08x} len {}", crc32(&p), p.len())?;
        w.write_all(&p)?;
        Ok(())
    }

    /// Parse a checkpoint from raw bytes, verifying length, checksum and
    /// internal consistency (tensor shapes vs. the embedded model, finite
    /// values everywhere).
    ///
    /// # Errors
    /// A typed [`CheckpointError`] on any corruption or inconsistency.
    pub fn read_from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(CheckpointError::BadHeader)?;
        let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| CheckpointError::BadHeader)?;
        let rest = header
            .strip_prefix("dlr-ckpt v1 crc32 ")
            .ok_or(CheckpointError::BadHeader)?;
        let (crc_hex, len_part) = rest.split_once(" len ").ok_or(CheckpointError::BadHeader)?;
        let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| CheckpointError::BadHeader)?;
        let expected_bytes: usize = len_part.parse().map_err(|_| CheckpointError::BadHeader)?;
        let payload = &bytes[nl + 1..];
        if payload.len() != expected_bytes {
            return Err(CheckpointError::Truncated {
                expected_bytes,
                actual_bytes: payload.len(),
            });
        }
        let found = crc32(payload);
        if found != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, found });
        }
        parse_payload(payload)
    }

    /// Load and validate the checkpoint at `path`.
    ///
    /// # Errors
    /// A typed [`CheckpointError`] on I/O failure or any corruption.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::read_from_bytes(&bytes)
    }

    /// Atomically persist to `path`: write a `.tmp` sibling, fsync it,
    /// then rename over the target. A crash at any point leaves either
    /// the previous file or a stray `.tmp` — never a torn file under
    /// `path`.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            self.write_to(&mut file)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Line cursor over the structural head of the payload; tracks 1-based
/// file line numbers (the checkpoint header is line 1) for error context.
struct Cursor<'a> {
    lines: Vec<&'a str>,
    idx: usize,
}

impl<'a> Cursor<'a> {
    /// Next line plus its 1-based file line number.
    fn next(&mut self) -> Result<(&'a str, usize), CheckpointError> {
        let at = self.idx + 2; // +1 for the header line, +1 for 1-basing
        let line = self
            .lines
            .get(self.idx)
            .copied()
            .ok_or_else(|| bad(at, "unexpected end of checkpoint".into()))?;
        self.idx += 1;
        Ok((line, at))
    }
}

fn bad(line: usize, message: String) -> CheckpointError {
    CheckpointError::Malformed { line, message }
}

/// Parse exactly `n` u64 values after `prefix`.
fn parse_u64s(line: &str, prefix: &str, n: usize, at: usize) -> Result<Vec<u64>, CheckpointError> {
    let rest = line
        .strip_prefix(prefix)
        .ok_or_else(|| bad(at, format!("expected `{prefix}...`")))?;
    let vals: Result<Vec<u64>, _> = rest.split_whitespace().map(str::parse::<u64>).collect();
    let vals = vals.map_err(|_| bad(at, "bad integer".into()))?;
    if vals.len() != n {
        return Err(bad(at, format!("expected {n} values, got {}", vals.len())));
    }
    Ok(vals)
}

/// Parse exactly `n` finite f32 values after `prefix`.
fn parse_floats(
    line: &str,
    prefix: &str,
    n: usize,
    at: usize,
) -> Result<Vec<f32>, CheckpointError> {
    let rest = line
        .strip_prefix(prefix)
        .ok_or_else(|| bad(at, format!("expected `{prefix}...`")))?;
    let vals: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse::<f32>).collect();
    let vals = vals.map_err(|_| bad(at, "bad float".into()))?;
    if vals.len() != n {
        return Err(bad(at, format!("expected {n} values, got {}", vals.len())));
    }
    if let Some(i) = vals.iter().position(|v| !v.is_finite()) {
        return Err(bad(at, format!("value {} is not finite", i + 1)));
    }
    Ok(vals)
}

/// Parse one per-layer Adam block (`adam-w` or `adam-b`), shape-checked
/// against the embedded model.
fn read_adam(
    cur: &mut Cursor<'_>,
    tag: &str,
    mlp: &Mlp,
    bias: bool,
) -> Result<Vec<crate::adam::AdamState>, CheckpointError> {
    let num_layers = mlp.layers().len();
    let mut out = Vec::with_capacity(num_layers);
    for i in 0..num_layers {
        let (line, at) = cur.next()?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() != 3 || p[0] != tag || p[1] != i.to_string() {
            return Err(bad(at, format!("expected `{tag} {i} <t>`")));
        }
        let t: u64 = p[2].parse().map_err(|_| bad(at, "bad step count".into()))?;
        let n = if bias {
            mlp.layers()[i].bias.len()
        } else {
            mlp.layers()[i].num_weights()
        };
        let (line, at) = cur.next()?;
        let m = parse_floats(line, "m", n, at)?;
        let (line, at) = cur.next()?;
        let v = parse_floats(line, "v", n, at)?;
        out.push(crate::adam::AdamState { m, v, t });
    }
    Ok(out)
}

/// Parse the post-header payload (already length- and checksum-verified).
fn parse_payload(payload: &[u8]) -> Result<Checkpoint, CheckpointError> {
    // Split off the embedded model first: everything after the `mlp`
    // marker line is a self-contained dlr-mlp file.
    let marker = b"\nmlp\n";
    let pos = payload
        .windows(marker.len())
        .position(|w| w == marker)
        .ok_or(CheckpointError::Malformed {
            line: 0,
            message: "missing `mlp` section".into(),
        })?;
    let head = std::str::from_utf8(&payload[..pos])
        .map_err(|e| CheckpointError::Io(format!("payload is not valid UTF-8: {e}")))?;
    let mlp_bytes = &payload[pos + marker.len()..];
    let mlp = read_mlp_bytes(mlp_bytes)?;

    let mut cur = Cursor {
        lines: head.lines().collect(),
        idx: 0,
    };

    let (line, at) = cur.next()?;
    let epoch: usize = line
        .strip_prefix("epoch ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(at, "expected `epoch <n>`".into()))?;
    let (line, at) = cur.next()?;
    let lr_scale = parse_floats(line, "lr-scale", 1, at)?[0];
    let (line, at) = cur.next()?;
    let synth_seed = parse_u64s(line, "synth-seed", 1, at)?[0];
    let (line, at) = cur.next()?;
    let sr = parse_u64s(line, "shuffle-rng", 4, at)?;
    let shuffle_rng = [sr[0], sr[1], sr[2], sr[3]];
    let (line, at) = cur.next()?;
    let threshold = match line
        .strip_prefix("threshold ")
        .ok_or_else(|| bad(at, "expected `threshold ...`".into()))?
    {
        "none" => None,
        v => Some(
            v.parse::<f32>()
                .ok()
                .filter(|t| t.is_finite())
                .ok_or_else(|| bad(at, "bad threshold".into()))?,
        ),
    };

    let (line, at) = cur.next()?;
    let num_layers: usize = line
        .strip_prefix("masks ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(at, "expected `masks <n>`".into()))?;
    if num_layers != mlp.layers().len() {
        return Err(bad(
            at,
            format!(
                "checkpoint covers {num_layers} layers, embedded model has {}",
                mlp.layers().len()
            ),
        ));
    }
    let mut masks = LayerMasks::none(num_layers);
    for i in 0..num_layers {
        let (line, at) = cur.next()?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() < 3 || p[0] != "mask" || p[1] != i.to_string() {
            return Err(bad(at, format!("expected `mask {i} ...`")));
        }
        if p[2] == "none" {
            continue;
        }
        if p.len() != 4 {
            return Err(bad(at, "expected `mask <i> <len> <bits>`".into()));
        }
        let len: usize = p[2]
            .parse()
            .map_err(|_| bad(at, "bad mask length".into()))?;
        let expected = mlp.layers()[i].num_weights();
        if len != expected || p[3].len() != len {
            return Err(bad(
                at,
                format!("mask {i} has {len} bits, layer has {expected} weights"),
            ));
        }
        let mut mask = Vec::with_capacity(len);
        for c in p[3].chars() {
            match c {
                '0' => mask.push(0.0),
                '1' => mask.push(1.0),
                _ => return Err(bad(at, "mask bits must be 0 or 1".into())),
            }
        }
        masks.set(i, mask);
    }

    let (line, at) = cur.next()?;
    let rest = line
        .strip_prefix("trainer dropout ")
        .ok_or_else(|| bad(at, "expected `trainer dropout ...`".into()))?;
    let (drop_part, rng_part) = rest
        .split_once(" rng ")
        .ok_or_else(|| bad(at, "expected `... rng <4 u64>`".into()))?;
    let dropout: f32 = drop_part
        .parse::<f32>()
        .ok()
        .filter(|d| d.is_finite())
        .ok_or_else(|| bad(at, "bad dropout".into()))?;
    let tr = parse_u64s(rng_part, "", 4, at)?;
    let trainer_rng = [tr[0], tr[1], tr[2], tr[3]];

    let adam_w = read_adam(&mut cur, "adam-w", &mlp, false)?;
    let adam_b = read_adam(&mut cur, "adam-b", &mlp, true)?;

    Ok(Checkpoint {
        epoch,
        lr_scale,
        synth_seed,
        shuffle_rng,
        threshold,
        masks,
        trainer: TrainerState {
            adam_w,
            adam_b,
            dropout,
            rng: trainer_rng,
        },
        mlp,
    })
}

/// A record of one unreadable checkpoint skipped during recovery.
#[derive(Debug, Clone)]
pub struct SkippedCheckpoint {
    /// The file that failed to load.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: CheckpointError,
}

/// Owns a checkpoint directory: epoch-tagged file names, retention of the
/// newest `keep_last` files, and corrupt-tolerant recovery that walks
/// newest → oldest until an intact checkpoint verifies.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep_last: usize,
}

impl CheckpointManager {
    /// Open (creating if needed) the checkpoint directory. `keep_last` is
    /// the number of most-recent checkpoints retained after each save
    /// (`0` keeps everything). Keep at least 2 so a corrupted newest file
    /// still leaves a fallback.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn new(
        dir: impl Into<PathBuf>,
        keep_last: usize,
    ) -> Result<CheckpointManager, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointManager { dir, keep_last })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path for the checkpoint taken at the boundary before `epoch`.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{epoch:08}.dlrck"))
    }

    /// Epoch-sorted (ascending) list of checkpoint files present.
    ///
    /// # Errors
    /// Propagates directory-listing failures.
    pub fn list(&self) -> Result<Vec<(usize, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(epoch) = name
                .strip_prefix("ckpt-")
                .and_then(|r| r.strip_suffix(".dlrck"))
                .and_then(|e| e.parse::<usize>().ok())
            {
                out.push((epoch, path));
            }
        }
        out.sort_unstable_by_key(|(e, _)| *e);
        Ok(out)
    }

    /// Atomically save `ck` under its epoch-tagged name, then prune old
    /// checkpoints beyond the retention window. Returns the path written.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, ck: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.path_for(ck.epoch);
        ck.save(&path)?;
        if self.keep_last > 0 {
            let files = self.list()?;
            if files.len() > self.keep_last {
                for (_, old) in &files[..files.len() - self.keep_last] {
                    // Best-effort: a vanished file is not a failure.
                    let _ = std::fs::remove_file(old);
                }
            }
        }
        Ok(path)
    }

    /// Recover the newest checkpoint that verifies, walking newest →
    /// oldest and recording every corrupt/unreadable file skipped on the
    /// way. Returns `None` when no intact checkpoint exists.
    ///
    /// # Errors
    /// Propagates directory-listing failures (individual bad files are
    /// skipped, not fatal).
    pub fn load_latest_valid(
        &self,
    ) -> Result<(Option<Checkpoint>, Vec<SkippedCheckpoint>), CheckpointError> {
        let mut skipped = Vec::new();
        for (_, path) in self.list()?.into_iter().rev() {
            match Checkpoint::load(&path) {
                Ok(ck) => return Ok((Some(ck), skipped)),
                Err(error) => skipped.push(SkippedCheckpoint { path, error }),
            }
        }
        Ok((None, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::SgdTrainer;

    fn sample_checkpoint() -> Checkpoint {
        let mlp = Mlp::from_hidden(4, &[5, 3], 11);
        let mut trainer = SgdTrainer::new(&mlp, 0.1, 7);
        // Give the Adam moments real values.
        let mut m = mlp.clone();
        let rows: Vec<f32> = (0..4 * 8).map(|i| (i as f32 * 0.3).sin()).collect();
        let targets: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).cos()).collect();
        for _ in 0..3 {
            trainer.train_batch(&mut m, &rows, &targets, 1e-3, None);
        }
        let mut masks = LayerMasks::none(3);
        masks.set(
            0,
            (0..m.layers()[0].num_weights())
                .map(|i| f32::from(i % 3 != 0))
                .collect(),
        );
        Checkpoint {
            epoch: 5,
            lr_scale: 0.25,
            synth_seed: 0xDEAD_BEEF,
            shuffle_rng: [1, 2, 3, u64::MAX],
            threshold: Some(0.037),
            masks,
            trainer: trainer.export_state(),
            mlp: m,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample_checkpoint();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from_bytes(&buf).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn truncation_and_flips_are_detected() {
        let ck = sample_checkpoint();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        // Torn write: every truncation point fails with a typed error.
        for cut in [buf.len() - 1, buf.len() / 2, 20] {
            let err = Checkpoint::read_from_bytes(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::BadHeader
                ),
                "cut {cut}: {err:?}"
            );
        }
        // Single byte flip in the payload: checksum catches it.
        let header_end = buf.iter().position(|&b| b == b'\n').unwrap();
        let mut bad = buf.clone();
        bad[header_end + 1 + (buf.len() - header_end) / 2] ^= 0x20;
        assert!(matches!(
            Checkpoint::read_from_bytes(&bad).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn atomic_save_and_manager_recovery() {
        let dir = std::env::temp_dir().join(format!("dlr-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        let mut ck = sample_checkpoint();
        for e in 0..5 {
            ck.epoch = e;
            mgr.save(&ck).unwrap();
        }
        // Retention: only the newest 3 remain.
        let files = mgr.list().unwrap();
        assert_eq!(
            files.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Corrupt the newest; recovery falls back to epoch 3.
        let newest = mgr.path_for(4);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (found, skipped) = mgr.load_latest_valid().unwrap();
        assert_eq!(found.unwrap().epoch, 3);
        assert_eq!(skipped.len(), 1);
        assert!(matches!(
            skipped[0].error,
            CheckpointError::ChecksumMismatch { .. } | CheckpointError::Malformed { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trainer_state_restores_into_a_fresh_trainer() {
        let ck = sample_checkpoint();
        let restored = SgdTrainer::from_state(&ck.mlp, &ck.trainer).unwrap();
        assert_eq!(restored.export_state(), ck.trainer);
        // Shape mismatch is a typed failure, not a panic.
        let other = Mlp::from_hidden(4, &[6, 3], 1);
        assert!(SgdTrainer::from_state(&other, &ck.trainer).is_err());
    }
}
