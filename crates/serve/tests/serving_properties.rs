//! Property coverage for the coalescing invariants.
//!
//! For random mixes of query sizes, batch limits, and injected batch
//! panics, the server must uphold:
//!
//! 1. every admitted request gets **exactly one** response (all handles
//!    are ready when shutdown returns — none lost, none duplicated);
//! 2. responses map to the **right query** (scores carry a query tag);
//! 3. **order within a query** is preserved (per-document scores come
//!    back in submission order);
//! 4. the accounting identities balance exactly, panics included.

use dlr_core::fault::{ServerFault, ServerFaultPlan};
use dlr_core::scoring::DocumentScorer;
use dlr_serve::{BatchConfig, PlainEngine, Response, ScoreRequest, Server, ServerConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Two features per document; score = 1000·query + doc, so a response
/// betrays both which query it belongs to and its document order.
struct Tagged;

impl DocumentScorer for Tagged {
    fn num_features(&self) -> usize {
        2
    }
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(2).zip(out.iter_mut()) {
            *o = row[0] * 1000.0 + row[1];
        }
    }
    fn name(&self) -> String {
        "tagged".into()
    }
}

fn tagged_request(query: usize, docs: usize) -> ScoreRequest {
    let mut features = Vec::with_capacity(docs * 2);
    for doc in 0..docs {
        features.push(query as f32);
        features.push(doc as f32);
    }
    ScoreRequest::new(features)
}

fn expected_scores(query: usize, docs: usize) -> Vec<f32> {
    (0..docs)
        .map(|doc| query as f32 * 1000.0 + doc as f32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean path: every query's scores come back intact, in order, and
    /// exactly once, for any mix of request sizes and batch limits.
    #[test]
    fn every_query_is_answered_exactly_once_in_order(
        query_docs in proptest::collection::vec(1usize..6, 1..24),
        max_batch_docs in 1usize..12,
        max_wait_us in 0u64..300,
    ) {
        let server = Server::start(
            PlainEngine::new(Tagged),
            ServerConfig {
                batch: BatchConfig {
                    max_batch_docs,
                    max_wait: Duration::from_micros(max_wait_us),
                },
                ..ServerConfig::default()
            },
        );
        let handles: Vec<_> = query_docs
            .iter()
            .enumerate()
            .map(|(query, &docs)| {
                server
                    .submit(tagged_request(query, docs))
                    .expect("capacity 1024 is never reached")
            })
            .collect();
        let (_engine, stats) = server.shutdown();
        for (query, (handle, &docs)) in handles.into_iter().zip(&query_docs).enumerate() {
            // Exactly one response, already delivered by the drain.
            prop_assert!(handle.is_ready(), "query {query} unanswered after drain");
            let got = handle.wait();
            // The right query's scores, in document order.
            // The right query's scores, in document order — a mismatch
            // here means cross-query corruption or reordering.
            prop_assert_eq!(got.response.scores(), Some(&expected_scores(query, docs)[..]));
        }
        let total_queries = query_docs.len() as u64;
        let total_docs: usize = query_docs.iter().sum();
        prop_assert_eq!(stats.admitted, total_queries);
        prop_assert_eq!(stats.scored_primary, total_queries);
        prop_assert_eq!(stats.batched_docs, total_docs as u64);
        prop_assert_eq!(stats.expired + stats.failed, 0);
        prop_assert_eq!(stats.latency.count(), total_queries);
    }

    /// Poisoned path: with batch panics injected on a random schedule,
    /// every request is still answered exactly once — either with its
    /// own correct scores or `Failed` — and the books still balance.
    #[test]
    fn injected_batch_panics_never_lose_or_corrupt_responses(
        query_docs in proptest::collection::vec(1usize..6, 1..24),
        max_batch_docs in 1usize..12,
        panic_mask in proptest::collection::vec(0u64..2, 64),
    ) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let schedule: Vec<ServerFault> = panic_mask
            .iter()
            .map(|&poison| if poison == 1 { ServerFault::BatchPanic } else { ServerFault::None })
            .collect();
        let plan = ServerFaultPlan::from_schedule(schedule);
        let counters = plan.counters();
        let server = Server::start(
            PlainEngine::new(Tagged),
            ServerConfig {
                batch: BatchConfig {
                    max_batch_docs,
                    max_wait: Duration::from_micros(50),
                },
                faults: Some(plan),
                ..ServerConfig::default()
            },
        );
        let handles: Vec<_> = query_docs
            .iter()
            .enumerate()
            .map(|(query, &docs)| {
                server
                    .submit(tagged_request(query, docs))
                    .expect("capacity 1024 is never reached")
            })
            .collect();
        let (_engine, stats) = server.shutdown();
        std::panic::set_hook(prev);
        let mut failed = 0u64;
        for (query, (handle, &docs)) in handles.into_iter().zip(&query_docs).enumerate() {
            prop_assert!(handle.is_ready(), "query {query} unanswered after drain");
            match handle.wait().response {
                Response::Scored { scores, .. } => {
                    // A surviving response is never corrupted by a
                    // neighbouring batch's panic.
                    prop_assert_eq!(scores, expected_scores(query, docs));
                }
                Response::Failed => failed += 1,
                Response::Expired => {
                    prop_assert!(false, "no deadlines were set; query {} expired", query);
                }
            }
        }
        // Exactly-once, panics included: the books balance.
        prop_assert_eq!(stats.admitted, query_docs.len() as u64);
        prop_assert_eq!(stats.failed, failed);
        prop_assert_eq!(stats.scored_primary + stats.failed, stats.admitted);
        prop_assert_eq!(
            stats.batch_panics,
            counters.batch_panics.load(std::sync::atomic::Ordering::Relaxed)
        );
        prop_assert!(stats.batch_panics <= stats.batches);
    }
}
