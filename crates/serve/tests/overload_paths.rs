//! Exact-count accounting for every overload path the server defends.
//!
//! Each test drives one failure mode with injected faults or rigged
//! forecasters, then asserts the full [`ServerStats`] block by equality
//! (counters and high-water gauges; the latency histogram is excluded by
//! `PartialEq`). The invariant under test everywhere: **no admitted
//! request is ever lost or answered twice** — after a drain,
//! `admitted == scored + expired + failed` exactly.
//!
//! Determinism notes: sequential submit-and-wait with
//! `max_batch_docs = 1` makes batch boundaries (and so fault-schedule
//! indices and queue high-water marks) exact; expiry uses stalls much
//! longer than the deadline; shedding uses a forecaster that always
//! predicts far over budget.

use dlr_core::fault::{ServerFault, ServerFaultPlan};
use dlr_core::scoring::DocumentScorer;
use dlr_core::serve::{RobustScorer, ServedBy};
use dlr_obs::{Obs, ObsConfig};
use dlr_serve::{
    Backpressure, BatchConfig, ManualClock, PlainEngine, Response, ScoreRequest, Server,
    ServerConfig, ServerStats, SubmitError,
};
use std::sync::Arc;
use std::time::Duration;

/// Two features per document; score = 1000·f0 + f1.
struct Tagged;

impl DocumentScorer for Tagged {
    fn num_features(&self) -> usize {
        2
    }
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        for (row, o) in rows.chunks_exact(2).zip(out.iter_mut()) {
            *o = row[0] * 1000.0 + row[1];
        }
    }
    fn name(&self) -> String {
        "tagged".into()
    }
}

/// Fallback that answers a constant, so degraded responses are visible.
struct Const(f32);

impl DocumentScorer for Const {
    fn num_features(&self) -> usize {
        2
    }
    fn score_batch(&mut self, _rows: &[f32], out: &mut [f32]) {
        out.fill(self.0);
    }
    fn name(&self) -> String {
        "const".into()
    }
}

fn one_doc_batches() -> BatchConfig {
    BatchConfig {
        max_batch_docs: 1,
        max_wait: Duration::from_millis(1),
    }
}

fn req(q: u32) -> ScoreRequest {
    ScoreRequest::new(vec![q as f32, 0.0])
}

/// Expected stats must match ACTUAL exactly, except the histogram which
/// equality already ignores.
fn assert_books(actual: &ServerStats, expected: &ServerStats) {
    assert_eq!(
        actual, expected,
        "\nactual:\n{actual}\nexpected:\n{expected}"
    );
    assert_eq!(
        actual.admitted,
        actual.scored_primary + actual.scored_fallback + actual.expired + actual.failed,
        "admitted requests must all be answered exactly once"
    );
    assert_eq!(
        actual.submitted,
        actual.admitted + actual.refused(),
        "every submission is admitted or refused"
    );
}

/// Overload path 1 — **shed**: admission control refuses requests whose
/// deadline the forecaster says cannot be met; requests without a
/// deadline sail through. Zero admitted requests are lost.
#[test]
fn admission_control_sheds_predicted_deadline_misses() {
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            admission: Some(Box::new(|_docs: usize| Some(Duration::from_secs(10)))),
            ..ServerConfig::default()
        },
    );
    for q in 0..3 {
        let err = server
            .submit(req(q).with_deadline(Duration::from_millis(1)))
            .expect_err("predicted to miss its deadline");
        assert_eq!(
            err,
            SubmitError::Shed {
                predicted: Duration::from_secs(10),
                budget: Duration::from_millis(1),
            }
        );
    }
    for q in 0..2 {
        let got = server
            .submit(req(q))
            .expect("no deadline, never shed")
            .wait();
        assert_eq!(got.response.scores(), Some(&[q as f32 * 1000.0][..]));
    }
    let (_engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 5,
        admitted: 2,
        shed: 3,
        batches: 2,
        batched_docs: 2,
        scored_primary: 2,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
}

/// Overload path 2 — **degrade**: a deadline that survives admission
/// propagates into the robust engine, whose forecaster veto routes the
/// batch to the fallback instead of missing the deadline. The response
/// is marked [`ServedBy::Fallback`] and carries the fallback's scores.
#[test]
fn propagated_deadlines_degrade_to_the_fallback() {
    let engine = RobustScorer::new(Tagged, Const(7.0), "degrade-test")
        .with_forecaster(|_docs: usize| Some(Duration::from_secs(10)));
    let server = Server::start(
        engine,
        ServerConfig {
            batch: one_doc_batches(),
            ..ServerConfig::default()
        },
    );
    for q in 0..3 {
        let got = server
            .submit(req(q).with_deadline(Duration::from_secs(5)))
            .expect("admitted: no admission forecaster configured")
            .wait();
        match got.response {
            Response::Scored { scores, served_by } => {
                assert_eq!(served_by, ServedBy::Fallback);
                assert_eq!(scores, [7.0]);
            }
            other => panic!("expected degraded scores, got {other:?}"),
        }
    }
    let (engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 3,
        admitted: 3,
        batches: 3,
        batched_docs: 3,
        scored_fallback: 3,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
    assert_eq!(engine.stats().fallback_batches, 3);
}

/// Overload path 3 — **drain**: shutdown closes admission but answers
/// everything already admitted; nothing is lost, nothing scored twice.
#[test]
fn shutdown_drains_every_admitted_request() {
    let server = Server::start(PlainEngine::new(Tagged), ServerConfig::default());
    let handles: Vec<_> = (0..40)
        .map(|q| server.submit(req(q)).expect("admitted"))
        .collect();
    let (_engine, stats) = server.shutdown();
    // The drain guarantee: every handle is already answered when
    // shutdown returns — wait() cannot block.
    for (q, handle) in handles.into_iter().enumerate() {
        assert!(handle.is_ready(), "request {q} unanswered after drain");
        assert_eq!(
            handle.wait().response.scores(),
            Some(&[q as f32 * 1000.0][..])
        );
    }
    assert_eq!(stats.submitted, 40);
    assert_eq!(stats.admitted, 40);
    assert_eq!(stats.scored_primary, 40);
    assert_eq!(stats.expired + stats.failed, 0);
    assert_eq!(stats.batched_docs, 40, "every admitted doc is batched once");
    assert!(stats.batches >= 1 && stats.batches <= 40);
    assert_eq!(stats.latency.count(), 40);
}

/// Overload path 4 — **isolated batch panic**: a poisoned batch fails
/// only its own requests; the batches before and after it score
/// normally on the same dispatcher thread.
#[test]
fn a_panicking_batch_fails_only_itself() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let plan = ServerFaultPlan::from_schedule(vec![ServerFault::None, ServerFault::BatchPanic]);
    let counters = plan.counters();
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            faults: Some(plan),
            ..ServerConfig::default()
        },
    );
    let r0 = server.submit(req(0)).expect("admitted").wait();
    let r1 = server.submit(req(1)).expect("admitted").wait();
    let r2 = server.submit(req(2)).expect("admitted").wait();
    std::panic::set_hook(prev);
    assert_eq!(r0.response.scores(), Some(&[0.0][..]));
    assert_eq!(r1.response, Response::Failed);
    assert_eq!(r2.response.scores(), Some(&[2000.0][..]));
    let (_engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 3,
        admitted: 3,
        batches: 3,
        batched_docs: 3,
        scored_primary: 2,
        failed: 1,
        batch_panics: 1,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
    assert_eq!(
        counters
            .batch_panics
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

/// Injected **deadline storm**: the batch budget collapses to zero, so a
/// robust engine with any nonzero forecast degrades; the next batch is
/// served primary again.
#[test]
fn deadline_storm_degrades_one_batch() {
    let plan = ServerFaultPlan::from_schedule(vec![ServerFault::DeadlineStorm]);
    let engine = RobustScorer::new(Tagged, Const(7.0), "storm-test")
        .with_forecaster(|_docs: usize| Some(Duration::from_micros(1)));
    let server = Server::start(
        engine,
        ServerConfig {
            batch: one_doc_batches(),
            faults: Some(plan),
            ..ServerConfig::default()
        },
    );
    let stormed = server.submit(req(1)).expect("admitted").wait();
    assert_eq!(stormed.response.scores(), Some(&[7.0][..]));
    let calm = server.submit(req(2)).expect("admitted").wait();
    assert_eq!(calm.response.scores(), Some(&[2000.0][..]));
    let (_engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 2,
        admitted: 2,
        batches: 2,
        batched_docs: 2,
        scored_primary: 1,
        scored_fallback: 1,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
}

/// Injected **queue stall**: the consumer deschedules long enough for a
/// queued deadline to lapse; the request is answered `Expired` without
/// being scored, and is still fully accounted.
#[test]
fn queue_stall_expires_deadlined_requests() {
    let plan =
        ServerFaultPlan::from_schedule(vec![ServerFault::QueueStall(Duration::from_millis(50))]);
    let counters = plan.counters();
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            faults: Some(plan),
            ..ServerConfig::default()
        },
    );
    let got = server
        .submit(req(1).with_deadline(Duration::from_millis(5)))
        .expect("admitted")
        .wait();
    assert_eq!(got.response, Response::Expired);
    assert!(
        got.latency_nanos >= 5_000_000,
        "expiry cannot precede the deadline; measured {}ns",
        got.latency_nanos
    );
    let (_engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 1,
        admitted: 1,
        expired: 1,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
    assert_eq!(
        counters
            .queue_stalls
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

/// **Backpressure (Reject)**: with the dispatcher stalled, submissions
/// beyond the queue capacity are refused with a typed error and exact
/// counts; everything admitted is still answered.
#[test]
fn reject_backpressure_bounds_the_queue_exactly() {
    let plan =
        ServerFaultPlan::from_schedule(vec![ServerFault::QueueStall(Duration::from_millis(60))]);
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            queue_capacity: 2,
            backpressure: Backpressure::Reject,
            faults: Some(plan),
            ..ServerConfig::default()
        },
    );
    // First request: taken by the dispatcher, which then stalls 60ms.
    let h0 = server.submit(req(0)).expect("admitted");
    let start = std::time::Instant::now();
    while server.queue_depth().0 > 0 {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dispatcher never took r0"
        );
        std::thread::yield_now();
    }
    // Queue (capacity 2) fills behind the stalled dispatcher.
    let h1 = server.submit(req(1)).expect("fits");
    let h2 = server.submit(req(2)).expect("fits");
    let err = server.submit(req(3)).expect_err("queue is full");
    assert_eq!(err, SubmitError::QueueFull);
    for (q, h) in [(0u32, h0), (1, h1), (2, h2)] {
        assert_eq!(h.wait().response.scores(), Some(&[q as f32 * 1000.0][..]));
    }
    let (_engine, stats) = server.shutdown();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.rejected_full, 1);
    assert_eq!(stats.scored_primary, 3);
    assert_eq!(stats.max_queue_depth, 2);
    assert_eq!(stats.answered(), stats.admitted);
}

/// **Backpressure (Block)**: a submitter over capacity parks instead of
/// being refused, and completes once the dispatcher frees space — the
/// closed-loop alternative to rejection.
#[test]
fn block_backpressure_parks_the_submitter() {
    let plan =
        ServerFaultPlan::from_schedule(vec![ServerFault::QueueStall(Duration::from_millis(40))]);
    let server = std::sync::Arc::new(Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            queue_capacity: 1,
            backpressure: Backpressure::Block,
            faults: Some(plan),
            ..ServerConfig::default()
        },
    ));
    let h0 = server.submit(req(0)).expect("admitted");
    let start = std::time::Instant::now();
    while server.queue_depth().0 > 0 {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dispatcher never took r0"
        );
        std::thread::yield_now();
    }
    let h1 = server.submit(req(1)).expect("fills the queue");
    let blocked = std::thread::spawn({
        let server = std::sync::Arc::clone(&server);
        move || server.submit(req(2)).expect("admitted after space frees")
    });
    let h2 = blocked.join().expect("blocked submitter");
    for (q, h) in [(0u32, h0), (1, h1), (2, h2)] {
        assert_eq!(h.wait().response.scores(), Some(&[q as f32 * 1000.0][..]));
    }
    let server = std::sync::Arc::into_inner(server).expect("sole owner");
    let (_engine, stats) = server.shutdown();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.rejected_full, 0);
    assert_eq!(stats.scored_primary, 3);
}

/// The stages of every span recorded for one trace id, in sink order.
fn stages_of(obs: &Obs, id: u64) -> Vec<dlr_obs::Stage> {
    obs.spans()
        .into_iter()
        .filter(|s| s.id == id)
        .map(|s| s.stage)
        .collect()
}

/// Every refusal and failure path leaves a correctly-tagged trace: shed
/// requests get exactly one `Shed` span at the door, expired requests a
/// `QueueWait` + `Expired` pair, panicked batches a full waterfall
/// capped with `Failed` — and the sink's conservation law
/// (`spans_opened == spans_resident + spans_dropped`) holds throughout.
#[test]
fn overload_paths_produce_correctly_tagged_spans() {
    use dlr_obs::Stage::{Batch, Dispatch, Expired, Failed, QueueWait, Shed};
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let clock = Arc::new(ManualClock::at(0));
    let obs = Arc::new(Obs::with_config(
        Arc::clone(&clock) as Arc<dyn dlr_obs::NanoClock>,
        ObsConfig {
            shards: 1,
            spans_per_shard: 64,
            drift_window: 16,
        },
    ));
    // Batch #1 is the expired request (a taken batch even though nothing
    // is scored), batch #2 the panic victim, batch #3 the healthy one.
    let plan = ServerFaultPlan::from_schedule(vec![ServerFault::None, ServerFault::BatchPanic]);
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            // Forecasts only multi-doc requests, so the one-doc expiry
            // victim below is admitted rather than shed at the door.
            admission: Some(Box::new(|docs: usize| {
                (docs >= 2).then(|| Duration::from_secs(10))
            })),
            faults: Some(plan),
            clock: Some(Arc::clone(&clock) as Arc<dyn dlr_serve::Clock>),
            obs: Some(Arc::clone(&obs)),
            ..ServerConfig::default()
        },
    );

    // id 1 — shed at submit: two docs trip the forecaster.
    let err = server
        .submit(ScoreRequest::new(vec![1.0, 0.0, 2.0, 0.0]).with_deadline(Duration::from_millis(1)))
        .expect_err("predicted miss");
    assert!(matches!(err, SubmitError::Shed { .. }));
    // id 2 — expires in the queue: a zero deadline lapses immediately
    // under the frozen clock.
    let expired = server
        .submit(req(0).with_deadline(Duration::ZERO))
        .expect("admitted")
        .wait();
    assert_eq!(expired.response, Response::Expired);
    // id 3 — its batch draws the injected panic.
    let failed = server.submit(req(1)).expect("admitted").wait();
    assert_eq!(failed.response, Response::Failed);
    // id 4 — scores normally after the panic.
    let scored = server.submit(req(2)).expect("admitted").wait();
    std::panic::set_hook(prev);
    assert_eq!(scored.response.scores(), Some(&[2000.0][..]));

    assert_eq!(stages_of(&obs, 1), vec![Shed]);
    assert_eq!(stages_of(&obs, 2), vec![QueueWait, Expired]);
    assert_eq!(stages_of(&obs, 3), vec![QueueWait, Batch, Dispatch, Failed]);
    assert_eq!(stages_of(&obs, 4), vec![QueueWait, Batch, Dispatch]);
    assert!(obs.books_balance(), "span accounting must balance");
    assert_eq!(obs.sink().spans_dropped(), 0, "ring never wrapped");

    let (_engine, stats) = server.shutdown();
    let expected = ServerStats {
        submitted: 4,
        admitted: 3,
        shed: 1,
        expired: 1,
        batches: 2,
        batched_docs: 2,
        scored_primary: 1,
        failed: 1,
        batch_panics: 1,
        max_queue_depth: 1,
        max_queued_docs: 1,
        ..ServerStats::default()
    };
    assert_books(&stats, &expected);
    // The obs counters mirror the authoritative ServerStats exactly.
    for (name, want) in [
        ("serve_submitted_total", 4),
        ("serve_shed_total", 1),
        ("serve_expired_total", 1),
        ("serve_failed_total", 1),
        ("serve_batch_panics_total", 1),
        ("serve_scored_primary_total", 1),
        ("serve_batches_total", 2),
    ] {
        assert_eq!(obs.counter(name).get(), want, "{name}");
    }
}

/// Injected **trace pressure**: a synthetic span burst wraps the ring
/// mid-dispatch. Overwrite-oldest must never block or reorder the
/// dispatcher — both requests still score, in order, and the
/// conservation law accounts for every overwritten span.
#[test]
fn trace_pressure_wraps_the_ring_without_blocking_the_dispatcher() {
    let clock = Arc::new(ManualClock::at(0));
    // A deliberately tiny ring: 8 slots against a 64-span burst.
    let obs = Arc::new(Obs::with_config(
        Arc::clone(&clock) as Arc<dyn dlr_obs::NanoClock>,
        ObsConfig {
            shards: 1,
            spans_per_shard: 8,
            drift_window: 16,
        },
    ));
    let plan = ServerFaultPlan::from_schedule(vec![ServerFault::TracePressure { spans: 64 }]);
    let counters = plan.counters();
    let server = Server::start(
        PlainEngine::new(Tagged),
        ServerConfig {
            batch: one_doc_batches(),
            faults: Some(plan),
            clock: Some(Arc::clone(&clock) as Arc<dyn dlr_serve::Clock>),
            obs: Some(Arc::clone(&obs)),
            ..ServerConfig::default()
        },
    );
    let r1 = server.submit(req(1)).expect("admitted").wait();
    let r2 = server.submit(req(2)).expect("admitted").wait();
    assert_eq!(r1.response.scores(), Some(&[1000.0][..]));
    assert_eq!(r2.response.scores(), Some(&[2000.0][..]));

    // 64 synthetic + 3 spans per scored request = 70 opened; the ring
    // keeps the newest 8 and the books still balance exactly.
    assert_eq!(obs.sink().spans_opened(), 70);
    assert_eq!(obs.sink().spans_dropped(), 62);
    assert!(obs.books_balance(), "wrap must not lose accounting");
    // The survivors are the newest spans in recording order: the tail
    // of the burst, then request 1's waterfall, then request 2's —
    // proving the wrap reordered nothing.
    let ids: Vec<u64> = obs.spans().iter().map(|s| s.id).collect();
    assert_eq!(ids, vec![0, 0, 1, 1, 1, 2, 2, 2]);

    let (_engine, stats) = server.shutdown();
    assert_eq!(stats.scored_primary, 2);
    assert_eq!(
        counters
            .trace_pressure
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}
