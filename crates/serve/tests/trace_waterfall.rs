//! Deterministic end-to-end trace test: a server driven by a
//! `ManualClock` must produce *exact* per-request waterfalls — every
//! stage span with exact server-nanos endpoints — and an exact
//! predictor-drift ratio. Nothing here sleeps or tolerates jitter; a
//! single nanosecond of disagreement is a failure, which is the
//! determinism contract the obs plane documents.

use dlr_core::scoring::DocumentScorer;
use dlr_obs::{Obs, ObsConfig, Span, Stage};
use dlr_serve::{BatchConfig, ManualClock, PlainEngine, ScoreRequest, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// Nanos the fake kernel "runs" per batch (it advances the clock).
const KERNEL_NANOS: u64 = 30_000;
/// Nanos the admission forecaster predicts per batch, regardless of
/// size — deliberately optimistic so the drift tracker has something
/// exact to report: actual/predicted = 30_000/20_000 = 1.5.
const PREDICTED_NANOS: u64 = 20_000;

/// A scorer that performs a deterministic amount of "work": it opens a
/// kernel scope, advances the shared manual clock by [`KERNEL_NANOS`],
/// and sums each row. Under a manual clock this is the only place time
/// passes, so every span endpoint is a hand-computable constant.
struct StepKernel {
    clock: Arc<ManualClock>,
    obs: Arc<Obs>,
}

impl DocumentScorer for StepKernel {
    fn num_features(&self) -> usize {
        2
    }
    fn score_batch(&mut self, rows: &[f32], out: &mut [f32]) {
        let _kernel = self.obs.scope(Stage::KernelGemm);
        self.clock.advance(KERNEL_NANOS);
        for (row, o) in rows.chunks_exact(2).zip(out.iter_mut()) {
            *o = row.iter().sum();
        }
    }
    fn name(&self) -> String {
        "step-kernel".into()
    }
}

fn span(id: u64, stage: Stage, start: u64, end: u64) -> Span {
    Span {
        id,
        stage,
        version: None,
        start_nanos: start,
        end_nanos: end,
    }
}

#[test]
fn manual_clock_yields_exact_waterfalls_and_drift_ratio() {
    let clock = Arc::new(ManualClock::at(0));
    // One shard so `spans()` returns a single deterministic sequence.
    let obs = Arc::new(Obs::with_config(
        Arc::clone(&clock) as Arc<dyn dlr_obs::NanoClock>,
        ObsConfig {
            shards: 1,
            spans_per_shard: 64,
            drift_window: 16,
        },
    ));
    let engine = PlainEngine::new(StepKernel {
        clock: Arc::clone(&clock),
        obs: Arc::clone(&obs),
    });
    let server = Server::start(
        engine,
        ServerConfig {
            // One-doc batches: each request flushes immediately on size,
            // so the frozen clock never has to drive a time-based flush.
            batch: BatchConfig {
                max_batch_docs: 1,
                max_wait: Duration::from_millis(1),
            },
            admission: Some(Box::new(|_docs: usize| {
                Some(Duration::from_nanos(PREDICTED_NANOS))
            })),
            clock: Some(Arc::clone(&clock) as Arc<dyn dlr_serve::Clock>),
            obs: Some(Arc::clone(&obs)),
            ..ServerConfig::default()
        },
    );

    // Request 1 at t = 0: queued and dispatched at 0, kernel advances
    // the clock to 30_000, so dispatch ends at exactly 30_000.
    let r1 = server
        .submit(ScoreRequest::new(vec![1.0, 2.0]))
        .expect("admit r1");
    assert_eq!(r1.wait().response.scores(), Some(&[3.0][..]));

    // Request 2 at t = 100_000: same shape, shifted waterfall.
    clock.advance(100_000 - KERNEL_NANOS);
    let r2 = server
        .submit(ScoreRequest::new(vec![10.0, 20.0]))
        .expect("admit r2");
    assert_eq!(r2.wait().response.scores(), Some(&[30.0][..]));

    // Exact waterfalls. Spans land in the sink before the response is
    // delivered, so after `wait()` the full trace is visible. Within a
    // request the kernel span is recorded first (its scope guard drops
    // inside the engine), then the dispatcher's bookkeeping spans.
    let expected = vec![
        span(1, Stage::KernelGemm, 0, KERNEL_NANOS),
        span(1, Stage::QueueWait, 0, 0),
        span(1, Stage::Batch, 0, 0),
        span(1, Stage::Dispatch, 0, KERNEL_NANOS),
        span(2, Stage::KernelGemm, 100_000, 100_000 + KERNEL_NANOS),
        span(2, Stage::QueueWait, 100_000, 100_000),
        span(2, Stage::Batch, 100_000, 100_000),
        span(2, Stage::Dispatch, 100_000, 100_000 + KERNEL_NANOS),
    ];
    assert_eq!(obs.spans(), expected);
    assert!(obs.books_balance());

    // Exact drift: two batches, each predicted 20_000 ns but measured
    // 30_000 ns → ratio 60_000/40_000 = 1.5 with no tolerance, and both
    // batches under-forecast → sign-error rate exactly 1.
    let drift = obs.drift().summary();
    assert_eq!(drift.window_len, 2);
    assert_eq!(drift.predicted_sum_nanos, 2 * PREDICTED_NANOS);
    assert_eq!(drift.actual_sum_nanos, 2 * KERNEL_NANOS);
    assert_eq!(drift.drift_ratio, Some(1.5));
    assert_eq!(drift.sign_error_rate, Some(1.0));

    // The exporters see the same numbers.
    let prom = obs.snapshot_prometheus();
    assert!(prom.contains("dlr_drift_ratio 1.500000"), "{prom}");
    assert!(prom.contains("serve_batches_total 2"), "{prom}");
    let dump = obs.trace_dump(1);
    assert!(dump.contains("trace 1 — 30000 ns total"), "{dump}");

    let (_engine, stats) = server.shutdown();
    assert_eq!(stats.scored_primary, 2);
    // The per-stage histograms saw exactly what the spans did: zero
    // queue wait, 30 µs of execute, for both requests.
    assert_eq!(stats.queue_wait.count(), 2);
    assert_eq!(stats.execute.count(), 2);
    assert_eq!(stats.queue_wait.p99_us(), Some(0));
    assert_eq!(stats.execute.mean_us(), Some(30.0));
}

#[test]
fn disabled_plane_records_nothing_and_serving_is_unchanged() {
    let clock = Arc::new(ManualClock::at(0));
    let obs = Arc::new(Obs::new(Arc::clone(&clock) as Arc<dyn dlr_obs::NanoClock>));
    let engine = PlainEngine::new(StepKernel {
        clock: Arc::clone(&clock),
        obs: Arc::clone(&obs),
    });
    // The server never sees `obs`: every dispatcher hook is the `None`
    // branch. Only the engine's own scope guard records (the kernel
    // span is attributed to trace 0 because no dispatcher set one).
    let server = Server::start(
        engine,
        ServerConfig {
            batch: BatchConfig {
                max_batch_docs: 1,
                max_wait: Duration::from_millis(1),
            },
            clock: Some(Arc::clone(&clock) as Arc<dyn dlr_serve::Clock>),
            ..ServerConfig::default()
        },
    );
    let handle = server
        .submit(ScoreRequest::new(vec![1.0, 2.0]))
        .expect("admit");
    assert_eq!(handle.wait().response.scores(), Some(&[3.0][..]));
    let (_engine, stats) = server.shutdown();
    assert_eq!(stats.scored_primary, 1);
    assert_eq!(
        obs.spans(),
        vec![span(0, Stage::KernelGemm, 0, KERNEL_NANOS)]
    );
    assert_eq!(obs.drift().summary().recorded, 0);
    assert_eq!(obs.metrics().snapshot().counters.len(), 0);
}
